//! E4 bench: simulating 100 ms of k Van der Pol streamers under each
//! thread-assignment policy.
//!
//! Runs on the in-tree [`urt_bench::timer`] harness by default; the
//! criterion variant is behind the `criterion-bench` feature.

use urt_core::engine::{EngineConfig, HybridEngine};
use urt_core::threading::{GroupingPolicy, ThreadPolicy};
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::graph::StreamerNetwork;
use urt_dataflow::streamer::OdeStreamer;
use urt_ode::solver::SolverKind;
use urt_ode::system::InputSystem;
use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
use urt_umlrt::controller::Controller;
use urt_umlrt::statemachine::StateMachineBuilder;

#[derive(Clone)]

struct Vdp;

impl InputSystem for Vdp {
    fn dim(&self) -> usize {
        2
    }
    fn input_dim(&self) -> usize {
        0
    }
    fn derivatives(&self, _t: f64, x: &[f64], _u: &[f64], dx: &mut [f64]) {
        dx[0] = x[1];
        dx[1] = 1.5 * (1.0 - x[0] * x[0]) * x[1] - x[0];
    }
}

const POLICIES: [(&str, GroupingPolicy, ThreadPolicy); 4] = [
    ("local", GroupingPolicy::Single, ThreadPolicy::CurrentThread),
    ("single-thread", GroupingPolicy::Single, ThreadPolicy::DedicatedThreads),
    ("grouped-4", GroupingPolicy::Grouped(4), ThreadPolicy::DedicatedThreads),
    ("per-streamer", GroupingPolicy::PerStreamer, ThreadPolicy::DedicatedThreads),
];

fn make_engine(n: usize, grouping: GroupingPolicy, policy: ThreadPolicy) -> HybridEngine {
    let assignment = grouping.assign(n);
    let n_groups = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut nets: Vec<StreamerNetwork> =
        (0..n_groups).map(|g| StreamerNetwork::new(format!("g{g}"))).collect();
    for (i, &g) in assignment.iter().enumerate() {
        nets[g]
            .add_streamer(
                OdeStreamer::new(
                    format!("vdp{i}"),
                    Vdp,
                    SolverKind::Rk4.create(),
                    &[2.0, 0.0],
                    1e-4,
                ),
                &[],
                &[("y", FlowType::vector(2))],
            )
            .expect("add");
    }
    let sm = StateMachineBuilder::new("idle")
        .state("s")
        .initial("s", |_d: &mut (), _ctx: &mut CapsuleContext| {})
        .build()
        .expect("sm");
    let mut controller = Controller::new("ev");
    controller.add_capsule(Box::new(SmCapsule::new(sm, ())));
    let mut e = HybridEngine::new(controller, EngineConfig { step: 1e-3, policy });
    for net in nets {
        e.add_group(net).expect("group");
    }
    e
}

#[cfg(not(feature = "criterion-bench"))]
fn main() {
    use urt_bench::timer::{bench_batched, report_header};

    println!("{}", report_header());
    for n in [4usize, 16] {
        for (label, grouping, policy) in POLICIES {
            let report = bench_batched(
                &format!("e4_threading/{label}/{n}"),
                10,
                || make_engine(n, grouping, policy),
                |mut e| e.run_until(0.1).expect("run"),
            );
            println!("{report}");
        }
    }
}

#[cfg(feature = "criterion-bench")]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

#[cfg(feature = "criterion-bench")]
fn bench(c: &mut Criterion) {
    use std::time::Duration;
    let mut g = c.benchmark_group("e4_threading");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for n in [4usize, 16] {
        for (label, grouping, policy) in POLICIES {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter_batched(
                    || make_engine(n, grouping, policy),
                    |mut e| e.run_until(0.1).expect("run"),
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

#[cfg(feature = "criterion-bench")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-bench")]
criterion_main!(benches);
