//! Figure 2 bench: streamer-network validation and step cost versus
//! network size (the abstract syntax scaled up).

use std::time::Duration;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use urt_bench::{chain_network, fig2_network};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_network");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));

    g.bench_function("fig2_exact_topology_step", |b| {
        let (mut net, _) = fig2_network();
        net.initialize(0.0).expect("init");
        b.iter(|| net.step(black_box(1e-3)).expect("step"))
    });

    for n in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("chain_step", n), &n, |b, &n| {
            let mut net = chain_network(n);
            net.initialize(0.0).expect("init");
            b.iter(|| net.step(black_box(1e-3)).expect("step"))
        });
        g.bench_with_input(BenchmarkId::new("validate", n), &n, |b, &n| {
            b.iter_batched(
                || chain_network(n),
                |mut net| net.validate().expect("validate"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
