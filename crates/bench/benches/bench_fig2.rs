//! Figure 2 bench: streamer-network validation and step cost versus
//! network size (the abstract syntax scaled up).
//!
//! Runs on the in-tree [`urt_bench::timer`] harness by default; the
//! criterion variant is behind the `criterion-bench` feature.

use urt_bench::{chain_network, fig2_network};

#[cfg(not(feature = "criterion-bench"))]
fn main() {
    use std::hint::black_box;
    use urt_bench::timer::{bench, bench_batched, report_header};

    println!("{}", report_header());

    let (mut net, _) = fig2_network();
    net.initialize(0.0).expect("init");
    let report = bench("fig2_network/fig2_exact_topology_step", 10_000, || {
        net.step(black_box(1e-3)).expect("step");
    });
    println!("{report}");

    for n in [4usize, 16, 64] {
        let mut net = chain_network(n);
        net.initialize(0.0).expect("init");
        let report = bench(&format!("fig2_network/chain_step/{n}"), 2_000, || {
            net.step(black_box(1e-3)).expect("step");
        });
        println!("{report}");
        let report = bench_batched(
            &format!("fig2_network/validate/{n}"),
            200,
            || chain_network(n),
            |mut net| {
                net.validate().expect("validate");
            },
        );
        println!("{report}");
    }
}

#[cfg(feature = "criterion-bench")]
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

#[cfg(feature = "criterion-bench")]
fn bench(c: &mut Criterion) {
    use std::time::Duration;
    let mut g = c.benchmark_group("fig2_network");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));

    g.bench_function("fig2_exact_topology_step", |b| {
        let (mut net, _) = fig2_network();
        net.initialize(0.0).expect("init");
        b.iter(|| net.step(black_box(1e-3)).expect("step"))
    });

    for n in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("chain_step", n), &n, |b, &n| {
            let mut net = chain_network(n);
            net.initialize(0.0).expect("init");
            b.iter(|| net.step(black_box(1e-3)).expect("step"))
        });
        g.bench_with_input(BenchmarkId::new("validate", n), &n, |b, &n| {
            b.iter_batched(
                || chain_network(n),
                |mut net| net.validate().expect("validate"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

#[cfg(feature = "criterion-bench")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-bench")]
criterion_main!(benches);
