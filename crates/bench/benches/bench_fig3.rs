//! Figure 3 bench: hybrid model step throughput — a capsule supervising
//! streamers through the engine, the paper's end-to-end structure.
//!
//! Runs on the in-tree [`urt_bench::timer`] harness by default; the
//! criterion variant is behind the `criterion-bench` feature.

use urt_core::engine::{EngineConfig, HybridEngine};
use urt_core::threading::ThreadPolicy;
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::graph::StreamerNetwork;
use urt_dataflow::streamer::OdeStreamer;
use urt_ode::solver::SolverKind;
use urt_ode::system::InputSystem;
use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
use urt_umlrt::controller::Controller;
use urt_umlrt::statemachine::StateMachineBuilder;

#[derive(Clone)]

struct Lag;

impl InputSystem for Lag {
    fn dim(&self) -> usize {
        1
    }
    fn input_dim(&self) -> usize {
        0
    }
    fn derivatives(&self, _t: f64, x: &[f64], _u: &[f64], dx: &mut [f64]) {
        dx[0] = 1.0 - x[0];
    }
}

fn engine() -> HybridEngine {
    let mut net = StreamerNetwork::new("plant");
    net.add_streamer(
        OdeStreamer::new("lag", Lag, SolverKind::Rk4.create(), &[0.0], 1e-4),
        &[],
        &[("y", FlowType::scalar())],
    )
    .expect("add");
    let sm = StateMachineBuilder::new("sup")
        .state("s")
        .initial("s", |_d: &mut (), _ctx: &mut CapsuleContext| {})
        .build()
        .expect("sm");
    let mut controller = Controller::new("ev");
    controller.add_capsule(Box::new(SmCapsule::new(sm, ())));
    let mut e = HybridEngine::new(
        controller,
        EngineConfig { step: 1e-3, policy: ThreadPolicy::CurrentThread },
    );
    e.add_group(net).expect("group");
    e
}

#[cfg(not(feature = "criterion-bench"))]
fn main() {
    use std::hint::black_box;
    use urt_bench::timer::{bench, bench_batched, report_header};

    println!("{}", report_header());

    let mut e = engine();
    let report = bench("fig3_hybrid/engine_macro_step", 5_000, || {
        black_box(&mut e).step_once().expect("step");
    });
    println!("{report}");

    let report = bench_batched("fig3_hybrid/engine_run_10ms", 100, engine, |mut e| {
        e.run_until(0.01).expect("run");
    });
    println!("{report}");
}

#[cfg(feature = "criterion-bench")]
use criterion::{black_box, criterion_group, criterion_main, Criterion};

#[cfg(feature = "criterion-bench")]
fn bench(c: &mut Criterion) {
    use std::time::Duration;
    let mut g = c.benchmark_group("fig3_hybrid");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.bench_function("engine_macro_step", |b| {
        let mut e = engine();
        b.iter(|| black_box(&mut e).step_once().expect("step"))
    });
    g.bench_function("engine_run_10ms", |b| {
        b.iter_batched(
            engine,
            |mut e| e.run_until(0.01).expect("run"),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

#[cfg(feature = "criterion-bench")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-bench")]
criterion_main!(benches);
