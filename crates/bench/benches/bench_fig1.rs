//! Figure 1 bench: what does the Strategy indirection cost? Monomorphic
//! RK4 stepping versus the same solver behind `Box<dyn Solver>` (the
//! pattern the paper's architecture relies on).
//!
//! Runs on the in-tree [`urt_bench::timer`] harness by default; the
//! criterion variant is behind the `criterion-bench` feature.

use urt_ode::solver::{Rk4, Solver, SolverKind};
use urt_ode::system::library::VanDerPol;

#[cfg(not(feature = "criterion-bench"))]
fn main() {
    use std::hint::black_box;
    use urt_bench::timer::{bench, report_header};

    let sys = VanDerPol { mu: 1.5 };
    println!("{}", report_header());

    let mut solver = Rk4::new();
    let mut x = [2.0, 0.0];
    let mut t = 0.0;
    let report = bench("fig1_strategy/monomorphic_rk4", 10_000, || {
        solver.step(&sys, t, black_box(&mut x), 1e-3).expect("step");
        t += 1e-3;
    });
    println!("{report}");

    let mut solver: Box<dyn Solver + Send> = SolverKind::Rk4.create();
    let mut x = [2.0, 0.0];
    let mut t = 0.0;
    let report = bench("fig1_strategy/dyn_strategy_rk4", 10_000, || {
        solver.step(&sys, t, black_box(&mut x), 1e-3).expect("step");
        t += 1e-3;
    });
    println!("{report}");
}

#[cfg(feature = "criterion-bench")]
use criterion::{black_box, criterion_group, criterion_main, Criterion};

#[cfg(feature = "criterion-bench")]
fn bench(c: &mut Criterion) {
    use std::time::Duration;
    let sys = VanDerPol { mu: 1.5 };
    let mut g = c.benchmark_group("fig1_strategy");
    g.sample_size(30);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.bench_function("monomorphic_rk4", |b| {
        let mut solver = Rk4::new();
        let mut x = [2.0, 0.0];
        let mut t = 0.0;
        b.iter(|| {
            solver.step(&sys, t, black_box(&mut x), 1e-3).expect("step");
            t += 1e-3;
        })
    });
    g.bench_function("dyn_strategy_rk4", |b| {
        let mut solver: Box<dyn Solver + Send> = SolverKind::Rk4.create();
        let mut x = [2.0, 0.0];
        let mut t = 0.0;
        b.iter(|| {
            solver.step(&sys, t, black_box(&mut x), 1e-3).expect("step");
            t += 1e-3;
        })
    });
    g.finish();
}

#[cfg(feature = "criterion-bench")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-bench")]
criterion_main!(benches);
