//! E1 bench: per-step cost of each solver strategy on the Van der Pol
//! benchmark problem (the cost axis of the accuracy/cost table).
//!
//! Runs on the in-tree [`urt_bench::timer`] harness by default; the
//! criterion variant is behind the `criterion-bench` feature.

use urt_ode::solver::SolverKind;
use urt_ode::system::library::VanDerPol;

#[cfg(not(feature = "criterion-bench"))]
fn main() {
    use std::hint::black_box;
    use urt_bench::timer::{bench, report_header};

    let sys = VanDerPol { mu: 2.0 };
    println!("{}", report_header());
    for kind in SolverKind::ALL {
        let mut solver = kind.create();
        let mut x = [2.0, 0.0];
        let mut t = 0.0;
        let report = bench(&format!("e1_solvers/step/{kind}"), 10_000, || {
            let out = solver.step(&sys, t, black_box(&mut x), 1e-3).expect("step");
            if out.accepted {
                t += out.h_taken;
            }
        });
        println!("{report}");
    }
}

#[cfg(feature = "criterion-bench")]
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

#[cfg(feature = "criterion-bench")]
fn bench(c: &mut Criterion) {
    use std::time::Duration;
    let sys = VanDerPol { mu: 2.0 };
    let mut g = c.benchmark_group("e1_solvers");
    g.sample_size(30);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for kind in SolverKind::ALL {
        g.bench_with_input(BenchmarkId::new("step", kind), &kind, |b, &kind| {
            let mut solver = kind.create();
            let mut x = [2.0, 0.0];
            let mut t = 0.0;
            b.iter(|| {
                let out = solver.step(&sys, t, black_box(&mut x), 1e-3).expect("step");
                if out.accepted {
                    t += out.h_taken;
                }
            })
        });
    }
    g.finish();
}

#[cfg(feature = "criterion-bench")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-bench")]
criterion_main!(benches);
