//! E1 bench: per-step cost of each solver strategy on the Van der Pol
//! benchmark problem (the cost axis of the accuracy/cost table).

use std::time::Duration;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use urt_ode::solver::SolverKind;
use urt_ode::system::library::VanDerPol;

fn bench(c: &mut Criterion) {
    let sys = VanDerPol { mu: 2.0 };
    let mut g = c.benchmark_group("e1_solvers");
    g.sample_size(30);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for kind in SolverKind::ALL {
        g.bench_with_input(BenchmarkId::new("step", kind), &kind, |b, &kind| {
            let mut solver = kind.create();
            let mut x = [2.0, 0.0];
            let mut t = 0.0;
            b.iter(|| {
                let out = solver.step(&sys, t, black_box(&mut x), 1e-3).expect("step");
                if out.accepted {
                    t += out.h_taken;
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
