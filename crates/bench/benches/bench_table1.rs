//! Table 1 bench: stereotype registry rendering and lookups (the cost of
//! the modeling-surface metadata is negligible — this pins that claim).

use std::time::Duration;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use urt_core::stereotype::{render_table1, Stereotype};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.bench_function("render", |b| b.iter(|| black_box(render_table1())));
    g.bench_function("lookup_all", |b| {
        b.iter(|| {
            for s in Stereotype::ALL {
                black_box(s.base_construct());
                black_box(s.implemented_in());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
