//! Table 1 bench: stereotype registry rendering and lookups (the cost of
//! the modeling-surface metadata is negligible — this pins that claim).
//!
//! Runs on the in-tree [`urt_bench::timer`] harness by default; the
//! criterion variant is behind the `criterion-bench` feature.

use urt_core::stereotype::{render_table1, Stereotype};

#[cfg(not(feature = "criterion-bench"))]
fn main() {
    use std::hint::black_box;
    use urt_bench::timer::{bench, report_header};

    println!("{}", report_header());
    let report = bench("table1/render", 5_000, || {
        black_box(render_table1());
    });
    println!("{report}");
    let report = bench("table1/lookup_all", 10_000, || {
        for s in Stereotype::ALL {
            black_box(s.base_construct());
            black_box(s.implemented_in());
        }
    });
    println!("{report}");
}

#[cfg(feature = "criterion-bench")]
use criterion::{black_box, criterion_group, criterion_main, Criterion};

#[cfg(feature = "criterion-bench")]
fn bench(c: &mut Criterion) {
    use std::time::Duration;
    let mut g = c.benchmark_group("table1");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.bench_function("render", |b| b.iter(|| black_box(render_table1())));
    g.bench_function("lookup_all", |b| {
        b.iter(|| {
            for s in Stereotype::ALL {
                black_box(s.base_construct());
                black_box(s.implemented_in());
            }
        })
    });
    g.finish();
}

#[cfg(feature = "criterion-bench")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-bench")]
criterion_main!(benches);
