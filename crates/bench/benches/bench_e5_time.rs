//! E5 bench: cost of the two time services — the tick-quantised UML-RT
//! timer heap versus the continuous Time clock.
//!
//! Runs on the in-tree [`urt_bench::timer`] harness by default; the
//! criterion variant is behind the `criterion-bench` feature.

use urt_core::time::SimClock;
use urt_umlrt::capsule::TimerId;
use urt_umlrt::timing::TimerService;

fn loaded_service() -> TimerService {
    let mut svc = TimerService::new();
    svc.set_tick(0.001);
    for i in 0..64u64 {
        svc.schedule(0, TimerId(i), 0.0, 0.001 * i as f64, None, "t");
    }
    svc
}

#[cfg(not(feature = "criterion-bench"))]
fn main() {
    use std::hint::black_box;
    use urt_bench::timer::{bench, bench_batched, report_header};

    println!("{}", report_header());
    let report = bench_batched(
        "e5_time/timer_service_schedule_and_fire",
        1_000,
        loaded_service,
        |mut svc| {
            black_box(svc.pop_due(1.0));
        },
    );
    println!("{report}");

    let mut clock = SimClock::new();
    let report = bench("e5_time/sim_clock_tick", 10_000, || {
        clock.tick(black_box(1e-3));
        black_box(clock.seconds());
    });
    println!("{report}");

    let report = bench("e5_time/drift_closed_form", 10_000, || {
        black_box(SimClock::drift_against_ticks(0.015, 0.010, 1000));
    });
    println!("{report}");
}

#[cfg(feature = "criterion-bench")]
use criterion::{black_box, criterion_group, criterion_main, Criterion};

#[cfg(feature = "criterion-bench")]
fn bench(c: &mut Criterion) {
    use std::time::Duration;
    let mut g = c.benchmark_group("e5_time");
    g.sample_size(30);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.bench_function("timer_service_schedule_and_fire", |b| {
        b.iter_batched(
            loaded_service,
            |mut svc| black_box(svc.pop_due(1.0)),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("sim_clock_tick", |b| {
        let mut clock = SimClock::new();
        b.iter(|| {
            clock.tick(black_box(1e-3));
            black_box(clock.seconds())
        })
    });
    g.bench_function("drift_closed_form", |b| {
        b.iter(|| black_box(SimClock::drift_against_ticks(0.015, 0.010, 1000)))
    });
    g.finish();
}

#[cfg(feature = "criterion-bench")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-bench")]
criterion_main!(benches);
