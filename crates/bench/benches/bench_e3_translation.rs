//! E3 bench: executing a Kühl-translated capsule network versus the same
//! diagram compiled into one native streamer.
//!
//! Runs on the in-tree [`urt_bench::timer`] harness by default; the
//! criterion variant is behind the `criterion-bench` feature.

use urt_baselines::kuhl::translate_diagram;
use urt_bench::feedback_diagram;
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::graph::StreamerNetwork;

#[cfg(not(feature = "criterion-bench"))]
fn main() {
    use std::hint::black_box;
    use urt_bench::timer::{bench, bench_batched, report_header};

    println!("{}", report_header());
    for n in [2usize, 8] {
        let report = bench_batched(
            &format!("e3_translation/kuhl_capsules_10steps/{n}"),
            20,
            || {
                let (mut controller, _) =
                    translate_diagram(feedback_diagram(n), 0.01).expect("translate");
                controller.start().expect("start");
                controller
            },
            |mut controller| {
                let t = controller.now();
                controller.run_until(t + 0.1).expect("run");
            },
        );
        println!("{report}");

        let mut net = StreamerNetwork::new("native");
        let streamer = feedback_diagram(n).into_streamer("plant").expect("compile");
        // The diagram exposes one output per loop.
        let outs: Vec<(String, FlowType)> =
            (0..n).map(|i| (format!("y{i}"), FlowType::scalar())).collect();
        let outs_ref: Vec<(&str, FlowType)> =
            outs.iter().map(|(s, t)| (s.as_str(), t.clone())).collect();
        net.add_streamer(streamer, &[], &outs_ref).expect("add");
        net.initialize(0.0).expect("init");
        let report = bench(&format!("e3_translation/native_streamer_10steps/{n}"), 200, || {
            for _ in 0..10 {
                net.step(black_box(0.01)).expect("step");
            }
        });
        println!("{report}");
    }
}

#[cfg(feature = "criterion-bench")]
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

#[cfg(feature = "criterion-bench")]
fn bench(c: &mut Criterion) {
    use std::time::Duration;
    let mut g = c.benchmark_group("e3_translation");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for n_loops in [2usize, 8] {
        g.bench_with_input(
            BenchmarkId::new("kuhl_capsules_10steps", n_loops),
            &n_loops,
            |b, &n| {
                b.iter_batched(
                    || {
                        let (mut controller, _) =
                            translate_diagram(feedback_diagram(n), 0.01).expect("translate");
                        controller.start().expect("start");
                        controller
                    },
                    |mut controller| {
                        let t = controller.now();
                        controller.run_until(t + 0.1).expect("run");
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("native_streamer_10steps", n_loops),
            &n_loops,
            |b, &n| {
                let mut net = StreamerNetwork::new("native");
                let streamer = feedback_diagram(n).into_streamer("plant").expect("compile");
                // The diagram exposes one output per loop.
                let outs: Vec<(String, FlowType)> =
                    (0..n).map(|i| (format!("y{i}"), FlowType::scalar())).collect();
                let outs_ref: Vec<(&str, FlowType)> =
                    outs.iter().map(|(s, t)| (s.as_str(), t.clone())).collect();
                net.add_streamer(streamer, &[], &outs_ref).expect("add");
                net.initialize(0.0).expect("init");
                b.iter(|| {
                    for _ in 0..10 {
                        net.step(black_box(0.01)).expect("step");
                    }
                })
            },
        );
    }
    g.finish();
}

#[cfg(feature = "criterion-bench")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-bench")]
criterion_main!(benches);
