//! E2 bench: one macro step of each architecture under a fixed continuous
//! load (complements `report_e2`'s latency percentiles).

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urt_baselines::bichler::ArchitectureBenchmark;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_architecture");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for n_systems in [4usize, 32] {
        let bench = ArchitectureBenchmark { n_systems, substeps: 16, n_steps: 20 };
        g.bench_with_input(
            BenchmarkId::new("rtc_integrated", n_systems),
            &bench,
            |b, bench| b.iter(|| bench.run_rtc_integrated()),
        );
        g.bench_with_input(BenchmarkId::new("unified", n_systems), &bench, |b, bench| {
            b.iter(|| bench.run_unified())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
