//! E2 bench: one macro step of each architecture under a fixed continuous
//! load (complements `report_e2`'s latency percentiles).
//!
//! Runs on the in-tree [`urt_bench::timer`] harness by default; the
//! criterion variant is behind the `criterion-bench` feature.

use urt_baselines::bichler::ArchitectureBenchmark;

#[cfg(not(feature = "criterion-bench"))]
fn main() {
    use std::hint::black_box;
    use urt_bench::timer::{bench, report_header};

    println!("{}", report_header());
    for n_systems in [4usize, 32] {
        let workload = ArchitectureBenchmark { n_systems, substeps: 16, n_steps: 20 };
        let report = bench(&format!("e2_architecture/rtc_integrated/{n_systems}"), 10, || {
            black_box(workload.run_rtc_integrated());
        });
        println!("{report}");
        let report = bench(&format!("e2_architecture/unified/{n_systems}"), 10, || {
            black_box(workload.run_unified());
        });
        println!("{report}");
    }
}

#[cfg(feature = "criterion-bench")]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

#[cfg(feature = "criterion-bench")]
fn bench(c: &mut Criterion) {
    use std::time::Duration;
    let mut g = c.benchmark_group("e2_architecture");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for n_systems in [4usize, 32] {
        let bench = ArchitectureBenchmark { n_systems, substeps: 16, n_steps: 20 };
        g.bench_with_input(BenchmarkId::new("rtc_integrated", n_systems), &bench, |b, bench| {
            b.iter(|| bench.run_rtc_integrated())
        });
        g.bench_with_input(BenchmarkId::new("unified", n_systems), &bench, |b, bench| {
            b.iter(|| bench.run_unified())
        });
    }
    g.finish();
}

#[cfg(feature = "criterion-bench")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-bench")]
criterion_main!(benches);
