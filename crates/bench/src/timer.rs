//! A zero-dependency micro-benchmark harness over the monotonic clock.
//!
//! The default `cargo bench` path of this workspace must build offline,
//! so criterion is opt-in (`--features criterion-bench`, which requires
//! re-adding the registry dependency); this harness is what the bench
//! targets run by default. It reports min / median / mean wall time per
//! iteration — min and median because they are robust against scheduler
//! noise on shared CI hardware, mean for comparability with criterion.
//!
//! # Examples
//!
//! ```
//! use urt_bench::timer::bench;
//!
//! let report = bench("add", 100, || {
//!     std::hint::black_box(2u64 + 2);
//! });
//! assert_eq!(report.iters, 100);
//! assert!(report.min_ns <= report.median_ns);
//! ```

use std::fmt;
use std::time::Instant;

/// Aggregate timing of one benchmarked routine.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Benchmark label, e.g. `"rk4_step"`.
    pub label: String,
    /// Measured iterations (excludes warm-up).
    pub iters: usize,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Median iteration, nanoseconds.
    pub median_ns: f64,
    /// Mean iteration, nanoseconds.
    pub mean_ns: f64,
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "| {} | {} | {} | {} | {} |",
            self.label,
            self.iters,
            fmt_ns(self.min_ns),
            fmt_ns(self.median_ns),
            fmt_ns(self.mean_ns)
        )
    }
}

/// Header row matching [`TimingReport`]'s `Display` output.
pub fn report_header() -> String {
    "| benchmark | iters | min | median | mean |\n|---|---|---|---|---|".to_owned()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn summarize(label: &str, mut samples: Vec<f64>) -> TimingReport {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    let median_ns =
        if n % 2 == 1 { samples[n / 2] } else { (samples[n / 2 - 1] + samples[n / 2]) / 2.0 };
    TimingReport {
        label: label.to_owned(),
        iters: n,
        min_ns: samples[0],
        median_ns,
        mean_ns: samples.iter().sum::<f64>() / n as f64,
    }
}

/// Times `f` over `iters` iterations (plus `iters / 10 + 1` warm-up runs
/// that are discarded), timing each iteration individually.
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn bench<F: FnMut()>(label: &str, iters: usize, mut f: F) -> TimingReport {
    assert!(iters > 0, "need at least one iteration");
    for _ in 0..(iters / 10 + 1) {
        f();
    }
    let samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    summarize(label, samples)
}

/// Like [`bench`], but runs `setup` outside the timed region before each
/// iteration and hands its value to `f` (criterion's `iter_batched`).
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn bench_batched<S, T, F>(label: &str, iters: usize, mut setup: S, mut f: F) -> TimingReport
where
    S: FnMut() -> T,
    F: FnMut(T),
{
    assert!(iters > 0, "need at least one iteration");
    f(setup());
    let samples: Vec<f64> = (0..iters)
        .map(|_| {
            let input = setup();
            let t0 = Instant::now();
            f(input);
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    summarize(label, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_sane() {
        let r = bench("spin", 50, || {
            let mut acc = 0u64;
            for i in 0..100 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
        });
        assert_eq!(r.iters, 50);
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.mean_ns * 10.0, "median not wildly above mean");
    }

    #[test]
    fn batched_setup_is_not_timed() {
        let mut setups = 0usize;
        let r = bench_batched(
            "b",
            10,
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| {
                std::hint::black_box(v.len());
            },
        );
        assert_eq!(r.iters, 10);
        // 10 timed iterations + 1 warm-up.
        assert_eq!(setups, 11);
    }

    #[test]
    fn median_of_even_sample_count() {
        let r = summarize("s", vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(r.min_ns, 1.0);
        assert_eq!(r.median_ns, 2.5);
        assert_eq!(r.mean_ns, 2.5);
    }

    #[test]
    fn display_and_header_align() {
        let r = summarize("x", vec![1500.0]);
        let line = r.to_string();
        assert!(line.contains("µs"), "{line}");
        assert_eq!(
            line.matches('|').count(),
            report_header().lines().next().unwrap().matches('|').count()
        );
    }

    #[test]
    fn formats_scale_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
