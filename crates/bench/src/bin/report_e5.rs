//! Experiment **E5** — predictable time: the paper's continuous `Time`
//! stereotype versus UML-RT's tick-quantised timer service ("Timing in
//! UML-RT is unpredictable").
//!
//! Run with: `cargo run --release -p urt-bench --bin report_e5`

use urt_core::time::SimClock;
use urt_umlrt::capsule::TimerId;
use urt_umlrt::timing::TimerService;

fn main() {
    println!("E5. Clock drift: UML-RT quantised timers vs the Time stereotype");
    println!("    (periodic task, period 10.5 ms, cumulative drift after n firings)");
    println!();
    println!("| tick resolution | n=10 (ms) | n=100 (ms) | n=1000 (ms) | n=10000 (ms) |");
    println!("|-----------------|-----------|------------|-------------|--------------|");
    let period = 0.0105;
    for tick in [0.001, 0.005, 0.010, 0.0] {
        let label =
            if tick == 0.0 { "Time (exact)".to_owned() } else { format!("{:.0} ms", tick * 1e3) };
        let drifts: Vec<f64> = [10u64, 100, 1000, 10000]
            .iter()
            .map(|&n| SimClock::drift_against_ticks(period, tick, n) * 1e3)
            .collect();
        println!(
            "| {:<15} | {:>9.2} | {:>10.2} | {:>11.2} | {:>12.2} |",
            label, drifts[0], drifts[1], drifts[2], drifts[3]
        );
    }
    println!();

    // Cross-check with the actual timer service: fire a 15 ms periodic
    // timer on a 10 ms tick and report the realised cadence.
    let mut svc = TimerService::new();
    svc.set_tick(0.010);
    svc.schedule(0, TimerId(1), 0.0, period, Some(period), "tick");
    let fired = svc.pop_due(1.0);
    let times: Vec<f64> = fired.iter().map(|f| f.message.sent_at()).collect();
    let realised_period = if times.len() > 1 {
        (times.last().unwrap() - times[0]) / (times.len() - 1) as f64
    } else {
        0.0
    };
    println!("timer-service cross-check (10 ms tick): requested {:.1} ms period,", period * 1e3);
    println!(
        "realised {:.1} ms over {} firings ({:+.0}% skew)",
        realised_period * 1e3,
        times.len(),
        (realised_period / period - 1.0) * 100.0
    );
    println!();
    println!("expected shape: quantised-timer drift grows linearly with n and");
    println!("with the tick size; the continuous Time clock never drifts.");
}
