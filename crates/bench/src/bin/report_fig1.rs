//! Regenerates **Figure 1** of the paper: the class diagram separating
//! State (capsule behaviour) from Strategy (solver algorithms), as
//! realised by this implementation — then demonstrates the strategy swap
//! at run time.
//!
//! Run with: `cargo run -p urt-bench --bin report_fig1`

use urt_core::strategy::{render_fig1, StrategyCatalog};
use urt_dataflow::streamer::{OdeStreamer, StreamerBehavior};
use urt_ode::system::FnInputSystem;

fn main() {
    let catalog = StrategyCatalog::with_defaults();
    println!("Figure 1. Class diagram of state and algorithms (realised)");
    println!();
    print!("{}", render_fig1(&catalog));
    println!();

    // Live demonstration: one streamer, three strategies, same equations.
    println!("strategy swap demonstration (x' = -x, one macro step h=0.1):");
    for name in ["euler", "rk4", "dopri45"] {
        let system = FnInputSystem::new(1, 0, |_t, x: &[f64], _u: &[f64], dx: &mut [f64]| {
            dx[0] = -x[0];
        });
        let mut s = OdeStreamer::new(
            "decay",
            system,
            catalog.create(name).expect("registered strategy"),
            &[1.0],
            0.1,
        );
        s.initialize(0.0).expect("init");
        let mut y = [0.0];
        s.advance(0.0, 0.1, &[], &mut y).expect("step");
        let exact = (-0.1f64).exp();
        println!(
            "  strategy {:<14} x(0.1) = {:.10}  (error {:.3e})",
            name,
            y[0],
            (y[0] - exact).abs()
        );
    }
}
