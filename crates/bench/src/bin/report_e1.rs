//! Experiment **E1** — solver accuracy versus cost.
//!
//! The paper's core premise: differential equations "must be continuous
//! computed" and cannot run under run-to-completion; they need real
//! integration strategies. This report quantifies the strategy menu on
//! two canonical plants over a step-size sweep.
//!
//! Run with: `cargo run --release -p urt-bench --bin report_e1`

use std::time::Instant;
use urt_ode::integrate;
use urt_ode::solver::{Dopri45, SolverKind};
use urt_ode::system::library::{HarmonicOscillator, VanDerPol};
use urt_ode::system::OdeSystem;

fn reference(sys: &dyn OdeSystem, x0: &[f64], t1: f64) -> Vec<f64> {
    let mut tight = Dopri45::with_tolerances(1e-13, 1e-13);
    integrate(sys, &mut tight, 0.0, t1, x0, 1e-3)
        .expect("reference integration")
        .last_state()
        .as_slice()
        .to_vec()
}

fn main() {
    let t1 = 5.0;
    let problems: Vec<(&str, Box<dyn OdeSystem>, Vec<f64>)> = vec![
        ("harmonic(w=2)", Box::new(HarmonicOscillator { omega: 2.0 }), vec![1.0, 0.0]),
        ("van-der-pol(mu=2)", Box::new(VanDerPol { mu: 2.0 }), vec![2.0, 0.0]),
    ];
    println!("E1. Solver accuracy vs cost (t in [0, {t1}], fixed-step sweep)");
    println!();
    println!("| problem            | solver         | h       | max-err      | wall (us) |");
    println!("|--------------------|----------------|---------|--------------|-----------|");
    for (name, sys, x0) in &problems {
        let exact = reference(sys.as_ref(), x0, t1);
        for kind in
            [SolverKind::ForwardEuler, SolverKind::Heun, SolverKind::Rk4, SolverKind::Dopri45]
        {
            for h in [1e-1, 1e-2, 1e-3] {
                let mut solver = kind.create();
                let start = Instant::now();
                let result = integrate(sys.as_ref(), solver.as_mut(), 0.0, t1, x0, h);
                let wall = start.elapsed().as_secs_f64() * 1e6;
                match result {
                    Ok(traj) => {
                        let last = traj.last_state();
                        let err = last
                            .iter()
                            .zip(&exact)
                            .map(|(a, b)| (a - b).abs())
                            .fold(0.0f64, f64::max);
                        println!(
                            "| {:<18} | {:<14} | {:<7} | {:<12.3e} | {:>9.0} |",
                            name, kind, h, err, wall
                        );
                    }
                    Err(e) => {
                        println!(
                            "| {:<18} | {:<14} | {:<7} | diverged ({e}) | {:>9.0} |",
                            name, kind, h, wall
                        );
                    }
                }
            }
        }
    }
    println!();
    println!("expected shape: error drops with solver order at equal h; dopri45");
    println!("meets tight error at coarse nominal h by adapting internally.");
}
