//! Experiment **E2** — event latency: the paper's architecture (capsules
//! and streamers on different threads) versus the Bichler baseline
//! (equations inside run-to-completion actions on the event thread).
//!
//! Run with: `cargo run --release -p urt-bench --bin report_e2`

use urt_baselines::bichler::ArchitectureBenchmark;

fn main() {
    println!("E2. Event latency under continuous load");
    println!(
        "    (one environment event per macro step; load = Van der Pol systems x RK4 substeps)"
    );
    println!();
    println!("| load (systems) | architecture   | p50 (us) | p99 (us) | max (us) | jitter (us) |");
    println!("|----------------|----------------|----------|----------|----------|-------------|");
    let mut crossover_noted = false;
    for n_systems in [1usize, 4, 16, 64, 256] {
        let bench = ArchitectureBenchmark { n_systems, substeps: 32, n_steps: 100 };
        let rtc = bench.run_rtc_integrated();
        let unified = bench.run_unified();
        for (name, r) in [("rtc-integrated", &rtc), ("unified", &unified)] {
            println!(
                "| {:<14} | {:<14} | {:>8.1} | {:>8.1} | {:>8.1} | {:>11.1} |",
                n_systems,
                name,
                r.p50_us(),
                r.p99_us(),
                r.max_us(),
                r.jitter_us()
            );
        }
        if !crossover_noted && unified.p50_us() < rtc.p50_us() {
            crossover_noted = true;
        }
    }
    println!();
    println!("expected shape: rtc-integrated latency grows linearly with the");
    println!("equation load; unified stays flat (thread handoff cost only).");
    println!("crossover observed at or below the smallest load: {crossover_noted}");
}
