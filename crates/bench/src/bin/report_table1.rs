//! Regenerates **Table 1** of the paper: "New stereotypes comparing with
//! UML-RT", plus where each stereotype is implemented in this repository.
//!
//! Run with: `cargo run -p urt-bench --bin report_table1`

use urt_core::stereotype::{render_table1, Stereotype};

fn main() {
    println!("Table 1. New stereotypes comparing with UML-RT");
    println!();
    print!("{}", render_table1());
    println!();
    println!("Implementation index:");
    for s in Stereotype::ALL {
        println!(
            "  {:<22} <= {:<14} -> {}",
            s.extension_name(),
            s.base_construct(),
            s.implemented_in()
        );
    }
    println!();
    println!("Semantics (paraphrasing paper section 2):");
    for s in Stereotype::ALL {
        println!("  {:<22} {}", s.extension_name(), s.semantics());
    }
}
