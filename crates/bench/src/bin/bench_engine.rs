//! Steady-state engine benchmark: macro steps per second through the full
//! hybrid hot path (clock, signal routing, probe recording) for each
//! thread policy across 1/2/4 streamer groups, on two workloads:
//!
//! * `fig2` — the paper's Figure 2 topology per group (fan-out, pure
//!   dataflow; measures engine/framework overhead);
//! * `vdp` — one RK4-integrated Van der Pol oscillator per group
//!   (measures the solver-dominated regime).
//!
//! Each configuration is measured along both construction paths:
//!
//! * `wired` — the engine assembled by hand (`add_group`/`add_probe`),
//!   as in the pre-elaboration era (the fig2 fan-out uses an explicit
//!   relay node);
//! * `compiled` — the same system declared as a `UnifiedModel` and
//!   lowered through `model → analyze → compile → run` (the fan-out is
//!   two flows from one output, no relay node).
//!
//! Every run attaches a recorder probe per group so the measured loop is
//! the same one real simulations pay for. Results are written as
//! hand-rolled JSON (hermetic, no registry deps) to
//! `results/BENCH_engine.json` — the baseline future perf PRs are
//! measured against.
//!
//! Run with: `cargo run --release -p urt-bench --bin bench_engine`
//! (`--smoke` runs a few hundred steps and prints the JSON to stdout
//! instead of writing the file; `--out PATH` overrides the output path.)

use std::fmt::Write as _;
use std::time::Instant;
use urt_bench::fig2_network;
use urt_core::elaborate::BehaviorRegistry;
use urt_core::engine::{EngineConfig, HybridEngine};
use urt_core::model::ModelBuilder;
use urt_core::recorder::Recorder;
use urt_core::threading::ThreadPolicy;
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::graph::StreamerNetwork;
use urt_dataflow::streamer::{FnStreamer, OdeStreamer};
use urt_ode::solver::SolverKind;
use urt_ode::system::library::VanDerPol;
use urt_ode::system::OdeSystem;
use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
use urt_umlrt::controller::Controller;
use urt_umlrt::statemachine::{SmSpec, StateMachineBuilder};

const STEP: f64 = 1e-3;
const USAGE: &str = "usage: bench_engine [--smoke] [--out PATH]";

/// A Van der Pol oscillator with input dimension zero, usable as an
/// `OdeStreamer` system.
struct Vdp(VanDerPol);

impl urt_ode::system::InputSystem for Vdp {
    fn dim(&self) -> usize {
        2
    }
    fn input_dim(&self) -> usize {
        0
    }
    fn derivatives(&self, t: f64, x: &[f64], _u: &[f64], dx: &mut [f64]) {
        self.0.derivatives(t, x, dx);
    }
}

fn vdp_streamer(name: &str) -> OdeStreamer<Vdp> {
    OdeStreamer::new(
        name,
        Vdp(VanDerPol { mu: 1.5 }),
        SolverKind::Rk4.create(),
        &[2.0, 0.0],
        1e-5, // 100 RK4 substeps per macro step
    )
}

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Fig2,
    Vdp,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Fig2 => "fig2",
            Workload::Vdp => "vdp",
        }
    }

    /// Builds one group's hand-wired network. Node names only need to be
    /// unique within a group, so every group gets an identical copy.
    fn network(self, group: usize) -> (StreamerNetwork, urt_dataflow::graph::NodeId) {
        match self {
            Workload::Fig2 => {
                let (net, [_, _, sub2, _]) = fig2_network();
                (net, sub2)
            }
            Workload::Vdp => {
                let mut net = StreamerNetwork::new(format!("vdp-g{group}"));
                let node = net
                    .add_streamer(vdp_streamer("vdp"), &[], &[("y", FlowType::vector(2))])
                    .expect("add vdp streamer");
                (net, node)
            }
        }
    }

    /// Declares the whole multi-group system as one `UnifiedModel` plus
    /// its behaviour registry. Streamer names carry a `-g{i}` suffix
    /// (model names are global) and each group is pinned to its own
    /// solver thread, which elaboration's thread coalescing keeps apart
    /// (no inter-group flows).
    fn model(self, groups: usize) -> (urt_core::model::UnifiedModel, BehaviorRegistry) {
        let mut b = ModelBuilder::new(format!("{}-bench", self.name()));
        let idle = b.capsule("idle");
        b.capsule_machine(idle, SmSpec::new("idle").state("s").initial("s"));
        let mut registry = BehaviorRegistry::new();
        for gi in 0..groups {
            match self {
                Workload::Fig2 => {
                    let n1 = format!("sub1-g{gi}");
                    let n2 = format!("sub2-g{gi}");
                    let n3 = format!("sub3-g{gi}");
                    let s1 = b.streamer(&n1, "euler");
                    let s2 = b.streamer(&n2, "euler");
                    let s3 = b.streamer(&n3, "euler");
                    b.streamer_out(s1, "y", FlowType::scalar());
                    b.streamer_in(s2, "u", FlowType::scalar());
                    b.streamer_out(s2, "y", FlowType::scalar());
                    b.streamer_in(s3, "u", FlowType::scalar());
                    b.streamer_out(s3, "y", FlowType::scalar());
                    b.flow_between_streamers(s1, "y", s2, "u");
                    b.flow_between_streamers(s1, "y", s3, "u");
                    for s in [s1, s2, s3] {
                        b.assign_thread(s, gi);
                    }
                    b.probe(s2, "y", format!("y{gi}"));
                    registry = registry
                        .streamer(n1.clone(), move || {
                            Box::new(FnStreamer::new(
                                n1,
                                0,
                                1,
                                |t: f64, _h, _u: &[f64], y: &mut [f64]| y[0] = (2.0 * t).sin(),
                            ))
                        })
                        .streamer(n2.clone(), move || {
                            Box::new(FnStreamer::new(
                                n2,
                                1,
                                1,
                                |_t, _h, u: &[f64], y: &mut [f64]| y[0] = 2.0 * u[0],
                            ))
                        })
                        .streamer(n3.clone(), move || {
                            Box::new(FnStreamer::new(
                                n3,
                                1,
                                1,
                                |_t, _h, u: &[f64], y: &mut [f64]| y[0] = u[0] * u[0],
                            ))
                        });
                }
                Workload::Vdp => {
                    let name = format!("vdp-g{gi}");
                    let s = b.streamer(&name, "rk4");
                    b.streamer_out(s, "y", FlowType::vector(2));
                    b.streamer_feedthrough(s, false);
                    b.assign_thread(s, gi);
                    b.probe(s, "y", format!("y{gi}"));
                    registry =
                        registry.streamer(name.clone(), move || Box::new(vdp_streamer(&name)));
                }
            }
        }
        (b.build(), registry)
    }
}

struct Measurement {
    workload: &'static str,
    path: &'static str,
    groups: usize,
    policy: ThreadPolicy,
    steps: u64,
    wall_ns: u128,
    steps_per_sec: f64,
}

fn idle_controller() -> Controller {
    let sm = StateMachineBuilder::new("idle")
        .state("s")
        .initial("s", |_d: &mut (), _ctx: &mut CapsuleContext| {})
        .build()
        .expect("idle machine");
    let mut c = Controller::new("events");
    c.add_capsule(Box::new(SmCapsule::new(sm, ())));
    c
}

/// Assembles the engine by hand — the pre-elaboration construction path.
fn wired_engine(
    workload: Workload,
    groups: usize,
    policy: ThreadPolicy,
) -> (HybridEngine, Recorder) {
    let mut engine = HybridEngine::new(idle_controller(), EngineConfig { step: STEP, policy });
    let rec = Recorder::new();
    engine.set_recorder(rec.clone());
    for gi in 0..groups {
        let (net, node) = workload.network(gi);
        let g = engine.add_group(net).expect("group");
        engine.add_probe(g, node, "y", &format!("y{gi}")).expect("probe");
    }
    (engine, rec)
}

/// Assembles the engine through the elaboration pipeline.
fn compiled_engine(
    workload: Workload,
    groups: usize,
    policy: ThreadPolicy,
) -> (HybridEngine, Recorder) {
    let (model, registry) = workload.model(groups);
    let compiled = urt_analysis::compile(&model, registry).expect("bench model compiles");
    assert_eq!(compiled.group_count(), groups, "thread pinning keeps groups apart");
    let mut engine = HybridEngine::from_compiled(compiled, EngineConfig { step: STEP, policy })
        .expect("engine from compiled system");
    let rec = Recorder::new();
    engine.set_recorder(rec.clone());
    (engine, rec)
}

fn measure(
    workload: Workload,
    path: &'static str,
    groups: usize,
    policy: ThreadPolicy,
    steps: u64,
) -> Measurement {
    let (mut engine, rec) = match path {
        "wired" => wired_engine(workload, groups, policy),
        _ => compiled_engine(workload, groups, policy),
    };
    // Warm-up: spin up solver threads, fault in buffers, settle the cache.
    let warmup = (steps / 10).max(10);
    engine.run_until(warmup as f64 * STEP).expect("warm-up");
    let t0 = engine.time();
    let start = Instant::now();
    engine.run_until(t0 + steps as f64 * STEP).expect("measured run");
    let wall_ns = start.elapsed().as_nanos();
    let measured = engine.step_count() - warmup;
    assert_eq!(measured, steps, "step-count bound must be exact");
    assert_eq!(rec.series("y0").len() as u64, warmup + steps, "probes recorded every step");
    let steps_per_sec = steps as f64 / (wall_ns as f64 / 1e9);
    Measurement { workload: workload.name(), path, groups, policy, steps, wall_ns, steps_per_sec }
}

fn render_json(results: &[Measurement], smoke: bool) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"schema\":\"bench_engine/v2\",\"smoke\":{smoke},\"step_s\":{STEP}");
    let _ = write!(s, ",\"results\":[");
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"workload\":\"{}\",\"path\":\"{}\",\"groups\":{},\"policy\":\"{}\",\
             \"steps\":{},\"wall_ns\":{},\"steps_per_sec\":{:.1}}}",
            m.workload, m.path, m.groups, m.policy, m.steps, m.wall_ns, m.steps_per_sec
        );
    }
    s.push_str("]}");
    s
}

fn main() {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out = Some(p),
                None => {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let policies = [ThreadPolicy::CurrentThread, ThreadPolicy::DedicatedThreads];
    let mut results = Vec::new();
    for workload in [Workload::Fig2, Workload::Vdp] {
        let steps = match (workload, smoke) {
            (_, true) => 200,
            (Workload::Fig2, false) => 20_000,
            (Workload::Vdp, false) => 4_000,
        };
        for groups in [1usize, 2, 4] {
            for policy in policies {
                for path in ["wired", "compiled"] {
                    results.push(measure(workload, path, groups, policy, steps));
                }
            }
        }
    }

    let json = render_json(&results, smoke);
    if smoke && out.is_none() {
        // Smoke mode is the CI shape check: JSON is the whole stdout.
        println!("{json}");
        return;
    }
    let path = out.unwrap_or_else(|| "results/BENCH_engine.json".to_owned());
    std::fs::write(&path, format!("{json}\n")).expect("write benchmark JSON");
    println!("engine steady-state baseline (macro step = {STEP} s)");
    println!();
    println!("| workload | path | groups | policy | steps | steps/sec |");
    println!("|----------|------|--------|--------|-------|-----------|");
    for m in &results {
        println!(
            "| {} | {} | {} | {} | {} | {:.0} |",
            m.workload, m.path, m.groups, m.policy, m.steps, m.steps_per_sec
        );
    }
    println!();
    println!("wrote {path}");
}
