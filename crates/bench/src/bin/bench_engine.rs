//! Steady-state engine benchmark: macro steps per second through the full
//! hybrid hot path (clock, signal routing, probe recording) for each
//! thread policy across 1/2/4 streamer groups, on two workloads:
//!
//! * `fig2` — the paper's Figure 2 topology per group (relay fan-out,
//!   pure dataflow; measures engine/framework overhead);
//! * `vdp` — one RK4-integrated Van der Pol oscillator per group
//!   (measures the solver-dominated regime).
//!
//! Every run attaches a recorder probe per group so the measured loop is
//! the same one real simulations pay for. Results are written as
//! hand-rolled JSON (hermetic, no registry deps) to
//! `results/BENCH_engine.json` — the baseline future perf PRs are
//! measured against.
//!
//! Run with: `cargo run --release -p urt-bench --bin bench_engine`
//! (`--smoke` runs a few hundred steps and prints the JSON to stdout
//! instead of writing the file; `--out PATH` overrides the output path.)

use std::fmt::Write as _;
use std::time::Instant;
use urt_bench::fig2_network;
use urt_core::engine::{EngineConfig, HybridEngine};
use urt_core::recorder::Recorder;
use urt_core::threading::ThreadPolicy;
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::graph::StreamerNetwork;
use urt_dataflow::streamer::OdeStreamer;
use urt_ode::solver::SolverKind;
use urt_ode::system::library::VanDerPol;
use urt_ode::system::OdeSystem;
use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
use urt_umlrt::controller::Controller;
use urt_umlrt::statemachine::StateMachineBuilder;

const STEP: f64 = 1e-3;
const USAGE: &str = "usage: bench_engine [--smoke] [--out PATH]";

/// A Van der Pol oscillator with input dimension zero, usable as an
/// `OdeStreamer` system.
struct Vdp(VanDerPol);

impl urt_ode::system::InputSystem for Vdp {
    fn dim(&self) -> usize {
        2
    }
    fn input_dim(&self) -> usize {
        0
    }
    fn derivatives(&self, t: f64, x: &[f64], _u: &[f64], dx: &mut [f64]) {
        self.0.derivatives(t, x, dx);
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Fig2,
    Vdp,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Fig2 => "fig2",
            Workload::Vdp => "vdp",
        }
    }

    /// Builds one group's network. Node names only need to be unique
    /// within a group, so every group gets an identical copy.
    fn network(self, group: usize) -> (StreamerNetwork, urt_dataflow::graph::NodeId) {
        match self {
            Workload::Fig2 => {
                let (net, [_, _, sub2, _]) = fig2_network();
                (net, sub2)
            }
            Workload::Vdp => {
                let mut net = StreamerNetwork::new(format!("vdp-g{group}"));
                let node = net
                    .add_streamer(
                        OdeStreamer::new(
                            "vdp",
                            Vdp(VanDerPol { mu: 1.5 }),
                            SolverKind::Rk4.create(),
                            &[2.0, 0.0],
                            1e-5, // 100 RK4 substeps per macro step
                        ),
                        &[],
                        &[("y", FlowType::vector(2))],
                    )
                    .expect("add vdp streamer");
                (net, node)
            }
        }
    }
}

struct Measurement {
    workload: &'static str,
    groups: usize,
    policy: ThreadPolicy,
    steps: u64,
    wall_ns: u128,
    steps_per_sec: f64,
}

fn idle_controller() -> Controller {
    let sm = StateMachineBuilder::new("idle")
        .state("s")
        .initial("s", |_d: &mut (), _ctx: &mut CapsuleContext| {})
        .build()
        .expect("idle machine");
    let mut c = Controller::new("events");
    c.add_capsule(Box::new(SmCapsule::new(sm, ())));
    c
}

fn measure(workload: Workload, groups: usize, policy: ThreadPolicy, steps: u64) -> Measurement {
    let mut engine = HybridEngine::new(idle_controller(), EngineConfig { step: STEP, policy });
    let rec = Recorder::new();
    engine.set_recorder(rec.clone());
    for gi in 0..groups {
        let (net, node) = workload.network(gi);
        let g = engine.add_group(net).expect("group");
        engine.add_probe(g, node, "y", &format!("y{gi}")).expect("probe");
    }
    // Warm-up: spin up solver threads, fault in buffers, settle the cache.
    let warmup = (steps / 10).max(10);
    engine.run_until(warmup as f64 * STEP).expect("warm-up");
    let t0 = engine.time();
    let start = Instant::now();
    engine.run_until(t0 + steps as f64 * STEP).expect("measured run");
    let wall_ns = start.elapsed().as_nanos();
    let measured = engine.step_count() - warmup;
    assert_eq!(measured, steps, "step-count bound must be exact");
    assert_eq!(rec.series("y0").len() as u64, warmup + steps, "probes recorded every step");
    let steps_per_sec = steps as f64 / (wall_ns as f64 / 1e9);
    Measurement { workload: workload.name(), groups, policy, steps, wall_ns, steps_per_sec }
}

fn render_json(results: &[Measurement], smoke: bool) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"schema\":\"bench_engine/v1\",\"smoke\":{smoke},\"step_s\":{STEP}");
    let _ = write!(s, ",\"results\":[");
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"workload\":\"{}\",\"groups\":{},\"policy\":\"{}\",\"steps\":{},\
             \"wall_ns\":{},\"steps_per_sec\":{:.1}}}",
            m.workload, m.groups, m.policy, m.steps, m.wall_ns, m.steps_per_sec
        );
    }
    s.push_str("]}");
    s
}

fn main() {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out = Some(p),
                None => {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let policies = [ThreadPolicy::CurrentThread, ThreadPolicy::DedicatedThreads];
    let mut results = Vec::new();
    for workload in [Workload::Fig2, Workload::Vdp] {
        let steps = match (workload, smoke) {
            (_, true) => 200,
            (Workload::Fig2, false) => 20_000,
            (Workload::Vdp, false) => 4_000,
        };
        for groups in [1usize, 2, 4] {
            for policy in policies {
                results.push(measure(workload, groups, policy, steps));
            }
        }
    }

    let json = render_json(&results, smoke);
    if smoke && out.is_none() {
        // Smoke mode is the CI shape check: JSON is the whole stdout.
        println!("{json}");
        return;
    }
    let path = out.unwrap_or_else(|| "results/BENCH_engine.json".to_owned());
    std::fs::write(&path, format!("{json}\n")).expect("write benchmark JSON");
    println!("engine steady-state baseline (macro step = {STEP} s)");
    println!();
    println!("| workload | groups | policy | steps | steps/sec |");
    println!("|----------|--------|--------|-------|-----------|");
    for m in &results {
        println!(
            "| {} | {} | {} | {} | {:.0} |",
            m.workload, m.groups, m.policy, m.steps, m.steps_per_sec
        );
    }
    println!();
    println!("wrote {path}");
}
