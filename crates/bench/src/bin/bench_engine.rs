//! Steady-state engine benchmark: macro steps per second through the full
//! hybrid hot path (clock, signal routing, probe recording) for each
//! thread policy across 1/2/4 streamer groups, on three workloads:
//!
//! * `fig2` — the paper's Figure 2 topology per group (fan-out, pure
//!   dataflow; measures engine/framework overhead);
//! * `vdp` — one RK4-integrated Van der Pol oscillator per group
//!   (measures the solver-dominated regime);
//! * `chain` — an 8-stage lag pipeline split *across* the groups via
//!   cross-group double-buffered channels (measures the inter-group
//!   dataflow the dedicated-threads policy exists for).
//!
//! Each configuration is measured along both construction paths:
//!
//! * `wired` — the engine assembled by hand (`add_group`/`add_probe`,
//!   plus `export_input`/`link_flow` for the chain's channels);
//! * `compiled` — the same system declared as a `UnifiedModel` and
//!   lowered through `model → analyze → compile → run`.
//!
//! And, under `dedicated-threads`, along a `batch` axis:
//!
//! * `k1` — `set_max_batch(1)`, one worker rendezvous per macro step
//!   (the pre-batching schedule);
//! * `auto` — the coordinator batches every step it can prove needs no
//!   signal exchange or coordinator-side work.
//!
//! A second, independent axis measures **ensemble execution**: `K`
//! instances of one workload (`fig2`, `chain`) advanced per macro step,
//! either as one structure-of-arrays [`EnsembleEngine`]
//! (`mode = ensemble`) or as `K` single-instance engines stepped
//! back-to-back (`mode = independent` — the same per-step code path with
//! no amortization, so the delta is exactly what the SoA layout buys).
//! `K ∈ {1, 8}` in smoke mode, `{1, 8, 64, 256}` in full runs.
//!
//! Nested under the ensemble axis, a **kernel** axis isolates what the
//! width-aware batched ODE solver path buys over per-lane scalar
//! stepping: one [`EnsembleEngine`] per configuration, stepped once with
//! `kernel = scalar` ([`EnsembleKernel::PerLane`]) and once with
//! `kernel = batched` (the default), over `K ∈ {16, 64, 256}` (`{16,
//! 64}` in smoke). The workloads here must actually carry ODE lanes, so
//! `fig2` on this axis is the ODE-backed variant ([`fig2_ode_network`]:
//! `sub1` integrates the oscillator with RK4 rather than evaluating
//! `sin(2t)` in closed form) and `chain` is the usual Van der Pol-fed
//! pipeline. Both kernels produce bit-identical series — the equivalence
//! suites pin that — so the delta is pure execution efficiency. Full
//! runs self-assert batched ≥ [`KERNEL_MARGIN`] × scalar at K = 256;
//! smoke runs assert batched is at least not slower at K = 64 (with the
//! usual 10% noise allowance).
//!
//! A third axis (`--paced`) measures **hard real-time latency** instead
//! of throughput: `run_paced` couples each macro step to the wall clock
//! (`set_max_batch(1)`, so even the threaded schedule releases per step)
//! and the reported figures are the per-cycle compute-time distribution —
//! p50/p99/worst nanoseconds — plus deadline misses against a
//! deliberately generous budget. A latency-bound deployment is judged by
//! its tail, not its mean, which is why this axis reports percentiles
//! where the others report steps/sec.
//!
//! A fourth axis measures the **artifact/instance split**: stamping a
//! live `SystemInstance` out of one compiled artifact
//! (`CompiledSystem::instantiate`) versus paying the full
//! declare → analyze → elaborate pipeline again, on the fig2 and chain
//! workloads — the compile-once, instantiate-many dividend a simulation
//! server collects per session. Full runs self-assert instantiate ≥ 5×
//! re-elaboration; smoke runs assert it is at least not slower.
//!
//! Every run attaches a recorder probe so the measured loop is the same
//! one real simulations pay for. Results are written as hand-rolled JSON
//! (hermetic, no registry deps) to `results/BENCH_engine.json` — the
//! baseline future perf PRs are measured against. The binary also
//! *self-asserts* invariants, exiting non-zero otherwise: the batched
//! dedicated-threads path must not fall behind `k1` in aggregate
//! (rendezvous amortization), the ensemble must not fall behind `K`
//! independent engines (SoA amortization), and paced runs must record
//! zero misses at the generous budget (the budget is hundreds of
//! milliseconds per 1 ms step precisely so OS descheduling cannot flake
//! the assertion). Smoke runs allow a 10% throughput tolerance — a few
//! hundred steps on a shared box is noisy — while full runs are strict.
//!
//! Run with: `cargo run --release -p urt-bench --bin bench_engine`
//! (`--smoke` runs a few hundred steps and prints the JSON to stdout
//! instead of writing the file; `--out PATH` overrides the output path;
//! `--paced` adds the paced latency axis — real time in full runs, 50×
//! real time in smoke so CI stays fast; `--emit-cost-table` instead fits
//! a per-solver calibration table from short compiled runs and writes
//! `results/COST_table.json`, the default cost model of the static
//! timing pass `urt_analysis::cost_pass`.)

use std::fmt::Write as _;
use std::time::Instant;
use urt_bench::{chain_network_tail, fig2_network, fig2_ode_network};
use urt_core::elaborate::BehaviorRegistry;
use urt_core::engine::{EngineConfig, HybridEngine};
use urt_core::ensemble::{EnsembleEngine, EnsembleKernel};
use urt_core::model::ModelBuilder;
use urt_core::recorder::Recorder;
use urt_core::threading::ThreadPolicy;
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::graph::{NodeId, StreamerNetwork};
use urt_dataflow::streamer::{FnStreamer, OdeStreamer, StreamerBehavior};
use urt_ode::solver::SolverKind;
use urt_ode::system::library::VanDerPol;
use urt_ode::system::OdeSystem;
use urt_ode::SolveError;
use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
use urt_umlrt::controller::Controller;
use urt_umlrt::statemachine::{SmSpec, StateMachineBuilder};

const STEP: f64 = 1e-3;
const CHAIN_STAGES: usize = 8;
const USAGE: &str = "usage: bench_engine [--smoke] [--out PATH] [--paced] [--emit-cost-table]";

/// Deadline budget for the paced axis, ns per macro step. Generous on
/// purpose (250 ms against a ~µs compute cycle): the `misses == 0`
/// self-assertion must hold even when the OS deschedules the bench for
/// whole scheduler quanta, so the axis stays CI-safe while the p99/worst
/// figures still capture every latency spike.
const PACED_BUDGET_NS: f64 = 250e6;

/// Full-run floor for the kernel axis at K = 256: the batched path must
/// deliver at least 10% more macro steps per second than per-lane scalar
/// stepping on every kernel-axis workload. Measured headroom is far
/// larger (the batched kernel amortizes the per-lane driver loop and
/// fuses the RK stage combines into lane-width sweeps); the floor is
/// deliberately conservative so a loaded box cannot flake the gate while
/// a real regression — falling back to per-lane dispatch — still trips
/// it.
const KERNEL_MARGIN: f64 = 1.10;

/// A Van der Pol oscillator with input dimension zero, usable as an
/// `OdeStreamer` system.
#[derive(Clone)]
struct Vdp(VanDerPol);

impl urt_ode::system::InputSystem for Vdp {
    fn dim(&self) -> usize {
        2
    }
    fn input_dim(&self) -> usize {
        0
    }
    fn derivatives(&self, t: f64, x: &[f64], _u: &[f64], dx: &mut [f64]) {
        self.0.derivatives(t, x, dx);
    }
}

fn vdp_streamer(name: &str) -> OdeStreamer<Vdp> {
    OdeStreamer::new(
        name,
        Vdp(VanDerPol { mu: 1.5 }),
        SolverKind::Rk4.create(),
        &[2.0, 0.0],
        1e-5, // 100 RK4 substeps per macro step
    )
}

/// Non-feedthrough chain source: y = sin(2 t) at the step start.
struct ChainSrc {
    name: String,
}

impl StreamerBehavior for ChainSrc {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_width(&self) -> usize {
        0
    }
    fn output_width(&self) -> usize {
        1
    }
    fn direct_feedthrough(&self) -> bool {
        false
    }
    fn advance(&mut self, t: f64, _h: f64, _u: &[f64], y: &mut [f64]) -> Result<(), SolveError> {
        y[0] = (2.0 * t).sin();
        Ok(())
    }
}

/// Non-feedthrough first-order lag: outputs its state, then relaxes it
/// one Euler step toward the latched input.
struct Lag {
    name: String,
    state: f64,
}

impl StreamerBehavior for Lag {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_width(&self) -> usize {
        1
    }
    fn output_width(&self) -> usize {
        1
    }
    fn direct_feedthrough(&self) -> bool {
        false
    }
    fn advance(&mut self, _t: f64, h: f64, u: &[f64], y: &mut [f64]) -> Result<(), SolveError> {
        y[0] = self.state;
        self.state += h * (u[0] - self.state);
        Ok(())
    }
}

/// Which group pipeline stage `i` lives on: contiguous blocks, so a
/// `groups`-way split has exactly `groups - 1` cross-group channels.
fn chain_group_of(stage: usize, groups: usize) -> usize {
    stage * groups / CHAIN_STAGES
}

fn chain_stage(i: usize) -> Box<dyn StreamerBehavior> {
    if i == 0 {
        Box::new(ChainSrc { name: "stage0".to_owned() })
    } else {
        Box::new(Lag { name: format!("stage{i}"), state: 0.0 })
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Fig2,
    Vdp,
    Chain,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Fig2 => "fig2",
            Workload::Vdp => "vdp",
            Workload::Chain => "chain",
        }
    }

    /// Builds one group's hand-wired network (fig2/vdp: every group is an
    /// identical copy; the chain workload wires whole engines instead —
    /// see [`chain_wired`]).
    fn network(self, group: usize) -> (StreamerNetwork, urt_dataflow::graph::NodeId) {
        match self {
            Workload::Fig2 => {
                let (net, [_, _, sub2, _]) = fig2_network();
                (net, sub2)
            }
            Workload::Vdp => {
                let mut net = StreamerNetwork::new(format!("vdp-g{group}"));
                let node = net
                    .add_streamer(vdp_streamer("vdp"), &[], &[("y", FlowType::vector(2))])
                    .expect("add vdp streamer");
                (net, node)
            }
            Workload::Chain => unreachable!("chain builds whole engines"),
        }
    }

    /// Declares the whole multi-group system as one `UnifiedModel` plus
    /// its behaviour registry. Streamer names carry a `-g{i}` suffix
    /// (model names are global) and each group is pinned to its own
    /// solver thread. fig2/vdp have no inter-group flows; the chain's
    /// flows span the thread assignment and elaboration lowers them into
    /// cross-group channels.
    fn model(self, groups: usize) -> (urt_core::model::UnifiedModel, BehaviorRegistry) {
        if self == Workload::Chain {
            return chain_model(groups);
        }
        let mut b = ModelBuilder::new(format!("{}-bench", self.name()));
        let idle = b.capsule("idle");
        b.capsule_machine(idle, SmSpec::new("idle").state("s").initial("s"));
        let mut registry = BehaviorRegistry::new();
        for gi in 0..groups {
            match self {
                Workload::Fig2 => {
                    let n1 = format!("sub1-g{gi}");
                    let n2 = format!("sub2-g{gi}");
                    let n3 = format!("sub3-g{gi}");
                    let s1 = b.streamer(&n1, "euler");
                    let s2 = b.streamer(&n2, "euler");
                    let s3 = b.streamer(&n3, "euler");
                    b.streamer_out(s1, "y", FlowType::scalar());
                    b.streamer_in(s2, "u", FlowType::scalar());
                    b.streamer_out(s2, "y", FlowType::scalar());
                    b.streamer_in(s3, "u", FlowType::scalar());
                    b.streamer_out(s3, "y", FlowType::scalar());
                    b.flow_between_streamers(s1, "y", s2, "u");
                    b.flow_between_streamers(s1, "y", s3, "u");
                    for s in [s1, s2, s3] {
                        b.assign_thread(s, gi);
                    }
                    b.probe(s2, "y", format!("y{gi}"));
                    registry = registry
                        .streamer(n1.clone(), move || {
                            Box::new(FnStreamer::new(
                                n1.clone(),
                                0,
                                1,
                                |t: f64, _h, _u: &[f64], y: &mut [f64]| y[0] = (2.0 * t).sin(),
                            ))
                        })
                        .streamer(n2.clone(), move || {
                            Box::new(FnStreamer::new(
                                n2.clone(),
                                1,
                                1,
                                |_t, _h, u: &[f64], y: &mut [f64]| y[0] = 2.0 * u[0],
                            ))
                        })
                        .streamer(n3.clone(), move || {
                            Box::new(FnStreamer::new(
                                n3.clone(),
                                1,
                                1,
                                |_t, _h, u: &[f64], y: &mut [f64]| y[0] = u[0] * u[0],
                            ))
                        });
                }
                Workload::Vdp => {
                    let name = format!("vdp-g{gi}");
                    let s = b.streamer(&name, "rk4");
                    b.streamer_out(s, "y", FlowType::vector(2));
                    b.streamer_feedthrough(s, false);
                    b.assign_thread(s, gi);
                    b.probe(s, "y", format!("y{gi}"));
                    registry =
                        registry.streamer(name.clone(), move || Box::new(vdp_streamer(&name)));
                }
                Workload::Chain => unreachable!("handled above"),
            }
        }
        (b.build(), registry)
    }
}

/// The chain pipeline as a declarative model: N stages, flows spanning
/// the thread assignment (lowered into channels by elaboration).
fn chain_model(groups: usize) -> (urt_core::model::UnifiedModel, BehaviorRegistry) {
    let mut b = ModelBuilder::new("chain-bench");
    let idle = b.capsule("idle");
    b.capsule_machine(idle, SmSpec::new("idle").state("s").initial("s"));
    let mut registry = BehaviorRegistry::new();
    let mut stages = Vec::new();
    for i in 0..CHAIN_STAGES {
        let name = format!("stage{i}");
        let s = b.streamer(&name, "euler");
        if i > 0 {
            b.streamer_in(s, "u", FlowType::scalar());
        }
        b.streamer_out(s, "y", FlowType::scalar());
        b.streamer_feedthrough(s, false);
        b.assign_thread(s, chain_group_of(i, groups));
        registry = registry.streamer(name, move || chain_stage(i));
        stages.push(s);
    }
    for i in 1..CHAIN_STAGES {
        b.flow_between_streamers(stages[i - 1], "y", stages[i], "u");
    }
    b.probe(stages[CHAIN_STAGES - 1], "y", "y0");
    // Real-time budget: one macro step of wall time (1 ms) per macro
    // step — the natural deadline of a deployed 1 kHz pipeline. The
    // static timing pass checks it at compile time.
    b.declare_budget(urt_core::model::BudgetScope::Model, STEP * 1e9);
    (b.build(), registry)
}

/// Hand-wires the chain pipeline: block-partitions the stages into
/// `groups` networks, keeps intra-block flows in-network, and links the
/// block boundaries through `export_input` + `link_flow` channels.
fn chain_wired(engine: &mut HybridEngine, groups: usize) {
    let mut nets: Vec<StreamerNetwork> =
        (0..groups).map(|g| StreamerNetwork::new(format!("chain-g{g}"))).collect();
    let mut loc = Vec::new();
    for i in 0..CHAIN_STAGES {
        let g = chain_group_of(i, groups);
        let node = if i == 0 {
            nets[g].add_streamer_boxed(chain_stage(i), &[], &[("y", FlowType::scalar())])
        } else {
            nets[g].add_streamer_boxed(
                chain_stage(i),
                &[("u", FlowType::scalar())],
                &[("y", FlowType::scalar())],
            )
        }
        .expect("chain stage");
        loc.push((g, node));
    }
    for i in 1..CHAIN_STAGES {
        let (gp, np) = loc[i - 1];
        let (gc, nc) = loc[i];
        if gp == gc {
            nets[gc].flow((np, "y"), (nc, "u")).expect("intra-group flow");
        } else {
            nets[gc].export_input(nc, "u").expect("export channel input");
        }
    }
    let gids: Vec<usize> = nets.into_iter().map(|n| engine.add_group(n).expect("group")).collect();
    for i in 1..CHAIN_STAGES {
        let (gp, np) = loc[i - 1];
        let (gc, nc) = loc[i];
        if gp != gc {
            engine.link_flow((gids[gp], np, "y"), (gids[gc], nc, "u")).expect("channel");
        }
    }
    let (gl, nl) = loc[CHAIN_STAGES - 1];
    engine.add_probe(gids[gl], nl, "y", "y0").expect("probe");
}

struct Measurement {
    workload: &'static str,
    path: &'static str,
    groups: usize,
    policy: ThreadPolicy,
    batch: &'static str,
    steps: u64,
    wall_ns: u128,
    steps_per_sec: f64,
}

fn idle_controller() -> Controller {
    let sm = StateMachineBuilder::new("idle")
        .state("s")
        .initial("s", |_d: &mut (), _ctx: &mut CapsuleContext| {})
        .build()
        .expect("idle machine");
    let mut c = Controller::new("events");
    c.add_capsule(Box::new(SmCapsule::new(sm, ())));
    c
}

/// Assembles the engine by hand — the pre-elaboration construction path.
fn wired_engine(
    workload: Workload,
    groups: usize,
    policy: ThreadPolicy,
) -> (HybridEngine, Recorder) {
    let mut engine = HybridEngine::new(idle_controller(), EngineConfig { step: STEP, policy });
    let rec = Recorder::new();
    engine.set_recorder(rec.clone());
    if workload == Workload::Chain {
        chain_wired(&mut engine, groups);
    } else {
        for gi in 0..groups {
            let (net, node) = workload.network(gi);
            let g = engine.add_group(net).expect("group");
            engine.add_probe(g, node, "y", &format!("y{gi}")).expect("probe");
        }
    }
    (engine, rec)
}

/// Assembles the engine through the elaboration pipeline.
fn compiled_engine(
    workload: Workload,
    groups: usize,
    policy: ThreadPolicy,
) -> (HybridEngine, Recorder) {
    let (model, registry) = workload.model(groups);
    let compiled = urt_analysis::compile(&model, registry).expect("bench model compiles");
    assert_eq!(compiled.group_count(), groups, "thread pinning keeps groups apart");
    let mut engine = HybridEngine::from_compiled(&compiled, EngineConfig { step: STEP, policy })
        .expect("engine from compiled system");
    let rec = Recorder::new();
    engine.set_recorder(rec.clone());
    (engine, rec)
}

fn measure(
    workload: Workload,
    path: &'static str,
    groups: usize,
    policy: ThreadPolicy,
    batch: &'static str,
    steps: u64,
    smoke: bool,
) -> Measurement {
    let (mut engine, rec) = match path {
        "wired" => wired_engine(workload, groups, policy),
        _ => compiled_engine(workload, groups, policy),
    };
    if batch == "k1" {
        engine.set_max_batch(1);
    }
    // Warm-up: spin up solver threads, fault in buffers, settle the cache.
    let warmup = (steps / 10).max(10);
    engine.run_until(warmup as f64 * STEP).expect("warm-up");
    // Pilot rep: sizes the measured reps to a short wall-clock window.
    // The box may be a single shared core, so any long window averages
    // in scheduler interference; instead we take many short windows and
    // keep the fastest, which is very likely to have run uninterrupted.
    let t0 = engine.time();
    let start = Instant::now();
    engine.run_until(t0 + steps as f64 * STEP).expect("pilot run");
    let pilot_ns = start.elapsed().as_nanos().max(1);
    let target_ns: f64 = if smoke { 2e6 } else { 10e6 };
    let rep_steps =
        ((steps as f64 * target_ns / pilot_ns as f64).ceil() as u64).clamp(200, 500_000);
    let reps: u64 = if smoke { 5 } else { 25 };
    let mut wall_ns = u128::MAX;
    let mut done = warmup + steps;
    for _ in 0..reps {
        rec.clear(); // in place — series handles and capacity survive
        let t0 = engine.time();
        let start = Instant::now();
        engine.run_until(t0 + rep_steps as f64 * STEP).expect("measured run");
        wall_ns = wall_ns.min(start.elapsed().as_nanos());
        done += rep_steps;
        assert_eq!(engine.step_count(), done, "step-count bound must be exact");
        assert_eq!(rec.series("y0").len() as u64, rep_steps, "probes recorded every step");
    }
    let steps_per_sec = rep_steps as f64 / (wall_ns as f64 / 1e9);
    Measurement {
        workload: workload.name(),
        path,
        groups,
        policy,
        batch,
        steps: rep_steps,
        wall_ns,
        steps_per_sec,
    }
}

struct PacedMeasurement {
    workload: &'static str,
    groups: usize,
    policy: ThreadPolicy,
    steps: u64,
    rate: f64,
    budget_ns: f64,
    p50_ns: f64,
    p99_ns: f64,
    worst_ns: f64,
    misses: u64,
    worst_lag_ns: u64,
}

/// The paced latency axis: runs the compiled engine under `run_paced`
/// with per-step release points (`set_max_batch(1)`) and reports the
/// per-cycle compute-time distribution. Self-asserts `misses == 0`
/// against [`PACED_BUDGET_NS`] — see the constant for why that cannot
/// flake under load.
fn measure_paced(
    workload: Workload,
    groups: usize,
    policy: ThreadPolicy,
    steps: u64,
    rate: f64,
) -> PacedMeasurement {
    let (mut engine, _rec) = compiled_engine(workload, groups, policy);
    engine.set_max_batch(1);
    // Warm-up outside the paced window: spin up solver threads and fault
    // in buffers, so the histogram measures the steady state.
    let warmup = (steps / 10).max(10);
    engine.run_until(warmup as f64 * STEP).expect("warm-up");
    let t_end = engine.time() + steps as f64 * STEP;
    let config = urt_core::pacer::PacedConfig::new()
        .with_rate(rate)
        .with_budget_ns(PACED_BUDGET_NS)
        .with_policy(urt_core::pacer::OverrunPolicy::Record);
    let report = engine.run_paced(t_end, config).expect("paced run");
    assert_eq!(report.steps, steps, "paced run covers every macro step");
    assert_eq!(report.samples, steps, "max_batch(1): every step is its own cycle");
    if report.misses > 0 {
        eprintln!(
            "bench_engine: paced {workload}/{groups}g/{policy} missed {} deadlines against a \
             {PACED_BUDGET_NS} ns budget (worst cycle {} ns) — pathological latency",
            report.misses,
            report.worst_ns,
            workload = workload.name(),
        );
        std::process::exit(1);
    }
    PacedMeasurement {
        workload: workload.name(),
        groups,
        policy,
        steps: report.steps,
        rate: report.rate,
        budget_ns: report.budget_ns,
        p50_ns: report.p50_ns,
        p99_ns: report.p99_ns,
        worst_ns: report.worst_ns,
        misses: report.misses,
        worst_lag_ns: (report.worst_lag_s * 1e9) as u64,
    }
}

/// Workloads for the ensemble axis: raw networks (no controller, no
/// channels) so the measurement isolates per-instance routing overhead.
#[derive(Clone, Copy)]
enum EnsembleWorkload {
    Fig2,
    Chain,
}

impl EnsembleWorkload {
    fn name(self) -> &'static str {
        match self {
            EnsembleWorkload::Fig2 => "fig2",
            EnsembleWorkload::Chain => "chain",
        }
    }

    /// The network plus the node whose `y` output gets the probe.
    fn network(self) -> (StreamerNetwork, NodeId) {
        match self {
            EnsembleWorkload::Fig2 => {
                let (net, [_, _, sub2, _]) = fig2_network();
                (net, sub2)
            }
            EnsembleWorkload::Chain => chain_network_tail(CHAIN_STAGES),
        }
    }
}

struct EnsembleMeasurement {
    workload: &'static str,
    mode: &'static str,
    k: usize,
    steps: u64,
    wall_ns: u128,
    steps_per_sec: f64,
}

/// One K-instance SoA engine (`mode = "ensemble"`), or K single-instance
/// engines (`mode = "independent"`) — the unamortized control.
fn ensemble_engines(
    workload: EnsembleWorkload,
    mode: &str,
    k: usize,
) -> Vec<(EnsembleEngine, Recorder)> {
    let build = |instances: usize| {
        let (net, tail) = workload.network();
        let mut engine = EnsembleEngine::from_network(
            &net,
            instances,
            &[(tail, "y", "y0")],
            EngineConfig { step: STEP, policy: ThreadPolicy::CurrentThread },
        )
        .expect("ensemble engine");
        let rec = Recorder::new();
        engine.set_recorder(rec.clone());
        (engine, rec)
    };
    if mode == "ensemble" {
        vec![build(k)]
    } else {
        (0..k).map(|_| build(1)).collect()
    }
}

/// Measures macro steps per second advancing all K instances — same
/// warm-up / pilot / min-of-reps protocol as [`measure`]. Both modes
/// advance the whole population each macro step, so `steps_per_sec` is
/// directly comparable across modes at equal K.
fn measure_ensemble(
    workload: EnsembleWorkload,
    mode: &'static str,
    k: usize,
    steps: u64,
    smoke: bool,
) -> EnsembleMeasurement {
    let mut engines = ensemble_engines(workload, mode, k);
    let warmup = (steps / 10).max(10);
    for (engine, _) in &mut engines {
        engine.run_until(warmup as f64 * STEP).expect("warm-up");
    }
    let t0 = engines[0].0.time();
    let start = Instant::now();
    for (engine, _) in &mut engines {
        engine.run_until(t0 + steps as f64 * STEP).expect("pilot run");
    }
    let pilot_ns = start.elapsed().as_nanos().max(1);
    let target_ns: f64 = if smoke { 2e6 } else { 10e6 };
    let rep_steps =
        ((steps as f64 * target_ns / pilot_ns as f64).ceil() as u64).clamp(200, 500_000);
    let reps: u64 = if smoke { 5 } else { 25 };
    let mut wall_ns = u128::MAX;
    for _ in 0..reps {
        for (_, rec) in &engines {
            rec.clear();
        }
        let t0 = engines[0].0.time();
        let start = Instant::now();
        for (engine, _) in &mut engines {
            engine.run_until(t0 + rep_steps as f64 * STEP).expect("measured run");
        }
        wall_ns = wall_ns.min(start.elapsed().as_nanos());
        for (engine, rec) in &engines {
            let series = EnsembleEngine::series_name("y0", engine.instances() - 1);
            assert_eq!(rec.series(&series).len() as u64, rep_steps, "probes recorded every step");
        }
    }
    let steps_per_sec = rep_steps as f64 / (wall_ns as f64 / 1e9);
    EnsembleMeasurement {
        workload: workload.name(),
        mode,
        k,
        steps: rep_steps,
        wall_ns,
        steps_per_sec,
    }
}

/// Workloads for the kernel axis. These must carry ODE lanes (a batched
/// solver kernel has nothing to act on otherwise), so `fig2` here is the
/// ODE-backed variant — same fan-out topology, `sub1` integrated rather
/// than closed-form — and `chain` is the Van der Pol-fed pipeline.
#[derive(Clone, Copy)]
enum KernelWorkload {
    Fig2,
    Chain,
}

impl KernelWorkload {
    fn name(self) -> &'static str {
        match self {
            KernelWorkload::Fig2 => "fig2",
            KernelWorkload::Chain => "chain",
        }
    }

    /// The network plus the node whose `y` output gets the probe.
    fn network(self) -> (StreamerNetwork, NodeId) {
        match self {
            KernelWorkload::Fig2 => {
                let (net, [_, _, sub2, _]) = fig2_ode_network();
                (net, sub2)
            }
            KernelWorkload::Chain => chain_network_tail(CHAIN_STAGES),
        }
    }
}

fn kernel_name(kernel: EnsembleKernel) -> &'static str {
    match kernel {
        EnsembleKernel::PerLane => "scalar",
        EnsembleKernel::Batched => "batched",
    }
}

struct KernelMeasurement {
    workload: &'static str,
    kernel: &'static str,
    k: usize,
    steps: u64,
    wall_ns: u128,
    steps_per_sec: f64,
}

/// Measures one ensemble engine advancing K instances under the chosen
/// solver kernel — same warm-up / pilot / min-of-reps protocol as
/// [`measure`]. Scalar and batched runs use identical engines modulo
/// [`EnsembleEngine::set_kernel`], and produce bit-identical series, so
/// the throughput delta is exactly what the width-aware batched path
/// buys.
fn measure_kernel(
    workload: KernelWorkload,
    kernel: EnsembleKernel,
    k: usize,
    steps: u64,
    smoke: bool,
) -> KernelMeasurement {
    let (net, tail) = workload.network();
    let mut engine = EnsembleEngine::from_network(
        &net,
        k,
        &[(tail, "y", "y0")],
        EngineConfig { step: STEP, policy: ThreadPolicy::CurrentThread },
    )
    .expect("kernel-axis ensemble engine");
    engine.set_kernel(kernel);
    let rec = Recorder::new();
    engine.set_recorder(rec.clone());
    let warmup = (steps / 10).max(10);
    engine.run_until(warmup as f64 * STEP).expect("warm-up");
    let t0 = engine.time();
    let start = Instant::now();
    engine.run_until(t0 + steps as f64 * STEP).expect("pilot run");
    let pilot_ns = start.elapsed().as_nanos().max(1);
    let target_ns: f64 = if smoke { 2e6 } else { 10e6 };
    let rep_steps =
        ((steps as f64 * target_ns / pilot_ns as f64).ceil() as u64).clamp(200, 500_000);
    let reps: u64 = if smoke { 5 } else { 25 };
    let mut wall_ns = u128::MAX;
    for _ in 0..reps {
        rec.clear();
        let t0 = engine.time();
        let start = Instant::now();
        engine.run_until(t0 + rep_steps as f64 * STEP).expect("measured run");
        wall_ns = wall_ns.min(start.elapsed().as_nanos());
        let series = EnsembleEngine::series_name("y0", k - 1);
        assert_eq!(rec.series(&series).len() as u64, rep_steps, "probes recorded every step");
    }
    let steps_per_sec = rep_steps as f64 / (wall_ns as f64 / 1e9);
    KernelMeasurement {
        workload: workload.name(),
        kernel: kernel_name(kernel),
        k,
        steps: rep_steps,
        wall_ns,
        steps_per_sec,
    }
}

struct InstantiateMeasurement {
    workload: &'static str,
    groups: usize,
    instantiate_iters: u64,
    instantiate_ns: u128,
    elaborate_iters: u64,
    elaborate_ns: u128,
    instantiate_per_sec: f64,
    elaborate_per_sec: f64,
    speedup: f64,
}

/// The artifact/instance axis: stamping a live `SystemInstance` out of an
/// already-compiled artifact versus paying the full declare + analyze +
/// elaborate pipeline again — the compile-once, instantiate-many dividend
/// a simulation server collects per session. Same min-of-reps protocol as
/// [`measure`]; iteration counts differ per path because re-elaboration
/// is orders of magnitude dearer, and both figures normalise to per-sec.
fn measure_instantiate(workload: Workload, groups: usize, smoke: bool) -> InstantiateMeasurement {
    let (model, registry) = workload.model(groups);
    let compiled = urt_analysis::compile(&model, registry).expect("bench model compiles");
    let instantiate_iters: u64 = if smoke { 100 } else { 5_000 };
    let elaborate_iters: u64 = if smoke { 10 } else { 200 };
    let reps: u64 = if smoke { 5 } else { 25 };
    let mut instantiate_ns = u128::MAX;
    let mut elaborate_ns = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..instantiate_iters {
            std::hint::black_box(compiled.instantiate().expect("instantiate"));
        }
        instantiate_ns = instantiate_ns.min(start.elapsed().as_nanos().max(1));
        let start = Instant::now();
        for _ in 0..elaborate_iters {
            let (model, registry) = workload.model(groups);
            std::hint::black_box(
                urt_analysis::compile(&model, registry).expect("bench model recompiles"),
            );
        }
        elaborate_ns = elaborate_ns.min(start.elapsed().as_nanos().max(1));
    }
    let instantiate_per_sec = instantiate_iters as f64 / (instantiate_ns as f64 / 1e9);
    let elaborate_per_sec = elaborate_iters as f64 / (elaborate_ns as f64 / 1e9);
    InstantiateMeasurement {
        workload: workload.name(),
        groups,
        instantiate_iters,
        instantiate_ns,
        elaborate_iters,
        elaborate_ns,
        instantiate_per_sec,
        elaborate_per_sec,
        speedup: instantiate_per_sec / elaborate_per_sec,
    }
}

fn render_json(
    results: &[Measurement],
    ensemble: &[EnsembleMeasurement],
    kernel: &[KernelMeasurement],
    instantiate: &[InstantiateMeasurement],
    paced: &[PacedMeasurement],
    smoke: bool,
) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"schema\":\"bench_engine/v7\",\"smoke\":{smoke},\"step_s\":{STEP}");
    let _ = write!(s, ",\"results\":[");
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"workload\":\"{}\",\"path\":\"{}\",\"groups\":{},\"policy\":\"{}\",\
             \"batch\":\"{}\",\"steps\":{},\"wall_ns\":{},\"steps_per_sec\":{:.1}}}",
            m.workload, m.path, m.groups, m.policy, m.batch, m.steps, m.wall_ns, m.steps_per_sec
        );
    }
    s.push_str("],\"ensemble\":[");
    for (i, m) in ensemble.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"workload\":\"{}\",\"mode\":\"{}\",\"k\":{},\"steps\":{},\
             \"wall_ns\":{},\"steps_per_sec\":{:.1}}}",
            m.workload, m.mode, m.k, m.steps, m.wall_ns, m.steps_per_sec
        );
    }
    s.push_str("],\"kernel\":[");
    for (i, m) in kernel.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"workload\":\"{}\",\"kernel\":\"{}\",\"k\":{},\"steps\":{},\
             \"wall_ns\":{},\"steps_per_sec\":{:.1}}}",
            m.workload, m.kernel, m.k, m.steps, m.wall_ns, m.steps_per_sec
        );
    }
    s.push_str("],\"instantiate\":[");
    for (i, m) in instantiate.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"workload\":\"{}\",\"groups\":{},\"instantiate_iters\":{},\
             \"instantiate_ns\":{},\"elaborate_iters\":{},\"elaborate_ns\":{},\
             \"instantiate_per_sec\":{:.1},\"elaborate_per_sec\":{:.1},\"speedup\":{:.2}}}",
            m.workload,
            m.groups,
            m.instantiate_iters,
            m.instantiate_ns,
            m.elaborate_iters,
            m.elaborate_ns,
            m.instantiate_per_sec,
            m.elaborate_per_sec,
            m.speedup
        );
    }
    s.push_str("],\"paced\":[");
    for (i, m) in paced.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"workload\":\"{}\",\"groups\":{},\"policy\":\"{}\",\"steps\":{},\"rate\":{},\
             \"budget_ns\":{},\"p50_ns\":{:.1},\"p99_ns\":{:.1},\"worst_ns\":{:.1},\
             \"misses\":{},\"worst_lag_ns\":{}}}",
            m.workload,
            m.groups,
            m.policy,
            m.steps,
            m.rate,
            m.budget_ns,
            m.p50_ns,
            m.p99_ns,
            m.worst_ns,
            m.misses,
            m.worst_lag_ns
        );
    }
    s.push_str("]}");
    s
}

/// `--emit-cost-table`: fits per-solver ns/step from short compiled
/// single-group current-thread runs — the configuration closest to "one
/// streamer advancing, nothing else" — and writes the `cost_table/v1`
/// JSON that `urt_analysis::cost_pass` loads as its default cost model.
///
/// fig2 runs three identical euler streamers per step, so its per-step
/// wall time ÷ 3 is the euler figure; vdp runs exactly one rk4
/// streamer. The table's own fallback for unlisted solvers is twice the
/// dearest measured solver — unknown means pessimistic, never free.
fn emit_cost_table(path: &str) {
    let fig2 =
        measure(Workload::Fig2, "compiled", 1, ThreadPolicy::CurrentThread, "n/a", 20_000, false);
    let vdp =
        measure(Workload::Vdp, "compiled", 1, ThreadPolicy::CurrentThread, "n/a", 4_000, false);
    let euler_ns = 1e9 / fig2.steps_per_sec / 3.0;
    let rk4_ns = 1e9 / vdp.steps_per_sec;
    let default_ns = 2.0 * euler_ns.max(rk4_ns);
    let json = format!(
        "{{\"schema\":\"cost_table/v1\",\"fitted_from\":\"bench_engine\",\"step_s\":{STEP},\
         \"default_ns_per_step\":{default_ns:.1},\"solvers\":[\
         {{\"solver\":\"euler\",\"ns_per_step\":{euler_ns:.1}}},\
         {{\"solver\":\"rk4\",\"ns_per_step\":{rk4_ns:.1}}}]}}"
    );
    std::fs::write(path, format!("{json}\n")).expect("write cost table");
    println!("solver calibration table (macro step = {STEP} s) -> {path}");
    println!();
    println!("| solver | ns/step |");
    println!("|--------|---------|");
    println!("| euler | {euler_ns:.1} |");
    println!("| rk4 | {rk4_ns:.1} |");
    println!("| (default) | {default_ns:.1} |");
}

fn main() {
    let mut smoke = false;
    let mut emit_cost = false;
    let mut paced = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--paced" => paced = true,
            "--emit-cost-table" => emit_cost = true,
            "--out" => match args.next() {
                Some(p) => out = Some(p),
                None => {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    if emit_cost {
        emit_cost_table(out.as_deref().unwrap_or("results/COST_table.json"));
        return;
    }

    let mut results = Vec::new();
    for workload in [Workload::Fig2, Workload::Vdp, Workload::Chain] {
        let steps = match (workload, smoke) {
            (_, true) => 200,
            (Workload::Vdp, false) => 4_000,
            (Workload::Fig2 | Workload::Chain, false) => 20_000,
        };
        for groups in [1usize, 2, 4] {
            for path in ["wired", "compiled"] {
                results.push(measure(
                    workload,
                    path,
                    groups,
                    ThreadPolicy::CurrentThread,
                    "n/a",
                    steps,
                    smoke,
                ));
                for batch in ["k1", "auto"] {
                    results.push(measure(
                        workload,
                        path,
                        groups,
                        ThreadPolicy::DedicatedThreads,
                        batch,
                        steps,
                        smoke,
                    ));
                }
            }
        }
    }

    let ks: &[usize] = if smoke { &[1, 8] } else { &[1, 8, 64, 256] };
    let mut ensemble_results = Vec::new();
    for workload in [EnsembleWorkload::Fig2, EnsembleWorkload::Chain] {
        let steps = if smoke { 200 } else { 2_000 };
        for &k in ks {
            for mode in ["ensemble", "independent"] {
                ensemble_results.push(measure_ensemble(workload, mode, k, steps, smoke));
            }
        }
    }

    // Kernel axis: the same ensemble machinery with the solver kernel as
    // the only variable. Scalar first so any frequency scaling ramp-up
    // favours the baseline, not the path under test.
    let kernel_ks: &[usize] = if smoke { &[16, 64] } else { &[16, 64, 256] };
    let mut kernel_results = Vec::new();
    for workload in [KernelWorkload::Fig2, KernelWorkload::Chain] {
        let steps = if smoke { 200 } else { 2_000 };
        for &k in kernel_ks {
            for kernel in [EnsembleKernel::PerLane, EnsembleKernel::Batched] {
                kernel_results.push(measure_kernel(workload, kernel, k, steps, smoke));
            }
        }
    }

    // Artifact/instance axis: fig2 (pure dataflow) and chain (budgeted,
    // cross-group) at 1 and 2 groups — the workloads whose compiled
    // models exercise the full artifact surface (probes, budgets,
    // channels).
    let mut instantiate_results = Vec::new();
    for workload in [Workload::Fig2, Workload::Chain] {
        for groups in [1usize, 2] {
            instantiate_results.push(measure_instantiate(workload, groups, smoke));
        }
    }

    // Paced latency axis (opt-in: each configuration runs in real — or
    // smoke-accelerated — time, so it costs wall-clock seconds by
    // design). fig2 exercises the pure-dataflow hot path, chain the
    // cross-group channel machinery; vdp adds nothing the latency
    // distribution would see over fig2.
    let mut paced_results = Vec::new();
    if paced {
        let (steps, rate) = if smoke { (200, 50.0) } else { (2_000, 1.0) };
        for workload in [Workload::Fig2, Workload::Chain] {
            for groups in [1usize, 2] {
                for policy in [ThreadPolicy::CurrentThread, ThreadPolicy::DedicatedThreads] {
                    paced_results.push(measure_paced(workload, groups, policy, steps, rate));
                }
            }
        }
    }

    // Self-assertion 1: amortizing the rendezvous must not make the
    // dedicated-threads path slower than the per-step schedule. Smoke runs
    // measure a few hundred steps on a possibly-shared box, so they get a
    // 10% noise allowance; full runs are strict.
    let tolerance = if smoke { 0.9 } else { 1.0 };
    let throughput = |batch: &str| -> f64 {
        results
            .iter()
            .filter(|m| m.policy == ThreadPolicy::DedicatedThreads && m.batch == batch)
            .map(|m| m.steps_per_sec)
            .sum()
    };
    let (auto_sps, k1_sps) = (throughput("auto"), throughput("k1"));
    if auto_sps < k1_sps * tolerance {
        eprintln!(
            "bench_engine: batched dedicated-threads path is slower than K=1 \
             ({auto_sps:.0} steps/s < {k1_sps:.0} steps/s aggregate) — \
             rendezvous amortization regressed"
        );
        std::process::exit(1);
    }

    // Self-assertion 2: at the largest common K, the SoA ensemble must
    // beat K independent engines (strictly in full runs, within the same
    // 10% allowance in smoke).
    let check_k = if smoke { 8 } else { 64 };
    let ens_sps = |workload: &str, mode: &str| -> f64 {
        ensemble_results
            .iter()
            .find(|m| m.workload == workload && m.mode == mode && m.k == check_k)
            .map(|m| m.steps_per_sec)
            .expect("measured configuration")
    };
    for workload in ["fig2", "chain"] {
        let (ens, ind) = (ens_sps(workload, "ensemble"), ens_sps(workload, "independent"));
        if ens <= ind * tolerance {
            eprintln!(
                "bench_engine: K={check_k} ensemble is not faster than {check_k} independent \
                 engines on {workload} ({ens:.0} steps/s vs {ind:.0} steps/s) — \
                 SoA amortization regressed"
            );
            std::process::exit(1);
        }
    }

    // Self-assertion 3: stamping an instance out of an existing artifact
    // must beat a full re-elaboration — generously in full runs (the 5×
    // floor the compile cache is justified by), merely not-slower in
    // smoke where both loops run a handful of iterations.
    for m in &instantiate_results {
        let floor = if smoke { 1.0 } else { 5.0 };
        if m.speedup < floor {
            eprintln!(
                "bench_engine: instantiate is not ≥{floor}× faster than re-elaboration on \
                 {}/{}g ({:.0}/s vs {:.0}/s) — the artifact/instance split regressed",
                m.workload, m.groups, m.instantiate_per_sec, m.elaborate_per_sec
            );
            std::process::exit(1);
        }
    }

    // Self-assertion 4: the batched solver kernel must beat per-lane
    // scalar stepping at the largest measured K — by KERNEL_MARGIN in
    // full runs, merely not-slower (within the smoke noise allowance) on
    // a few hundred smoke steps.
    let kernel_check_k = if smoke { 64 } else { 256 };
    let kernel_floor = if smoke { tolerance } else { KERNEL_MARGIN };
    let kernel_sps = |workload: &str, kernel: &str| -> f64 {
        kernel_results
            .iter()
            .find(|m| m.workload == workload && m.kernel == kernel && m.k == kernel_check_k)
            .map(|m| m.steps_per_sec)
            .expect("measured kernel configuration")
    };
    for workload in ["fig2", "chain"] {
        let (batched, scalar) = (kernel_sps(workload, "batched"), kernel_sps(workload, "scalar"));
        if batched < scalar * kernel_floor {
            eprintln!(
                "bench_engine: batched kernel at K={kernel_check_k} is below {kernel_floor}x \
                 the scalar per-lane path on {workload} ({batched:.0} steps/s vs {scalar:.0} \
                 steps/s) — the width-aware batched ODE path regressed"
            );
            std::process::exit(1);
        }
    }

    let json = render_json(
        &results,
        &ensemble_results,
        &kernel_results,
        &instantiate_results,
        &paced_results,
        smoke,
    );
    if smoke && out.is_none() {
        // Smoke mode is the CI shape check: JSON is the whole stdout.
        println!("{json}");
        return;
    }
    let path = out.unwrap_or_else(|| "results/BENCH_engine.json".to_owned());
    std::fs::write(&path, format!("{json}\n")).expect("write benchmark JSON");
    println!("engine steady-state baseline (macro step = {STEP} s)");
    println!();
    println!("| workload | path | groups | policy | batch | steps | steps/sec |");
    println!("|----------|------|--------|--------|-------|-------|-----------|");
    for m in &results {
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.0} |",
            m.workload, m.path, m.groups, m.policy, m.batch, m.steps, m.steps_per_sec
        );
    }
    println!();
    println!("ensemble scaling (K instances advanced per macro step)");
    println!();
    println!("| workload | mode | K | steps | steps/sec | instance-steps/sec |");
    println!("|----------|------|---|-------|-----------|--------------------|");
    for m in &ensemble_results {
        println!(
            "| {} | {} | {} | {} | {:.0} | {:.0} |",
            m.workload,
            m.mode,
            m.k,
            m.steps,
            m.steps_per_sec,
            m.steps_per_sec * m.k as f64
        );
    }
    println!();
    println!("solver kernel (scalar per-lane vs width-aware batched; fig2 = ODE-backed variant)");
    println!();
    println!("| workload | kernel | K | steps | steps/sec | instance-steps/sec |");
    println!("|----------|--------|---|-------|-----------|--------------------|");
    for m in &kernel_results {
        println!(
            "| {} | {} | {} | {} | {:.0} | {:.0} |",
            m.workload,
            m.kernel,
            m.k,
            m.steps,
            m.steps_per_sec,
            m.steps_per_sec * m.k as f64
        );
    }
    println!();
    println!("artifact/instance split (instantiate an existing artifact vs full re-elaboration)");
    println!();
    println!("| workload | groups | instantiate/sec | elaborate/sec | speedup |");
    println!("|----------|--------|-----------------|---------------|---------|");
    for m in &instantiate_results {
        println!(
            "| {} | {} | {:.0} | {:.0} | {:.1}x |",
            m.workload, m.groups, m.instantiate_per_sec, m.elaborate_per_sec, m.speedup
        );
    }
    if !paced_results.is_empty() {
        println!();
        println!("paced latency (run_paced, per-step release, rate = sim s / wall s)");
        println!();
        println!(
            "| workload | groups | policy | steps | rate | p50 ns | p99 ns | worst ns | misses |"
        );
        println!(
            "|----------|--------|--------|-------|------|--------|--------|----------|--------|"
        );
        for m in &paced_results {
            println!(
                "| {} | {} | {} | {} | {} | {:.0} | {:.0} | {:.0} | {} |",
                m.workload,
                m.groups,
                m.policy,
                m.steps,
                m.rate,
                m.p50_ns,
                m.p99_ns,
                m.worst_ns,
                m.misses
            );
        }
    }
    println!();
    println!("wrote {path}");
}
