//! Regenerates **Figure 3** of the paper: the structure of the extension —
//! a top capsule containing a sub-capsule and two streamers — plus the
//! containment rule ("streamers don't contain any capsule") enforced both
//! positively and negatively.
//!
//! Run with: `cargo run -p urt-bench --bin report_fig3`

use urt_core::model::ModelBuilder;
use urt_core::CoreError;
use urt_dataflow::flowtype::FlowType;

fn main() {
    // The exact Figure 3 shape.
    let mut b = ModelBuilder::new("fig3");
    let top = b.capsule("top_capsule");
    let sub = b.capsule("sub_capsule");
    let s1 = b.streamer("streamer1", "rk4");
    let s2 = b.streamer("streamer2", "rk4");
    b.contain_capsule(sub, top);
    b.contain_streamer_in_capsule(s1, top);
    b.contain_streamer_in_capsule(s2, top);
    b.streamer_out(s1, "y", FlowType::scalar());
    b.streamer_in(s2, "u", FlowType::scalar());
    b.flow_between_streamers(s1, "y", s2, "u");
    let model = b.build();
    model.validate().expect("figure 3 structure is well-formed");

    println!("Figure 3. Structure of extensions");
    println!();
    print!("{}", model.render_structure());
    println!();
    println!("rule check: capsules may contain streamers .......... ok");

    // The forbidden inverse.
    let mut b = ModelBuilder::new("inverse");
    let host = b.streamer("host_streamer", "rk4");
    let trapped = b.capsule("trapped_capsule");
    b.contain_capsule_in_streamer(trapped, host);
    match b.build().validate() {
        Err(CoreError::Validation { rule, detail }) => {
            println!("rule check: streamers must not contain capsules .... rejected");
            println!("  rule   : {rule}");
            println!("  detail : {detail}");
        }
        other => panic!("expected fig3-containment violation, got {other:?}"),
    }
}
