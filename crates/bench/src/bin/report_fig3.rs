//! Regenerates **Figure 3** of the paper: the structure of the extension —
//! a top capsule containing a sub-capsule and two streamers, with a relay
//! DPort on the sub-capsule — plus the containment rule ("streamers don't
//! contain any capsule") enforced both positively and negatively. The
//! executable form comes out of the one pipeline
//! `model → analyze → compile → run`: elaboration resolves the capsule
//! relay DPort chain into a direct streamer-to-streamer flow.
//!
//! Run with: `cargo run -p urt-bench --bin report_fig3`

use urt_analysis::compile;
use urt_core::elaborate::BehaviorRegistry;
use urt_core::engine::{EngineConfig, HybridEngine};
use urt_core::model::{FlowEnd, ModelBuilder};
use urt_core::recorder::Recorder;
use urt_core::threading::ThreadPolicy;
use urt_core::CoreError;
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::streamer::FnStreamer;

fn main() {
    // The exact Figure 3 shape: the measured flow relays through the
    // sub-capsule's DPort.
    let mut b = ModelBuilder::new("fig3");
    let top = b.capsule("top_capsule");
    let sub = b.capsule("sub_capsule");
    let s1 = b.streamer("streamer1", "rk4");
    let s2 = b.streamer("streamer2", "rk4");
    b.contain_capsule(sub, top);
    b.contain_streamer_in_capsule(s1, top);
    b.contain_streamer_in_capsule(s2, top);
    b.streamer_out(s1, "y", FlowType::scalar());
    b.streamer_in(s2, "u", FlowType::scalar());
    b.streamer_out(s2, "acc", FlowType::scalar());
    b.capsule_dport(sub, "d", FlowType::scalar());
    b.flow(FlowEnd::Streamer(s1, "y".into()), FlowEnd::Capsule(sub, "d".into()));
    b.flow(FlowEnd::Capsule(sub, "d".into()), FlowEnd::Streamer(s2, "u".into()));
    b.probe(s2, "acc", "acc");
    let model = b.build();
    model.validate().expect("figure 3 structure is well-formed");

    println!("Figure 3. Structure of extensions");
    println!();
    print!("{}", model.render_structure());
    println!();
    println!("rule check: capsules may contain streamers .......... ok");

    // The forbidden inverse.
    let mut inv = ModelBuilder::new("inverse");
    let host = inv.streamer("host_streamer", "rk4");
    let trapped = inv.capsule("trapped_capsule");
    inv.contain_capsule_in_streamer(trapped, host);
    match inv.build().validate() {
        Err(CoreError::Validation { rule, detail }) => {
            println!("rule check: streamers must not contain capsules .... rejected");
            println!("  rule   : {rule}");
            println!("  detail : {detail}");
        }
        other => panic!("expected fig3-containment violation, got {other:?}"),
    }
    println!();

    // Executable form: the relay DPort chain flattens to a direct flow;
    // both capsules become inert controller instances.
    let registry = BehaviorRegistry::new()
        .streamer("streamer1", || {
            Box::new(FnStreamer::new("streamer1", 0, 1, |t: f64, _h, _u: &[f64], y: &mut [f64]| {
                y[0] = t.cos();
            }))
        })
        .streamer("streamer2", || {
            let mut acc = 0.0;
            Box::new(FnStreamer::new(
                "streamer2",
                1,
                1,
                move |_t, h: f64, u: &[f64], y: &mut [f64]| {
                    acc += u[0] * h;
                    y[0] = acc;
                },
            ))
        });
    let compiled = compile(&model, registry).expect("fig3 compiles");
    println!("compiled form (relay DPort resolved to a direct flow):");
    println!("  groups  : {}", compiled.group_count());
    println!(
        "  capsules: top_capsule={:?}, sub_capsule={:?}",
        compiled.capsule_index("top_capsule").expect("top"),
        compiled.capsule_index("sub_capsule").expect("sub")
    );
    let mut engine = HybridEngine::from_compiled(
        &compiled,
        EngineConfig { step: 0.01, policy: ThreadPolicy::CurrentThread },
    )
    .expect("engine");
    let rec = Recorder::new();
    engine.set_recorder(rec.clone());
    engine.run_until(1.0).expect("run");
    let acc = rec.series("acc").last().expect("recorded").1;
    println!("  after 1 s: streamer2 integral of cos(t) = {acc:.4} (~ sin(1) = {:.4})", 1f64.sin());
    assert!((acc - 1f64.sin()).abs() < 0.02, "relay chain delivers the flow");
}
