//! Regenerates **Figure 2** of the paper: the abstract syntax of
//! streamers — a top streamer containing sub-streamers, a solver, DPorts,
//! SPorts and fan-out flows — declared once as a `UnifiedModel`, then
//! lowered through the full `model → analyze → compile → run` pipeline
//! (the container is flattened away, the fan-out duplicates one flow
//! into two similar flows).
//!
//! Run with: `cargo run -p urt-bench --bin report_fig2`

use urt_analysis::compile;
use urt_core::elaborate::BehaviorRegistry;
use urt_core::engine::{EngineConfig, HybridEngine};
use urt_core::model::ModelBuilder;
use urt_core::recorder::Recorder;
use urt_core::threading::ThreadPolicy;
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::streamer::FnStreamer;

fn main() {
    // Declarative form (validated against the paper's rules).
    let mut b = ModelBuilder::new("fig2");
    let top = b.streamer("top", "rk4");
    let sub1 = b.streamer("sub1", "rk4");
    let sub2 = b.streamer("sub2", "euler");
    let sub3 = b.streamer("sub3", "euler");
    b.contain_streamer(sub1, top);
    b.contain_streamer(sub2, top);
    b.contain_streamer(sub3, top);
    b.streamer_out(sub1, "y", FlowType::scalar());
    b.streamer_in(sub2, "u", FlowType::scalar());
    b.streamer_out(sub2, "y", FlowType::scalar());
    b.streamer_in(sub3, "u", FlowType::scalar());
    b.streamer_out(sub3, "y", FlowType::scalar());
    b.flow_between_streamers(sub1, "y", sub2, "u");
    b.flow_between_streamers(sub1, "y", sub3, "u");
    b.streamer_sport(top, "ctl", "StreamCtl");
    b.probe(sub2, "y", "sub2.y");
    b.probe(sub3, "y", "sub3.y");
    let model = b.build();
    model.validate().expect("fig2 structure is well-formed");

    println!("Figure 2. Abstract syntax of streamers (declarative form)");
    println!();
    print!("{}", model.render_structure());
    println!();

    // Executable form through the one pipeline: the analyzer gates the
    // model, elaboration flattens `top` away and duplicates the fan-out.
    let registry = BehaviorRegistry::new()
        .streamer("sub1", || {
            Box::new(FnStreamer::new("sub1", 0, 1, |t: f64, _h, _u: &[f64], y: &mut [f64]| {
                y[0] = (2.0 * t).sin();
            }))
        })
        .streamer("sub2", || {
            Box::new(FnStreamer::new("sub2", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| {
                y[0] = 2.0 * u[0];
            }))
        })
        .streamer("sub3", || {
            Box::new(FnStreamer::new("sub3", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| {
                y[0] = u[0] * u[0];
            }))
        });
    let compiled = compile(&model, registry).expect("fig2 compiles");
    println!("compiled form (container flattened, fan-out resolved):");
    println!("  groups: {}", compiled.group_count());
    for name in ["sub1", "sub2", "sub3"] {
        let (group, node) = compiled.streamer_node(name).expect("leaf placed");
        println!("  {name:<6} -> group {group}, node {node}");
    }
    assert!(compiled.streamer_node("top").is_none(), "containers contribute no nodes");

    let mut engine = HybridEngine::from_compiled(
        &compiled,
        EngineConfig { step: 0.01, policy: ThreadPolicy::CurrentThread },
    )
    .expect("engine");
    let rec = Recorder::new();
    engine.set_recorder(rec.clone());
    engine.run_until(2.0).expect("run");

    let d = rec.series("sub2.y").last().expect("recorded").1;
    let q = rec.series("sub3.y").last().expect("recorded").1;
    println!("  after 2 s: sub2 output = {d:.4}, sub3 output = {q:.4}");
    println!(
        "  one flow duplicated into two similar flows: {}",
        (q - (d / 2.0) * (d / 2.0)).abs() < 1e-9
    );
}
