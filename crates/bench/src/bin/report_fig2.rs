//! Regenerates **Figure 2** of the paper: the abstract syntax of
//! streamers — a top streamer containing sub-streamers, a solver, DPorts,
//! SPorts, a flow and a relay — built, validated and executed.
//!
//! Run with: `cargo run -p urt-bench --bin report_fig2`

use urt_bench::fig2_network;
use urt_core::model::ModelBuilder;
use urt_dataflow::flowtype::FlowType;

fn main() {
    // Declarative form (validated against the paper's rules).
    let mut b = ModelBuilder::new("fig2");
    let top = b.streamer("top", "rk4");
    let sub1 = b.streamer("sub1", "rk4");
    let sub2 = b.streamer("sub2", "euler");
    let sub3 = b.streamer("sub3", "euler");
    b.contain_streamer(sub1, top);
    b.contain_streamer(sub2, top);
    b.contain_streamer(sub3, top);
    b.streamer_out(sub1, "y", FlowType::scalar());
    b.streamer_in(sub2, "u", FlowType::scalar());
    b.streamer_in(sub3, "u", FlowType::scalar());
    b.flow_between_streamers(sub1, "y", sub2, "u");
    b.flow_between_streamers(sub1, "y", sub3, "u");
    b.streamer_sport(top, "ctl", "StreamCtl");
    let model = b.build();
    model.validate().expect("fig2 structure is well-formed");

    println!("Figure 2. Abstract syntax of streamers (declarative form)");
    println!();
    print!("{}", model.render_structure());
    println!();

    // Executable form with an explicit relay node.
    let (mut net, [sub1, relay, sub2, sub3]) = fig2_network();
    net.initialize(0.0).expect("init");
    for _ in 0..200 {
        net.step(0.01).expect("step");
    }
    println!("executable form (with explicit relay node):");
    println!("  nodes: {}  flows: {}", net.node_count(), net.flow_count());
    for (id, label) in
        [(sub1, "sub1 (source)"), (relay, "relay"), (sub2, "sub2 = 2x"), (sub3, "sub3 = x^2")]
    {
        let name = net.node_name(id).expect("name");
        println!("  {label:<16} -> node `{name}`");
    }
    let d = net.output(sub2, "y").expect("out")[0];
    let q = net.output(sub3, "y").expect("out")[0];
    println!("  after 2 s: sub2 output = {d:.4}, sub3 output = {q:.4}");
    println!(
        "  relay duplicated one flow into two similar flows: {}",
        (q - (d / 2.0) * (d / 2.0)).abs() < 1e-9
    );
}
