//! Experiment **E3** — translation cost: Kühl-style block-to-capsule
//! translation versus the paper's native streamer unification.
//!
//! Run with: `cargo run --release -p urt-bench --bin report_e3`

use urt_baselines::kuhl::{annotation_loss, measure_messages_per_step, translate_diagram};
use urt_bench::feedback_diagram;
use urt_dataflow::flowtype::{FlowType, Unit};
use urt_dataflow::graph::StreamerNetwork;

fn main() {
    println!("E3. Kuhl translation vs native streamer (feedback PI loops)");
    println!();
    println!("| loops | blocks | kuhl capsules | kuhl ports | kuhl msg/step | native streamers |");
    println!("|-------|--------|---------------|------------|---------------|------------------|");
    for n_loops in [1usize, 4, 16, 32] {
        let diagram = feedback_diagram(n_loops);
        let blocks = diagram.block_count();
        let (mut controller, report) = translate_diagram(diagram, 0.01).expect("translate");
        let msg = measure_messages_per_step(&mut controller, 0.01, 20).expect("measure");

        // Native: the same diagram becomes exactly one streamer node
        // (with one output DPort per loop).
        let native = feedback_diagram(n_loops).into_streamer("plant").expect("compile");
        let outs: Vec<(String, FlowType)> =
            (0..n_loops).map(|i| (format!("y{i}"), FlowType::scalar())).collect();
        let outs_ref: Vec<(&str, FlowType)> =
            outs.iter().map(|(s, t)| (s.as_str(), t.clone())).collect();
        let mut net = StreamerNetwork::new("native");
        net.add_streamer(native, &[], &outs_ref).expect("add");
        println!(
            "| {:<5} | {:<6} | {:<13} | {:<10} | {:<13.1} | {:<16} |",
            n_loops,
            blocks,
            report.capsule_count,
            report.port_count,
            msg,
            net.node_count()
        );
    }
    println!();

    // Information loss: typed flows flattened to untyped signals.
    let typed = [
        FlowType::with_unit(Unit::MeterPerSecond),
        FlowType::record([
            ("pos", FlowType::with_unit(Unit::Meter)),
            ("vel", FlowType::with_unit(Unit::MeterPerSecond)),
        ]),
        FlowType::Vector { len: 3, unit: Unit::Newton },
    ];
    println!("information loss when flows become untyped UML signals:");
    for t in &typed {
        println!("  {t:<46} loses {} annotations", annotation_loss(std::slice::from_ref(t)));
    }
    println!("  total: {} annotations erased", annotation_loss(&typed));
    println!();
    println!("expected shape: kuhl objects/ports/messages grow linearly with");
    println!("the diagram; the unified model stays at one streamer object and");
    println!("zero per-step messages, with no type information lost.");
}
