//! Experiment **E4** — thread assignment: streamers "assigned to one or
//! several threads". Wall-clock cost of simulating one second for k
//! independent streamer groups under each policy.
//!
//! Run with: `cargo run --release -p urt-bench --bin report_e4`

use std::time::Instant;
use urt_core::engine::{EngineConfig, HybridEngine};
use urt_core::threading::{GroupingPolicy, ThreadPolicy};
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::graph::StreamerNetwork;
use urt_dataflow::streamer::OdeStreamer;
use urt_ode::solver::SolverKind;
use urt_ode::system::InputSystem;
use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
use urt_umlrt::controller::Controller;
use urt_umlrt::statemachine::StateMachineBuilder;

#[derive(Clone)]

struct Vdp {
    mu: f64,
}

impl InputSystem for Vdp {
    fn dim(&self) -> usize {
        2
    }
    fn input_dim(&self) -> usize {
        0
    }
    fn derivatives(&self, _t: f64, x: &[f64], _u: &[f64], dx: &mut [f64]) {
        dx[0] = x[1];
        dx[1] = self.mu * (1.0 - x[0] * x[0]) * x[1] - x[0];
    }
}

fn run(n_streamers: usize, grouping: GroupingPolicy, policy: ThreadPolicy) -> f64 {
    let assignment = grouping.assign(n_streamers);
    let n_groups = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut nets: Vec<StreamerNetwork> =
        (0..n_groups).map(|g| StreamerNetwork::new(format!("g{g}"))).collect();
    for (i, &g) in assignment.iter().enumerate() {
        nets[g]
            .add_streamer(
                OdeStreamer::new(
                    format!("vdp{i}"),
                    Vdp { mu: 1.5 },
                    SolverKind::Rk4.create(),
                    &[2.0, 0.0],
                    2e-6, // 500 substeps per macro step: real equation work
                ),
                &[],
                &[("y", FlowType::vector(2))],
            )
            .expect("add streamer");
    }
    let sm = StateMachineBuilder::new("idle")
        .state("s")
        .initial("s", |_d: &mut (), _ctx: &mut CapsuleContext| {})
        .build()
        .expect("sm");
    let mut controller = Controller::new("ev");
    controller.add_capsule(Box::new(SmCapsule::new(sm, ())));
    let mut engine = HybridEngine::new(controller, EngineConfig { step: 1e-3, policy });
    for net in nets {
        engine.add_group(net).expect("group");
    }
    let start = Instant::now();
    engine.run_until(0.25).expect("run");
    start.elapsed().as_secs_f64() * 1e3 * 4.0
}

fn main() {
    println!("E4. Thread assignment: wall-clock ms per simulated second");
    println!("    (Van der Pol streamers, RK4 @ 500 substeps/macro step)");
    println!();
    println!("| streamers | single grp (local) | single grp (thread) | grouped(4) threads | per-streamer threads |");
    println!("|-----------|--------------------|---------------------|--------------------|----------------------|");
    for n in [1usize, 4, 8, 16, 32] {
        let local = run(n, GroupingPolicy::Single, ThreadPolicy::CurrentThread);
        let single = run(n, GroupingPolicy::Single, ThreadPolicy::DedicatedThreads);
        let grouped = run(n, GroupingPolicy::Grouped(4), ThreadPolicy::DedicatedThreads);
        let per = run(n, GroupingPolicy::PerStreamer, ThreadPolicy::DedicatedThreads);
        println!(
            "| {:<9} | {:>18.1} | {:>19.1} | {:>18.1} | {:>20.1} |",
            n, local, single, grouped, per
        );
    }
    println!();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host parallelism: {cores} core(s)");
    if cores > 1 {
        println!("expected shape: one thread wins for tiny systems (sync overhead");
        println!("dominates); grouped/per-streamer threading wins as the number of");
        println!("streamers grows and equation work parallelises.");
    } else {
        println!("single-core host: parallel speedup is impossible here, so the");
        println!("table shows only the *cost* side of the paper's trade-off — the");
        println!("per-step synchronisation overhead of each thread assignment.");
        println!("On a multi-core host the grouped/per-streamer columns divide by");
        println!("the core count while the local column does not.");
    }
}
