//! Ablations over the reproduction's own design choices:
//!
//! * A1 — zero-crossing *bisection localisation* versus naive
//!   end-of-step detection (event-time accuracy).
//! * A2 — macro-step size versus thread-sync overhead in the engine.
//! * A3 — solver sub-stepping inside one macro step versus one step per
//!   macro step (accuracy at the streamer boundary).
//!
//! Run with: `cargo run --release -p urt-bench --bin report_ablation`

use std::time::Instant;
use urt_core::engine::{EngineConfig, HybridEngine};
use urt_core::threading::ThreadPolicy;
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::graph::StreamerNetwork;
use urt_dataflow::streamer::OdeStreamer;
use urt_ode::events::{locate_first_crossing, EventDirection, ZeroCrossing};
use urt_ode::solver::{Rk4, Solver, SolverKind};
use urt_ode::system::library::HarmonicOscillator;
use urt_ode::system::{FnInputSystem, InputSystem};
use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
use urt_umlrt::controller::Controller;
use urt_umlrt::statemachine::StateMachineBuilder;

fn idle_engine(policy: ThreadPolicy, step: f64, substep: f64) -> HybridEngine {
    #[derive(Clone)]
    struct Lag;
    impl InputSystem for Lag {
        fn dim(&self) -> usize {
            1
        }
        fn input_dim(&self) -> usize {
            0
        }
        fn derivatives(&self, _t: f64, x: &[f64], _u: &[f64], dx: &mut [f64]) {
            dx[0] = 1.0 - x[0];
        }
    }
    let mut net = StreamerNetwork::new("p");
    net.add_streamer(
        OdeStreamer::new("lag", Lag, SolverKind::Rk4.create(), &[0.0], substep),
        &[],
        &[("y", FlowType::scalar())],
    )
    .expect("add");
    let sm = StateMachineBuilder::new("i")
        .state("s")
        .initial("s", |_d: &mut (), _ctx: &mut CapsuleContext| {})
        .build()
        .expect("sm");
    let mut c = Controller::new("ev");
    c.add_capsule(Box::new(SmCapsule::new(sm, ())));
    let mut e = HybridEngine::new(c, EngineConfig { step, policy });
    e.add_group(net).expect("group");
    e
}

fn main() {
    // --- A1: event-time accuracy with and without bisection.
    println!("A1. Zero-crossing localisation (cos(t) falling through 0; exact t = pi/2)");
    println!();
    println!("| macro step | end-of-step detection err | bisection err |");
    println!("|------------|---------------------------|----------------|");
    let sys = HarmonicOscillator { omega: 1.0 };
    let exact = std::f64::consts::FRAC_PI_2;
    for h in [0.1, 0.05, 0.01] {
        // Walk macro steps; on the step whose boundary shows the sign
        // flip, compare end-of-step detection against bisection inside
        // that same step (exactly what OdeStreamer does).
        let mut x = vec![1.0, 0.0];
        let mut t = 0.0;
        let mut solver = Rk4::new();
        let mut naive = f64::NAN;
        let mut localized = f64::NAN;
        while t < 3.0 {
            let x_before = x.clone();
            let before = x[0];
            solver.step(&sys, t, &mut x, h).expect("step");
            if before > 0.0 && x[0] <= 0.0 {
                naive = t + h;
                let guards =
                    [ZeroCrossing::new("zero", EventDirection::Falling, |_t, x: &[f64]| x[0])];
                let hit = locate_first_crossing(
                    &sys,
                    &mut Rk4::new(),
                    &guards,
                    t,
                    &x_before,
                    t + h,
                    1e-12,
                )
                .expect("locate")
                .expect("crossing exists");
                localized = hit.time;
                break;
            }
            t += h;
        }
        println!(
            "| {:<10} | {:<25.3e} | {:<14.3e} |",
            h,
            (naive - exact).abs(),
            (localized - exact).abs()
        );
    }
    println!();

    // --- A2: macro step vs sync overhead.
    println!("A2. Macro step vs thread-sync overhead (1 s simulated, fixed 0.1 ms substep)");
    println!();
    println!("| macro step | local (ms) | dedicated threads (ms) | sync penalty |");
    println!("|------------|------------|------------------------|--------------|");
    for step in [1e-1, 1e-2, 1e-3] {
        let mut local = idle_engine(ThreadPolicy::CurrentThread, step, 1e-4);
        let t0 = Instant::now();
        local.run_until(1.0).expect("run");
        let t_local = t0.elapsed().as_secs_f64() * 1e3;
        let mut threaded = idle_engine(ThreadPolicy::DedicatedThreads, step, 1e-4);
        let t0 = Instant::now();
        threaded.run_until(1.0).expect("run");
        let t_thread = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "| {:<10} | {:>10.1} | {:>22.1} | {:>11.2}x |",
            step,
            t_local,
            t_thread,
            t_thread / t_local.max(1e-9)
        );
    }
    println!();

    // --- A3: sub-stepping accuracy at the streamer boundary.
    println!("A3. Solver sub-steps per macro step (lag plant, t = 1 s, macro step 10 ms)");
    println!();
    println!("| substep    | x(1) error vs 1-e^-1 |");
    println!("|------------|----------------------|");
    for substep in [1e-2, 1e-3, 1e-4] {
        let sys = FnInputSystem::new(1, 0, |_t, x: &[f64], _u: &[f64], dx: &mut [f64]| {
            dx[0] = 1.0 - x[0];
        });
        let mut s =
            OdeStreamer::new("lag", sys, SolverKind::ForwardEuler.create(), &[0.0], substep);
        use urt_dataflow::streamer::StreamerBehavior;
        s.initialize(0.0).expect("init");
        let mut y = [0.0];
        let mut t = 0.0;
        while t < 1.0 - 1e-12 {
            s.advance(t, 0.01, &[], &mut y).expect("advance");
            t += 0.01;
        }
        let exact = 1.0 - (-1.0f64).exp();
        println!("| {:<10} | {:<20.3e} |", substep, (y[0] - exact).abs());
    }
    println!();
    println!("expected shapes: A1 bisection gains orders of magnitude; A2 sync");
    println!("penalty grows as the macro step shrinks; A3 error scales with the");
    println!("substep for a first-order solver.");
}
