//! Shared helpers for the benchmark harness and the table/figure report
//! binaries.
//!
//! Every table and figure of the paper has a regenerator here:
//!
//! | Artifact | Report binary | Criterion bench |
//! |----------|---------------|-----------------|
//! | Table 1  | `report_table1` | `bench_table1` |
//! | Figure 1 | `report_fig1` | `bench_fig1` |
//! | Figure 2 | `report_fig2` | `bench_fig2` |
//! | Figure 3 | `report_fig3` | `bench_fig3` |
//! | E1 (solver accuracy) | `report_e1` | `bench_e1_solvers` |
//! | E2 (architecture latency) | `report_e2` | `bench_e2_architecture` |
//! | E3 (Kühl translation cost) | `report_e3` | `bench_e3_translation` |
//! | E4 (thread assignment) | `report_e4` | `bench_e4_threading` |
//! | E5 (Time vs timers) | `report_e5` | `bench_e5_time` |

pub mod timer;

use urt_blocks::continuous::Integrator;
use urt_blocks::diagram::BlockDiagram;
use urt_blocks::math::{Gain, Sum};
use urt_blocks::sources::Constant;
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::graph::{NodeId, StreamerNetwork};
use urt_dataflow::streamer::{FnStreamer, OdeStreamer};
use urt_ode::solver::SolverKind;
use urt_ode::system::library::VanDerPol;

/// Builds the exact Figure 2 topology: a top streamer context with three
/// sub-streamers, one relay and typed flows.
///
/// Returns the network plus the ids of `(sub1, relay, sub2, sub3)`.
///
/// # Panics
///
/// Panics only on internal construction errors (it is a fixed topology).
pub fn fig2_network() -> (StreamerNetwork, [NodeId; 4]) {
    let mut net = StreamerNetwork::new("fig2");
    let sub1 = net
        .add_streamer(
            FnStreamer::new("sub1", 0, 1, |t: f64, _h, _u: &[f64], y: &mut [f64]| {
                y[0] = (2.0 * t).sin()
            }),
            &[],
            &[("y", FlowType::scalar())],
        )
        .expect("sub1");
    let relay = net.add_relay("relay", FlowType::scalar(), 2).expect("relay");
    let sub2 = net
        .add_streamer(
            FnStreamer::new("sub2", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| y[0] = 2.0 * u[0]),
            &[("u", FlowType::scalar())],
            &[("y", FlowType::scalar())],
        )
        .expect("sub2");
    let sub3 = net
        .add_streamer(
            FnStreamer::new("sub3", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| y[0] = u[0] * u[0]),
            &[("u", FlowType::scalar())],
            &[("y", FlowType::scalar())],
        )
        .expect("sub3");
    net.flow((sub1, "y"), (relay, "in")).expect("flow 1");
    net.flow((relay, "out0"), (sub2, "u")).expect("flow 2");
    net.flow((relay, "out1"), (sub3, "u")).expect("flow 3");
    (net, [sub1, relay, sub2, sub3])
}

/// The Figure 2 topology with an ODE-backed source: identical fan-out to
/// [`fig2_network`], but `sub1` *integrates* the oscillator (RK4,
/// `substep = 1e-4`) instead of evaluating `sin(2t)` in closed form —
/// `x'' = -ω² x` with `ω = 2` and `x(0) = 0, x'(0) = 2` has the exact
/// solution `x(t) = sin(2t)`, so downstream semantics match. This is the
/// fig2 variant the batched-kernel benchmark axis uses: the closed-form
/// fig2 has no ODE lanes for a batched solver kernel to act on.
///
/// Returns the network plus the ids of `(sub1, relay, sub2, sub3)`.
///
/// # Panics
///
/// Panics only on internal construction errors (it is a fixed topology).
pub fn fig2_ode_network() -> (StreamerNetwork, [NodeId; 4]) {
    let mut net = StreamerNetwork::new("fig2-ode");
    let sub1 = net
        .add_streamer(
            OdeStreamer::new(
                "sub1",
                SineOsc { omega: 2.0 },
                SolverKind::Rk4.create(),
                &[0.0, 2.0],
                1e-4,
            ),
            &[],
            &[("y", FlowType::scalar())],
        )
        .expect("sub1");
    let relay = net.add_relay("relay", FlowType::scalar(), 2).expect("relay");
    let sub2 = net
        .add_streamer(
            FnStreamer::new("sub2", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| y[0] = 2.0 * u[0]),
            &[("u", FlowType::scalar())],
            &[("y", FlowType::scalar())],
        )
        .expect("sub2");
    let sub3 = net
        .add_streamer(
            FnStreamer::new("sub3", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| y[0] = u[0] * u[0]),
            &[("u", FlowType::scalar())],
            &[("y", FlowType::scalar())],
        )
        .expect("sub3");
    net.flow((sub1, "y"), (relay, "in")).expect("flow 1");
    net.flow((relay, "out0"), (sub2, "u")).expect("flow 2");
    net.flow((relay, "out1"), (sub3, "u")).expect("flow 3");
    (net, [sub1, relay, sub2, sub3])
}

/// Undamped harmonic oscillator `x'' = -ω² x` as an input-free
/// [`urt_ode::system::InputSystem`] exposing only the position — the
/// ODE-backed stand-in for fig2's `sin(2t)` source.
#[derive(Clone)]
pub struct SineOsc {
    /// Angular frequency ω.
    pub omega: f64,
}

impl urt_ode::system::InputSystem for SineOsc {
    fn dim(&self) -> usize {
        2
    }

    fn input_dim(&self) -> usize {
        0
    }

    fn derivatives(&self, _t: f64, x: &[f64], _u: &[f64], dx: &mut [f64]) {
        dx[0] = x[1];
        dx[1] = -self.omega * self.omega * x[0];
    }

    fn output(&self, _t: f64, x: &[f64], _u: &[f64], y: &mut [f64]) {
        y[0] = x[0];
    }

    fn output_dim(&self) -> usize {
        1
    }
}

/// Builds a chain network of `n` solver-backed streamers (Van der Pol
/// oscillators feeding gains), used by the scaling benches.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain_network(n: usize) -> StreamerNetwork {
    chain_network_tail(n).0
}

/// [`chain_network`], additionally returning the id of the tail node (the
/// last gain, or the adapter/oscillator for short chains) so callers can
/// attach probes — the ensemble benchmark needs a recorded series.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain_network_tail(n: usize) -> (StreamerNetwork, NodeId) {
    assert!(n > 0, "need at least one streamer");
    let mut net = StreamerNetwork::new("chain");
    let mut prev: Option<NodeId> = None;
    for i in 0..n {
        let id = if let Some(p) = prev {
            let id = net
                .add_streamer(
                    FnStreamer::new(
                        format!("gain{i}"),
                        1,
                        1,
                        |_t, _h, u: &[f64], y: &mut [f64]| y[0] = 0.99 * u[0],
                    ),
                    &[("u", FlowType::scalar())],
                    &[("y", FlowType::scalar())],
                )
                .expect("gain");
            net.flow((p, "y"), (id, "u")).expect("flow");
            id
        } else {
            net.add_streamer(
                OdeStreamer::new(
                    format!("vdp{i}"),
                    WrappedVdp(VanDerPol { mu: 1.0 }),
                    SolverKind::Rk4.create(),
                    &[2.0, 0.0],
                    1e-3,
                ),
                &[],
                &[("y", FlowType::vector(2))],
            )
            .expect("vdp")
        };
        prev = Some(id);
        // Only the first node is the ODE; subsequent are gains on lane 0.
        if i == 0 && n > 1 {
            // Insert an adapter from vec2 to scalar.
            let adapter = net
                .add_streamer(
                    FnStreamer::new("adapter", 2, 1, |_t, _h, u: &[f64], y: &mut [f64]| {
                        y[0] = u[0]
                    }),
                    &[("u", FlowType::vector(2))],
                    &[("y", FlowType::scalar())],
                )
                .expect("adapter");
            net.flow((id, "y"), (adapter, "u")).expect("adapter flow");
            prev = Some(adapter);
        }
    }
    (net, prev.expect("n > 0"))
}

/// An [`OdeStreamer`]-compatible wrapper giving [`VanDerPol`] an input
/// dimension of zero.
#[derive(Clone)]
pub struct WrappedVdp(pub VanDerPol);

impl urt_ode::system::InputSystem for WrappedVdp {
    fn dim(&self) -> usize {
        2
    }

    fn input_dim(&self) -> usize {
        0
    }

    fn derivatives(&self, t: f64, x: &[f64], _u: &[f64], dx: &mut [f64]) {
        use urt_ode::system::OdeSystem;
        self.0.derivatives(t, x, dx);
    }
}

/// Builds the standard feedback block diagram of `n_loops` independent
/// PI loops used by the E3 translation comparison.
///
/// # Panics
///
/// Panics if `n_loops == 0`.
pub fn feedback_diagram(n_loops: usize) -> BlockDiagram {
    assert!(n_loops > 0, "need at least one loop");
    let mut d = BlockDiagram::new(format!("feedback{n_loops}"));
    for i in 0..n_loops {
        let r = d.add_block_labeled(format!("ref{i}"), Constant::new(1.0));
        let e = d.add_block_labeled(format!("err{i}"), Sum::error());
        let g = d.add_block_labeled(format!("kp{i}"), Gain::new(2.0));
        let p = d.add_block_labeled(format!("plant{i}"), Integrator::new(0.0));
        d.connect(r, 0, e, 0).expect("wire");
        d.connect(p, 0, e, 1).expect("wire");
        d.connect(e, 0, g, 0).expect("wire");
        d.connect(g, 0, p, 0).expect("wire");
        d.mark_output(p, 0).expect("output");
    }
    d
}

/// Formats a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_network_runs() {
        let (mut net, [_, _, sub2, sub3]) = fig2_network();
        net.initialize(0.0).unwrap();
        for _ in 0..100 {
            net.step(0.01).unwrap();
        }
        let doubled = net.output(sub2, "y").unwrap()[0];
        let squared = net.output(sub3, "y").unwrap()[0];
        assert!(doubled.is_finite() && squared.is_finite());
        assert!(squared >= 0.0, "square is non-negative");
    }

    #[test]
    fn fig2_ode_source_tracks_the_closed_form() {
        let (mut net, [_, _, sub2, _]) = fig2_ode_network();
        net.initialize(0.0).unwrap();
        let mut t = 0.0f64;
        for _ in 0..200 {
            net.step(0.01).unwrap();
            t += 0.01;
        }
        let doubled = net.output(sub2, "y").unwrap()[0];
        // sub2 doubles the integrated sin(2t); RK4 at substep 1e-4 keeps
        // the integration error far below this tolerance.
        assert!((doubled - 2.0 * (2.0 * t).sin()).abs() < 1e-6, "got {doubled} at t={t}");
    }

    #[test]
    fn chain_network_scales() {
        for n in [1, 4, 16] {
            let mut net = chain_network(n);
            net.initialize(0.0).unwrap();
            net.step(0.01).unwrap();
            assert!(net.node_count() >= n);
        }
    }

    #[test]
    fn feedback_diagram_converges_after_translation_source() {
        let mut d = feedback_diagram(2);
        d.validate().unwrap();
        for k in 0..5000 {
            d.step(k as f64 * 0.001, 0.001, &[]);
        }
        for y in d.outputs() {
            assert!((y - 1.0).abs() < 0.05, "loop settled at {y}");
        }
    }

    #[test]
    fn row_formatting() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}
