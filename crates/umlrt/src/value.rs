//! Message payloads.

use std::fmt;

/// Payload carried by a signal [`Message`](crate::message::Message).
///
/// UML-RT signals may carry arbitrary data classes; this runtime offers the
/// closed set a control system needs. DPort dataflow in the streamer
/// extension uses `Real`/`Vector`, while pure events use `Empty`.
///
/// # Examples
///
/// ```
/// use urt_umlrt::value::Value;
///
/// let v = Value::Real(3.5);
/// assert_eq!(v.as_real(), Some(3.5));
/// assert_eq!(Value::Empty.as_real(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub enum Value {
    /// No payload (pure event).
    #[default]
    Empty,
    /// Boolean flag.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Double-precision scalar.
    Real(f64),
    /// Vector of scalars (a frame of dataflow samples).
    Vector(Vec<f64>),
    /// Text payload (labels, diagnostics).
    Text(String),
}

impl Value {
    /// Returns the scalar if the payload is `Real` (or an `Int`, widened).
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the boolean if the payload is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if the payload is `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the vector if the payload is `Vector`.
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the text if the payload is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Short type tag used in traces and generated code.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Empty => "empty",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Vector(_) => "vector",
            Value::Text(_) => "text",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Empty => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Vector(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Text(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::Vector(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Real(1.5).as_real(), Some(1.5));
        assert_eq!(Value::Int(2).as_real(), Some(2.0));
        assert_eq!(Value::Int(2).as_int(), Some(2));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Vector(vec![1.0]).as_vector(), Some(&[1.0][..]));
        assert_eq!(Value::Text("hi".into()).as_text(), Some("hi"));
        assert_eq!(Value::Empty.as_real(), None);
        assert_eq!(Value::Real(1.0).as_bool(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Empty.to_string(), "()");
        assert_eq!(Value::Real(2.5).to_string(), "2.5");
        assert_eq!(Value::Vector(vec![1.0, 2.0]).to_string(), "[1, 2]");
        assert_eq!(Value::Text("a".into()).to_string(), "\"a\"");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3.0f64), Value::Real(3.0));
        assert_eq!(Value::from(vec![1.0]), Value::Vector(vec![1.0]));
        assert_eq!(Value::from("x"), Value::Text("x".into()));
    }

    #[test]
    fn kinds() {
        assert_eq!(Value::Empty.kind(), "empty");
        assert_eq!(Value::Vector(vec![]).kind(), "vector");
    }
}
