//! The UML-RT timer service.
//!
//! The paper remarks that "timing in UML-RT is unpredictable": timeouts are
//! delivered as ordinary messages, quantised to the service's tick and
//! subject to queueing. This implementation makes that quantisation
//! explicit — a non-zero `tick` rounds every due time *up* to the next tick
//! boundary — so experiment E5 can measure the resulting drift against the
//! paper's continuous `Time` stereotype.

use crate::capsule::TimerId;
use crate::message::{Message, Priority};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// The reserved port on which timer messages are delivered.
pub const TIMER_PORT: &str = "timer";

#[derive(Debug, Clone)]
struct TimerEntry {
    due: f64,
    seq: u64,
    id: TimerId,
    capsule: usize,
    signal: String,
    period: Option<f64>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for TimerEntry {}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earliest due first, FIFO for ties (BinaryHeap is a
        // max-heap, so reverse).
        other
            .due
            .partial_cmp(&self.due)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A fired timer, ready to be enqueued as a message.
#[derive(Debug, Clone, PartialEq)]
pub struct FiredTimer {
    /// Destination capsule index.
    pub capsule: usize,
    /// The timeout message (signal on [`TIMER_PORT`], id payload).
    pub message: Message,
    /// The timer id that fired.
    pub id: TimerId,
}

/// Priority-ordered pending timers with tick quantisation.
///
/// # Examples
///
/// ```
/// use urt_umlrt::capsule::TimerId;
/// use urt_umlrt::timing::TimerService;
///
/// let mut svc = TimerService::new();
/// svc.set_tick(0.010); // 10 ms resolution
/// svc.schedule(0, TimerId(1), 0.0, 0.013, None, "tick");
/// // 13 ms rounds up to the 20 ms boundary.
/// assert_eq!(svc.next_due(), Some(0.020));
/// ```
#[derive(Debug, Default)]
pub struct TimerService {
    tick: f64,
    heap: BinaryHeap<TimerEntry>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl TimerService {
    /// Creates a service with exact (un-quantised) timing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the tick resolution in seconds; `0` restores exact timing.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is negative or not finite.
    pub fn set_tick(&mut self, tick: f64) {
        assert!(tick >= 0.0 && tick.is_finite(), "tick must be finite and >= 0");
        self.tick = tick;
    }

    /// The configured tick resolution.
    pub fn tick(&self) -> f64 {
        self.tick
    }

    /// Quantises an absolute due time up to the next tick boundary.
    pub fn quantize(&self, due: f64) -> f64 {
        if self.tick <= 0.0 {
            due
        } else {
            // The 1e-9 guard keeps exact multiples of the tick from being
            // pushed to the next boundary by representation error.
            ((due / self.tick) - 1e-9).ceil() * self.tick
        }
    }

    /// Schedules a timer for `capsule`, due `delay` seconds after `now`.
    /// Returns the (quantised) absolute due time.
    pub fn schedule(
        &mut self,
        capsule: usize,
        id: TimerId,
        now: f64,
        delay: f64,
        period: Option<f64>,
        signal: &str,
    ) -> f64 {
        let due = self.quantize(now + delay.max(0.0));
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(TimerEntry { due, seq, id, capsule, signal: signal.to_owned(), period });
        due
    }

    /// Cancels a timer (including future firings of a periodic timer).
    pub fn cancel(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
    }

    /// The earliest pending due time, skipping cancelled timers.
    pub fn next_due(&mut self) -> Option<f64> {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.id.0) {
                self.heap.pop();
                continue;
            }
            return Some(top.due);
        }
        None
    }

    /// Pops every timer due at or before `now`, re-arming periodic ones.
    pub fn pop_due(&mut self, now: f64) -> Vec<FiredTimer> {
        let mut fired = Vec::new();
        while let Some(due) = self.next_due() {
            if due > now + 1e-12 {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            let message = Message::new(entry.signal.clone(), Value::Int(entry.id.0 as i64))
                .with_port(TIMER_PORT)
                .with_priority(Priority::High)
                .with_sent_at(entry.due);
            fired.push(FiredTimer { capsule: entry.capsule, message, id: entry.id });
            if let Some(period) = entry.period {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.heap.push(TimerEntry { due: self.quantize(entry.due + period), seq, ..entry });
            }
        }
        fired
    }

    /// Number of pending (possibly cancelled-but-unswept) timers.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_timing_without_tick() {
        let mut svc = TimerService::new();
        svc.schedule(0, TimerId(1), 0.0, 0.0137, None, "t");
        assert_eq!(svc.next_due(), Some(0.0137));
    }

    #[test]
    fn tick_rounds_up() {
        let mut svc = TimerService::new();
        svc.set_tick(0.01);
        assert_eq!(svc.quantize(0.013), 0.02);
        assert!((svc.quantize(0.02) - 0.02).abs() < 1e-12);
        assert_eq!(svc.quantize(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "tick must be finite")]
    fn tick_rejects_negative() {
        TimerService::new().set_tick(-1.0);
    }

    #[test]
    fn pop_due_fires_in_time_order() {
        let mut svc = TimerService::new();
        svc.schedule(0, TimerId(1), 0.0, 0.5, None, "late");
        svc.schedule(1, TimerId(2), 0.0, 0.2, None, "early");
        let fired = svc.pop_due(1.0);
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].message.signal(), "early");
        assert_eq!(fired[1].message.signal(), "late");
        assert_eq!(fired[0].capsule, 1);
        assert!(svc.is_empty());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut svc = TimerService::new();
        svc.schedule(0, TimerId(1), 0.0, 0.5, None, "t");
        assert!(svc.pop_due(0.4).is_empty());
        assert_eq!(svc.pop_due(0.5).len(), 1);
    }

    #[test]
    fn periodic_timers_rearm() {
        let mut svc = TimerService::new();
        svc.schedule(0, TimerId(1), 0.0, 0.1, Some(0.1), "tick");
        let fired = svc.pop_due(0.35);
        assert_eq!(fired.len(), 3, "fires at 0.1, 0.2, 0.3");
        assert_eq!(svc.len(), 1, "re-armed for 0.4");
        assert_eq!(svc.next_due(), Some(0.4));
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut svc = TimerService::new();
        svc.schedule(0, TimerId(7), 0.0, 0.1, None, "t");
        svc.cancel(TimerId(7));
        assert!(svc.pop_due(1.0).is_empty());
        assert_eq!(svc.next_due(), None);
    }

    #[test]
    fn timer_messages_carry_id_on_timer_port() {
        let mut svc = TimerService::new();
        svc.schedule(3, TimerId(42), 0.0, 0.1, None, "deadline");
        let fired = svc.pop_due(0.2);
        let m = &fired[0].message;
        assert_eq!(m.port(), TIMER_PORT);
        assert_eq!(m.signal(), "deadline");
        assert_eq!(m.value().as_int(), Some(42));
        assert_eq!(m.priority(), Priority::High);
        assert_eq!(fired[0].id, TimerId(42));
    }

    #[test]
    fn quantisation_skews_periodic_cadence() {
        // The E5 claim in miniature: a 0.015 s period on a 0.01 s tick
        // fires at 0.02, 0.04, ... — 33% slow.
        let mut svc = TimerService::new();
        svc.set_tick(0.01);
        svc.schedule(0, TimerId(1), 0.0, 0.015, Some(0.015), "t");
        let fired = svc.pop_due(0.1);
        let times: Vec<f64> = fired.iter().map(|f| f.message.sent_at()).collect();
        assert!((times[0] - 0.02).abs() < 1e-12);
        assert!((times[1] - 0.04).abs() < 1e-12, "got {times:?}");
    }
}
