//! Capsules: active objects whose behaviour is a state machine.

use crate::message::{Message, Priority};
use crate::statemachine::StateMachine;
use crate::value::Value;
use std::fmt;

/// Identifier of a timer allocated through [`CapsuleContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// A timer request recorded by a capsule action, applied by the controller
/// after the run-to-completion step.
#[derive(Debug, Clone, PartialEq)]
pub struct TimerRequest {
    /// Allocated timer id.
    pub id: TimerId,
    /// Delay from now, in seconds.
    pub delay: f64,
    /// Re-arm period for periodic timers.
    pub period: Option<f64>,
    /// Signal delivered when the timer fires (on the reserved `timer` port).
    pub signal: String,
}

/// The service context handed to capsule actions.
///
/// Actions never touch the controller directly; they record effects (sends,
/// timer arms/cancels) which the controller applies *after* the
/// run-to-completion step finishes — this is what makes RTC atomic.
///
/// # Examples
///
/// ```
/// use urt_umlrt::capsule::CapsuleContext;
/// use urt_umlrt::value::Value;
///
/// let mut ctx = CapsuleContext::detached(1.5);
/// assert_eq!(ctx.now(), 1.5);
/// ctx.send("out", "ping", Value::Empty);
/// let outbox = ctx.take_outbox();
/// assert_eq!(outbox.len(), 1);
/// assert_eq!(outbox[0].0, "out");
/// ```
#[derive(Debug)]
pub struct CapsuleContext {
    now: f64,
    capsule: String,
    outbox: Vec<(String, Message)>,
    timer_sets: Vec<TimerRequest>,
    timer_cancels: Vec<TimerId>,
    next_timer_id: u64,
}

impl CapsuleContext {
    /// Creates a context bound to a capsule name; used by controllers.
    pub fn new(capsule: impl Into<String>, now: f64, next_timer_id: u64) -> Self {
        CapsuleContext {
            now,
            capsule: capsule.into(),
            outbox: Vec::new(),
            timer_sets: Vec::new(),
            timer_cancels: Vec::new(),
            next_timer_id,
        }
    }

    /// Creates a free-standing context for unit tests.
    pub fn detached(now: f64) -> CapsuleContext {
        CapsuleContext::new("", now, 0)
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Name of the capsule this context belongs to.
    pub fn capsule(&self) -> &str {
        &self.capsule
    }

    /// Sends `signal` with `value` out of `port` at [`Priority::General`].
    pub fn send(&mut self, port: &str, signal: &str, value: Value) {
        self.send_with_priority(port, signal, value, Priority::General);
    }

    /// Sends with an explicit priority band.
    pub fn send_with_priority(
        &mut self,
        port: &str,
        signal: &str,
        value: Value,
        priority: Priority,
    ) {
        let msg = Message::new(signal, value).with_priority(priority).with_sent_at(self.now);
        self.outbox.push((port.to_owned(), msg));
    }

    /// Arms a one-shot timer; the `signal` arrives on the reserved `timer`
    /// port after `delay` seconds (subject to the service's tick
    /// quantisation).
    pub fn inform_in(&mut self, delay: f64, signal: &str) -> TimerId {
        let id = TimerId(self.next_timer_id);
        self.next_timer_id += 1;
        self.timer_sets.push(TimerRequest { id, delay, period: None, signal: signal.to_owned() });
        id
    }

    /// Arms a periodic timer with the given period in seconds.
    pub fn inform_every(&mut self, period: f64, signal: &str) -> TimerId {
        let id = TimerId(self.next_timer_id);
        self.next_timer_id += 1;
        self.timer_sets.push(TimerRequest {
            id,
            delay: period,
            period: Some(period),
            signal: signal.to_owned(),
        });
        id
    }

    /// Cancels a previously armed timer.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.timer_cancels.push(id);
    }

    /// Drains recorded sends: `(port, message)` pairs in send order.
    pub fn take_outbox(&mut self) -> Vec<(String, Message)> {
        std::mem::take(&mut self.outbox)
    }

    /// Drains recorded timer arms.
    pub fn take_timer_sets(&mut self) -> Vec<TimerRequest> {
        std::mem::take(&mut self.timer_sets)
    }

    /// Drains recorded timer cancellations.
    pub fn take_timer_cancels(&mut self) -> Vec<TimerId> {
        std::mem::take(&mut self.timer_cancels)
    }

    /// The next timer id to allocate (controllers persist this).
    pub fn next_timer_id(&self) -> u64 {
        self.next_timer_id
    }
}

/// A capsule: the unit of event-driven behaviour a controller schedules.
///
/// Most capsules are [`SmCapsule`]s built around a [`StateMachine`], but
/// hand-written behaviours (and the baselines in `urt-baselines`) implement
/// this trait directly.
pub trait Capsule: Send {
    /// The capsule instance name (unique within a controller).
    fn name(&self) -> &str;

    /// Called once when the controller starts.
    fn on_start(&mut self, ctx: &mut CapsuleContext);

    /// Handles one message, run-to-completion.
    fn on_message(&mut self, msg: &Message, ctx: &mut CapsuleContext);

    /// Name of the current state, for traces and tests.
    fn current_state(&self) -> &str {
        "-"
    }
}

/// A capsule whose behaviour is a [`StateMachine`] over data `D`.
///
/// # Examples
///
/// ```
/// use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
/// use urt_umlrt::statemachine::StateMachineBuilder;
///
/// # fn main() -> Result<(), urt_umlrt::RtError> {
/// let machine = StateMachineBuilder::new("counter")
///     .state("idle")
///     .initial("idle", |_d: &mut u32, _ctx: &mut CapsuleContext| {})
///     .internal("idle", ("in", "inc"), |d, _m, _ctx| *d += 1)
///     .build()?;
/// let capsule = SmCapsule::new(machine, 0u32);
/// assert_eq!(capsule.data(), &0);
/// # Ok(())
/// # }
/// ```
pub struct SmCapsule<D> {
    machine: StateMachine<D>,
    data: D,
}

impl<D> fmt::Debug for SmCapsule<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmCapsule").field("machine", &self.machine).finish_non_exhaustive()
    }
}

impl<D> SmCapsule<D> {
    /// Wraps a state machine and its extended-state data.
    pub fn new(machine: StateMachine<D>, data: D) -> Self {
        SmCapsule { machine, data }
    }

    /// Borrows the capsule's extended state.
    pub fn data(&self) -> &D {
        &self.data
    }

    /// Mutably borrows the capsule's extended state.
    pub fn data_mut(&mut self) -> &mut D {
        &mut self.data
    }

    /// Borrows the underlying machine.
    pub fn machine(&self) -> &StateMachine<D> {
        &self.machine
    }
}

impl<D: Send> Capsule for SmCapsule<D> {
    fn name(&self) -> &str {
        self.machine.name()
    }

    fn on_start(&mut self, ctx: &mut CapsuleContext) {
        self.machine.start(&mut self.data, ctx);
    }

    fn on_message(&mut self, msg: &Message, ctx: &mut CapsuleContext) {
        self.machine.dispatch(&mut self.data, msg, ctx);
    }

    fn current_state(&self) -> &str {
        self.machine.current_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statemachine::StateMachineBuilder;

    #[test]
    fn context_records_sends_in_order() {
        let mut ctx = CapsuleContext::detached(2.0);
        ctx.send("a", "one", Value::Empty);
        ctx.send_with_priority("b", "two", Value::Int(5), Priority::Panic);
        let out = ctx.take_outbox();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "a");
        assert_eq!(out[0].1.sent_at(), 2.0);
        assert_eq!(out[1].1.priority(), Priority::Panic);
        assert!(ctx.take_outbox().is_empty(), "drained");
    }

    #[test]
    fn context_allocates_distinct_timer_ids() {
        let mut ctx = CapsuleContext::detached(0.0);
        let a = ctx.inform_in(1.0, "t1");
        let b = ctx.inform_every(0.5, "t2");
        assert_ne!(a, b);
        let sets = ctx.take_timer_sets();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].period, None);
        assert_eq!(sets[1].period, Some(0.5));
        ctx.cancel_timer(a);
        assert_eq!(ctx.take_timer_cancels(), vec![a]);
        assert_eq!(ctx.next_timer_id(), 2);
    }

    #[test]
    fn sm_capsule_delegates_to_machine() {
        let machine = StateMachineBuilder::new("c")
            .state("s")
            .initial("s", |d: &mut u32, _| *d = 10)
            .internal("s", ("p", "inc"), |d, _, _| *d += 1)
            .build()
            .unwrap();
        let mut cap = SmCapsule::new(machine, 0u32);
        let mut ctx = CapsuleContext::detached(0.0);
        cap.on_start(&mut ctx);
        assert_eq!(cap.data(), &10);
        assert_eq!(cap.name(), "c");
        assert_eq!(cap.current_state(), "s");
        let msg = Message::new("inc", Value::Empty).with_port("p");
        cap.on_message(&msg, &mut ctx);
        assert_eq!(cap.data(), &11);
        *cap.data_mut() = 0;
        assert_eq!(cap.data(), &0);
    }

    #[test]
    fn capsule_trait_is_object_safe_and_send() {
        fn assert_send<T: Send>(_t: &T) {}
        let machine = StateMachineBuilder::new("c")
            .state("s")
            .initial("s", |_d: &mut (), _| {})
            .build()
            .unwrap();
        let boxed: Box<dyn Capsule> = Box::new(SmCapsule::new(machine, ()));
        assert_send(&boxed);
        assert_eq!(boxed.name(), "c");
    }
}
