//! Hierarchical state machines with run-to-completion dispatch.
//!
//! Capsule behaviour in UML-RT is a hierarchical state machine: states may
//! nest, transitions carry triggers (port + signal), guards and actions,
//! and each message is processed to completion before the next one is
//! dequeued. The paper keeps this machinery for the event-driven part of a
//! hybrid model and pairs it with solvers for the continuous part.

use crate::capsule::CapsuleContext;
use crate::error::RtError;
use crate::message::Message;
use std::fmt;

/// Transition action: mutates the capsule data, may send messages and set
/// timers through the context.
pub type Action<D> = Box<dyn FnMut(&mut D, &Message, &mut CapsuleContext) + Send>;
/// Entry/exit action: no triggering message is available.
pub type StateAction<D> = Box<dyn FnMut(&mut D, &mut CapsuleContext) + Send>;
/// Guard predicate: read-only on data and message.
pub type Guard<D> = Box<dyn Fn(&D, &Message) -> bool + Send>;

/// What fires a transition: a signal arriving on a port.
///
/// The port component may be `"*"` to match any port.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Trigger {
    port: String,
    signal: String,
}

impl Trigger {
    /// Creates a trigger for `signal` on `port` (`"*"` matches any port).
    pub fn new(port: impl Into<String>, signal: impl Into<String>) -> Self {
        Trigger { port: port.into(), signal: signal.into() }
    }

    /// Whether this trigger matches a message.
    pub fn matches(&self, msg: &Message) -> bool {
        (self.port == "*" || self.port == msg.port()) && self.signal == msg.signal()
    }

    /// The port component (`"*"` matches any port).
    pub fn port(&self) -> &str {
        &self.port
    }

    /// The signal component.
    pub fn signal(&self) -> &str {
        &self.signal
    }
}

impl From<(&str, &str)> for Trigger {
    fn from((port, signal): (&str, &str)) -> Self {
        Trigger::new(port, signal)
    }
}

/// Declarative shape of one state inside an [`SmSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmStateSpec {
    /// State name (unique within the machine).
    pub name: String,
    /// Enclosing composite state, if nested.
    pub parent: Option<String>,
    /// Which child a composite state enters by default.
    pub initial_child: Option<String>,
}

/// Declarative shape of one transition inside an [`SmSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmTransitionSpec {
    /// Source state name.
    pub source: String,
    /// Target state name; `None` marks an internal transition.
    pub target: Option<String>,
    /// Trigger port (`"*"` matches any port).
    pub port: String,
    /// Trigger signal.
    pub signal: String,
}

/// The declarative shape of a hierarchical state machine: states,
/// transitions and the initial state, without the guard/action closures.
///
/// This is what static analysis (the `urt_analysis` crate) lints —
/// reachability, trigger deliverability, missing initial state — and what
/// a `UnifiedModel` attaches to capsule declarations. Extract one from a
/// built machine with [`StateMachine::spec`], or describe a machine that
/// only exists on the drawing board with the builder-style methods.
///
/// # Examples
///
/// ```
/// use urt_umlrt::statemachine::SmSpec;
///
/// let spec = SmSpec::new("thermostat")
///     .state("idle")
///     .state("heating")
///     .initial("idle")
///     .on("idle", ("ctl", "heat"), "heating")
///     .on("heating", ("ctl", "off"), "idle");
/// assert_eq!(spec.states.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SmSpec {
    /// Machine name.
    pub name: String,
    /// Declared states.
    pub states: Vec<SmStateSpec>,
    /// Initial state name, if set.
    pub initial: Option<String>,
    /// Declared transitions.
    pub transitions: Vec<SmTransitionSpec>,
}

impl SmSpec {
    /// Starts an empty spec called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SmSpec { name: name.into(), ..SmSpec::default() }
    }

    /// Declares a top-level state.
    #[must_use]
    pub fn state(mut self, name: impl Into<String>) -> Self {
        self.states.push(SmStateSpec { name: name.into(), parent: None, initial_child: None });
        self
    }

    /// Declares a state nested inside `parent`.
    #[must_use]
    pub fn substate(mut self, name: impl Into<String>, parent: impl Into<String>) -> Self {
        self.states.push(SmStateSpec {
            name: name.into(),
            parent: Some(parent.into()),
            initial_child: None,
        });
        self
    }

    /// Sets the initial state.
    #[must_use]
    pub fn initial(mut self, name: impl Into<String>) -> Self {
        self.initial = Some(name.into());
        self
    }

    /// Marks which child a composite state enters by default.
    #[must_use]
    pub fn initial_child(mut self, parent: &str, child: impl Into<String>) -> Self {
        if let Some(s) = self.states.iter_mut().find(|s| s.name == parent) {
            s.initial_child = Some(child.into());
        }
        self
    }

    /// Adds an external transition triggered by `(port, signal)`.
    #[must_use]
    pub fn on(
        mut self,
        from: impl Into<String>,
        trigger: (&str, &str),
        to: impl Into<String>,
    ) -> Self {
        self.transitions.push(SmTransitionSpec {
            source: from.into(),
            target: Some(to.into()),
            port: trigger.0.to_owned(),
            signal: trigger.1.to_owned(),
        });
        self
    }

    /// Adds an internal transition (no state change).
    #[must_use]
    pub fn internal(mut self, state: impl Into<String>, trigger: (&str, &str)) -> Self {
        self.transitions.push(SmTransitionSpec {
            source: state.into(),
            target: None,
            port: trigger.0.to_owned(),
            signal: trigger.1.to_owned(),
        });
        self
    }

    /// Looks up a state spec by name.
    pub fn find_state(&self, name: &str) -> Option<&SmStateSpec> {
        self.states.iter().find(|s| s.name == name)
    }
}

struct StateDef<D> {
    name: String,
    parent: Option<usize>,
    entry: Option<StateAction<D>>,
    exit: Option<StateAction<D>>,
    initial_child: Option<usize>,
    /// Shallow history: re-entry resumes the last active direct child.
    history: bool,
    last_child: Option<usize>,
}

struct TransitionDef<D> {
    source: usize,
    trigger: Trigger,
    guard: Option<Guard<D>>,
    /// `None` marks an internal transition (no exit/entry).
    target: Option<usize>,
    action: Option<Action<D>>,
}

/// A runnable hierarchical state machine over capsule data `D`.
///
/// Build one with [`StateMachineBuilder`]; host it in a capsule with
/// [`SmCapsule`](crate::capsule::SmCapsule).
pub struct StateMachine<D> {
    name: String,
    states: Vec<StateDef<D>>,
    transitions: Vec<TransitionDef<D>>,
    initial: usize,
    initial_action: Option<StateAction<D>>,
    current: usize,
    started: bool,
    transition_count: u64,
}

impl<D> fmt::Debug for StateMachine<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StateMachine")
            .field("name", &self.name)
            .field("states", &self.states.iter().map(|s| &s.name).collect::<Vec<_>>())
            .field("current", &self.current_state())
            .field("started", &self.started)
            .finish_non_exhaustive()
    }
}

impl<D> StateMachine<D> {
    /// Machine name (also used as the default capsule name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Name of the current leaf state (the initial state before `start`).
    pub fn current_state(&self) -> &str {
        &self.states[self.current].name
    }

    /// Whether the machine is in `state`, directly or via a descendant.
    pub fn is_in(&self, state: &str) -> bool {
        let mut idx = Some(self.current);
        while let Some(i) = idx {
            if self.states[i].name == state {
                return true;
            }
            idx = self.states[i].parent;
        }
        false
    }

    /// Number of fired transitions (internal ones included).
    pub fn transition_count(&self) -> u64 {
        self.transition_count
    }

    /// Extracts the declarative shape of this machine (names, hierarchy,
    /// triggers — not the guard/action closures) for static analysis.
    pub fn spec(&self) -> SmSpec {
        SmSpec {
            name: self.name.clone(),
            states: self
                .states
                .iter()
                .map(|s| SmStateSpec {
                    name: s.name.clone(),
                    parent: s.parent.map(|p| self.states[p].name.clone()),
                    initial_child: s.initial_child.map(|c| self.states[c].name.clone()),
                })
                .collect(),
            initial: Some(self.states[self.initial].name.clone()),
            transitions: self
                .transitions
                .iter()
                .map(|t| SmTransitionSpec {
                    source: self.states[t.source].name.clone(),
                    target: t.target.map(|i| self.states[i].name.clone()),
                    port: t.trigger.port().to_owned(),
                    signal: t.trigger.signal().to_owned(),
                })
                .collect(),
        }
    }

    /// Runs the initial transition and enters the initial state chain.
    pub fn start(&mut self, data: &mut D, ctx: &mut CapsuleContext) {
        if self.started {
            return;
        }
        self.started = true;
        if let Some(action) = self.initial_action.as_mut() {
            action(data, ctx);
        }
        // Enter from the root down to the initial state, then descend.
        let path = self.path_from_root(self.initial);
        for idx in path {
            if let Some(entry) = self.states[idx].entry.as_mut() {
                entry(data, ctx);
            }
        }
        self.current = self.descend_to_leaf(self.initial, data, ctx);
    }

    /// Dispatches one message with run-to-completion semantics.
    ///
    /// Returns `true` if some transition handled the message. Unhandled
    /// messages are dropped, as in UML-RT.
    ///
    /// # Panics
    ///
    /// Panics if called before [`StateMachine::start`].
    pub fn dispatch(&mut self, data: &mut D, msg: &Message, ctx: &mut CapsuleContext) -> bool {
        assert!(self.started, "dispatch before start");
        // Innermost-first search through the active state chain.
        let mut source_chain = Vec::new();
        let mut idx = Some(self.current);
        while let Some(i) = idx {
            source_chain.push(i);
            idx = self.states[i].parent;
        }
        let mut chosen: Option<usize> = None;
        'outer: for &state in &source_chain {
            for (ti, tr) in self.transitions.iter().enumerate() {
                if tr.source == state && tr.trigger.matches(msg) {
                    let pass = tr.guard.as_ref().is_none_or(|g| g(data, msg));
                    if pass {
                        chosen = Some(ti);
                        break 'outer;
                    }
                }
            }
        }
        let Some(ti) = chosen else {
            return false;
        };
        self.transition_count += 1;
        let target = self.transitions[ti].target;
        match target {
            None => {
                // Internal transition: action only.
                if let Some(action) = self.transitions[ti].action.as_mut() {
                    action(data, msg, ctx);
                }
            }
            Some(target) => {
                let source = self.transitions[ti].source;
                let lca = self.lowest_common_ancestor(self.current, target, source);
                // Exit from the current leaf up to (excluding) the LCA,
                // recording shallow history on the way out.
                let mut i = Some(self.current);
                while let Some(s) = i {
                    if Some(s) == lca {
                        break;
                    }
                    if let Some(exit) = self.states[s].exit.as_mut() {
                        exit(data, ctx);
                    }
                    let parent = self.states[s].parent;
                    if let Some(p) = parent {
                        self.states[p].last_child = Some(s);
                    }
                    i = parent;
                    if i.is_none() && lca.is_none() {
                        break;
                    }
                }
                if let Some(action) = self.transitions[ti].action.as_mut() {
                    action(data, msg, ctx);
                }
                // Enter from below the LCA down to the target.
                let path = self.path_from_root(target);
                let skip =
                    lca.map_or(0, |l| path.iter().position(|&p| p == l).map_or(0, |pos| pos + 1));
                for &s in &path[skip..] {
                    if let Some(entry) = self.states[s].entry.as_mut() {
                        entry(data, ctx);
                    }
                }
                self.current = self.descend_to_leaf(target, data, ctx);
            }
        }
        true
    }

    fn path_from_root(&self, state: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut idx = Some(state);
        while let Some(i) = idx {
            path.push(i);
            idx = self.states[i].parent;
        }
        path.reverse();
        path
    }

    fn descend_to_leaf(&mut self, state: usize, data: &mut D, ctx: &mut CapsuleContext) -> usize {
        let mut cur = state;
        loop {
            let st = &self.states[cur];
            let next =
                if st.history { st.last_child.or(st.initial_child) } else { st.initial_child };
            let Some(child) = next else { break };
            if let Some(entry) = self.states[child].entry.as_mut() {
                entry(data, ctx);
            }
            cur = child;
        }
        cur
    }

    /// Lowest common ancestor of the transition's declared source and its
    /// target, used as the exit/entry boundary. Self-transitions and
    /// transitions targeting an ancestor exit up to that state's parent so
    /// the state is properly re-entered.
    fn lowest_common_ancestor(
        &self,
        _current: usize,
        target: usize,
        source: usize,
    ) -> Option<usize> {
        if source == target {
            return self.states[source].parent;
        }
        let chain = |mut s: usize| {
            let mut v = vec![s];
            while let Some(p) = self.states[s].parent {
                v.push(p);
                s = p;
            }
            v
        };
        let b = chain(target);
        for &x in &chain(source) {
            if b.contains(&x) {
                if x == target {
                    return self.states[x].parent;
                }
                return Some(x);
            }
        }
        None
    }
}

/// Builder for [`StateMachine`].
///
/// # Examples
///
/// ```
/// use urt_umlrt::statemachine::StateMachineBuilder;
/// use urt_umlrt::capsule::CapsuleContext;
///
/// # fn main() -> Result<(), urt_umlrt::RtError> {
/// let machine = StateMachineBuilder::new("door")
///     .state("closed")
///     .state("open")
///     .initial("closed", |_d: &mut (), _ctx: &mut CapsuleContext| {})
///     .on("closed", ("ctl", "open"), "open", |_d, _m, _ctx| {})
///     .on("open", ("ctl", "close"), "closed", |_d, _m, _ctx| {})
///     .build()?;
/// assert_eq!(machine.name(), "door");
/// # Ok(())
/// # }
/// ```
pub struct StateMachineBuilder<D> {
    name: String,
    states: Vec<StateDef<D>>,
    transitions: Vec<TransitionDef<D>>,
    initial: Option<usize>,
    initial_action: Option<StateAction<D>>,
    error: Option<RtError>,
}

impl<D> fmt::Debug for StateMachineBuilder<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StateMachineBuilder")
            .field("name", &self.name)
            .field("states", &self.states.iter().map(|s| &s.name).collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl<D> StateMachineBuilder<D> {
    /// Starts building a machine called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        StateMachineBuilder {
            name: name.into(),
            states: Vec::new(),
            transitions: Vec::new(),
            initial: None,
            initial_action: None,
            error: None,
        }
    }

    fn find(&mut self, name: &str) -> Option<usize> {
        let found = self.states.iter().position(|s| s.name == name);
        if found.is_none() && self.error.is_none() {
            self.error = Some(RtError::UnknownState { name: name.to_owned() });
        }
        found
    }

    /// Declares a top-level state.
    pub fn state(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        if self.states.iter().any(|s| s.name == name) {
            if self.error.is_none() {
                self.error = Some(RtError::DuplicateState { name });
            }
            return self;
        }
        self.states.push(StateDef {
            name,
            parent: None,
            entry: None,
            exit: None,
            initial_child: None,
            history: false,
            last_child: None,
        });
        self
    }

    /// Declares a state nested inside `parent`.
    pub fn substate(mut self, name: impl Into<String>, parent: &str) -> Self {
        let name = name.into();
        if self.states.iter().any(|s| s.name == name) {
            if self.error.is_none() {
                self.error = Some(RtError::DuplicateState { name });
            }
            return self;
        }
        let Some(p) = self.find(parent) else { return self };
        self.states.push(StateDef {
            name,
            parent: Some(p),
            entry: None,
            exit: None,
            initial_child: None,
            history: false,
            last_child: None,
        });
        self
    }

    /// Sets the entry action of a state.
    pub fn entry<F>(mut self, state: &str, action: F) -> Self
    where
        F: FnMut(&mut D, &mut CapsuleContext) + Send + 'static,
    {
        if let Some(i) = self.find(state) {
            self.states[i].entry = Some(Box::new(action));
        }
        self
    }

    /// Sets the exit action of a state.
    pub fn exit<F>(mut self, state: &str, action: F) -> Self
    where
        F: FnMut(&mut D, &mut CapsuleContext) + Send + 'static,
    {
        if let Some(i) = self.find(state) {
            self.states[i].exit = Some(Box::new(action));
        }
        self
    }

    /// Sets the initial state and the initial-transition action.
    pub fn initial<F>(mut self, state: &str, action: F) -> Self
    where
        F: FnMut(&mut D, &mut CapsuleContext) + Send + 'static,
    {
        if let Some(i) = self.find(state) {
            self.initial = Some(i);
            self.initial_action = Some(Box::new(action));
        }
        self
    }

    /// Marks a composite state as having *shallow history*: re-entering it
    /// resumes the most recently active direct child instead of the
    /// initial child.
    pub fn history(mut self, state: &str) -> Self {
        if let Some(i) = self.find(state) {
            self.states[i].history = true;
        }
        self
    }

    /// Marks which child a composite state enters by default.
    pub fn initial_child(mut self, parent: &str, child: &str) -> Self {
        let (Some(p), Some(c)) = (self.find(parent), self.find(child)) else {
            return self;
        };
        self.states[p].initial_child = Some(c);
        self
    }

    /// Adds an external transition.
    pub fn on<T, F>(mut self, from: &str, trigger: T, to: &str, action: F) -> Self
    where
        T: Into<Trigger>,
        F: FnMut(&mut D, &Message, &mut CapsuleContext) + Send + 'static,
    {
        let (Some(f), Some(t)) = (self.find(from), self.find(to)) else {
            return self;
        };
        self.transitions.push(TransitionDef {
            source: f,
            trigger: trigger.into(),
            guard: None,
            target: Some(t),
            action: Some(Box::new(action)),
        });
        self
    }

    /// Adds an external transition with a guard.
    pub fn on_guarded<T, G, F>(
        mut self,
        from: &str,
        trigger: T,
        to: &str,
        guard: G,
        action: F,
    ) -> Self
    where
        T: Into<Trigger>,
        G: Fn(&D, &Message) -> bool + Send + 'static,
        F: FnMut(&mut D, &Message, &mut CapsuleContext) + Send + 'static,
    {
        let (Some(f), Some(t)) = (self.find(from), self.find(to)) else {
            return self;
        };
        self.transitions.push(TransitionDef {
            source: f,
            trigger: trigger.into(),
            guard: Some(Box::new(guard)),
            target: Some(t),
            action: Some(Box::new(action)),
        });
        self
    }

    /// Adds an internal transition (no exit/entry, state unchanged).
    pub fn internal<T, F>(mut self, state: &str, trigger: T, action: F) -> Self
    where
        T: Into<Trigger>,
        F: FnMut(&mut D, &Message, &mut CapsuleContext) + Send + 'static,
    {
        let Some(s) = self.find(state) else { return self };
        self.transitions.push(TransitionDef {
            source: s,
            trigger: trigger.into(),
            guard: None,
            target: None,
            action: Some(Box::new(action)),
        });
        self
    }

    /// Finalises the machine.
    ///
    /// # Errors
    ///
    /// * Any deferred builder error (unknown/duplicate state names).
    /// * [`RtError::MissingInitial`] if no initial state was set.
    pub fn build(self) -> Result<StateMachine<D>, RtError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        let initial = self.initial.ok_or(RtError::MissingInitial)?;
        Ok(StateMachine {
            name: self.name,
            states: self.states,
            transitions: self.transitions,
            initial,
            initial_action: self.initial_action,
            current: initial,
            started: false,
            transition_count: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capsule::CapsuleContext;
    use crate::value::Value;

    fn ctx() -> CapsuleContext {
        CapsuleContext::detached(0.0)
    }

    fn msg(port: &str, signal: &str) -> Message {
        Message::new(signal, Value::Empty).with_port(port)
    }

    #[derive(Default)]
    struct Log(Vec<&'static str>);

    #[test]
    fn trigger_matching() {
        let t = Trigger::new("p", "s");
        assert!(t.matches(&msg("p", "s")));
        assert!(!t.matches(&msg("q", "s")));
        assert!(!t.matches(&msg("p", "t")));
        assert!(Trigger::new("*", "s").matches(&msg("anything", "s")));
    }

    #[test]
    fn build_validates() {
        let err = StateMachineBuilder::<()>::new("m").state("a").build().unwrap_err();
        assert_eq!(err, RtError::MissingInitial);

        let err = StateMachineBuilder::<()>::new("m")
            .state("a")
            .state("a")
            .initial("a", |_, _| {})
            .build()
            .unwrap_err();
        assert_eq!(err, RtError::DuplicateState { name: "a".into() });

        let err = StateMachineBuilder::<()>::new("m")
            .state("a")
            .initial("missing", |_, _| {})
            .build()
            .unwrap_err();
        assert_eq!(err, RtError::UnknownState { name: "missing".into() });
    }

    #[test]
    fn simple_two_state_toggle() {
        let mut m = StateMachineBuilder::new("toggle")
            .state("off")
            .state("on")
            .initial("off", |_d: &mut u32, _| {})
            .on("off", ("p", "flip"), "on", |d, _, _| *d += 1)
            .on("on", ("p", "flip"), "off", |d, _, _| *d += 1)
            .build()
            .unwrap();
        let mut d = 0u32;
        let mut c = ctx();
        m.start(&mut d, &mut c);
        assert_eq!(m.current_state(), "off");
        assert!(m.dispatch(&mut d, &msg("p", "flip"), &mut c));
        assert_eq!(m.current_state(), "on");
        assert!(m.dispatch(&mut d, &msg("p", "flip"), &mut c));
        assert_eq!(m.current_state(), "off");
        assert_eq!(d, 2);
        assert_eq!(m.transition_count(), 2);
    }

    #[test]
    fn unhandled_message_is_dropped() {
        let mut m = StateMachineBuilder::new("m")
            .state("a")
            .initial("a", |_d: &mut (), _| {})
            .build()
            .unwrap();
        let mut d = ();
        let mut c = ctx();
        m.start(&mut d, &mut c);
        assert!(!m.dispatch(&mut d, &msg("p", "unknown"), &mut c));
    }

    #[test]
    fn guard_selects_transition() {
        let mut m = StateMachineBuilder::new("m")
            .state("a")
            .state("hot")
            .state("cold")
            .initial("a", |_d: &mut f64, _| {})
            .on_guarded("a", ("p", "temp"), "hot", |d, _| *d > 0.0, |_, _, _| {})
            .on_guarded("a", ("p", "temp"), "cold", |d, _| *d <= 0.0, |_, _, _| {})
            .build()
            .unwrap();
        let mut d = 5.0;
        let mut c = ctx();
        m.start(&mut d, &mut c);
        m.dispatch(&mut d, &msg("p", "temp"), &mut c);
        assert_eq!(m.current_state(), "hot");
    }

    #[test]
    fn entry_exit_order_flat() {
        let mut m = StateMachineBuilder::new("m")
            .state("a")
            .state("b")
            .entry("a", |d: &mut Log, _| d.0.push("enter-a"))
            .exit("a", |d: &mut Log, _| d.0.push("exit-a"))
            .entry("b", |d: &mut Log, _| d.0.push("enter-b"))
            .initial("a", |d: &mut Log, _| d.0.push("init"))
            .on("a", ("p", "go"), "b", |d, _, _| d.0.push("action"))
            .build()
            .unwrap();
        let mut d = Log::default();
        let mut c = ctx();
        m.start(&mut d, &mut c);
        m.dispatch(&mut d, &msg("p", "go"), &mut c);
        assert_eq!(d.0, vec!["init", "enter-a", "exit-a", "action", "enter-b"]);
    }

    #[test]
    fn internal_transition_skips_entry_exit() {
        let mut m = StateMachineBuilder::new("m")
            .state("a")
            .entry("a", |d: &mut Log, _| d.0.push("enter"))
            .exit("a", |d: &mut Log, _| d.0.push("exit"))
            .initial("a", |_, _| {})
            .internal("a", ("p", "tick"), |d, _, _| d.0.push("tick"))
            .build()
            .unwrap();
        let mut d = Log::default();
        let mut c = ctx();
        m.start(&mut d, &mut c);
        m.dispatch(&mut d, &msg("p", "tick"), &mut c);
        assert_eq!(d.0, vec!["enter", "tick"]);
        assert_eq!(m.current_state(), "a");
    }

    #[test]
    fn self_transition_exits_and_reenters() {
        let mut m = StateMachineBuilder::new("m")
            .state("a")
            .entry("a", |d: &mut Log, _| d.0.push("enter"))
            .exit("a", |d: &mut Log, _| d.0.push("exit"))
            .initial("a", |_, _| {})
            .on("a", ("p", "reset"), "a", |d, _, _| d.0.push("action"))
            .build()
            .unwrap();
        let mut d = Log::default();
        let mut c = ctx();
        m.start(&mut d, &mut c);
        m.dispatch(&mut d, &msg("p", "reset"), &mut c);
        assert_eq!(d.0, vec!["enter", "exit", "action", "enter"]);
    }

    #[test]
    fn hierarchy_inherits_parent_transitions() {
        let mut m = StateMachineBuilder::new("m")
            .state("running")
            .substate("fast", "running")
            .substate("slow", "running")
            .state("stopped")
            .initial_child("running", "slow")
            .initial("running", |_d: &mut Log, _| {})
            .on("running", ("p", "stop"), "stopped", |d, _, _| d.0.push("stop"))
            .on("slow", ("p", "faster"), "fast", |d, _, _| d.0.push("faster"))
            .build()
            .unwrap();
        let mut d = Log::default();
        let mut c = ctx();
        m.start(&mut d, &mut c);
        assert_eq!(m.current_state(), "slow");
        assert!(m.is_in("running"));
        // Child-level transition first.
        m.dispatch(&mut d, &msg("p", "faster"), &mut c);
        assert_eq!(m.current_state(), "fast");
        // Parent transition fires from any child.
        m.dispatch(&mut d, &msg("p", "stop"), &mut c);
        assert_eq!(m.current_state(), "stopped");
        assert!(!m.is_in("running"));
    }

    #[test]
    fn hierarchy_entry_exit_ordering() {
        let mut m = StateMachineBuilder::new("m")
            .state("outer")
            .substate("inner", "outer")
            .state("other")
            .initial_child("outer", "inner")
            .entry("outer", |d: &mut Log, _| d.0.push("enter-outer"))
            .exit("outer", |d: &mut Log, _| d.0.push("exit-outer"))
            .entry("inner", |d: &mut Log, _| d.0.push("enter-inner"))
            .exit("inner", |d: &mut Log, _| d.0.push("exit-inner"))
            .entry("other", |d: &mut Log, _| d.0.push("enter-other"))
            .initial("outer", |_, _| {})
            .on("outer", ("p", "leave"), "other", |d, _, _| d.0.push("action"))
            .build()
            .unwrap();
        let mut d = Log::default();
        let mut c = ctx();
        m.start(&mut d, &mut c);
        assert_eq!(d.0, vec!["enter-outer", "enter-inner"]);
        d.0.clear();
        m.dispatch(&mut d, &msg("p", "leave"), &mut c);
        assert_eq!(d.0, vec!["exit-inner", "exit-outer", "action", "enter-other"]);
    }

    #[test]
    fn transition_between_siblings_keeps_parent_active() {
        let mut m = StateMachineBuilder::new("m")
            .state("parent")
            .substate("a", "parent")
            .substate("b", "parent")
            .initial_child("parent", "a")
            .entry("parent", |d: &mut Log, _| d.0.push("enter-parent"))
            .exit("parent", |d: &mut Log, _| d.0.push("exit-parent"))
            .initial("parent", |_, _| {})
            .on("a", ("p", "go"), "b", |_, _, _| {})
            .build()
            .unwrap();
        let mut d = Log::default();
        let mut c = ctx();
        m.start(&mut d, &mut c);
        d.0.clear();
        m.dispatch(&mut d, &msg("p", "go"), &mut c);
        // Parent must not be exited or re-entered for a sibling transition.
        assert!(d.0.is_empty(), "got {:?}", d.0);
        assert_eq!(m.current_state(), "b");
        assert!(m.is_in("parent"));
    }

    #[test]
    fn shallow_history_resumes_last_child() {
        let build = |with_history: bool| {
            let mut b = StateMachineBuilder::new("m")
                .state("work")
                .substate("phase1", "work")
                .substate("phase2", "work")
                .state("paused")
                .initial_child("work", "phase1")
                .initial("work", |_d: &mut (), _| {})
                .on("phase1", ("p", "next"), "phase2", |_, _, _| {})
                .on("work", ("p", "pause"), "paused", |_, _, _| {})
                .on("paused", ("p", "resume"), "work", |_, _, _| {});
            if with_history {
                b = b.history("work");
            }
            b.build().unwrap()
        };

        // With history: resume lands back in phase2.
        let mut m = build(true);
        let mut d = ();
        let mut c = ctx();
        m.start(&mut d, &mut c);
        m.dispatch(&mut d, &msg("p", "next"), &mut c);
        assert_eq!(m.current_state(), "phase2");
        m.dispatch(&mut d, &msg("p", "pause"), &mut c);
        assert_eq!(m.current_state(), "paused");
        m.dispatch(&mut d, &msg("p", "resume"), &mut c);
        assert_eq!(m.current_state(), "phase2", "history resumes phase2");

        // Without history: resume restarts at the initial child.
        let mut m = build(false);
        let mut c = ctx();
        m.start(&mut d, &mut c);
        m.dispatch(&mut d, &msg("p", "next"), &mut c);
        m.dispatch(&mut d, &msg("p", "pause"), &mut c);
        m.dispatch(&mut d, &msg("p", "resume"), &mut c);
        assert_eq!(m.current_state(), "phase1", "no history restarts phase1");
    }

    #[test]
    fn spec_extraction_mirrors_structure() {
        let m = StateMachineBuilder::new("m")
            .state("running")
            .substate("fast", "running")
            .substate("slow", "running")
            .state("stopped")
            .initial_child("running", "slow")
            .initial("running", |_d: &mut (), _| {})
            .on("running", ("p", "stop"), "stopped", |_, _, _| {})
            .internal("stopped", ("p", "ping"), |_, _, _| {})
            .build()
            .unwrap();
        let spec = m.spec();
        assert_eq!(spec.name, "m");
        assert_eq!(spec.initial.as_deref(), Some("running"));
        assert_eq!(spec.states.len(), 4);
        assert_eq!(spec.find_state("fast").unwrap().parent.as_deref(), Some("running"));
        assert_eq!(spec.find_state("running").unwrap().initial_child.as_deref(), Some("slow"));
        assert_eq!(spec.transitions.len(), 2);
        assert_eq!(spec.transitions[0].source, "running");
        assert_eq!(spec.transitions[0].target.as_deref(), Some("stopped"));
        assert_eq!(spec.transitions[0].signal, "stop");
        assert_eq!(spec.transitions[1].target, None, "internal transition has no target");
        // The builder-style spec produces the same shape.
        let by_hand = SmSpec::new("m")
            .state("running")
            .substate("fast", "running")
            .substate("slow", "running")
            .state("stopped")
            .initial_child("running", "slow")
            .initial("running")
            .on("running", ("p", "stop"), "stopped")
            .internal("stopped", ("p", "ping"));
        assert_eq!(spec, by_hand);
    }

    #[test]
    fn trigger_accessors() {
        let t = Trigger::new("p", "s");
        assert_eq!(t.port(), "p");
        assert_eq!(t.signal(), "s");
    }

    #[test]
    fn wildcard_port_trigger() {
        let mut m = StateMachineBuilder::new("m")
            .state("a")
            .state("b")
            .initial("a", |_d: &mut (), _| {})
            .on("a", ("*", "go"), "b", |_, _, _| {})
            .build()
            .unwrap();
        let mut d = ();
        let mut c = ctx();
        m.start(&mut d, &mut c);
        m.dispatch(&mut d, &msg("whatever", "go"), &mut c);
        assert_eq!(m.current_state(), "b");
    }
}
