//! Port declarations: end ports, relay ports, and the data-relay ports the
//! paper's extension adds to capsules.
//!
//! In UML-RT a *end port* terminates at a state machine, while a *relay
//! port* forwards messages across a containment boundary without processing
//! them. The paper extends capsules with DPorts "only used as relay ports —
//! no data will be processed by capsules"; [`PortKind::DataRelay`] encodes
//! exactly that restriction.

use crate::protocol::Protocol;
use std::fmt;

/// The role a declared port plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PortKind {
    /// Terminates at the capsule's state machine.
    #[default]
    End,
    /// Forwards signal messages across a containment boundary.
    Relay,
    /// A capsule-side DPort: forwards *dataflow* across the boundary; the
    /// capsule itself never processes the data (paper §2).
    DataRelay,
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PortKind::End => "end",
            PortKind::Relay => "relay",
            PortKind::DataRelay => "data-relay",
        };
        f.write_str(s)
    }
}

/// A declared port on a capsule.
///
/// Declaration is optional in this runtime — undeclared ports behave as
/// untyped end ports — but declared ports get protocol compatibility checks
/// at wiring time and relay semantics at delivery time.
///
/// # Examples
///
/// ```
/// use urt_umlrt::port::{PortDecl, PortKind};
/// use urt_umlrt::protocol::{PayloadKind, Protocol};
///
/// let protocol = Protocol::new("Ctl").with_in("go", PayloadKind::Empty);
/// let port = PortDecl::new("ctl").with_protocol(protocol).with_kind(PortKind::End);
/// assert_eq!(port.name(), "ctl");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PortDecl {
    name: String,
    kind: PortKind,
    protocol: Option<Protocol>,
}

impl PortDecl {
    /// Declares an untyped end port.
    pub fn new(name: impl Into<String>) -> Self {
        PortDecl { name: name.into(), kind: PortKind::End, protocol: None }
    }

    /// Sets the port kind (builder style).
    pub fn with_kind(mut self, kind: PortKind) -> Self {
        self.kind = kind;
        self
    }

    /// Types the port with a protocol (builder style).
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = Some(protocol);
        self
    }

    /// The port name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The port kind.
    pub fn kind(&self) -> PortKind {
        self.kind
    }

    /// The protocol, if the port is typed.
    pub fn protocol(&self) -> Option<&Protocol> {
        self.protocol.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PayloadKind;

    #[test]
    fn builder_roundtrip() {
        let p = PortDecl::new("x")
            .with_kind(PortKind::Relay)
            .with_protocol(Protocol::new("P").with_in("s", PayloadKind::Empty));
        assert_eq!(p.name(), "x");
        assert_eq!(p.kind(), PortKind::Relay);
        assert_eq!(p.protocol().unwrap().name(), "P");
    }

    #[test]
    fn default_kind_is_end() {
        assert_eq!(PortDecl::new("p").kind(), PortKind::End);
        assert!(PortDecl::new("p").protocol().is_none());
    }

    #[test]
    fn kind_display() {
        assert_eq!(PortKind::End.to_string(), "end");
        assert_eq!(PortKind::Relay.to_string(), "relay");
        assert_eq!(PortKind::DataRelay.to_string(), "data-relay");
    }
}
