//! Prioritised signal messages and the run-to-completion message queue.

use crate::value::Value;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// UML-RT message priority bands, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Lowest band, housekeeping work.
    Background,
    /// Below-normal band.
    Low,
    /// Default band.
    #[default]
    General,
    /// Above-normal band (control-critical events).
    High,
    /// Highest band (faults, panics).
    Panic,
}

impl Priority {
    /// All priorities from lowest to highest.
    pub const ALL: [Priority; 5] =
        [Priority::Background, Priority::Low, Priority::General, Priority::High, Priority::Panic];
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Priority::Background => "background",
            Priority::Low => "low",
            Priority::General => "general",
            Priority::High => "high",
            Priority::Panic => "panic",
        };
        f.write_str(name)
    }
}

/// An asynchronous signal message.
///
/// # Examples
///
/// ```
/// use urt_umlrt::message::{Message, Priority};
/// use urt_umlrt::value::Value;
///
/// let m = Message::new("setpoint", Value::Real(22.5)).with_priority(Priority::High);
/// assert_eq!(m.signal(), "setpoint");
/// assert_eq!(m.priority(), Priority::High);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    signal: String,
    value: Value,
    priority: Priority,
    /// Destination port on the receiving capsule; filled in by routing.
    port: String,
    /// Virtual time the message was sent, seconds.
    sent_at: f64,
}

impl Message {
    /// Creates a message with [`Priority::General`].
    pub fn new(signal: impl Into<String>, value: Value) -> Self {
        Message {
            signal: signal.into(),
            value,
            priority: Priority::General,
            port: String::new(),
            sent_at: 0.0,
        }
    }

    /// Sets the priority (builder style).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the destination port name (builder style; used by routing).
    pub fn with_port(mut self, port: impl Into<String>) -> Self {
        self.port = port.into();
        self
    }

    /// Sets the send timestamp (builder style; used by the controller).
    pub fn with_sent_at(mut self, t: f64) -> Self {
        self.sent_at = t;
        self
    }

    /// The signal name.
    pub fn signal(&self) -> &str {
        &self.signal
    }

    /// The payload.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// The priority band.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The port this message arrived on (empty until routed).
    pub fn port(&self) -> &str {
        &self.port
    }

    /// Virtual send time in seconds.
    pub fn sent_at(&self) -> f64 {
        self.sent_at
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}) on `{}`", self.signal, self.value, self.port)
    }
}

/// A message queued for a particular capsule.
#[derive(Debug, Clone)]
pub struct QueuedMessage {
    /// Index of the destination capsule within its controller.
    pub capsule: usize,
    /// The message itself.
    pub message: Message,
    seq: u64,
}

impl PartialEq for QueuedMessage {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for QueuedMessage {}

impl Ord for QueuedMessage {
    fn cmp(&self, other: &Self) -> Ordering {
        // Higher priority first; FIFO within a band (smaller seq first).
        self.message.priority.cmp(&other.message.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedMessage {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The controller's run-to-completion queue: strict priority bands with
/// FIFO order inside each band.
///
/// # Examples
///
/// ```
/// use urt_umlrt::message::{Message, MessageQueue, Priority};
/// use urt_umlrt::value::Value;
///
/// let mut q = MessageQueue::new();
/// q.push(0, Message::new("low", Value::Empty));
/// q.push(0, Message::new("hot", Value::Empty).with_priority(Priority::Panic));
/// assert_eq!(q.pop().unwrap().message.signal(), "hot");
/// assert_eq!(q.pop().unwrap().message.signal(), "low");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Default)]
pub struct MessageQueue {
    heap: BinaryHeap<QueuedMessage>,
    next_seq: u64,
}

impl MessageQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues `message` for capsule index `capsule`.
    pub fn push(&mut self, capsule: usize, message: Message) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedMessage { capsule, message, seq });
    }

    /// Dequeues the highest-priority, oldest message.
    pub fn pop(&mut self) -> Option<QueuedMessage> {
        self.heap.pop()
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(Priority::Panic > Priority::High);
        assert!(Priority::High > Priority::General);
        assert!(Priority::General > Priority::Low);
        assert!(Priority::Low > Priority::Background);
        assert_eq!(Priority::default(), Priority::General);
        assert_eq!(Priority::Panic.to_string(), "panic");
    }

    #[test]
    fn message_builders() {
        let m = Message::new("s", Value::Int(1))
            .with_priority(Priority::Low)
            .with_port("p")
            .with_sent_at(2.0);
        assert_eq!(m.signal(), "s");
        assert_eq!(m.value(), &Value::Int(1));
        assert_eq!(m.priority(), Priority::Low);
        assert_eq!(m.port(), "p");
        assert_eq!(m.sent_at(), 2.0);
        assert_eq!(m.to_string(), "s(1) on `p`");
    }

    #[test]
    fn queue_is_fifo_within_band() {
        let mut q = MessageQueue::new();
        q.push(0, Message::new("a", Value::Empty));
        q.push(1, Message::new("b", Value::Empty));
        q.push(2, Message::new("c", Value::Empty));
        assert_eq!(q.pop().unwrap().message.signal(), "a");
        assert_eq!(q.pop().unwrap().message.signal(), "b");
        assert_eq!(q.pop().unwrap().message.signal(), "c");
    }

    #[test]
    fn queue_priority_preempts_fifo() {
        let mut q = MessageQueue::new();
        q.push(0, Message::new("first-low", Value::Empty).with_priority(Priority::Low));
        q.push(0, Message::new("then-high", Value::Empty).with_priority(Priority::High));
        q.push(0, Message::new("then-general", Value::Empty));
        assert_eq!(q.pop().unwrap().message.signal(), "then-high");
        assert_eq!(q.pop().unwrap().message.signal(), "then-general");
        assert_eq!(q.pop().unwrap().message.signal(), "first-low");
    }

    #[test]
    fn queue_len_and_empty() {
        let mut q = MessageQueue::new();
        assert!(q.is_empty());
        q.push(0, Message::new("a", Value::Empty));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
