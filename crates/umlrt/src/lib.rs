//! An event-driven UML-RT service-library runtime, built from scratch.
//!
//! UML-RT (Selic & Rumbaugh, ObjecTime 1998) models event-driven real-time
//! systems as networks of **capsules**: active objects that own **ports**
//! typed by **protocols**, communicate exclusively through asynchronous
//! signal messages, and whose behaviour is a hierarchical **state machine**
//! executed with *run-to-completion* semantics. The DATE 2005 paper this
//! repository reproduces builds its streamer extension on top of exactly
//! such a runtime; this crate is that substrate.
//!
//! * [`protocol`] — signal sets with in/out direction and conjugation.
//! * [`value`] — message payloads.
//! * [`message`] — prioritised signal messages and the run-to-completion
//!   queue.
//! * [`statemachine`] — hierarchical state machines with entry/exit
//!   actions, guards, and internal transitions.
//! * [`capsule`] — the capsule behaviour trait and the state-machine-backed
//!   capsule.
//! * [`port`] — end ports, relay ports and the data-relay ports the paper
//!   adds to capsules.
//! * [`controller`] — a single-threaded message loop owning a set of
//!   capsules (UML-RT's "controller" concept); multiple controllers on
//!   separate threads form a system.
//! * [`timing`] — the timer service, deliberately *tick-quantised* to model
//!   the paper's observation that "timing in UML-RT is unpredictable".
//! * [`trace`] — structured execution traces for tests and experiments.
//!
//! # Examples
//!
//! A ping-pong pair of capsules:
//!
//! ```
//! use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
//! use urt_umlrt::controller::Controller;
//! use urt_umlrt::statemachine::StateMachineBuilder;
//! use urt_umlrt::value::Value;
//!
//! # fn main() -> Result<(), urt_umlrt::RtError> {
//! let ping = StateMachineBuilder::new("pinger")
//!     .state("idle")
//!     .initial("idle", |_d: &mut u32, ctx: &mut CapsuleContext| {
//!         ctx.send("out", "ping", Value::Empty);
//!     })
//!     .on("idle", ("out", "pong"), "idle", |d, _m, ctx| {
//!         *d += 1;
//!         if *d < 3 {
//!             ctx.send("out", "ping", Value::Empty);
//!         }
//!     })
//!     .build()?;
//!
//! let pong = StateMachineBuilder::new("ponger")
//!     .state("idle")
//!     .initial("idle", |_d: &mut (), _ctx: &mut CapsuleContext| {})
//!     .on("idle", ("in", "ping"), "idle", |_d, _m, ctx| {
//!         ctx.send("in", "pong", Value::Empty);
//!     })
//!     .build()?;
//!
//! let mut controller = Controller::new("main");
//! let a = controller.add_capsule(Box::new(SmCapsule::new(ping, 0u32)));
//! let b = controller.add_capsule(Box::new(SmCapsule::new(pong, ())));
//! controller.connect((a, "out"), (b, "in"))?;
//! controller.start()?;
//! controller.run_until_quiescent()?;
//! # Ok(())
//! # }
//! ```

pub mod capsule;
pub mod controller;
pub mod error;
pub mod message;
pub mod port;
pub mod protocol;
pub mod statemachine;
pub mod sync;
pub mod timing;
pub mod trace;
pub mod value;

pub use capsule::{Capsule, CapsuleContext, SmCapsule};
pub use controller::Controller;
pub use error::RtError;
pub use message::{Message, Priority};
pub use protocol::{Protocol, SignalSpec};
pub use statemachine::{StateMachine, StateMachineBuilder};
pub use value::Value;
