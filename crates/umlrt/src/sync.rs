//! Poison-tolerant synchronisation primitives over `std::sync`.
//!
//! The workspace builds hermetically with zero registry dependencies, so
//! `parking_lot` is replaced by this thin wrapper: the same non-`Result`
//! `lock()` ergonomics, implemented by recovering the guard from a
//! poisoned `std::sync::Mutex` instead of propagating the panic. Tracers
//! and recorders only append to or copy plain collections, so observing a
//! value written by a thread that later panicked is harmless — losing the
//! whole trace to poisoning is not.

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutual-exclusion lock whose `lock()` never fails: if a holder
/// panicked, the poison is cleared and the guard is handed out anyway.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value (poison ignored).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A parking_lot-style lock keeps working after a holder panicked.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn is_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<Mutex<Vec<u8>>>();
    }
}
