//! Protocols: named, directed signal sets that type ports.
//!
//! A UML-RT protocol declares the signals a port may receive (`in`) and
//! send (`out`). The *conjugated* form of a protocol swaps the two sets, so
//! a client port and a server port of the same protocol plug together.

use crate::value::Value;
use std::fmt;

/// Payload type a signal expects, checked loosely at send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum PayloadKind {
    /// No payload.
    #[default]
    Empty,
    /// [`Value::Bool`].
    Bool,
    /// [`Value::Int`].
    Int,
    /// [`Value::Real`].
    Real,
    /// [`Value::Vector`].
    Vector,
    /// [`Value::Text`].
    Text,
    /// Any payload accepted.
    Any,
}

impl PayloadKind {
    /// Whether `value` conforms to this payload kind.
    pub fn accepts(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (PayloadKind::Any, _)
                | (PayloadKind::Empty, Value::Empty)
                | (PayloadKind::Bool, Value::Bool(_))
                | (PayloadKind::Int, Value::Int(_))
                | (PayloadKind::Real, Value::Real(_))
                | (PayloadKind::Vector, Value::Vector(_))
                | (PayloadKind::Text, Value::Text(_))
        )
    }
}

/// A named signal with an expected payload kind.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignalSpec {
    name: String,
    payload: PayloadKind,
}

impl SignalSpec {
    /// Creates a signal spec.
    pub fn new(name: impl Into<String>, payload: PayloadKind) -> Self {
        SignalSpec { name: name.into(), payload }
    }

    /// The signal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expected payload kind.
    pub fn payload(&self) -> PayloadKind {
        self.payload
    }
}

/// A protocol: the set of incoming and outgoing signals a port supports.
///
/// # Examples
///
/// ```
/// use urt_umlrt::protocol::{PayloadKind, Protocol};
///
/// let p = Protocol::new("ControlCmd")
///     .with_in("setpoint", PayloadKind::Real)
///     .with_out("ack", PayloadKind::Empty);
/// let q = p.conjugated();
/// assert!(q.out_signal("setpoint").is_some());
/// assert!(Protocol::compatible(&p, &q));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Protocol {
    name: String,
    conjugated: bool,
    in_signals: Vec<SignalSpec>,
    out_signals: Vec<SignalSpec>,
}

impl Protocol {
    /// Creates an empty protocol.
    pub fn new(name: impl Into<String>) -> Self {
        Protocol {
            name: name.into(),
            conjugated: false,
            in_signals: Vec::new(),
            out_signals: Vec::new(),
        }
    }

    /// Adds an incoming signal (builder style).
    pub fn with_in(mut self, name: impl Into<String>, payload: PayloadKind) -> Self {
        self.in_signals.push(SignalSpec::new(name, payload));
        self
    }

    /// Adds an outgoing signal (builder style).
    pub fn with_out(mut self, name: impl Into<String>, payload: PayloadKind) -> Self {
        self.out_signals.push(SignalSpec::new(name, payload));
        self
    }

    /// Protocol name (without conjugation marker).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is the conjugated form.
    pub fn is_conjugated(&self) -> bool {
        self.conjugated
    }

    /// The conjugated protocol: in/out swapped.
    pub fn conjugated(&self) -> Protocol {
        Protocol {
            name: self.name.clone(),
            conjugated: !self.conjugated,
            in_signals: self.out_signals.clone(),
            out_signals: self.in_signals.clone(),
        }
    }

    /// Signals this protocol can receive.
    pub fn in_signals(&self) -> &[SignalSpec] {
        &self.in_signals
    }

    /// Signals this protocol can send.
    pub fn out_signals(&self) -> &[SignalSpec] {
        &self.out_signals
    }

    /// Looks up an incoming signal by name.
    pub fn in_signal(&self, name: &str) -> Option<&SignalSpec> {
        self.in_signals.iter().find(|s| s.name() == name)
    }

    /// Looks up an outgoing signal by name.
    pub fn out_signal(&self, name: &str) -> Option<&SignalSpec> {
        self.out_signals.iter().find(|s| s.name() == name)
    }

    /// Whether two port protocols can be wired together: every signal one
    /// side sends must be receivable by the other, in both directions.
    pub fn compatible(a: &Protocol, b: &Protocol) -> bool {
        let covers = |outs: &[SignalSpec], ins: &[SignalSpec]| {
            outs.iter().all(|o| {
                ins.iter().any(|i| {
                    i.name() == o.name()
                        && (i.payload() == o.payload() || i.payload() == PayloadKind::Any)
                })
            })
        };
        covers(&a.out_signals, &b.in_signals) && covers(&b.out_signals, &a.in_signals)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, if self.conjugated { "~" } else { "" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto() -> Protocol {
        Protocol::new("P").with_in("a", PayloadKind::Real).with_out("b", PayloadKind::Empty)
    }

    #[test]
    fn payload_kinds_accept_values() {
        assert!(PayloadKind::Real.accepts(&Value::Real(1.0)));
        assert!(!PayloadKind::Real.accepts(&Value::Int(1)));
        assert!(PayloadKind::Any.accepts(&Value::Text("x".into())));
        assert!(PayloadKind::Empty.accepts(&Value::Empty));
        assert!(PayloadKind::Vector.accepts(&Value::Vector(vec![])));
        assert!(!PayloadKind::Bool.accepts(&Value::Empty));
    }

    #[test]
    fn conjugation_swaps_directions() {
        let p = proto();
        let q = p.conjugated();
        assert!(q.is_conjugated());
        assert_eq!(q.in_signal("b").unwrap().name(), "b");
        assert_eq!(q.out_signal("a").unwrap().name(), "a");
        assert_eq!(q.conjugated(), p, "double conjugation is identity");
        assert_eq!(q.to_string(), "P~");
        assert_eq!(p.to_string(), "P");
    }

    #[test]
    fn compatibility_base_vs_conjugate() {
        let p = proto();
        let q = p.conjugated();
        assert!(Protocol::compatible(&p, &q));
        assert!(!Protocol::compatible(&p, &p), "base-to-base cannot receive its own sends");
    }

    #[test]
    fn compatibility_with_any_payload() {
        let sender = Protocol::new("S").with_out("x", PayloadKind::Real);
        let receiver = Protocol::new("S").with_in("x", PayloadKind::Any);
        assert!(Protocol::compatible(&sender, &receiver));
        let strict = Protocol::new("S").with_in("x", PayloadKind::Int);
        assert!(!Protocol::compatible(&sender, &strict));
    }

    #[test]
    fn lookup_missing_signal() {
        let p = proto();
        assert!(p.in_signal("nope").is_none());
        assert!(p.out_signal("a").is_none());
    }
}
