//! Runtime error type.

use std::error::Error;
use std::fmt;

/// Errors raised by the UML-RT runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtError {
    /// A state name was used twice or a referenced state does not exist.
    UnknownState {
        /// The offending state name.
        name: String,
    },
    /// A state machine was built without an initial transition.
    MissingInitial,
    /// Duplicate state name in a builder.
    DuplicateState {
        /// The duplicated state name.
        name: String,
    },
    /// A capsule index passed to the controller does not exist.
    UnknownCapsule {
        /// The offending capsule index.
        index: usize,
    },
    /// A port name was not declared or already wired.
    BadPort {
        /// The capsule the port belongs to.
        capsule: String,
        /// The port name.
        port: String,
        /// Why the port is unusable.
        reason: String,
    },
    /// Two ports could not be connected (protocol/conjugation mismatch).
    IncompatiblePorts {
        /// Human-readable mismatch description.
        detail: String,
    },
    /// The controller was started twice or driven before `start`.
    BadLifecycle {
        /// What went wrong.
        detail: String,
    },
    /// A message was sent on a port with no wired peer.
    Unconnected {
        /// The capsule the port belongs to.
        capsule: String,
        /// The port name.
        port: String,
    },
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::UnknownState { name } => write!(f, "unknown state `{name}`"),
            RtError::MissingInitial => write!(f, "state machine has no initial transition"),
            RtError::DuplicateState { name } => write!(f, "duplicate state `{name}`"),
            RtError::UnknownCapsule { index } => write!(f, "unknown capsule index {index}"),
            RtError::BadPort { capsule, port, reason } => {
                write!(f, "bad port `{port}` on capsule `{capsule}`: {reason}")
            }
            RtError::IncompatiblePorts { detail } => {
                write!(f, "incompatible ports: {detail}")
            }
            RtError::BadLifecycle { detail } => write!(f, "bad lifecycle: {detail}"),
            RtError::Unconnected { capsule, port } => {
                write!(f, "port `{port}` on capsule `{capsule}` is not connected")
            }
        }
    }
}

impl Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(RtError::UnknownState { name: "x".into() }.to_string(), "unknown state `x`");
        assert!(RtError::MissingInitial.to_string().contains("initial"));
        assert!(RtError::Unconnected { capsule: "c".into(), port: "p".into() }
            .to_string()
            .contains("not connected"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RtError>();
    }
}
