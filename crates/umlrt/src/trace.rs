//! Structured execution traces shared by tests, examples and experiments.

use crate::sync::Mutex;
use std::fmt;
use std::sync::Arc;

/// One traced runtime event.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceKind {
    /// A message left a capsule through a port.
    Sent {
        /// Sending capsule name.
        from: String,
        /// Port the message left through.
        port: String,
        /// Signal name.
        signal: String,
    },
    /// A message was delivered to a capsule.
    Delivered {
        /// Receiving capsule name.
        to: String,
        /// Port the message arrived on.
        port: String,
        /// Signal name.
        signal: String,
        /// Whether some transition handled it.
        handled: bool,
    },
    /// A message was dropped (unconnected port).
    Dropped {
        /// Sending capsule name.
        from: String,
        /// The unconnected port.
        port: String,
        /// Signal name.
        signal: String,
    },
    /// A timer was armed.
    TimerSet {
        /// Owning capsule name.
        capsule: String,
        /// Quantised absolute due time.
        due: f64,
    },
    /// A timer fired.
    TimerFired {
        /// Owning capsule name.
        capsule: String,
        /// Signal delivered.
        signal: String,
    },
}

/// A timestamped trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time in seconds.
    pub time: f64,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10.6}] ", self.time)?;
        match &self.kind {
            TraceKind::Sent { from, port, signal } => {
                write!(f, "{from} sent {signal} via {port}")
            }
            TraceKind::Delivered { to, port, signal, handled } => {
                let mark = if *handled { "" } else { " (unhandled)" };
                write!(f, "{to} received {signal} on {port}{mark}")
            }
            TraceKind::Dropped { from, port, signal } => {
                write!(f, "{from} dropped {signal}: port {port} unconnected")
            }
            TraceKind::TimerSet { capsule, due } => {
                write!(f, "{capsule} armed timer due {due:.6}")
            }
            TraceKind::TimerFired { capsule, signal } => {
                write!(f, "{capsule} timer fired: {signal}")
            }
        }
    }
}

/// A cheaply clonable, thread-safe trace collector.
///
/// # Examples
///
/// ```
/// use urt_umlrt::trace::{TraceEvent, TraceKind, Tracer};
///
/// let tracer = Tracer::new();
/// tracer.record(TraceEvent {
///     time: 0.0,
///     kind: TraceKind::TimerFired { capsule: "c".into(), signal: "tick".into() },
/// });
/// assert_eq!(tracer.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Copies out all events recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Removes all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Counts events matching a predicate.
    pub fn count_matching(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.lock().iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_records_and_snapshots() {
        let t = Tracer::new();
        assert!(t.is_empty());
        t.record(TraceEvent {
            time: 1.0,
            kind: TraceKind::Sent { from: "a".into(), port: "p".into(), signal: "s".into() },
        });
        let clone = t.clone();
        clone.record(TraceEvent {
            time: 2.0,
            kind: TraceKind::Dropped { from: "a".into(), port: "q".into(), signal: "s".into() },
        });
        // Clones share storage.
        assert_eq!(t.len(), 2);
        let snap = t.snapshot();
        assert_eq!(snap[0].time, 1.0);
        assert_eq!(t.count_matching(|e| matches!(e.kind, TraceKind::Dropped { .. })), 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn display_forms() {
        let e = TraceEvent {
            time: 0.5,
            kind: TraceKind::Delivered {
                to: "c".into(),
                port: "p".into(),
                signal: "s".into(),
                handled: false,
            },
        };
        let s = e.to_string();
        assert!(s.contains("received"));
        assert!(s.contains("unhandled"));
        let e =
            TraceEvent { time: 0.5, kind: TraceKind::TimerSet { capsule: "c".into(), due: 1.25 } };
        assert!(e.to_string().contains("armed"));
    }

    #[test]
    fn tracer_is_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<Tracer>();
    }
}
