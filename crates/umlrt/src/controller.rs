//! The controller: a single-threaded run-to-completion message loop.
//!
//! A UML-RT *controller* owns a set of capsule instances and a message
//! queue; each physical thread runs one controller. The paper's unified
//! engine (in `urt-core`) puts capsules on controller threads and streamers
//! on solver threads, bridged by channels — this type is the capsule side.

use crate::capsule::{Capsule, CapsuleContext};
use crate::error::RtError;
use crate::message::{Message, MessageQueue};
use crate::port::{PortDecl, PortKind};
use crate::protocol::Protocol;
use crate::timing::TimerService;
use crate::trace::{TraceEvent, TraceKind, Tracer};
use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc::Sender;

/// Where messages sent from a `(capsule, port)` pair go.
#[derive(Debug, Clone)]
enum Endpoint {
    /// Another capsule in this controller.
    Capsule { index: usize, port: String },
    /// Out of the controller, e.g. to a streamer SPort or the environment.
    External(Sender<Message>),
}

/// A single-threaded UML-RT controller.
///
/// See the crate-level example for end-to-end usage.
pub struct Controller {
    name: String,
    capsules: Vec<Box<dyn Capsule>>,
    routes: HashMap<(usize, String), Endpoint>,
    relays: HashMap<(usize, String), (usize, String)>,
    ports: HashMap<(usize, String), PortDecl>,
    queue: MessageQueue,
    timers: TimerService,
    clock: f64,
    next_timer_id: u64,
    started: bool,
    tracer: Option<Tracer>,
    dropped: u64,
    delivered: u64,
}

impl fmt::Debug for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Controller")
            .field("name", &self.name)
            .field("capsules", &self.capsules.len())
            .field("clock", &self.clock)
            .field("queued", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl Controller {
    /// Creates an empty controller.
    pub fn new(name: impl Into<String>) -> Self {
        Controller {
            name: name.into(),
            capsules: Vec::new(),
            routes: HashMap::new(),
            relays: HashMap::new(),
            ports: HashMap::new(),
            queue: MessageQueue::new(),
            timers: TimerService::new(),
            clock: 0.0,
            next_timer_id: 0,
            started: false,
            tracer: None,
            dropped: 0,
            delivered: 0,
        }
    }

    /// Controller name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attaches a tracer; all subsequent events are recorded into it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Sets the timer-service tick resolution (see [`TimerService`]).
    pub fn set_timer_tick(&mut self, tick: f64) {
        self.timers.set_tick(tick);
    }

    /// Adds a capsule, returning its index for wiring.
    pub fn add_capsule(&mut self, capsule: Box<dyn Capsule>) -> usize {
        self.capsules.push(capsule);
        self.capsules.len() - 1
    }

    /// Number of hosted capsules.
    pub fn capsule_count(&self) -> usize {
        self.capsules.len()
    }

    /// Name of the capsule at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::UnknownCapsule`] for an out-of-range index.
    pub fn capsule_name(&self, index: usize) -> Result<&str, RtError> {
        self.capsules.get(index).map(|c| c.name()).ok_or(RtError::UnknownCapsule { index })
    }

    /// Current state of the capsule at `index` (for tests).
    ///
    /// # Errors
    ///
    /// Returns [`RtError::UnknownCapsule`] for an out-of-range index.
    pub fn capsule_state(&self, index: usize) -> Result<&str, RtError> {
        self.capsules.get(index).map(|c| c.current_state()).ok_or(RtError::UnknownCapsule { index })
    }

    /// Declares a typed port on a capsule, enabling protocol checks at
    /// [`Controller::connect`] time and relay semantics at delivery.
    ///
    /// # Errors
    ///
    /// * [`RtError::UnknownCapsule`] for a bad index.
    /// * [`RtError::BadPort`] if the port was already declared.
    pub fn declare_port(&mut self, capsule: usize, decl: PortDecl) -> Result<(), RtError> {
        if capsule >= self.capsules.len() {
            return Err(RtError::UnknownCapsule { index: capsule });
        }
        let key = (capsule, decl.name().to_owned());
        if self.ports.contains_key(&key) {
            return Err(RtError::BadPort {
                capsule: self.capsules[capsule].name().to_owned(),
                port: decl.name().to_owned(),
                reason: "already declared".into(),
            });
        }
        self.ports.insert(key, decl);
        Ok(())
    }

    /// Wires two capsule ports together, bidirectionally.
    ///
    /// If both ports were declared with protocols, the protocols must be
    /// [compatible](Protocol::compatible).
    ///
    /// # Errors
    ///
    /// * [`RtError::UnknownCapsule`] for bad indices.
    /// * [`RtError::IncompatiblePorts`] on protocol mismatch.
    pub fn connect(&mut self, a: (usize, &str), b: (usize, &str)) -> Result<(), RtError> {
        for (idx, _) in [a, b] {
            if idx >= self.capsules.len() {
                return Err(RtError::UnknownCapsule { index: idx });
            }
        }
        let pa = self.ports.get(&(a.0, a.1.to_owned())).and_then(PortDecl::protocol);
        let pb = self.ports.get(&(b.0, b.1.to_owned())).and_then(PortDecl::protocol);
        if let (Some(pa), Some(pb)) = (pa, pb) {
            if !Protocol::compatible(pa, pb) {
                return Err(RtError::IncompatiblePorts { detail: format!("{pa} vs {pb}") });
            }
        }
        self.routes
            .insert((a.0, a.1.to_owned()), Endpoint::Capsule { index: b.0, port: b.1.to_owned() });
        self.routes
            .insert((b.0, b.1.to_owned()), Endpoint::Capsule { index: a.0, port: a.1.to_owned() });
        Ok(())
    }

    /// Routes messages sent on `(capsule, port)` out of the controller,
    /// e.g. to a streamer thread or a test harness.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::UnknownCapsule`] for a bad index.
    pub fn connect_external(
        &mut self,
        capsule: usize,
        port: &str,
        sender: Sender<Message>,
    ) -> Result<(), RtError> {
        if capsule >= self.capsules.len() {
            return Err(RtError::UnknownCapsule { index: capsule });
        }
        self.routes.insert((capsule, port.to_owned()), Endpoint::External(sender));
        Ok(())
    }

    /// Declares that messages *arriving* at `(capsule, from_port)` are
    /// forwarded to `(target, to_port)` — UML-RT relay-port semantics.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::UnknownCapsule`] for bad indices.
    pub fn add_relay(
        &mut self,
        capsule: usize,
        from_port: &str,
        target: (usize, &str),
    ) -> Result<(), RtError> {
        for idx in [capsule, target.0] {
            if idx >= self.capsules.len() {
                return Err(RtError::UnknownCapsule { index: idx });
            }
        }
        self.relays.insert((capsule, from_port.to_owned()), (target.0, target.1.to_owned()));
        Ok(())
    }

    /// Injects a message from outside (environment, streamer thread, test).
    ///
    /// # Errors
    ///
    /// Returns [`RtError::UnknownCapsule`] for a bad index.
    pub fn inject(&mut self, capsule: usize, port: &str, message: Message) -> Result<(), RtError> {
        if capsule >= self.capsules.len() {
            return Err(RtError::UnknownCapsule { index: capsule });
        }
        let (capsule, port) = self.resolve_relays(capsule, port);
        self.queue.push(capsule, message.with_port(port));
        Ok(())
    }

    /// Starts every capsule (runs initial transitions).
    ///
    /// # Errors
    ///
    /// Returns [`RtError::BadLifecycle`] if already started.
    pub fn start(&mut self) -> Result<(), RtError> {
        if self.started {
            return Err(RtError::BadLifecycle { detail: "controller already started".into() });
        }
        self.started = true;
        for i in 0..self.capsules.len() {
            let mut ctx =
                CapsuleContext::new(self.capsules[i].name(), self.clock, self.next_timer_id);
            // Temporarily move the capsule out to satisfy the borrow checker.
            let mut capsule = std::mem::replace(&mut self.capsules[i], Box::new(NullCapsule));
            capsule.on_start(&mut ctx);
            self.capsules[i] = capsule;
            self.apply_effects(i, ctx);
        }
        Ok(())
    }

    /// Whether [`Controller::start`] has run.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Current virtual time, seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped on unconnected ports so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Number of queued messages.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Processes one queued message (one run-to-completion step).
    ///
    /// Returns `false` when the queue is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::BadLifecycle`] if the controller was not started.
    pub fn step(&mut self) -> Result<bool, RtError> {
        if !self.started {
            return Err(RtError::BadLifecycle { detail: "step before start".into() });
        }
        let Some(queued) = self.queue.pop() else {
            return Ok(false);
        };
        let idx = queued.capsule;
        let msg = queued.message;
        let mut ctx =
            CapsuleContext::new(self.capsules[idx].name(), self.clock, self.next_timer_id);
        let mut capsule = std::mem::replace(&mut self.capsules[idx], Box::new(NullCapsule));
        capsule.on_message(&msg, &mut ctx);
        self.capsules[idx] = capsule;
        self.delivered += 1;
        if let Some(tracer) = &self.tracer {
            tracer.record(TraceEvent {
                time: self.clock,
                kind: TraceKind::Delivered {
                    to: self.capsules[idx].name().to_owned(),
                    port: msg.port().to_owned(),
                    signal: msg.signal().to_owned(),
                    handled: true,
                },
            });
        }
        self.apply_effects(idx, ctx);
        Ok(true)
    }

    /// Processes messages until the queue drains; returns how many ran.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::BadLifecycle`] if the controller was not started.
    pub fn run_until_quiescent(&mut self) -> Result<usize, RtError> {
        let mut n = 0;
        while self.step()? {
            n += 1;
        }
        Ok(n)
    }

    /// Advances virtual time to `t`, firing due timers and processing all
    /// resulting messages (event-driven simulation).
    ///
    /// # Errors
    ///
    /// Returns [`RtError::BadLifecycle`] if the controller was not started.
    pub fn run_until(&mut self, t_end: f64) -> Result<usize, RtError> {
        let mut n = self.run_until_quiescent()?;
        while let Some(due) = self.timers.next_due() {
            if due > t_end {
                break;
            }
            self.clock = due.max(self.clock);
            for fired in self.timers.pop_due(self.clock) {
                if let Some(tracer) = &self.tracer {
                    tracer.record(TraceEvent {
                        time: self.clock,
                        kind: TraceKind::TimerFired {
                            capsule: self.capsules[fired.capsule].name().to_owned(),
                            signal: fired.message.signal().to_owned(),
                        },
                    });
                }
                self.queue.push(fired.capsule, fired.message);
            }
            n += self.run_until_quiescent()?;
        }
        self.clock = self.clock.max(t_end);
        Ok(n)
    }

    /// Advances the clock without firing timers; used by external
    /// co-simulation drivers that manage time themselves.
    pub fn set_time(&mut self, t: f64) {
        self.clock = self.clock.max(t);
    }

    /// Frame service: incarnates a capsule at run time. If the controller
    /// is already running, the capsule's initial transition executes
    /// immediately.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for resource caps.
    pub fn incarnate(&mut self, capsule: Box<dyn Capsule>) -> Result<usize, RtError> {
        let index = self.add_capsule(capsule);
        if self.started {
            let mut ctx =
                CapsuleContext::new(self.capsules[index].name(), self.clock, self.next_timer_id);
            let mut capsule = std::mem::replace(&mut self.capsules[index], Box::new(NullCapsule));
            capsule.on_start(&mut ctx);
            self.capsules[index] = capsule;
            self.apply_effects(index, ctx);
        }
        Ok(index)
    }

    /// Frame service: destroys a capsule. Its ports are unwired (messages
    /// to them are dropped from now on) and the slot is tombstoned; the
    /// index is never reused.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::UnknownCapsule`] for a bad index.
    pub fn destroy(&mut self, index: usize) -> Result<(), RtError> {
        if index >= self.capsules.len() {
            return Err(RtError::UnknownCapsule { index });
        }
        self.capsules[index] = Box::new(NullCapsule);
        self.routes.retain(|(c, _), endpoint| {
            *c != index
                && !matches!(endpoint, Endpoint::Capsule { index: dest, .. } if *dest == index)
        });
        self.relays.retain(|(c, _), (dest, _)| *c != index && *dest != index);
        Ok(())
    }

    /// Resolves relay chains (bounded hops to survive accidental cycles).
    fn resolve_relays(&self, mut capsule: usize, port: &str) -> (usize, String) {
        let mut port = port.to_owned();
        for _ in 0..16 {
            match self.relays.get(&(capsule, port.clone())) {
                Some((c, p)) => {
                    capsule = *c;
                    port = p.clone();
                }
                None => break,
            }
        }
        (capsule, port)
    }

    fn apply_effects(&mut self, sender: usize, mut ctx: CapsuleContext) {
        self.next_timer_id = ctx.next_timer_id();
        for id in ctx.take_timer_cancels() {
            self.timers.cancel(id);
        }
        for req in ctx.take_timer_sets() {
            let due = self.timers.schedule(
                sender,
                req.id,
                self.clock,
                req.delay,
                req.period,
                &req.signal,
            );
            if let Some(tracer) = &self.tracer {
                tracer.record(TraceEvent {
                    time: self.clock,
                    kind: TraceKind::TimerSet {
                        capsule: self.capsules[sender].name().to_owned(),
                        due,
                    },
                });
            }
        }
        for (port, message) in ctx.take_outbox() {
            self.route(sender, &port, message);
        }
    }

    fn route(&mut self, sender: usize, port: &str, message: Message) {
        if let Some(tracer) = &self.tracer {
            tracer.record(TraceEvent {
                time: self.clock,
                kind: TraceKind::Sent {
                    from: self.capsules[sender].name().to_owned(),
                    port: port.to_owned(),
                    signal: message.signal().to_owned(),
                },
            });
        }
        match self.routes.get(&(sender, port.to_owned())) {
            Some(Endpoint::Capsule { index, port: dest_port }) => {
                let (index, dest_port) = self.resolve_relays(*index, dest_port);
                self.queue.push(index, message.with_port(dest_port));
            }
            Some(Endpoint::External(tx)) => {
                if tx.send(message.with_port(port)).is_err() {
                    self.dropped += 1;
                }
            }
            None => {
                self.dropped += 1;
                if let Some(tracer) = &self.tracer {
                    tracer.record(TraceEvent {
                        time: self.clock,
                        kind: TraceKind::Dropped {
                            from: self.capsules[sender].name().to_owned(),
                            port: port.to_owned(),
                            signal: message.signal().to_owned(),
                        },
                    });
                }
            }
        }
    }
}

/// Placeholder swapped in while a capsule runs (never receives messages).
struct NullCapsule;

impl Capsule for NullCapsule {
    fn name(&self) -> &str {
        "<null>"
    }

    fn on_start(&mut self, _ctx: &mut CapsuleContext) {}

    fn on_message(&mut self, _msg: &Message, _ctx: &mut CapsuleContext) {}
}

/// Checks whether a port kind may terminate messages at a state machine;
/// data-relay ports may not (paper: "no data will be processed by
/// capsules").
pub fn port_may_terminate(kind: PortKind) -> bool {
    matches!(kind, PortKind::End)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capsule::SmCapsule;
    use crate::statemachine::StateMachineBuilder;
    use crate::timing::TIMER_PORT;
    use crate::value::Value;
    use std::sync::mpsc::channel;

    fn counter_capsule(name: &str) -> Box<dyn Capsule> {
        let m = StateMachineBuilder::new(name)
            .state("s")
            .initial("s", |_d: &mut u64, _| {})
            .internal("s", ("*", "inc"), |d, _, _| *d += 1)
            .build()
            .unwrap();
        Box::new(SmCapsule::new(m, 0u64))
    }

    #[test]
    fn lifecycle_errors() {
        let mut c = Controller::new("c");
        assert!(matches!(c.step(), Err(RtError::BadLifecycle { .. })));
        c.start().unwrap();
        assert!(matches!(c.start(), Err(RtError::BadLifecycle { .. })));
        assert!(c.is_started());
    }

    #[test]
    fn inject_and_step() {
        let mut c = Controller::new("c");
        let i = c.add_capsule(counter_capsule("k"));
        c.start().unwrap();
        c.inject(i, "p", Message::new("inc", Value::Empty)).unwrap();
        assert_eq!(c.queued_len(), 1);
        assert!(c.step().unwrap());
        assert!(!c.step().unwrap());
        assert_eq!(c.delivered_count(), 1);
    }

    #[test]
    fn unknown_capsule_errors() {
        let mut c = Controller::new("c");
        assert!(matches!(
            c.inject(0, "p", Message::new("x", Value::Empty)),
            Err(RtError::UnknownCapsule { .. })
        ));
        assert!(matches!(c.capsule_name(3), Err(RtError::UnknownCapsule { index: 3 })));
        assert!(matches!(c.connect((0, "a"), (1, "b")), Err(RtError::UnknownCapsule { .. })));
    }

    #[test]
    fn ping_pong_round_trip() {
        let ping = StateMachineBuilder::new("ping")
            .state("s")
            .initial("s", |_d: &mut u32, ctx: &mut CapsuleContext| {
                ctx.send("out", "ping", Value::Empty);
            })
            .internal("s", ("out", "pong"), |d, _, ctx| {
                *d += 1;
                if *d < 5 {
                    ctx.send("out", "ping", Value::Empty);
                }
            })
            .build()
            .unwrap();
        let pong = StateMachineBuilder::new("pong")
            .state("s")
            .initial("s", |_d: &mut (), _| {})
            .internal("s", ("in", "ping"), |_, _, ctx| {
                ctx.send("in", "pong", Value::Empty);
            })
            .build()
            .unwrap();
        let mut c = Controller::new("main");
        let a = c.add_capsule(Box::new(SmCapsule::new(ping, 0u32)));
        let b = c.add_capsule(Box::new(SmCapsule::new(pong, ())));
        c.connect((a, "out"), (b, "in")).unwrap();
        c.start().unwrap();
        let n = c.run_until_quiescent().unwrap();
        // 5 pings + 5 pongs.
        assert_eq!(n, 10);
    }

    #[test]
    fn unconnected_port_drops() {
        let m = StateMachineBuilder::new("m")
            .state("s")
            .initial("s", |_d: &mut (), ctx: &mut CapsuleContext| {
                ctx.send("nowhere", "x", Value::Empty);
            })
            .build()
            .unwrap();
        let mut c = Controller::new("c");
        let tracer = Tracer::new();
        c.set_tracer(tracer.clone());
        c.add_capsule(Box::new(SmCapsule::new(m, ())));
        c.start().unwrap();
        assert_eq!(c.dropped_count(), 1);
        assert_eq!(tracer.count_matching(|e| matches!(e.kind, TraceKind::Dropped { .. })), 1);
    }

    #[test]
    fn external_endpoint_receives() {
        let m = StateMachineBuilder::new("m")
            .state("s")
            .initial("s", |_d: &mut (), ctx: &mut CapsuleContext| {
                ctx.send("ext", "hello", Value::Real(1.0));
            })
            .build()
            .unwrap();
        let mut c = Controller::new("c");
        let i = c.add_capsule(Box::new(SmCapsule::new(m, ())));
        let (tx, rx) = channel();
        c.connect_external(i, "ext", tx).unwrap();
        c.start().unwrap();
        let got = rx.try_recv().unwrap();
        assert_eq!(got.signal(), "hello");
        assert_eq!(got.port(), "ext");
    }

    #[test]
    fn protocol_checked_connect() {
        use crate::protocol::{PayloadKind, Protocol};
        let mut c = Controller::new("c");
        let a = c.add_capsule(counter_capsule("a"));
        let b = c.add_capsule(counter_capsule("b"));
        let p = Protocol::new("P").with_out("inc", PayloadKind::Empty);
        c.declare_port(a, PortDecl::new("out").with_protocol(p.clone())).unwrap();
        c.declare_port(b, PortDecl::new("in").with_protocol(p.conjugated())).unwrap();
        assert!(c.connect((a, "out"), (b, "in")).is_ok());

        // Incompatible: both base forms.
        let mut c2 = Controller::new("c2");
        let a2 = c2.add_capsule(counter_capsule("a"));
        let b2 = c2.add_capsule(counter_capsule("b"));
        c2.declare_port(a2, PortDecl::new("out").with_protocol(p.clone())).unwrap();
        c2.declare_port(b2, PortDecl::new("in").with_protocol(p.clone())).unwrap();
        assert!(matches!(
            c2.connect((a2, "out"), (b2, "in")),
            Err(RtError::IncompatiblePorts { .. })
        ));
    }

    #[test]
    fn duplicate_port_declaration_rejected() {
        let mut c = Controller::new("c");
        let a = c.add_capsule(counter_capsule("a"));
        c.declare_port(a, PortDecl::new("p")).unwrap();
        assert!(matches!(c.declare_port(a, PortDecl::new("p")), Err(RtError::BadPort { .. })));
    }

    #[test]
    fn relay_forwards_injected_messages() {
        let mut c = Controller::new("c");
        let outer = c.add_capsule(counter_capsule("outer"));
        let inner = c.add_capsule(counter_capsule("inner"));
        c.add_relay(outer, "boundary", (inner, "p")).unwrap();
        c.start().unwrap();
        c.inject(outer, "boundary", Message::new("inc", Value::Empty)).unwrap();
        c.run_until_quiescent().unwrap();
        // Message must have reached `inner`, not `outer`.
        assert_eq!(c.capsule_state(inner).unwrap(), "s");
        assert_eq!(c.delivered_count(), 1);
    }

    #[test]
    fn timers_fire_in_virtual_time() {
        let m = StateMachineBuilder::new("t")
            .state("s")
            .initial("s", |_d: &mut u32, ctx: &mut CapsuleContext| {
                ctx.inform_in(0.5, "deadline");
            })
            .internal("s", (TIMER_PORT, "deadline"), |d, _, _| *d += 1)
            .build()
            .unwrap();
        let mut c = Controller::new("c");
        c.add_capsule(Box::new(SmCapsule::new(m, 0u32)));
        c.start().unwrap();
        let n = c.run_until(1.0).unwrap();
        assert_eq!(n, 1);
        assert!((c.now() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_timer_fires_repeatedly() {
        let m = StateMachineBuilder::new("t")
            .state("s")
            .initial("s", |_d: &mut u32, ctx: &mut CapsuleContext| {
                ctx.inform_every(0.1, "tick");
            })
            .internal("s", (TIMER_PORT, "tick"), |d, _, _| *d += 1)
            .build()
            .unwrap();
        let mut c = Controller::new("c");
        c.add_capsule(Box::new(SmCapsule::new(m, 0u32)));
        c.start().unwrap();
        let n = c.run_until(1.05).unwrap();
        assert_eq!(n, 10, "ticks at 0.1 .. 1.0");
    }

    #[test]
    fn timer_tick_quantisation_delays_fire() {
        let m = StateMachineBuilder::new("t")
            .state("s")
            .initial("s", |_d: &mut Vec<f64>, ctx: &mut CapsuleContext| {
                ctx.inform_in(0.015, "x");
            })
            .internal("s", (TIMER_PORT, "x"), |d, m, _| d.push(m.sent_at()))
            .build()
            .unwrap();
        let mut c = Controller::new("c");
        c.set_timer_tick(0.01);
        c.add_capsule(Box::new(SmCapsule::new(m, Vec::new())));
        c.start().unwrap();
        c.run_until(0.1).unwrap();
        // Fired at 0.02, not 0.015 — the paper's "unpredictable timing".
        assert_eq!(c.now(), 0.1);
    }

    #[test]
    fn frame_service_incarnates_at_runtime() {
        let mut c = Controller::new("c");
        c.start().unwrap();
        // Incarnated after start: initial transition runs immediately.
        let m = StateMachineBuilder::new("late")
            .state("s")
            .initial("s", |d: &mut bool, _| *d = true)
            .build()
            .unwrap();
        let idx = c.incarnate(Box::new(SmCapsule::new(m, false))).unwrap();
        assert_eq!(c.capsule_name(idx).unwrap(), "late");
        assert_eq!(c.capsule_state(idx).unwrap(), "s");
        c.inject(idx, "p", Message::new("x", Value::Empty)).unwrap();
        c.run_until_quiescent().unwrap();
    }

    #[test]
    fn frame_service_destroy_unwires() {
        let mut c = Controller::new("c");
        let a = c.add_capsule(counter_capsule("a"));
        let b = c.add_capsule(counter_capsule("b"));
        c.connect((a, "out"), (b, "in")).unwrap();
        c.start().unwrap();
        c.destroy(b).unwrap();
        assert_eq!(c.capsule_name(b).unwrap(), "<null>");
        // Messages towards the destroyed capsule are dropped, not routed.
        c.inject(a, "p", Message::new("inc", Value::Empty)).unwrap();
        c.run_until_quiescent().unwrap();
        assert!(c.destroy(99).is_err());
    }

    #[test]
    fn port_terminate_rule() {
        assert!(port_may_terminate(PortKind::End));
        assert!(!port_may_terminate(PortKind::Relay));
        assert!(!port_may_terminate(PortKind::DataRelay));
    }
}
