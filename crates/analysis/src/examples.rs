//! Built-in demo models for `urt-lint` and the analyzer's own tests.
//!
//! [`all`] returns the clean catalogue — every model lints with **zero
//! error diagnostics** (warnings are allowed); [`seeded_violations`]
//! returns a deliberately broken model that trips at least three distinct
//! rules (flow-type subset, algebraic loop, unreachable state) for
//! exercising the collected-diagnostics path, [`seeded_cross_loop`]
//! a zero-delay algebraic loop spanning two thread groups that only the
//! whole-model analyzer (not fail-fast `validate()`) can refuse, and
//! [`seeded_over_budget`] a structurally sound model whose declared
//! worst-case step cost exceeds its real-time budget — `validate()`
//! passes, the static timing pass (`URT301`) refuses it.

use urt_core::model::{BudgetScope, FlowEnd, ModelBuilder, UnifiedModel};
use urt_dataflow::flowtype::{FlowType, Unit};
use urt_umlrt::protocol::{PayloadKind, Protocol};
use urt_umlrt::statemachine::SmSpec;

/// Names of the clean built-in models, in catalogue order.
pub const NAMES: &[&str] =
    &["demo", "fig2", "fig3", "cruise-control", "tank-level", "inverted-pendulum", "bouncing-ball"];

/// The clean catalogue as `(name, model)` pairs.
pub fn all() -> Vec<(&'static str, UnifiedModel)> {
    NAMES.iter().map(|&n| (n, by_name(n).expect("catalogue name"))).collect()
}

/// Looks up a built-in model by name (the clean catalogue plus
/// `seeded-violations`).
pub fn by_name(name: &str) -> Option<UnifiedModel> {
    match name {
        "demo" => Some(demo()),
        "fig2" => Some(fig2()),
        "fig3" => Some(fig3()),
        "cruise-control" => Some(cruise_control()),
        "tank-level" => Some(tank_level()),
        "inverted-pendulum" => Some(inverted_pendulum()),
        "bouncing-ball" => Some(bouncing_ball()),
        "seeded-violations" => Some(seeded_violations()),
        "seeded-cross-loop" => Some(seeded_cross_loop()),
        "seeded-over-budget" => Some(seeded_over_budget()),
        _ => None,
    }
}

/// Supervisor capsule over a plant/filter/recorder chain.
pub fn demo() -> UnifiedModel {
    let mut b = ModelBuilder::new("demo");
    let sup = b.capsule("supervisor");
    let plant = b.streamer("plant", "rk4");
    let filter = b.streamer("filter", "euler");
    let recorder = b.streamer("recorder", "euler");
    b.contain_streamer_in_capsule(plant, sup);
    b.streamer_out(plant, "y", FlowType::with_unit(Unit::Meter));
    b.streamer_in(filter, "u", FlowType::with_unit(Unit::Meter));
    b.streamer_out(filter, "smoothed", FlowType::with_unit(Unit::Meter));
    b.streamer_in(recorder, "u", FlowType::with_unit(Unit::Meter));
    b.flow_between_streamers(plant, "y", filter, "u");
    b.flow_between_streamers(filter, "smoothed", recorder, "u");
    b.streamer_feedthrough(plant, false); // integrates its state
                                          // The plant->filter flow crosses thread groups (0 -> 1): the filter
                                          // must be non-feedthrough so the channel's one-step delay is sound.
    b.streamer_feedthrough(filter, false);
    b.declare_protocol(
        Protocol::new("PlantCtl")
            .with_in("start", PayloadKind::Empty)
            .with_in("stop", PayloadKind::Empty),
    );
    b.capsule_sport(sup, "ctl", "PlantCtl");
    b.streamer_sport(plant, "ctl", "PlantCtl");
    b.sport_link(sup, "ctl", plant, "ctl");
    b.capsule_machine(
        sup,
        SmSpec::new("supervisor_sm")
            .state("idle")
            .state("running")
            .initial("idle")
            .on("idle", ("ctl", "start"), "running")
            .on("running", ("ctl", "stop"), "idle"),
    );
    b.assign_thread(plant, 0);
    b.assign_thread(filter, 1);
    b.assign_thread(recorder, 1);
    b.build()
}

/// The paper's Figure 2: a top streamer with relayed sub-streamer flows.
pub fn fig2() -> UnifiedModel {
    let mut b = ModelBuilder::new("fig2");
    let top = b.streamer("top", "rk4");
    let sub1 = b.streamer("sub1", "rk4");
    let sub2 = b.streamer("sub2", "euler");
    let sub3 = b.streamer("sub3", "euler");
    b.contain_streamer(sub1, top);
    b.contain_streamer(sub2, top);
    b.contain_streamer(sub3, top);
    b.streamer_out(sub1, "y", FlowType::scalar());
    b.streamer_in(sub2, "u", FlowType::scalar());
    b.streamer_in(sub3, "u", FlowType::scalar());
    b.flow_between_streamers(sub1, "y", sub2, "u");
    b.flow_between_streamers(sub1, "y", sub3, "u");
    b.streamer_sport(top, "ctl", "StreamCtl");
    // Recorded in the CI smokes (and bit-compared between the standalone
    // engine and ensemble instance 0).
    b.probe(sub1, "y", "fig2.sub1.y");
    // Real-time budget: 100 us per macro step, comfortably met by the
    // calibrated solver costs — exercised by `urt-lint --budget-report`.
    b.declare_budget(BudgetScope::Model, 100_000.0);
    b.build()
}

/// The paper's Figure 3: a top capsule containing a sub-capsule and two
/// streamers, with a relay DPort on the sub-capsule.
pub fn fig3() -> UnifiedModel {
    let mut b = ModelBuilder::new("fig3");
    let top = b.capsule("top");
    let sub = b.capsule("sub");
    let s1 = b.streamer("streamer1", "rk4");
    let s2 = b.streamer("streamer2", "rk4");
    b.contain_capsule(sub, top);
    b.contain_streamer_in_capsule(s1, top);
    b.contain_streamer_in_capsule(s2, sub);
    b.streamer_out(s1, "y", FlowType::scalar());
    b.streamer_in(s2, "u", FlowType::scalar());
    b.capsule_dport(sub, "d", FlowType::scalar());
    b.flow(FlowEnd::Streamer(s1, "y".into()), FlowEnd::Capsule(sub, "d".into()));
    b.flow(FlowEnd::Capsule(sub, "d".into()), FlowEnd::Streamer(s2, "u".into()));
    b.streamer_feedthrough(s2, false);
    // Recorded in the CI smokes (and bit-compared between the standalone
    // engine and ensemble instance 0).
    b.probe(s1, "y", "fig3.streamer1.y");
    b.build()
}

/// Cruise control: vehicle/controller loop broken by the vehicle
/// integrator, supervised by a capsule state machine.
pub fn cruise_control() -> UnifiedModel {
    let mut b = ModelBuilder::new("cruise-control");
    let ctl = b.capsule("cruise_ctl");
    let vehicle = b.streamer("vehicle", "rk4");
    let controller = b.streamer("controller", "euler");
    b.streamer_in(vehicle, "force", FlowType::with_unit(Unit::Newton));
    b.streamer_out(vehicle, "speed", FlowType::with_unit(Unit::MeterPerSecond));
    b.streamer_in(controller, "speed", FlowType::with_unit(Unit::MeterPerSecond));
    b.streamer_out(controller, "force", FlowType::with_unit(Unit::Newton));
    // The measured speed relays through the supervising capsule.
    b.capsule_dport(ctl, "speed_tap", FlowType::with_unit(Unit::MeterPerSecond));
    b.flow(FlowEnd::Streamer(vehicle, "speed".into()), FlowEnd::Capsule(ctl, "speed_tap".into()));
    b.flow(
        FlowEnd::Capsule(ctl, "speed_tap".into()),
        FlowEnd::Streamer(controller, "speed".into()),
    );
    b.flow_between_streamers(controller, "force", vehicle, "force");
    b.streamer_feedthrough(vehicle, false); // speed integrates force
                                            // vehicle and controller sit on different threads: the controller
                                            // reads the previous step's speed sample through the cross-group
                                            // channel, so it must be non-feedthrough too.
    b.streamer_feedthrough(controller, false);
    b.declare_protocol(
        Protocol::new("CruiseCtl")
            .with_in("set", PayloadKind::Real)
            .with_in("cancel", PayloadKind::Empty)
            .with_in("resume", PayloadKind::Empty),
    );
    b.capsule_sport(ctl, "cmd", "CruiseCtl");
    b.streamer_sport(controller, "cmd", "CruiseCtl");
    b.sport_link(ctl, "cmd", controller, "cmd");
    b.capsule_machine(
        ctl,
        SmSpec::new("cruise_sm")
            .state("off")
            .state("engaged")
            .substate("holding", "engaged")
            .substate("resuming", "engaged")
            .initial("off")
            .initial_child("engaged", "holding")
            .on("off", ("cmd", "set"), "engaged")
            .on("engaged", ("cmd", "cancel"), "off")
            .on("off", ("cmd", "resume"), "resuming"),
    );
    b.assign_thread(vehicle, 0);
    b.assign_thread(controller, 1);
    b.build()
}

/// Tank level regulation with an alarm-supervising capsule.
pub fn tank_level() -> UnifiedModel {
    let mut b = ModelBuilder::new("tank-level");
    let monitor = b.capsule("tank_monitor");
    let tank = b.streamer("tank", "rk4");
    let valve = b.streamer("valve", "euler");
    b.streamer_in(tank, "inflow", FlowType::scalar());
    b.streamer_out(tank, "level", FlowType::with_unit(Unit::Meter));
    b.streamer_in(valve, "level", FlowType::with_unit(Unit::Meter));
    b.streamer_out(valve, "inflow", FlowType::scalar());
    b.flow_between_streamers(tank, "level", valve, "level");
    b.flow_between_streamers(valve, "inflow", tank, "inflow");
    b.streamer_feedthrough(tank, false); // level integrates inflow
    b.declare_protocol(
        Protocol::new("TankAlarm")
            .with_in("high", PayloadKind::Real)
            .with_in("low", PayloadKind::Real)
            .with_in("reset", PayloadKind::Empty),
    );
    b.capsule_sport(monitor, "alarm", "TankAlarm");
    b.streamer_sport(tank, "alarm", "TankAlarm");
    b.sport_link(monitor, "alarm", tank, "alarm");
    b.capsule_machine(
        monitor,
        SmSpec::new("alarm_sm")
            .state("normal")
            .state("alarmed")
            .initial("normal")
            .on("normal", ("alarm", "high"), "alarmed")
            .on("normal", ("alarm", "low"), "alarmed")
            .on("alarmed", ("alarm", "reset"), "normal"),
    );
    b.build()
}

/// Inverted pendulum stabilised by a state-feedback controller.
pub fn inverted_pendulum() -> UnifiedModel {
    let mut b = ModelBuilder::new("inverted-pendulum");
    let sup = b.capsule("balance_supervisor");
    let pendulum = b.streamer("pendulum", "rk4");
    let regulator = b.streamer("regulator", "euler");
    b.streamer_in(pendulum, "u", FlowType::with_unit(Unit::Newton));
    b.streamer_out(pendulum, "theta", FlowType::with_unit(Unit::Radian));
    b.streamer_in(regulator, "theta", FlowType::with_unit(Unit::Radian));
    b.streamer_out(regulator, "u", FlowType::with_unit(Unit::Newton));
    b.flow_between_streamers(pendulum, "theta", regulator, "theta");
    b.flow_between_streamers(regulator, "u", pendulum, "u");
    b.streamer_feedthrough(pendulum, false);
    b.declare_protocol(
        Protocol::new("Balance")
            .with_in("arm", PayloadKind::Empty)
            .with_in("halt", PayloadKind::Empty),
    );
    b.capsule_sport(sup, "ctl", "Balance");
    b.streamer_sport(regulator, "ctl", "Balance");
    b.sport_link(sup, "ctl", regulator, "ctl");
    b.capsule_machine(
        sup,
        SmSpec::new("balance_sm")
            .state("idle")
            .state("balancing")
            .initial("idle")
            .on("idle", ("ctl", "arm"), "balancing")
            .on("balancing", ("ctl", "halt"), "idle"),
    );
    b.build()
}

/// Bouncing ball with an event-monitoring capsule.
pub fn bouncing_ball() -> UnifiedModel {
    let mut b = ModelBuilder::new("bouncing-ball");
    let mon = b.capsule("bounce_monitor");
    let ball = b.streamer("ball", "rk4");
    let tracer = b.streamer("tracer", "euler");
    b.streamer_out(ball, "height", FlowType::with_unit(Unit::Meter));
    b.streamer_in(tracer, "height", FlowType::with_unit(Unit::Meter));
    b.flow_between_streamers(ball, "height", tracer, "height");
    b.streamer_feedthrough(ball, false);
    b.declare_protocol(Protocol::new("BounceDet").with_in("bounce", PayloadKind::Real));
    b.capsule_sport(mon, "det", "BounceDet");
    b.streamer_sport(ball, "det", "BounceDet");
    b.sport_link(mon, "det", ball, "det");
    b.capsule_machine(
        mon,
        SmSpec::new("bounce_sm")
            .state("watching")
            .initial("watching")
            .internal("watching", ("det", "bounce")),
    );
    b.build()
}

/// A model seeded with three distinct rule violations: a flow-type
/// subset break (`URT105`), an algebraic loop (`URT007`) and an
/// unreachable state (`URT203`).
pub fn seeded_violations() -> UnifiedModel {
    let mut b = ModelBuilder::new("seeded");
    let ctl = b.capsule("ctl");
    let s1 = b.streamer("s1", "rk4");
    let s2 = b.streamer("s2", "euler");
    b.streamer_out(s1, "y", FlowType::with_unit(Unit::Meter));
    b.streamer_in(s1, "u", FlowType::scalar());
    // URT105: Meter flows into a Kelvin input.
    b.streamer_in(s2, "u", FlowType::with_unit(Unit::Kelvin));
    b.streamer_out(s2, "y", FlowType::scalar());
    b.flow_between_streamers(s1, "y", s2, "u");
    // URT007: both streamers keep the default direct feedthrough.
    b.flow_between_streamers(s2, "y", s1, "u");
    // URT203: `orphan` has no incoming transition.
    b.capsule_machine(
        ctl,
        SmSpec::new("ctl_sm")
            .state("idle")
            .state("orphan")
            .initial("idle")
            .internal("idle", ("ctl", "ping")),
    );
    b.build()
}

/// A model seeded with an **illegal zero-delay cross-group algebraic
/// loop**: two direct-feedthrough streamers on different threads feeding
/// each other (`URT007` + `URT206` + `URT207`). It passes the fail-fast
/// Table 1 `validate()` — only the whole-model analyzer catches it, so
/// the elaboration gate must refuse it.
pub fn seeded_cross_loop() -> UnifiedModel {
    let mut b = ModelBuilder::new("seeded-cross-loop");
    let s1 = b.streamer("alpha", "rk4");
    let s2 = b.streamer("beta", "euler");
    b.streamer_out(s1, "y", FlowType::scalar());
    b.streamer_in(s1, "u", FlowType::scalar());
    b.streamer_out(s2, "y", FlowType::scalar());
    b.streamer_in(s2, "u", FlowType::scalar());
    b.flow_between_streamers(s1, "y", s2, "u");
    b.flow_between_streamers(s2, "y", s1, "u");
    // Both keep the default direct feedthrough; the loop crosses groups.
    b.assign_thread(s1, 0);
    b.assign_thread(s2, 1);
    b.build()
}

/// A model seeded with a **real-time budget violation**: two heavy
/// streamers whose declared worst-case step costs sum past the thread's
/// budget. Structurally flawless — `validate()` passes — but the static
/// timing pass refuses it (`URT301`), and `URT304` recommends the
/// two-thread split that would meet the budget.
pub fn seeded_over_budget() -> UnifiedModel {
    let mut b = ModelBuilder::new("seeded-over-budget");
    let sensor = b.streamer("sensor_fusion", "heavy");
    let planner = b.streamer("planner", "heavy");
    b.streamer_out(sensor, "state", FlowType::scalar());
    b.streamer_in(planner, "state", FlowType::scalar());
    b.flow_between_streamers(sensor, "state", planner, "state");
    // Non-feedthrough consumer: the recommended cut is URT207-feasible.
    b.streamer_feedthrough(sensor, false);
    b.streamer_feedthrough(planner, false);
    // 80 us + 80 us of declared cost against a 100 us thread budget.
    b.declare_step_cost(sensor, 80_000.0);
    b.declare_step_cost(planner, 80_000.0);
    b.declare_budget(BudgetScope::Thread(0), 100_000.0);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete_and_validates() {
        for (name, model) in all() {
            assert_eq!(model.name(), name);
            model.validate().unwrap_or_else(|e| panic!("example `{name}`: {e}"));
        }
        assert!(by_name("seeded-violations").is_some());
        assert!(by_name("seeded-cross-loop").is_some());
        assert!(by_name("seeded-over-budget").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn seeded_over_budget_passes_validation_but_not_analysis() {
        // Structurally flawless: Table 1 cannot see time.
        seeded_over_budget().validate().expect("structure is sound");
        let diags = crate::analyze(&seeded_over_budget());
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"URT301"), "budget violation, got {codes:?}");
        assert!(codes.contains(&"URT304"), "partition recommendation, got {codes:?}");
        assert!(crate::has_errors(&diags));
    }

    #[test]
    fn seeded_model_fails_validation() {
        assert!(seeded_violations().validate().is_err());
    }

    #[test]
    fn seeded_cross_loop_passes_validation_but_not_analysis() {
        // The fail-fast Table 1 check misses it...
        seeded_cross_loop().validate().expect("Table 1 rules alone cannot see the loop");
        // ...the whole-model analyzer does not.
        let diags = crate::analyze(&seeded_cross_loop());
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"URT007"), "algebraic loop, got {codes:?}");
        assert!(codes.contains(&"URT206"), "rendezvous deadlock, got {codes:?}");
        assert!(codes.contains(&"URT207"), "cross-group feedthrough, got {codes:?}");
    }
}
