//! Thread-plan deadlock analysis (`URT206`).
//!
//! The deployment architecture runs each streamer on an assigned solver
//! thread; at every macro step, threads rendezvous to exchange same-step
//! values for direct-feedthrough dependencies. The capsule's event thread
//! is a *star barrier* — it synchronises with every solver thread once
//! per macro step and so cannot deadlock by construction — but two solver
//! threads can: if thread A needs a same-step value computed on thread B
//! while B needs one from A, both block at the rendezvous forever.
//!
//! The pass builds a wait-for graph over solver threads — an edge
//! `t(b) -> t(a)` for every effective flow `a -> b` (capsule relay chains
//! resolved) where `b` is direct-feedthrough and the threads differ — and
//! reports any cycle.

use crate::diagnostic::{Diagnostic, Severity};
use crate::model_pass::effective_streamer_edges;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use urt_core::model::UnifiedModel;

/// Runs the thread-plan deadlock pass.
pub fn run(model: &UnifiedModel, out: &mut Vec<Diagnostic>) {
    // wait_for[t] = threads whose rendezvous `t` blocks on.
    let mut wait_for: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (a, b) in effective_streamer_edges(model) {
        let (ta, tb) = (model.streamer_thread(a), model.streamer_thread(b));
        if ta != tb && model.streamer_feedthrough(b) {
            wait_for.entry(tb).or_default().insert(ta);
            wait_for.entry(ta).or_default();
        }
    }
    // Kahn over the wait-for graph; leftover threads sit on a cycle.
    let threads: Vec<usize> = wait_for.keys().copied().collect();
    let index: BTreeMap<usize, usize> = threads.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let n = threads.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (&t, waits) in &wait_for {
        for w in waits {
            adj[index[w]].push(index[&t]);
            indeg[index[&t]] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0;
    while let Some(u) = queue.pop_front() {
        done += 1;
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    if done < n {
        let stuck: Vec<String> =
            (0..n).filter(|&i| indeg[i] > 0).map(|i| threads[i].to_string()).collect();
        out.push(
            Diagnostic::new(
                "URT206",
                Severity::Error,
                format!("{}/threads", model.name()),
                format!(
                    "rendezvous deadlock: solver threads {} wait on each other for same-step values",
                    stuck.join(", ")
                ),
            )
            .suggest(
                "put the mutually dependent streamers on one thread, or break the dependency with a non-feedthrough streamer",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urt_core::model::ModelBuilder;
    use urt_dataflow::flowtype::FlowType;

    /// Two streamers exchanging same-step values; thread layout decides
    /// whether their rendezvous can deadlock.
    fn cross_model(threads: (usize, usize), feedthrough_back: bool) -> UnifiedModel {
        let mut b = ModelBuilder::new("plan");
        let s1 = b.streamer("s1", "rk4");
        let s2 = b.streamer("s2", "rk4");
        b.streamer_out(s1, "y", FlowType::scalar());
        b.streamer_in(s1, "u", FlowType::scalar());
        b.streamer_out(s2, "y", FlowType::scalar());
        b.streamer_in(s2, "u", FlowType::scalar());
        b.flow_between_streamers(s1, "y", s2, "u");
        b.flow_between_streamers(s2, "y", s1, "u");
        b.assign_thread(s1, threads.0);
        b.assign_thread(s2, threads.1);
        // s1 is an integrator unless the test wants a full algebraic
        // cycle; the deadlock exists either way when threads differ.
        b.streamer_feedthrough(s1, feedthrough_back);
        b.build()
    }

    #[test]
    fn cross_thread_mutual_waits_deadlock() {
        let mut out = Vec::new();
        run(&cross_model((0, 1), true), &mut out);
        let d = out.iter().find(|d| d.code == "URT206").expect("URT206 reported");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains('0') && d.message.contains('1'));
    }

    #[test]
    fn same_thread_never_deadlocks() {
        let mut out = Vec::new();
        run(&cross_model((0, 0), true), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn integrator_breaks_the_wait_cycle() {
        // s1 non-feedthrough: s1 does not need s2's same-step value, so
        // thread 0 never blocks on thread 1.
        let mut out = Vec::new();
        run(&cross_model((0, 1), false), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }
}
