//! Structured diagnostics: the analyzer's output type and its renderers.
//!
//! Every finding carries a stable `URTxxx` code so tools, tests and logs
//! can match on the code instead of prose. Codes are partitioned:
//!
//! * `URT001`–`URT011` — network-level structural errors, shared with
//!   [`urt_dataflow::FlowError::code`].
//! * `URT101`–`URT112` — model well-formedness and engine errors, shared
//!   with [`urt_core::error::CoreError::code`].
//! * `URT2xx` — analysis-only lints that never fail `validate()`.
//! * `URT3xx` — static timing analysis ([`crate::cost_pass`]): budget
//!   violations (`URT301`, error), cost hygiene (`URT302`/`URT305`),
//!   partition imbalance (`URT303`) and the recommended partition
//!   (`URT304`, info).

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The model is wrong: `validate()`/codegen must reject it.
    Error,
    /// Suspicious but executable; worth fixing.
    Warning,
    /// Stylistic or informational.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`URT105`, `URT203`, …).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Model path of the offending element, e.g. `system/plant.dport:u`.
    pub path: String,
    /// Human-readable description of the finding.
    pub message: String,
    /// Suggested fix, if the analyzer has one.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without a suggestion.
    pub fn new(
        code: &'static str,
        severity: Severity,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic { code, severity, path: path.into(), message: message.into(), suggestion: None }
    }

    /// Attaches a suggested fix (builder style).
    #[must_use]
    pub fn suggest(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// `rustc`-style one/two-line rendering.
    pub fn render_human(&self) -> String {
        let mut out = format!("{}[{}] {}: {}", self.severity, self.code, self.path, self.message);
        if let Some(s) = &self.suggestion {
            out.push_str("\n  help: ");
            out.push_str(s);
        }
        out
    }

    /// Renders this diagnostic as a JSON object (hand-rolled; the
    /// workspace is hermetic and carries no serde).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":{}", json_string(self.code)));
        out.push_str(&format!(",\"severity\":{}", json_string(&self.severity.to_string())));
        out.push_str(&format!(",\"path\":{}", json_string(&self.path)));
        out.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        match &self.suggestion {
            Some(s) => out.push_str(&format!(",\"suggestion\":{}", json_string(s))),
            None => out.push_str(",\"suggestion\":null"),
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_human())
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a diagnostic list as a JSON report:
/// `{"model": …, "errors": N, "warnings": N, "diagnostics": […]}`.
pub fn render_json_report(model: &str, diags: &[Diagnostic]) -> String {
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.iter().filter(|d| d.severity == Severity::Warning).count();
    let body: Vec<String> = diags.iter().map(Diagnostic::render_json).collect();
    format!(
        "{{\"model\":{},\"errors\":{errors},\"warnings\":{warnings},\"diagnostics\":[{}]}}",
        json_string(model),
        body.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_includes_code_and_help() {
        let d = Diagnostic::new("URT203", Severity::Warning, "m/ctl.sm:orphan", "unreachable")
            .suggest("add a transition into `orphan` or delete it");
        let text = d.render_human();
        assert!(text.starts_with("warning[URT203] m/ctl.sm:orphan: unreachable"));
        assert!(text.contains("help: add a transition"));
        assert_eq!(d.to_string(), text);
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        let d = Diagnostic::new("URT105", Severity::Error, "p", "ty `a\"b`");
        let json = d.render_json();
        assert!(json.contains("\"code\":\"URT105\""));
        assert!(json.contains("\\\"b`\""));
        assert!(json.contains("\"suggestion\":null"));
    }

    #[test]
    fn report_counts_by_severity() {
        let diags = vec![
            Diagnostic::new("URT105", Severity::Error, "a", "x"),
            Diagnostic::new("URT201", Severity::Warning, "b", "y"),
            Diagnostic::new("URT209", Severity::Info, "c", "z"),
        ];
        let json = render_json_report("demo", &diags);
        assert!(json.starts_with("{\"model\":\"demo\",\"errors\":1,\"warnings\":1,"));
        assert!(json.contains("\"diagnostics\":[{"));
    }

    #[test]
    fn severity_orders_errors_first() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Info);
    }
}
