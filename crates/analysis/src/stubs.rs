//! Width- and feedthrough-faithful stub behaviours.
//!
//! [`stub_registry`] builds a [`BehaviorRegistry`] covering every leaf
//! streamer of a model with a [`StubStreamer`]: a behaviour whose
//! input/output widths and direct-feedthrough flag match the model's
//! declarations exactly, but whose dynamics are a bounded deterministic
//! placeholder. This is enough to push any clean model through the whole
//! `model → analyze → compile → run` pipeline — structure, scheduling,
//! channel wiring and probe plumbing are all exercised — without the
//! real solvers, which is exactly what the CI elaboration smoke needs.

use urt_core::elaborate::BehaviorRegistry;
use urt_core::model::UnifiedModel;
use urt_dataflow::streamer::StreamerBehavior;
use urt_ode::SolveError;

/// A placeholder streamer behaviour with declared widths and
/// feedthrough, producing bounded deterministic output.
#[derive(Debug, Clone)]
pub struct StubStreamer {
    name: String,
    in_width: usize,
    out_width: usize,
    feedthrough: bool,
}

impl StubStreamer {
    /// Creates a stub with explicit widths and feedthrough flag.
    pub fn new(
        name: impl Into<String>,
        in_width: usize,
        out_width: usize,
        feedthrough: bool,
    ) -> Self {
        Self { name: name.into(), in_width, out_width, feedthrough }
    }
}

impl StreamerBehavior for StubStreamer {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_width(&self) -> usize {
        self.in_width
    }

    fn output_width(&self) -> usize {
        self.out_width
    }

    fn direct_feedthrough(&self) -> bool {
        self.feedthrough
    }

    fn advance(&mut self, t: f64, _h: f64, u: &[f64], y: &mut [f64]) -> Result<(), SolveError> {
        // Bounded and deterministic: a phase-shifted sine per output
        // lane, nudged by the (tanh-squashed) input sum when the stub
        // declares direct feedthrough.
        let drive = if self.feedthrough { 0.1 * u.iter().sum::<f64>().tanh() } else { 0.0 };
        for (i, lane) in y.iter_mut().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            let phase = i as f64;
            *lane = (t + phase).sin() * 0.5 + drive;
        }
        Ok(())
    }

    fn clone_fresh(&self) -> Option<Box<dyn StreamerBehavior>> {
        // Stateless, so a plain clone is a pristine copy — this lets the
        // elaboration smoke push stubbed models through ensemble runs.
        Some(Box::new(self.clone()))
    }
}

/// Builds a registry stubbing **every** streamer of `model` with widths
/// and feedthrough taken from its declarations. Capsules are left to
/// elaboration's inert fallback (machine spec or placeholder), so the
/// result compiles any clean model as-is.
pub fn stub_registry(model: &UnifiedModel) -> BehaviorRegistry {
    let mut registry = BehaviorRegistry::new();
    for (s, name, _solver) in model.iter_streamers() {
        let in_width: usize = model.streamer_in_dports(s).iter().map(|(_, ty)| ty.width()).sum();
        let out_width: usize = model.streamer_out_dports(s).iter().map(|(_, ty)| ty.width()).sum();
        let feedthrough = model.streamer_feedthrough(s);
        let stub = StubStreamer::new(name, in_width, out_width, feedthrough);
        registry = registry.streamer(name, move || Box::new(stub.clone()));
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_matches_declared_widths() {
        let stub = StubStreamer::new("vehicle", 1, 2, false);
        assert_eq!(stub.input_width(), 1);
        assert_eq!(stub.output_width(), 2);
        assert!(!stub.direct_feedthrough());
    }

    #[test]
    fn stub_clones_fresh() {
        let stub = StubStreamer::new("vehicle", 1, 2, true);
        let copy = stub.clone_fresh().expect("stubs are replicable");
        assert_eq!(copy.input_width(), 1);
        assert_eq!(copy.output_width(), 2);
        assert!(copy.direct_feedthrough());
    }

    #[test]
    fn stub_output_is_bounded() {
        let mut stub = StubStreamer::new("s", 2, 3, true);
        let mut y = [0.0; 3];
        for k in 0..100 {
            let t = f64::from(k) * 0.05;
            stub.advance(t, 0.05, &[1e6, -1e6], &mut y).unwrap();
            assert!(y.iter().all(|v| v.abs() < 1.0), "bounded at t={t}: {y:?}");
        }
    }
}
