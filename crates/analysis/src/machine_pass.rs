//! State-machine lints over the declarative [`SmSpec`] attached to
//! capsules: missing initial states (`URT205`), unreachable states
//! (`URT203`) and transitions triggered by signals no connected protocol
//! can deliver (`URT204`).
//!
//! The deliverability lint is deliberately conservative: a trigger is only
//! flagged when its port names a **declared** capsule SPort whose protocol
//! is registered on the model and that protocol lacks the signal on the
//! incoming side. Triggers on undeclared ports — e.g. the runtime's
//! reserved `timer` port — are skipped, not flagged.

use crate::diagnostic::{Diagnostic, Severity};
use std::collections::HashSet;
use urt_core::model::UnifiedModel;
use urt_umlrt::statemachine::SmSpec;

/// Runs the state-machine pass over every capsule machine in `model`.
pub fn run(model: &UnifiedModel, out: &mut Vec<Diagnostic>) {
    for (cref, cname) in model.iter_capsules() {
        let Some(spec) = model.capsule_machine(cref) else { continue };
        let base = format!("{}/{cname}.sm", model.name());

        match &spec.initial {
            None => {
                out.push(
                    Diagnostic::new(
                        "URT205",
                        Severity::Error,
                        base.clone(),
                        format!("state machine `{}` has no initial state", spec.name),
                    )
                    .suggest("mark one state as initial"),
                );
            }
            Some(init) if spec.find_state(init).is_none() => {
                out.push(
                    Diagnostic::new(
                        "URT205",
                        Severity::Error,
                        base.clone(),
                        format!(
                            "initial state `{init}` of machine `{}` is not a declared state",
                            spec.name
                        ),
                    )
                    .suggest("point the initial marker at a declared state"),
                );
            }
            Some(init) => {
                for state in unreachable_states(spec, init) {
                    out.push(
                        Diagnostic::new(
                            "URT203",
                            Severity::Warning,
                            format!("{base}:{state}"),
                            format!(
                                "state `{state}` of machine `{}` is unreachable from `{init}`",
                                spec.name
                            ),
                        )
                        .suggest("add a transition into the state or delete it"),
                    );
                }
            }
        }

        undeliverable_triggers(model, cref, cname, spec, &base, out);
    }
}

/// States that no transition/initial-entry chain can activate.
///
/// Entering a state activates its ancestors and descends composite
/// states through their `initial_child` chain; a transition fires from
/// any reachable source state.
fn unreachable_states(spec: &SmSpec, init: &str) -> Vec<String> {
    let mut reached: HashSet<&str> = HashSet::new();
    enter(spec, init, &mut reached);
    // Worklist to a fixpoint: any transition whose source is active can
    // fire and activate its target.
    loop {
        let mut grew = false;
        for t in &spec.transitions {
            if reached.contains(t.source.as_str()) {
                if let Some(target) = &t.target {
                    if !reached.contains(target.as_str()) {
                        enter(spec, target, &mut reached);
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    spec.states
        .iter()
        .filter(|s| !reached.contains(s.name.as_str()))
        .map(|s| s.name.clone())
        .collect()
}

/// Activates `state`, its ancestors, and its default-child chain.
fn enter<'a>(spec: &'a SmSpec, state: &str, reached: &mut HashSet<&'a str>) {
    // Ancestor chain upward.
    let mut cur = spec.find_state(state);
    while let Some(s) = cur {
        if !reached.insert(s.name.as_str()) {
            break;
        }
        cur = s.parent.as_deref().and_then(|p| spec.find_state(p));
    }
    // Default-entry chain downward.
    let mut cur = spec.find_state(state).and_then(|s| s.initial_child.as_deref());
    while let Some(child) = cur {
        let Some(s) = spec.find_state(child) else { break };
        if !reached.insert(s.name.as_str()) {
            break;
        }
        cur = s.initial_child.as_deref();
    }
}

/// `URT204`: transitions waiting on signals their port's protocol cannot
/// deliver to the capsule.
fn undeliverable_triggers(
    model: &UnifiedModel,
    cref: urt_core::model::CapsuleRef,
    cname: &str,
    spec: &SmSpec,
    base: &str,
    out: &mut Vec<Diagnostic>,
) {
    let sports = model.capsule_sports(cref);
    if model.iter_protocols().next().is_none() {
        return; // No protocol registry: nothing to check against.
    }
    for t in &spec.transitions {
        let deliverable = if t.port == "*" {
            // Any declared sport with a registered protocol may deliver.
            let known: Vec<_> =
                sports.iter().filter_map(|(_, proto)| model.protocol(proto)).collect();
            if known.is_empty() {
                continue;
            }
            known.iter().any(|p| p.in_signal(&t.signal).is_some())
        } else {
            // Skip undeclared ports (reserved runtime ports like `timer`).
            let Some((_, proto_name)) = sports.iter().find(|(n, _)| n == &t.port) else {
                continue;
            };
            let Some(proto) = model.protocol(proto_name) else { continue };
            proto.in_signal(&t.signal).is_some()
        };
        if !deliverable {
            out.push(
                Diagnostic::new(
                    "URT204",
                    Severity::Warning,
                    format!("{base}:{}", t.source),
                    format!(
                        "transition from `{}` waits for signal `{}` on port `{}` of capsule `{cname}`, but no connected protocol delivers it",
                        t.source, t.signal, t.port
                    ),
                )
                .suggest("add the signal to the port's protocol or fix the trigger"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urt_core::model::ModelBuilder;
    use urt_umlrt::protocol::{PayloadKind, Protocol};

    fn run_over(spec: SmSpec) -> Vec<Diagnostic> {
        let mut b = ModelBuilder::new("m");
        let c = b.capsule("ctl");
        b.capsule_machine(c, spec);
        let mut out = Vec::new();
        run(&b.build(), &mut out);
        out
    }

    #[test]
    fn missing_initial_is_an_error() {
        let out = run_over(SmSpec::new("sm").state("a"));
        let d = out.iter().find(|d| d.code == "URT205").expect("URT205");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("no initial state"));

        let out = run_over(SmSpec::new("sm").state("a").initial("ghost"));
        let d = out.iter().find(|d| d.code == "URT205").expect("URT205");
        assert!(d.message.contains("ghost"));
    }

    #[test]
    fn unreachable_states_found_through_hierarchy() {
        let spec = SmSpec::new("sm")
            .state("off")
            .state("on")
            .substate("warm", "on")
            .substate("hot", "on")
            .initial("off")
            .initial_child("on", "warm")
            .on("off", ("ctl", "start"), "on")
            .on("warm", ("ctl", "heat"), "hot");
        let out = run_over(spec);
        assert!(out.is_empty(), "all states reachable: {out:#?}");

        let spec = SmSpec::new("sm")
            .state("idle")
            .state("orphan")
            .initial("idle")
            .internal("idle", ("ctl", "ping"));
        let out = run_over(spec);
        let d = out.iter().find(|d| d.code == "URT203").expect("URT203");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.path, "m/ctl.sm:orphan");
    }

    #[test]
    fn undeliverable_trigger_flagged_only_for_declared_sports() {
        let spec = SmSpec::new("sm")
            .state("idle")
            .initial("idle")
            .internal("idle", ("ctl", "ghost_signal"))
            .internal("idle", ("timer", "tick"));
        let mut b = ModelBuilder::new("m");
        let c = b.capsule("ctl_capsule");
        b.capsule_sport(c, "ctl", "Ctl");
        b.declare_protocol(Protocol::new("Ctl").with_in("go", PayloadKind::Empty));
        b.capsule_machine(c, spec);
        let mut out = Vec::new();
        run(&b.build(), &mut out);
        let flagged: Vec<&Diagnostic> = out.iter().filter(|d| d.code == "URT204").collect();
        assert_eq!(flagged.len(), 1, "only the declared-sport trigger: {out:#?}");
        assert!(flagged[0].message.contains("ghost_signal"));
        // The reserved `timer` port is skipped, not flagged.
        assert!(!out.iter().any(|d| d.message.contains("timer")));
    }

    #[test]
    fn deliverable_trigger_is_clean() {
        let spec = SmSpec::new("sm").state("idle").initial("idle").internal("idle", ("ctl", "go"));
        let mut b = ModelBuilder::new("m");
        let c = b.capsule("ctl_capsule");
        b.capsule_sport(c, "ctl", "Ctl");
        b.declare_protocol(Protocol::new("Ctl").with_in("go", PayloadKind::Empty));
        b.capsule_machine(c, spec);
        let mut out = Vec::new();
        run(&b.build(), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }
}
