//! Cross-group flow classification (`URT207`).
//!
//! Elaboration keeps streamers with distinct `assign_thread` declarations
//! in separate thread groups and lowers any flow between them into a
//! double-buffered channel: the producer group writes its sample during
//! macro step `k`, the buffers exchange roles at the barrier, and the
//! consumer group reads it at step `k+1` — a deterministic delay of
//! exactly one macro step (see DESIGN.md §9).
//!
//! That delay is only sound when the consumer is **non**-feedthrough: a
//! direct-feedthrough consumer's same-step output would silently read a
//! stale sample, breaking the zero-delay algebraic path the flow
//! declares. The pass walks the effective streamer-to-streamer edges
//! (capsule relay chains resolved, the same machinery as `URT007`) and
//!
//! * **errors** (`URT207`) on every cross-group edge into a
//!   direct-feedthrough consumer, and
//! * reports the induced one-step delay of each legal cross-group edge
//!   as an `Info` diagnostic, so the lint summary shows where the model
//!   trades latency for parallelism.

use crate::diagnostic::{Diagnostic, Severity};
use crate::model_pass::effective_streamer_edges;
use std::collections::HashSet;
use urt_core::model::{StreamerRef, UnifiedModel};

/// Runs the cross-group flow classification pass.
pub fn run(model: &UnifiedModel, out: &mut Vec<Diagnostic>) {
    // Relay fan-out can surface the same streamer pair more than once;
    // report each pair at most once, in first-seen (deterministic) order.
    let mut seen: HashSet<(StreamerRef, StreamerRef)> = HashSet::new();
    for (a, b) in effective_streamer_edges(model) {
        if !seen.insert((a, b)) {
            continue;
        }
        let (ta, tb) = (model.streamer_thread(a), model.streamer_thread(b));
        if ta == tb {
            continue;
        }
        let from = model.streamer_name(a).unwrap_or("?");
        let to = model.streamer_name(b).unwrap_or("?");
        let path = format!("{}/{from}->{to}", model.name());
        if model.streamer_feedthrough(b) {
            out.push(
                Diagnostic::new(
                    "URT207",
                    Severity::Error,
                    path,
                    format!(
                        "cross-group flow `{from}` (thread {ta}) -> `{to}` (thread {tb}) feeds a \
                         direct-feedthrough consumer: the channel's one-macro-step delay breaks \
                         the zero-delay algebraic path"
                    ),
                )
                .suggest(
                    "mark the consumer non-feedthrough (it then reads the previous step's \
                     sample), or assign both streamers to the same thread",
                ),
            );
        } else {
            out.push(Diagnostic::new(
                "URT207",
                Severity::Info,
                path,
                format!(
                    "flow `{from}` (thread {ta}) -> `{to}` (thread {tb}) crosses thread groups: \
                     delivered through a double-buffered channel with a one-macro-step delay"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urt_core::model::ModelBuilder;
    use urt_dataflow::flowtype::FlowType;

    fn chain(threads: (usize, usize), consumer_feedthrough: bool) -> UnifiedModel {
        let mut b = ModelBuilder::new("plan");
        let s1 = b.streamer("s1", "rk4");
        let s2 = b.streamer("s2", "rk4");
        b.streamer_out(s1, "y", FlowType::scalar());
        b.streamer_in(s2, "u", FlowType::scalar());
        b.flow_between_streamers(s1, "y", s2, "u");
        b.streamer_feedthrough(s1, false);
        b.streamer_feedthrough(s2, consumer_feedthrough);
        b.assign_thread(s1, threads.0);
        b.assign_thread(s2, threads.1);
        b.build()
    }

    #[test]
    fn cross_group_feedthrough_consumer_is_an_error() {
        let mut out = Vec::new();
        run(&chain((0, 1), true), &mut out);
        let d = out.iter().find(|d| d.code == "URT207").expect("URT207 reported");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.path, "plan/s1->s2");
        assert!(d.message.contains("zero-delay"), "{}", d.message);
        assert!(d.suggestion.as_deref().unwrap().contains("non-feedthrough"));
    }

    #[test]
    fn legal_cross_group_flow_reports_the_delay() {
        let mut out = Vec::new();
        run(&chain((0, 1), false), &mut out);
        let d = out.iter().find(|d| d.code == "URT207").expect("URT207 info");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("one-macro-step delay"), "{}", d.message);
    }

    #[test]
    fn same_thread_flows_are_silent() {
        let mut out = Vec::new();
        run(&chain((0, 0), true), &mut out);
        assert!(out.is_empty(), "{out:#?}");
        let mut out = Vec::new();
        run(&chain((3, 3), false), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn relay_fanout_reports_each_pair_once() {
        use urt_core::model::FlowEnd;
        // s1 -> c.d twice-read by s2: one effective pair, one diagnostic.
        let mut b = ModelBuilder::new("fan");
        let c = b.capsule("c");
        let s1 = b.streamer("s1", "rk4");
        let s2 = b.streamer("s2", "rk4");
        b.capsule_dport(c, "d", FlowType::scalar());
        b.streamer_out(s1, "y", FlowType::scalar());
        b.streamer_in(s2, "u", FlowType::scalar());
        b.streamer_in(s2, "v", FlowType::scalar());
        b.flow(FlowEnd::Streamer(s1, "y".into()), FlowEnd::Capsule(c, "d".into()));
        b.flow(FlowEnd::Capsule(c, "d".into()), FlowEnd::Streamer(s2, "u".into()));
        b.flow(FlowEnd::Capsule(c, "d".into()), FlowEnd::Streamer(s2, "v".into()));
        b.streamer_feedthrough(s1, false);
        b.streamer_feedthrough(s2, false);
        b.assign_thread(s1, 0);
        b.assign_thread(s2, 1);
        let mut out = Vec::new();
        run(&b.build(), &mut out);
        assert_eq!(out.iter().filter(|d| d.code == "URT207").count(), 1, "{out:#?}");
    }
}
