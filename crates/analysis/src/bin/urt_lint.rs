//! `urt-lint` — command-line front-end for the `urt_analysis` analyzer.
//!
//! ```text
//! urt-lint [--json] [MODEL...]       lint the named built-in models
//! urt-lint --list                    list the built-in model names
//! urt-lint --budget-report [MODEL..] static timing report (URT3xx)
//! urt-lint --hash [MODEL...]         stable model content hashes
//! ```
//!
//! With no model names, the whole clean catalogue is linted. The exit
//! code is non-zero when any model produces an error-severity
//! diagnostic — or, under `--deny-warnings`, a warning-severity one.
//! `--codes URT3xx,URT207` keeps only findings whose code matches one of
//! the comma-separated patterns (a trailing `xx` is a family wildcard);
//! counting and the exit code apply to the filtered set.

use std::process::ExitCode;
use urt_analysis::cost_pass::{budget_report, CostModel};
use urt_analysis::{analyze, examples, render_json_report, severity_counts, Diagnostic};

const USAGE: &str = "usage: urt-lint [--json] [--list] [--deny-warnings] [--codes PATTERNS] [--budget-report] [--hash] [MODEL...]
       --deny-warnings   exit non-zero on warning-severity findings too
       --codes PATTERNS  comma-separated code filters, e.g. URT3xx,URT207 (trailing `xx` = family)
       --budget-report   print the static timing report (worst-case cost vs. budget + URT304 plan)
       --hash            print each model's stable content hash (the SystemCache compile key)
       models: built-in names (see --list), plus the seeded-* negative models";

/// One `--codes` entry: either an exact code or a family prefix.
enum CodePattern {
    Exact(String),
    Family(String),
}

impl CodePattern {
    fn parse(raw: &str) -> Self {
        match raw.strip_suffix("xx") {
            Some(prefix) if !prefix.is_empty() => CodePattern::Family(prefix.to_owned()),
            _ => CodePattern::Exact(raw.to_owned()),
        }
    }

    fn matches(&self, code: &str) -> bool {
        match self {
            CodePattern::Exact(c) => code == c,
            CodePattern::Family(p) => code.starts_with(p.as_str()),
        }
    }
}

fn filter_codes(diags: Vec<Diagnostic>, patterns: &[CodePattern]) -> Vec<Diagnostic> {
    if patterns.is_empty() {
        return diags;
    }
    diags.into_iter().filter(|d| patterns.iter().any(|p| p.matches(d.code))).collect()
}

fn main() -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut deny_warnings = false;
    let mut budget = false;
    let mut hash = false;
    let mut patterns: Vec<CodePattern> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--deny-warnings" => deny_warnings = true,
            "--budget-report" => budget = true,
            "--hash" => hash = true,
            "--codes" => {
                let Some(value) = args.next() else {
                    eprintln!("urt-lint: --codes needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                patterns.extend(value.split(',').filter(|s| !s.is_empty()).map(CodePattern::parse));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("urt-lint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            other => names.push(other.to_owned()),
        }
    }

    if list {
        for name in examples::NAMES {
            println!("{name}");
        }
        println!("seeded-violations");
        println!("seeded-cross-loop");
        println!("seeded-over-budget");
        return ExitCode::SUCCESS;
    }

    if names.is_empty() {
        names = examples::NAMES.iter().map(|&s| s.to_owned()).collect();
    }

    if budget {
        return run_budget_report(&names, json);
    }

    if hash {
        return run_hash_report(&names, json);
    }

    let mut fail = false;
    let mut reports = Vec::new();
    for name in &names {
        let Some(model) = examples::by_name(name) else {
            eprintln!("urt-lint: unknown model `{name}` (try --list)");
            return ExitCode::from(2);
        };
        let diags = filter_codes(analyze(&model), &patterns);
        let (errors, warnings, infos) = severity_counts(&diags);
        fail |= errors > 0 || (deny_warnings && warnings > 0);
        if json {
            reports.push(render_json_report(model.name(), &diags));
        } else {
            println!("model `{}`: {} finding(s)", model.name(), diags.len());
            for d in &diags {
                println!("  {}", d.render_human().replace('\n', "\n  "));
            }
            println!(
                "  summary: {errors} error(s), {warnings} warning(s), {infos} info(s) — {}",
                if errors == 0 && !(deny_warnings && warnings > 0) { "OK" } else { "FAIL" }
            );
        }
    }
    if json {
        println!("[{}]", reports.join(","));
    }
    if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--budget-report`: the static timing view. Exit code mirrors plain
/// linting (a URT301 is an error) so CI can gate on it directly.
fn run_budget_report(names: &[String], json: bool) -> ExitCode {
    let cost = CostModel::shared();
    let mut fail = false;
    let mut reports = Vec::new();
    for name in names {
        let Some(model) = examples::by_name(name) else {
            eprintln!("urt-lint: unknown model `{name}` (try --list)");
            return ExitCode::from(2);
        };
        match budget_report(&model, cost) {
            Some(report) => {
                fail |= report.groups.iter().any(|g| g.budget_ns.is_some_and(|b| g.cost_ns > b));
                if json {
                    reports.push(report.render_json());
                } else {
                    println!("{}", report.render_human());
                }
            }
            None => {
                if json {
                    reports.push(format!(
                        "{{\"model\":{},\"calibrated\":{},\"groups\":null,\"recommendation\":null}}",
                        urt_analysis::diagnostic::json_string(model.name()),
                        cost.is_calibrated()
                    ));
                } else {
                    println!(
                        "budget report `{}`: no declared budgets — pass inactive",
                        model.name()
                    );
                }
            }
        }
    }
    if json {
        println!("[{}]", reports.join(","));
    }
    if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--hash`: prints each model's stable content hash — the exact value
/// `urt_core::SystemCache` keys compilation on, so operators can check
/// whether two model revisions would share a cache entry without
/// compiling either. Hashes are deterministic across processes and
/// platforms; any model edit changes the value.
fn run_hash_report(names: &[String], json: bool) -> ExitCode {
    let mut reports = Vec::new();
    for name in names {
        let Some(model) = examples::by_name(name) else {
            eprintln!("urt-lint: unknown model `{name}` (try --list)");
            return ExitCode::from(2);
        };
        let hash = model.content_hash();
        if json {
            reports.push(format!(
                "{{\"model\":{},\"content_hash\":\"{hash:#018x}\"}}",
                urt_analysis::diagnostic::json_string(model.name()),
            ));
        } else {
            println!("{:#018x}  {}", hash, model.name());
        }
    }
    if json {
        println!("[{}]", reports.join(","));
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{filter_codes, CodePattern};
    use urt_analysis::{analyze, examples, has_errors, severity_counts};

    #[test]
    fn seeded_model_drives_nonzero_exit_path() {
        let model = examples::by_name("seeded-violations").unwrap();
        assert!(has_errors(&analyze(&model)));
    }

    #[test]
    fn catalogue_drives_zero_exit_path() {
        for (name, model) in examples::all() {
            assert!(!has_errors(&analyze(&model)), "example `{name}`");
        }
    }

    #[test]
    fn severity_markers_render() {
        use urt_analysis::Severity;
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn hash_is_stable_per_model_and_distinct_across_models() {
        let fig2 = examples::by_name("fig2").unwrap();
        assert_eq!(fig2.content_hash(), examples::by_name("fig2").unwrap().content_hash());
        assert_ne!(fig2.content_hash(), examples::by_name("fig3").unwrap().content_hash());
    }

    #[test]
    fn code_patterns_match_exact_and_family() {
        let exact = CodePattern::parse("URT207");
        assert!(exact.matches("URT207"));
        assert!(!exact.matches("URT2071"));
        assert!(!exact.matches("URT206"));
        let family = CodePattern::parse("URT3xx");
        assert!(family.matches("URT301"));
        assert!(family.matches("URT305"));
        assert!(!family.matches("URT207"));
    }

    #[test]
    fn codes_filter_drives_counts_and_exit() {
        let model = examples::by_name("seeded-over-budget").unwrap();
        let all = analyze(&model);
        assert!(has_errors(&all));
        // Filtered to the timing family, the URT301 error survives...
        let timing = filter_codes(all.clone(), &[CodePattern::parse("URT3xx")]);
        assert!(has_errors(&timing));
        assert!(timing.iter().all(|d| d.code.starts_with("URT3")));
        // ...while a disjoint filter silences everything, exit 0.
        let none = filter_codes(all, &[CodePattern::parse("URT001")]);
        assert!(none.is_empty());
        let (errors, _, _) = severity_counts(&none);
        assert_eq!(errors, 0);
    }
}
