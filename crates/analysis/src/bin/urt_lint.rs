//! `urt-lint` — command-line front-end for the `urt_analysis` analyzer.
//!
//! ```text
//! urt-lint [--json] [MODEL...]   lint the named built-in models
//! urt-lint --list                list the built-in model names
//! ```
//!
//! With no model names, the whole clean catalogue is linted. The exit
//! code is non-zero when any model produces an error-severity
//! diagnostic.

use std::process::ExitCode;
use urt_analysis::{analyze, examples, render_json_report, severity_counts};

const USAGE: &str = "usage: urt-lint [--json] [--list] [MODEL...]\n       models: built-in names (see --list), plus `seeded-violations` and `seeded-cross-loop`";

fn main() -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut names: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("urt-lint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            other => names.push(other.to_owned()),
        }
    }

    if list {
        for name in examples::NAMES {
            println!("{name}");
        }
        println!("seeded-violations");
        println!("seeded-cross-loop");
        return ExitCode::SUCCESS;
    }

    if names.is_empty() {
        names = examples::NAMES.iter().map(|&s| s.to_owned()).collect();
    }

    let mut any_errors = false;
    let mut reports = Vec::new();
    for name in &names {
        let Some(model) = examples::by_name(name) else {
            eprintln!("urt-lint: unknown model `{name}` (try --list)");
            return ExitCode::from(2);
        };
        let diags = analyze(&model);
        let (errors, warnings, infos) = severity_counts(&diags);
        any_errors |= errors > 0;
        if json {
            reports.push(render_json_report(model.name(), &diags));
        } else {
            println!("model `{}`: {} finding(s)", model.name(), diags.len());
            for d in &diags {
                println!("  {}", d.render_human().replace('\n', "\n  "));
            }
            println!(
                "  summary: {errors} error(s), {warnings} warning(s), {infos} info(s) — {}",
                if errors == 0 { "OK" } else { "FAIL" }
            );
        }
    }
    if json {
        println!("[{}]", reports.join(","));
    }
    if any_errors {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use urt_analysis::{analyze, examples, has_errors};

    #[test]
    fn seeded_model_drives_nonzero_exit_path() {
        let model = examples::by_name("seeded-violations").unwrap();
        assert!(has_errors(&analyze(&model)));
    }

    #[test]
    fn catalogue_drives_zero_exit_path() {
        for (name, model) in examples::all() {
            assert!(!has_errors(&analyze(&model)), "example `{name}`");
        }
    }

    #[test]
    fn severity_markers_render() {
        use urt_analysis::Severity;
        assert_eq!(Severity::Error.to_string(), "error");
    }
}
