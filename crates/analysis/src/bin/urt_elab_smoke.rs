//! `urt-elab-smoke` — CI smoke for the elaboration pipeline.
//!
//! Pushes every clean built-in model through the full
//! `model → analyze → compile → run` pipeline with stub behaviours:
//! each model is compiled via [`urt_analysis::compile`] (so the
//! whole-model analyzer gates it), handed to
//! `HybridEngine::from_compiled`, and run for a few macro steps.
//! `seeded-violations` must **refuse** to compile. Any deviation exits
//! non-zero, which is what `scripts/check.sh` keys on.

use std::process::ExitCode;
use urt_analysis::{compile, examples, stubs};
use urt_core::engine::{EngineConfig, HybridEngine};
use urt_core::threading::ThreadPolicy;

const STEP: f64 = 1e-3;
const MACRO_STEPS: u32 = 5;

fn main() -> ExitCode {
    let mut failed = false;

    for &name in examples::NAMES {
        let model = examples::by_name(name).expect("catalogue name");
        let compiled = match compile(&model, stubs::stub_registry(&model)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("urt-elab-smoke: `{name}` refused to compile: {e}");
                failed = true;
                continue;
            }
        };
        let groups = compiled.group_count();
        let mut engine = match HybridEngine::from_compiled(
            compiled,
            EngineConfig { step: STEP, policy: ThreadPolicy::CurrentThread },
        ) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("urt-elab-smoke: `{name}` failed engine assembly: {e}");
                failed = true;
                continue;
            }
        };
        let t_end = STEP * f64::from(MACRO_STEPS);
        if let Err(e) = engine.run_until(t_end) {
            eprintln!("urt-elab-smoke: `{name}` failed to run: {e}");
            failed = true;
            continue;
        }
        println!("urt-elab-smoke: `{name}` ok ({groups} group(s), {MACRO_STEPS} steps)");
    }

    // The seeded models must be refused by the analysis gate — including
    // the cross-group algebraic loop that fail-fast `validate()` misses.
    for name in ["seeded-violations", "seeded-cross-loop"] {
        let seeded = examples::by_name(name).expect("catalogue name");
        match compile(&seeded, stubs::stub_registry(&seeded)) {
            Err(e) => println!("urt-elab-smoke: `{name}` refused as expected: {e}"),
            Ok(_) => {
                eprintln!("urt-elab-smoke: `{name}` compiled — the gate is broken");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("urt-elab-smoke: PASS");
        ExitCode::SUCCESS
    }
}
