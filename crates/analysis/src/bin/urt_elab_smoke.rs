//! `urt-elab-smoke` — CI smoke for the elaboration pipeline.
//!
//! Pushes every clean built-in model through the full
//! `model → analyze → compile → run` pipeline with stub behaviours:
//! each model is compiled via [`urt_analysis::compile`] (so the
//! whole-model analyzer gates it), handed to
//! `HybridEngine::from_compiled`, and run for a few macro steps.
//! Models without SPort links additionally run as a K-instance
//! [`EnsembleEngine`], whose instance 0 must replay the standalone run
//! bit-identically (the ensemble determinism anchor).
//! The seeded negative models (`seeded-violations`, `seeded-cross-loop`,
//! `seeded-over-budget`) must **refuse** to compile. Any deviation exits
//! non-zero, which is what `scripts/check.sh` keys on.

use std::process::ExitCode;
use urt_analysis::{compile, examples, stubs};
use urt_core::engine::{EngineConfig, HybridEngine};
use urt_core::ensemble::EnsembleEngine;
use urt_core::recorder::Recorder;
use urt_core::threading::ThreadPolicy;

const STEP: f64 = 1e-3;
const MACRO_STEPS: u32 = 5;
const ENSEMBLE_K: usize = 8;

fn main() -> ExitCode {
    let mut failed = false;
    let config = EngineConfig { step: STEP, policy: ThreadPolicy::CurrentThread };
    let t_end = STEP * f64::from(MACRO_STEPS);

    for &name in examples::NAMES {
        let model = examples::by_name(name).expect("catalogue name");
        let compiled = match compile(&model, stubs::stub_registry(&model)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("urt-elab-smoke: `{name}` refused to compile: {e}");
                failed = true;
                continue;
            }
        };
        let groups = compiled.group_count();
        let sport_links = compiled.sport_link_count();
        let series: Vec<String> = compiled.probe_series().map(str::to_owned).collect();
        let mut engine = match HybridEngine::from_compiled(&compiled, config) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("urt-elab-smoke: `{name}` failed engine assembly: {e}");
                failed = true;
                continue;
            }
        };
        let rec = Recorder::new();
        engine.set_recorder(rec.clone());
        if let Err(e) = engine.run_until(t_end) {
            eprintln!("urt-elab-smoke: `{name}` failed to run: {e}");
            failed = true;
            continue;
        }
        println!("urt-elab-smoke: `{name}` ok ({groups} group(s), {MACRO_STEPS} steps)");

        // Ensemble smoke: the continuous half of every SPort-free model
        // must also run as a K-instance lockstep ensemble, with instance
        // 0 bit-identical to the standalone run just taken. The *same*
        // compiled artifact serves both runs — compile once,
        // instantiate many.
        if sport_links > 0 {
            continue;
        }
        let mut ensemble = match EnsembleEngine::from_compiled(&compiled, ENSEMBLE_K, config) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("urt-elab-smoke: `{name}` failed ensemble assembly: {e}");
                failed = true;
                continue;
            }
        };
        let erec = Recorder::new();
        ensemble.set_recorder(erec.clone());
        if let Err(e) = ensemble.run_until(t_end) {
            eprintln!("urt-elab-smoke: `{name}` failed ensemble run: {e}");
            failed = true;
            continue;
        }
        let mut diverged = false;
        for s in &series {
            let standalone = rec.series(s);
            let instance0 = erec.series(&EnsembleEngine::series_name(s, 0));
            let same = standalone.len() == instance0.len()
                && standalone.iter().zip(&instance0).all(|((t1, v1), (t2, v2))| {
                    t1.to_bits() == t2.to_bits() && v1.to_bits() == v2.to_bits()
                });
            if !same {
                eprintln!("urt-elab-smoke: `{name}` ensemble instance 0 diverged on `{s}`");
                diverged = true;
            }
        }
        if diverged {
            failed = true;
            continue;
        }
        println!(
            "urt-elab-smoke: `{name}` ensemble ok (K = {ENSEMBLE_K}, {} series bit-checked)",
            series.len()
        );
    }

    // The seeded models must be refused by the analysis gate — including
    // the cross-group algebraic loop and the over-budget timing plan
    // that fail-fast `validate()` misses.
    for name in ["seeded-violations", "seeded-cross-loop", "seeded-over-budget"] {
        let seeded = examples::by_name(name).expect("catalogue name");
        match compile(&seeded, stubs::stub_registry(&seeded)) {
            Err(e) => println!("urt-elab-smoke: `{name}` refused as expected: {e}"),
            Ok(_) => {
                eprintln!("urt-elab-smoke: `{name}` compiled — the gate is broken");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("urt-elab-smoke: PASS");
        ExitCode::SUCCESS
    }
}
