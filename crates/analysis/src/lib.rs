//! Whole-model static analysis for unified real-time models.
//!
//! The paper's Table 1 well-formedness rules are enforced fail-fast by
//! [`urt_core::model::UnifiedModel::validate`]; this crate runs the same
//! rules — plus graph, state-machine and thread-plan lints — over a model
//! and returns **all** findings at once as structured [`Diagnostic`]
//! values, each with a stable `URTxxx` code, a severity, a model path and
//! a suggestion.
//!
//! Passes over a [`UnifiedModel`]:
//!
//! 1. **Well-formedness** ([`model_pass`]) — every Table 1 rule collected
//!    instead of fail-fast: flow-type subset violations with field-level
//!    explanations, capsule-in-streamer containment,
//!    capsule-DPorts-are-relay-only, SPort protocol compatibility.
//! 2. **Graph lints** ([`model_pass`]) — algebraic loops through
//!    direct-feedthrough streamers (capsule relay chains resolved),
//!    unconnected inputs, dead outputs, isolated elements.
//! 3. **State-machine lints** ([`machine_pass`]) — unreachable states,
//!    transitions on signals no connected protocol can deliver, missing
//!    initial states.
//! 4. **Thread-plan deadlock** ([`thread_pass`]) — a wait-for graph over
//!    the solver threads' data rendezvous; cycles are deadlocks.
//! 5. **Cross-group flows** ([`flow_pass`]) — classifies every effective
//!    flow as intra- or cross-thread-group: cross-group flows into
//!    direct-feedthrough consumers are errors (`URT207`, the channel's
//!    one-macro-step delay would break a zero-delay algebraic path);
//!    legal ones report the induced delay.
//! 6. **Static timing** ([`cost_pass`]) — budgets worst-case macro-step
//!    cost per solver thread from declared or calibrated per-streamer
//!    costs (`URT301`–`URT305`): over-budget threads are errors the gate
//!    refuses, and `URT304` recommends a feasibility-pruned
//!    `assign_thread` partition before anything runs.
//!
//! [`analyze_network`] runs the network half over an executable
//! [`StreamerNetwork`]: undriven inputs, algebraic loops, dead outputs and
//! degenerate relays.
//!
//! [`compile`] is the pipeline front door: it injects the analyzer as
//! the elaboration gate and lowers a clean model plus a behaviour
//! registry into an executable `CompiledSystem` — error-severity
//! findings refuse to compile. [`stubs`] provides width- and
//! feedthrough-faithful placeholder behaviours so structure-only models
//! (e.g. the [`examples`] catalogue) can ride the whole pipeline.
//!
//! # Examples
//!
//! ```
//! use urt_analysis::{analyze, Severity};
//!
//! let model = urt_analysis::examples::seeded_violations();
//! let diags = analyze(&model);
//! assert!(diags.iter().filter(|d| d.severity == Severity::Error).count() >= 2);
//! assert!(diags.iter().any(|d| d.code == "URT105"), "flow-subset violation");
//! assert!(diags.iter().any(|d| d.code == "URT007"), "algebraic loop");
//! assert!(diags.iter().any(|d| d.code == "URT203"), "unreachable state");
//! ```

pub mod cost_pass;
pub mod diagnostic;
pub mod examples;
pub mod flow_pass;
pub mod machine_pass;
pub mod model_pass;
pub mod network_pass;
pub mod stubs;
pub mod thread_pass;

pub use diagnostic::{render_json_report, Diagnostic, Severity};

use urt_core::elaborate::{BehaviorRegistry, CompiledSystem};
use urt_core::model::UnifiedModel;
use urt_core::CoreError;
use urt_dataflow::graph::StreamerNetwork;

/// Runs every analysis pass over a declarative model and returns all
/// findings sorted by (severity, code, path, message) — deterministic
/// regardless of pass-registration order.
pub fn analyze(model: &UnifiedModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    model_pass::run(model, &mut out);
    machine_pass::run(model, &mut out);
    thread_pass::run(model, &mut out);
    flow_pass::run(model, &mut out);
    cost_pass::run(model, &mut out);
    sort_report(&mut out);
    out
}

/// Runs the network-level passes over an executable streamer network.
pub fn analyze_network(net: &StreamerNetwork) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    network_pass::run(net, &mut out);
    sort_report(&mut out);
    out
}

/// Canonical report order: (severity, code, path, message). Pinned by a
/// golden-file test so `--json` output never depends on which pass
/// happened to emit a finding first.
fn sort_report(out: &mut [Diagnostic]) {
    out.sort_by(|a, b| {
        (a.severity, a.code, &a.path, &a.message).cmp(&(b.severity, b.code, &b.path, &b.message))
    });
}

/// The full pipeline gate: compiles `model` into an executable
/// [`CompiledSystem`], refusing any model the analyzer flags with an
/// error-severity diagnostic.
///
/// This is the front door of `model → analyze → compile → run`: it
/// injects [`analyze`] as the elaboration gate (the crate DAG points
/// `urt_analysis → urt_core`, so `urt_core::elaborate` takes the gate as
/// an argument) and then lowers the model with the given behaviour
/// `registry`. Pass the result to
/// [`HybridEngine::from_compiled`](urt_core::engine::HybridEngine::from_compiled).
///
/// # Errors
///
/// [`CoreError::Elaborate`] when the analyzer reports errors, plus every
/// failure mode of [`urt_core::elaborate::elaborate`] (validation
/// violations, missing behaviours, width or feedthrough mismatches,
/// duplicate SPort links).
pub fn compile(
    model: &UnifiedModel,
    registry: BehaviorRegistry,
) -> Result<CompiledSystem, CoreError> {
    urt_core::elaborate::elaborate(model, registry, &|m| {
        let diags = analyze(m);
        if has_errors(&diags) {
            let (errors, _, _) = severity_counts(&diags);
            let first = diags.iter().find(|d| d.severity == Severity::Error).expect("has errors");
            return Err(CoreError::Elaborate {
                detail: format!(
                    "analysis found {errors} error(s) in model `{}`; first: [{}] {} ({})",
                    m.name(),
                    first.code,
                    first.message,
                    first.path
                ),
            });
        }
        Ok(())
    })
}

/// Whether any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Counts diagnostics of each severity as `(errors, warnings, infos)`.
pub fn severity_counts(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut counts = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Error => counts.0 += 1,
            Severity::Warning => counts.1 += 1,
            Severity::Info => counts.2 += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_model_has_no_errors() {
        for (name, model) in examples::all() {
            let diags = analyze(&model);
            assert!(!has_errors(&diags), "example `{name}` has errors: {diags:#?}");
        }
    }

    #[test]
    fn seeded_model_collects_multiple_distinct_errors() {
        let diags = analyze(&examples::seeded_violations());
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"URT105"), "flow-subset, got {codes:?}");
        assert!(codes.contains(&"URT007"), "algebraic loop, got {codes:?}");
        assert!(codes.contains(&"URT203"), "unreachable state, got {codes:?}");
        let (errors, _, _) = severity_counts(&diags);
        assert!(errors >= 2, "at least two errors, got {diags:#?}");
        // Errors sort before warnings.
        let first_warning = diags.iter().position(|d| d.severity != Severity::Error);
        if let Some(fw) = first_warning {
            assert!(diags[fw..].iter().all(|d| d.severity != Severity::Error));
        }
    }

    #[test]
    fn analyze_is_pure() {
        let model = examples::seeded_violations();
        assert_eq!(analyze(&model), analyze(&model));
    }

    #[test]
    fn whole_catalogue_compiles_with_stubs() {
        for (name, model) in examples::all() {
            let compiled = compile(&model, stubs::stub_registry(&model));
            assert!(compiled.is_ok(), "example `{name}`: {:?}", compiled.err());
        }
    }

    #[test]
    fn compile_refuses_seeded_model() {
        let model = examples::seeded_violations();
        let err = compile(&model, stubs::stub_registry(&model)).unwrap_err();
        assert!(matches!(err, CoreError::Elaborate { .. }), "{err}");
        assert!(err.to_string().starts_with("URT114: "), "{err}");
        assert!(err.to_string().contains("analysis found"), "{err}");
    }
}
