//! Network-level passes over an executable
//! [`StreamerNetwork`](urt_dataflow::graph::StreamerNetwork):
//! the structural errors from [`StreamerNetwork::lint`] (every undriven
//! input, algebraic loops) plus dead outputs (`URT201`) and degenerate
//! relays (`URT202`).

use crate::diagnostic::{Diagnostic, Severity};
use urt_dataflow::error::FlowError;
use urt_dataflow::graph::StreamerNetwork;

/// Runs the network-level passes, appending findings to `out`.
pub fn run(net: &StreamerNetwork, out: &mut Vec<Diagnostic>) {
    // Structural errors, collected (not fail-fast as in `validate`).
    for e in net.lint() {
        let path = match &e {
            FlowError::UnconnectedInput { node, port } => {
                format!("{}/{node}.dport:{port}", net.name())
            }
            FlowError::AlgebraicLoop { nodes } => {
                format!("{}/{}", net.name(), nodes.join(","))
            }
            _ => net.name().to_string(),
        };
        let mut d = Diagnostic::new(
            e.code(),
            Severity::Error,
            path,
            crate::model_pass::strip_code(&e.to_string()),
        );
        d = match &e {
            FlowError::UnconnectedInput { .. } => {
                d.suggest("drive the input with a flow or export it to the parent context")
            }
            FlowError::AlgebraicLoop { .. } => d.suggest(
                "make one streamer on the cycle non-feedthrough (integrator-like) to break it",
            ),
            _ => d,
        };
        out.push(d);
    }

    dead_outputs(net, out);
    degenerate_relays(net, out);
}

/// `URT201`: output DPorts with no outgoing flow that are not exported.
fn dead_outputs(net: &StreamerNetwork, out: &mut Vec<Diagnostic>) {
    let exported = net.exported_outputs();
    for (id, name) in net.iter_nodes() {
        let Ok(ports) = net.out_ports(id) else { continue };
        for port in ports {
            let read = net
                .iter_flows()
                .any(|((from, from_port), _)| from == id && from_port == port.name());
            let is_exported = exported.iter().any(|&(n, p)| n == id && p == port.name());
            if !read && !is_exported {
                out.push(
                    Diagnostic::new(
                        "URT201",
                        Severity::Warning,
                        format!("{}/{name}.dport:{}", net.name(), port.name()),
                        format!("output DPort `{}` of `{name}` is never read", port.name()),
                    )
                    .suggest("flow this output somewhere, export it, or remove the port"),
                );
            }
        }
    }
}

/// `URT202`: relay nodes fanning out to zero or one destination add
/// nothing over a direct flow.
fn degenerate_relays(net: &StreamerNetwork, out: &mut Vec<Diagnostic>) {
    for (id, name) in net.iter_nodes() {
        if !net.is_relay(id).unwrap_or(false) {
            continue;
        }
        let fan_out = net.iter_flows().filter(|((from, _), _)| *from == id).count();
        if fan_out <= 1 {
            out.push(
                Diagnostic::new(
                    "URT202",
                    Severity::Warning,
                    format!("{}/{name}", net.name()),
                    format!(
                        "relay `{name}` fans out to {fan_out} destination{}; a relay adds value only when distributing to several readers",
                        if fan_out == 1 { "" } else { "s" }
                    ),
                )
                .suggest("flow directly to the single reader, or remove the unused relay"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urt_dataflow::flowtype::FlowType;
    use urt_dataflow::graph::NodeId;
    use urt_dataflow::streamer::FnStreamer;

    fn add_source(net: &mut StreamerNetwork, name: &str) -> NodeId {
        net.add_streamer(
            FnStreamer::new(name, 0, 1, |_t, _h, _u: &[f64], y: &mut [f64]| y[0] = 1.0),
            &[],
            &[("y", FlowType::scalar())],
        )
        .unwrap()
    }

    fn add_sink(net: &mut StreamerNetwork, name: &str) -> NodeId {
        net.add_streamer(
            FnStreamer::new(name, 1, 0, |_t, _h, _u: &[f64], _y: &mut [f64]| {}),
            &[("u", FlowType::scalar())],
            &[],
        )
        .unwrap()
    }

    #[test]
    fn collects_undriven_inputs_as_errors() {
        let mut net = StreamerNetwork::new("n");
        add_sink(&mut net, "a");
        add_sink(&mut net, "b");
        let mut out = Vec::new();
        run(&net, &mut out);
        let undriven: Vec<&Diagnostic> = out.iter().filter(|d| d.code == "URT006").collect();
        assert_eq!(undriven.len(), 2, "both undriven inputs: {out:#?}");
        assert!(undriven.iter().all(|d| d.severity == Severity::Error));
        assert_eq!(undriven[0].path, "n/a.dport:u");
        assert_eq!(undriven[1].path, "n/b.dport:u");
    }

    #[test]
    fn dead_output_warned_unless_exported() {
        let mut net = StreamerNetwork::new("n");
        let s = add_source(&mut net, "src");
        let mut out = Vec::new();
        run(&net, &mut out);
        assert!(out.iter().any(|d| d.code == "URT201"), "{out:#?}");

        net.export_output(s, "y").unwrap();
        let mut out = Vec::new();
        run(&net, &mut out);
        assert!(!out.iter().any(|d| d.code == "URT201"), "{out:#?}");
    }

    #[test]
    fn degenerate_relay_warned() {
        let mut net = StreamerNetwork::new("n");
        let s = add_source(&mut net, "src");
        let r = net.add_relay("relay", FlowType::scalar(), 1).unwrap();
        let k = add_sink(&mut net, "snk");
        net.flow((s, "y"), (r, "in")).unwrap();
        net.flow((r, "out0"), (k, "u")).unwrap();
        let mut out = Vec::new();
        run(&net, &mut out);
        let d = out.iter().find(|d| d.code == "URT202").expect("URT202");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("1 destination"));
    }

    #[test]
    fn healthy_fan_out_relay_is_clean() {
        let mut net = StreamerNetwork::new("n");
        let s = add_source(&mut net, "src");
        let r = net.add_relay("relay", FlowType::scalar(), 2).unwrap();
        let k1 = add_sink(&mut net, "snk1");
        let k2 = add_sink(&mut net, "snk2");
        net.flow((s, "y"), (r, "in")).unwrap();
        net.flow((r, "out0"), (k1, "u")).unwrap();
        net.flow((r, "out1"), (k2, "u")).unwrap();
        let mut out = Vec::new();
        run(&net, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }
}
