//! Model-level passes: Table 1 well-formedness (collected) and graph
//! lints over the declarative flow topology.
//!
//! Capsule DPorts are relay-only (Figure 3), so for connectivity purposes
//! a capsule port is a pass-through: a chain
//! `streamer -> capsule.dport -> streamer` is one effective edge. The
//! algebraic-loop and thread-plan passes both work on these effective
//! streamer-to-streamer edges.

use crate::diagnostic::{Diagnostic, Severity};
use std::collections::{HashMap, HashSet, VecDeque};
use urt_core::model::{CapsuleRef, FlowEnd, Owner, StreamerRef, UnifiedModel};

/// Effective streamer-to-streamer edges with capsule relay chains
/// resolved.
pub(crate) fn effective_streamer_edges(model: &UnifiedModel) -> Vec<(StreamerRef, StreamerRef)> {
    #[derive(Clone, PartialEq, Eq, Hash)]
    enum Node {
        Streamer(StreamerRef),
        CapsulePort(CapsuleRef, String),
    }
    let key = |end: &FlowEnd| match end {
        FlowEnd::Streamer(s, _) => Node::Streamer(*s),
        FlowEnd::Capsule(c, p) => Node::CapsulePort(*c, p.clone()),
    };
    let mut adj: HashMap<Node, Vec<Node>> = HashMap::new();
    for (from, to) in model.iter_flows() {
        adj.entry(key(from)).or_default().push(key(to));
    }
    let mut edges = Vec::new();
    for (sref, _, _) in model.iter_streamers() {
        let mut seen = HashSet::new();
        let mut queue: VecDeque<Node> =
            adj.get(&Node::Streamer(sref)).cloned().unwrap_or_default().into();
        while let Some(node) = queue.pop_front() {
            if !seen.insert(node.clone()) {
                continue;
            }
            match node {
                Node::Streamer(target) => edges.push((sref, target)),
                Node::CapsulePort(..) => {
                    for next in adj.get(&node).into_iter().flatten() {
                        queue.push_back(next.clone());
                    }
                }
            }
        }
    }
    edges
}

/// Drops the `URTxxx: ` prefix an error's display string already carries
/// — the diagnostic holds the code in its own field.
pub(crate) fn strip_code(message: &str) -> String {
    match message.split_once(": ") {
        Some((code, rest)) if code.len() == 6 && code.starts_with("URT") => rest.to_owned(),
        _ => message.to_owned(),
    }
}

/// A fix hint for the well-formedness rules (keyed by stable code).
fn suggestion_for(code: &str) -> Option<&'static str> {
    match code {
        "URT101" => Some("rename one of the duplicate elements"),
        "URT102" => Some("move the capsule out of the streamer; streamers never contain capsules"),
        "URT103" => Some("break the ownership cycle so containment forms a tree"),
        "URT104" => Some("declare the DPort on the element before flowing through it"),
        "URT105" => {
            Some("make the output flow type a subset of the input flow type (Table 1 rule)")
        }
        "URT106" => Some(
            "give the capsule DPort both an incoming and an outgoing flow, or move the port to a streamer",
        ),
        "URT107" => Some("use the same protocol on both SPort ends"),
        _ => None,
    }
}

/// Runs the model-level passes, appending findings to `out`.
pub fn run(model: &UnifiedModel, out: &mut Vec<Diagnostic>) {
    let mpath = model.name().to_string();

    // Pass 1: Table 1 well-formedness, collected instead of fail-fast.
    for e in model.violations() {
        let mut d = Diagnostic::new(e.code(), Severity::Error, &mpath, strip_code(&e.to_string()));
        if let Some(s) = suggestion_for(e.code()) {
            d = d.suggest(s);
        }
        out.push(d);
    }

    // Pass 2: graph lints over the declarative flow topology.
    unconnected_inputs(model, out);
    dead_outputs(model, out);
    algebraic_loops(model, out);
    isolated_elements(model, out);
}

/// `URT208`: streamer input DPorts no flow drives. A declarative model
/// has no export notion, so this is a warning, unlike the network-level
/// `URT006` error.
fn unconnected_inputs(model: &UnifiedModel, out: &mut Vec<Diagnostic>) {
    for (sref, name, _) in model.iter_streamers() {
        for (port, _) in model.streamer_in_dports(sref) {
            let driven = model
                .iter_flows()
                .any(|(_, to)| matches!(to, FlowEnd::Streamer(s, p) if *s == sref && p == port));
            if !driven {
                out.push(
                    Diagnostic::new(
                        "URT208",
                        Severity::Warning,
                        format!("{}/{name}.dport:{port}", model.name()),
                        format!("input DPort `{port}` of streamer `{name}` has no incoming flow"),
                    )
                    .suggest("connect a flow into this input or remove the port"),
                );
            }
        }
    }
}

/// `URT201`: streamer output DPorts nothing reads.
fn dead_outputs(model: &UnifiedModel, out: &mut Vec<Diagnostic>) {
    for (sref, name, _) in model.iter_streamers() {
        for (port, _) in model.streamer_out_dports(sref) {
            let read = model.iter_flows().any(
                |(from, _)| matches!(from, FlowEnd::Streamer(s, p) if *s == sref && p == port),
            );
            if !read {
                out.push(
                    Diagnostic::new(
                        "URT201",
                        Severity::Warning,
                        format!("{}/{name}.dport:{port}", model.name()),
                        format!("output DPort `{port}` of streamer `{name}` is never read"),
                    )
                    .suggest("flow this output somewhere or remove the port"),
                );
            }
        }
    }
}

/// `URT007`: a cycle of direct-feedthrough streamers (relay chains
/// resolved) has no valid same-step evaluation order.
fn algebraic_loops(model: &UnifiedModel, out: &mut Vec<Diagnostic>) {
    let streamers: Vec<StreamerRef> = model.iter_streamers().map(|(s, _, _)| s).collect();
    let index: HashMap<StreamerRef, usize> =
        streamers.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    // Only direct-feedthrough streamers propagate a same-step dependency;
    // an edge into a non-feedthrough streamer imposes no ordering.
    let n = streamers.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (a, b) in effective_streamer_edges(model) {
        if a != b && model.streamer_feedthrough(b) {
            adj[index[&a]].push(index[&b]);
            indeg[index[&b]] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0;
    while let Some(u) = queue.pop_front() {
        done += 1;
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    if done < n {
        let names: Vec<&str> = (0..n)
            .filter(|&i| indeg[i] > 0)
            .filter_map(|i| model.streamer_name(streamers[i]))
            .collect();
        out.push(
            Diagnostic::new(
                "URT007",
                Severity::Error,
                format!("{}/{}", model.name(), names.join(",")),
                format!(
                    "algebraic loop: direct-feedthrough streamers {} form a cycle",
                    names.join(" -> ")
                ),
            )
            .suggest(
                "mark one streamer on the cycle as non-feedthrough (e.g. an integrator) to break it",
            ),
        );
    }
}

/// `URT209`: elements with no flows, no SPort links, no machine and no
/// contained children — probably leftovers.
fn isolated_elements(model: &UnifiedModel, out: &mut Vec<Diagnostic>) {
    let mut parents: HashSet<Owner> = HashSet::new();
    for (c, _) in model.iter_capsules() {
        if let Some(o) = model.capsule_owner(c) {
            parents.insert(o);
        }
    }
    for (s, _, _) in model.iter_streamers() {
        if let Some(o) = model.streamer_owner(s) {
            parents.insert(o);
        }
    }
    for (cref, name) in model.iter_capsules() {
        let linked = model.iter_sport_links().any(|(c, _, _, _)| c == cref)
            || model.iter_flows().any(|(from, to)| {
                matches!(from, FlowEnd::Capsule(c, _) if *c == cref)
                    || matches!(to, FlowEnd::Capsule(c, _) if *c == cref)
            });
        let has_children = parents.contains(&Owner::Capsule(cref));
        if !linked && !has_children && model.capsule_machine(cref).is_none() {
            out.push(
                Diagnostic::new(
                    "URT209",
                    Severity::Info,
                    format!("{}/{name}", model.name()),
                    format!("capsule `{name}` is isolated: no links, no machine, no children"),
                )
                .suggest("wire it into the system or remove it"),
            );
        }
    }
    for (sref, name, _) in model.iter_streamers() {
        let linked = model.iter_sport_links().any(|(_, _, s, _)| s == sref)
            || model.iter_flows().any(|(from, to)| {
                matches!(from, FlowEnd::Streamer(s, _) if *s == sref)
                    || matches!(to, FlowEnd::Streamer(s, _) if *s == sref)
            });
        let has_children = parents.contains(&Owner::Streamer(sref));
        if !linked && !has_children {
            out.push(
                Diagnostic::new(
                    "URT209",
                    Severity::Info,
                    format!("{}/{name}", model.name()),
                    format!("streamer `{name}` is isolated: no flows, no links, no children"),
                )
                .suggest("wire it into the system or remove it"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urt_dataflow::flowtype::{FlowType, Unit};

    use urt_core::model::ModelBuilder;

    #[test]
    fn collects_well_formedness_with_suggestions() {
        let mut b = ModelBuilder::new("bad");
        let s1 = b.streamer("s1", "rk4");
        let s2 = b.streamer("s2", "rk4");
        b.streamer_out(s1, "y", FlowType::with_unit(Unit::Meter));
        b.streamer_in(s2, "u", FlowType::with_unit(Unit::Kelvin));
        b.flow_between_streamers(s1, "y", s2, "u");
        let mut out = Vec::new();
        run(&b.build(), &mut out);
        let subset = out.iter().find(|d| d.code == "URT105").expect("URT105 reported");
        assert_eq!(subset.severity, Severity::Error);
        assert!(subset.message.contains("unit"), "{}", subset.message);
        assert!(subset.suggestion.as_deref().unwrap().contains("subset"));
    }

    #[test]
    fn relay_chains_resolve_to_effective_edges() {
        // s1 -> c.d -> s2: one effective edge s1 -> s2.
        let mut b = ModelBuilder::new("relay");
        let c = b.capsule("c");
        let s1 = b.streamer("s1", "rk4");
        let s2 = b.streamer("s2", "rk4");
        b.contain_streamer_in_capsule(s2, c);
        b.capsule_dport(c, "d", FlowType::scalar());
        b.streamer_out(s1, "y", FlowType::scalar());
        b.streamer_in(s2, "u", FlowType::scalar());
        b.flow(FlowEnd::Streamer(s1, "y".into()), FlowEnd::Capsule(c, "d".into()));
        b.flow(FlowEnd::Capsule(c, "d".into()), FlowEnd::Streamer(s2, "u".into()));
        let model = b.build();
        assert_eq!(effective_streamer_edges(&model), vec![(s1, s2)]);
    }

    #[test]
    fn algebraic_loop_found_and_broken_by_non_feedthrough() {
        let build = |break_loop: bool| {
            let mut b = ModelBuilder::new("loopy");
            let s1 = b.streamer("s1", "rk4");
            let s2 = b.streamer("s2", "rk4");
            b.streamer_out(s1, "y", FlowType::scalar());
            b.streamer_in(s1, "u", FlowType::scalar());
            b.streamer_out(s2, "y", FlowType::scalar());
            b.streamer_in(s2, "u", FlowType::scalar());
            b.flow_between_streamers(s1, "y", s2, "u");
            b.flow_between_streamers(s2, "y", s1, "u");
            if break_loop {
                b.streamer_feedthrough(s1, false);
            }
            b.build()
        };
        let mut out = Vec::new();
        run(&build(false), &mut out);
        let lp = out.iter().find(|d| d.code == "URT007").expect("loop reported");
        assert_eq!(lp.severity, Severity::Error);
        assert!(lp.message.contains("s1") && lp.message.contains("s2"));

        let mut out = Vec::new();
        run(&build(true), &mut out);
        assert!(!out.iter().any(|d| d.code == "URT007"), "integrator breaks the loop");
    }

    #[test]
    fn unconnected_and_dead_ports_warned() {
        let mut b = ModelBuilder::new("m");
        let s = b.streamer("s", "rk4");
        b.streamer_in(s, "u", FlowType::scalar());
        b.streamer_out(s, "y", FlowType::scalar());
        let mut out = Vec::new();
        run(&b.build(), &mut out);
        let undriven = out.iter().find(|d| d.code == "URT208").expect("URT208");
        assert_eq!(undriven.path, "m/s.dport:u");
        assert_eq!(undriven.severity, Severity::Warning);
        let dead = out.iter().find(|d| d.code == "URT201").expect("URT201");
        assert_eq!(dead.path, "m/s.dport:y");
    }

    #[test]
    fn isolated_elements_reported_as_info() {
        let mut b = ModelBuilder::new("m");
        b.capsule("ghost");
        b.streamer("adrift", "rk4");
        let mut out = Vec::new();
        run(&b.build(), &mut out);
        let infos: Vec<&Diagnostic> = out.iter().filter(|d| d.code == "URT209").collect();
        assert_eq!(infos.len(), 2);
        assert!(infos.iter().all(|d| d.severity == Severity::Info));
    }

    #[test]
    fn clean_model_passes_quietly() {
        let mut b = ModelBuilder::new("clean");
        let s1 = b.streamer("s1", "rk4");
        let s2 = b.streamer("s2", "rk4");
        b.streamer_out(s1, "y", FlowType::scalar());
        b.streamer_in(s2, "u", FlowType::scalar());
        b.flow_between_streamers(s1, "y", s2, "u");
        b.streamer_feedthrough(s2, false);
        let mut out = Vec::new();
        run(&b.build(), &mut out);
        assert!(out.is_empty(), "clean model: {out:#?}");
    }
}
