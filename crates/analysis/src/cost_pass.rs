//! Static timing analysis (`URT301`–`URT305`): budgets macro steps and
//! recommends thread partitions before anything runs.
//!
//! The paper's unified model targets *real-time* control systems, yet
//! structural soundness alone lets a model that can never meet its
//! control-loop deadline sail through the gate and fail only on the wall
//! clock. This pass closes that hole in the schedulability-analysis
//! tradition (Giotto, UML-RT deployment models): timing is a
//! compile-time artifact.
//!
//! A model opts in by declaring facts
//! ([`ModelBuilder::declare_step_cost`](urt_core::model::ModelBuilder::declare_step_cost)
//! /
//! [`ModelBuilder::declare_budget`](urt_core::model::ModelBuilder::declare_budget));
//! undeclared streamers fall back to a [`CostModel`] — a calibration
//! table fitted from the engine benchmark
//! (`bench_engine --emit-cost-table` → `results/COST_table.json`), or
//! conservative defaults when no table is present. The pass aggregates
//! worst-case per-macro-step cost per solver-thread group over the
//! *effective* flattened edge graph (the same machinery `URT007`/`URT207`
//! use, so relays and containers can't hide cost) and emits:
//!
//! * **`URT301`** (error) — a thread group's worst-case macro-step cost
//!   exceeds the budget binding it; refused by the elaboration gate like
//!   any other error.
//! * **`URT302`** (warning) — a budget is declared but a streamer on the
//!   critical path has neither a declared nor a calibrated cost; the
//!   conservative default was assumed.
//! * **`URT303`** (warning) — partition imbalance above threshold, with
//!   per-group cost shares.
//! * **`URT304`** (info) — the recommended `assign_thread` partition:
//!   greedy bin-packing over the effective edges, feasibility-pruned so
//!   no suggested cut creates a zero-delay cross-group path (`URT207`)
//!   or a rendezvous deadlock (`URT206`), with predicted per-group costs
//!   and the one-macro-step delays each cut induces.
//! * **`URT305`** (warning) — a declared cost contradicts the
//!   calibration table by more than 10× (a stale-annotation smell).
//!
//! The runtime half of the same contract is
//! [`HybridEngine::run_paced`](urt_core::engine::HybridEngine::run_paced):
//! the declared budget this pass checks statically travels through
//! `CompiledSystem::step_budget_ns` into the paced run loop, which
//! enforces it against the wall clock per macro step and — under
//! `OverrunPolicy::SafetyStop` — aborts with the structured `URT115`
//! (`CoreError::DeadlineOverrun`) when it is repeatedly missed. `URT301`
//! says a budget *cannot* be met from static costs; `URT115` says it
//! *was not* met on this machine.

use crate::diagnostic::{json_string, Diagnostic, Severity};
use crate::model_pass::effective_streamer_edges;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::OnceLock;
use urt_core::model::{Owner, StreamerRef, UnifiedModel};

/// Conservative per-streamer macro-step cost (ns) assumed when neither a
/// declaration nor a calibration entry exists. Chosen well above the
/// most expensive calibrated solver in `results/BENCH_engine.json`
/// (an RK4 Van der Pol at ~6.5 µs/step), so an uncalibrated model is
/// budgeted pessimistically, never optimistically.
pub const CONSERVATIVE_NS_PER_STEP: f64 = 10_000.0;

/// Imbalance threshold for `URT303`: warn when the most loaded group
/// carries more than this multiple of the mean group cost.
pub const IMBALANCE_FACTOR: f64 = 1.5;

/// Declared-vs-calibrated contradiction threshold for `URT305`.
pub const CONTRADICTION_FACTOR: f64 = 10.0;

/// Where a streamer's cost figure came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostBasis {
    /// `declare_step_cost` on the model.
    Declared,
    /// The calibration table, keyed by solver kind.
    Calibrated,
    /// [`CONSERVATIVE_NS_PER_STEP`] (nothing better known).
    Default,
}

/// Per-streamer cost model: a solver-kind calibration table plus a
/// conservative fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// ns per macro step, keyed by solver kind (`"rk4"`, `"euler"`, …).
    solver_ns: BTreeMap<String, f64>,
    /// Fallback for solvers absent from the table.
    default_ns: f64,
    /// Whether this model was fitted from measurements (a loaded table)
    /// rather than assumed.
    calibrated: bool,
}

impl CostModel {
    /// The no-table fallback: every streamer costs
    /// [`CONSERVATIVE_NS_PER_STEP`].
    pub fn conservative() -> Self {
        CostModel {
            solver_ns: BTreeMap::new(),
            default_ns: CONSERVATIVE_NS_PER_STEP,
            calibrated: false,
        }
    }

    /// Builds a calibrated model from explicit entries (mostly for
    /// tests; production tables come from [`CostModel::from_json`]).
    pub fn from_entries(entries: &[(&str, f64)], default_ns: f64) -> Self {
        CostModel {
            solver_ns: entries.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            default_ns,
            calibrated: true,
        }
    }

    /// Parses a `cost_table/v1` JSON document (the shape
    /// `bench_engine --emit-cost-table` writes).
    ///
    /// # Errors
    ///
    /// A human-readable description when the schema marker, the default
    /// cost or the solver entries cannot be found.
    pub fn from_json(json: &str) -> Result<Self, String> {
        if !json.contains("\"schema\":\"cost_table/v1\"") {
            return Err("not a cost_table/v1 document".to_owned());
        }
        let default_ns = number_field(json, "\"default_ns_per_step\":")
            .ok_or_else(|| "missing default_ns_per_step".to_owned())?;
        let mut solver_ns = BTreeMap::new();
        let solvers =
            json.split_once("\"solvers\":[").ok_or_else(|| "missing solvers array".to_owned())?.1;
        let mut rest = solvers;
        while let Some((_, after)) = rest.split_once("\"solver\":\"") {
            let (name, after_name) =
                after.split_once('"').ok_or_else(|| "unterminated solver name".to_owned())?;
            let ns = number_field(after_name, "\"ns_per_step\":")
                .ok_or_else(|| format!("solver `{name}` has no ns_per_step"))?;
            solver_ns.insert(name.to_owned(), ns);
            rest = after_name;
        }
        if solver_ns.is_empty() {
            return Err("empty solvers array".to_owned());
        }
        Ok(CostModel { solver_ns, default_ns, calibrated: true })
    }

    /// Loads the first parseable table among `paths`, falling back to
    /// [`CostModel::conservative`] when none loads.
    pub fn load_from(paths: &[&Path]) -> Self {
        for p in paths {
            if let Ok(text) = std::fs::read_to_string(p) {
                if let Ok(model) = CostModel::from_json(&text) {
                    return model;
                }
            }
        }
        CostModel::conservative()
    }

    /// The process-wide default: `results/COST_table.json` resolved
    /// relative to the working directory (the repo root for the CLI,
    /// a crate root under `cargo test` — both spellings are searched),
    /// conservative when absent. Loaded once and cached.
    pub fn shared() -> &'static CostModel {
        static SHARED: OnceLock<CostModel> = OnceLock::new();
        SHARED.get_or_init(|| {
            CostModel::load_from(&[
                Path::new("results/COST_table.json"),
                Path::new("../../results/COST_table.json"),
            ])
        })
    }

    /// Whether the table came from measurements.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Calibration entry for a solver kind, if present.
    pub fn solver_ns(&self, solver: &str) -> Option<f64> {
        self.solver_ns.get(solver).copied()
    }

    /// The fallback cost for unknown solvers.
    pub fn default_ns(&self) -> f64 {
        self.default_ns
    }

    /// The worst-case macro-step cost of streamer `s` and where the
    /// figure came from: declaration > calibration > default.
    pub fn streamer_cost(&self, model: &UnifiedModel, s: StreamerRef) -> (f64, CostBasis) {
        if let Some(ns) = model.streamer_step_cost(s) {
            return (ns, CostBasis::Declared);
        }
        let solver = model
            .iter_streamers()
            .find(|(r, _, _)| *r == s)
            .map(|(_, _, solver)| solver)
            .unwrap_or("");
        match self.solver_ns(solver) {
            Some(ns) => (ns, CostBasis::Calibrated),
            None => (self.default_ns, CostBasis::Default),
        }
    }
}

/// Extracts the JSON number following `key` in `json`.
fn number_field(json: &str, key: &str) -> Option<f64> {
    let after = json.split_once(key)?.1;
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Worst-case cost of one solver-thread group under the current plan.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCost {
    /// Declared solver thread.
    pub thread: usize,
    /// Sum of member worst-case step costs, ns.
    pub cost_ns: f64,
    /// The budget binding this thread, if any.
    pub budget_ns: Option<f64>,
    /// Member (leaf) streamer names, declaration order.
    pub streamers: Vec<String>,
}

/// The `URT304` recommendation: a feasibility-pruned greedy bin-packing
/// of the leaf streamers over solver threads.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    /// `(streamer name, recommended thread)`, declaration order.
    pub assignments: Vec<(String, usize)>,
    /// Predicted worst-case cost per recommended thread, ns.
    pub group_costs: Vec<f64>,
    /// Effective edges the recommendation cuts; each acquires a
    /// deterministic one-macro-step delay (`URT207` info at runtime).
    pub cut_edges: Vec<(String, String)>,
    /// Bin capacity used (the tightest declared budget), ns.
    pub capacity_ns: f64,
}

impl PartitionPlan {
    /// Whether the plan keeps everything on one thread.
    pub fn is_single_thread(&self) -> bool {
        self.group_costs.len() <= 1
    }
}

/// Everything `urt-lint --budget-report` prints: per-group worst-case
/// cost vs. budget under the *declared* plan, plus the recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetReport {
    /// Model name.
    pub model: String,
    /// Whether the cost figures come from a calibration table.
    pub calibrated: bool,
    /// Per-declared-thread worst-case costs.
    pub groups: Vec<GroupCost>,
    /// The `URT304` recommendation.
    pub plan: PartitionPlan,
}

impl BudgetReport {
    /// Markdown-ish human table plus the recommendation line.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "budget report `{}` (cost model: {})",
            self.model,
            if self.calibrated { "calibrated" } else { "conservative defaults" }
        );
        let _ =
            writeln!(s, "| thread | worst-case ns/step | budget ns/step | verdict | streamers |");
        let _ =
            writeln!(s, "|--------|--------------------|----------------|---------|-----------|");
        for g in &self.groups {
            let (budget, verdict) = match g.budget_ns {
                Some(b) if g.cost_ns > b => (format!("{b:.0}"), "OVER"),
                Some(b) => (format!("{b:.0}"), "OK"),
                None => ("-".to_owned(), "unbudgeted"),
            };
            let _ = writeln!(
                s,
                "| {} | {:.0} | {} | {} | {} |",
                g.thread,
                g.cost_ns,
                budget,
                verdict,
                g.streamers.join(", ")
            );
        }
        let _ = write!(s, "recommendation (URT304): {}", render_plan(&self.plan));
        s
    }

    /// Hand-rolled JSON rendering (the workspace carries no serde).
    pub fn render_json(&self) -> String {
        let mut s = String::from("{");
        let _ =
            write!(s, "\"model\":{},\"calibrated\":{}", json_string(&self.model), self.calibrated);
        s.push_str(",\"groups\":[");
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"thread\":{},\"cost_ns\":{:.1}", g.thread, g.cost_ns);
            match g.budget_ns {
                Some(b) => {
                    let _ = write!(s, ",\"budget_ns\":{b:.1},\"within\":{}", g.cost_ns <= b);
                }
                None => s.push_str(",\"budget_ns\":null,\"within\":null"),
            }
            s.push_str(",\"streamers\":[");
            for (j, name) in g.streamers.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&json_string(name));
            }
            s.push_str("]}");
        }
        s.push_str("],\"recommendation\":{");
        let _ = write!(
            s,
            "\"threads\":{},\"capacity_ns\":{:.1},\"group_costs\":[",
            self.plan.group_costs.len(),
            self.plan.capacity_ns
        );
        for (i, c) in self.plan.group_costs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{c:.1}");
        }
        s.push_str("],\"assignments\":[");
        for (i, (name, t)) in self.plan.assignments.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"streamer\":{},\"thread\":{t}}}", json_string(name));
        }
        s.push_str("],\"cuts\":[");
        for (i, (a, b)) in self.plan.cut_edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"from\":{},\"to\":{}}}", json_string(a), json_string(b));
        }
        s.push_str("]}}");
        s
    }
}

fn render_plan(plan: &PartitionPlan) -> String {
    if plan.is_single_thread() {
        return format!(
            "keep all leaf streamers on one solver thread (predicted {:.0} ns/step \
             against a {:.0} ns budget); splitting buys nothing at this cost model",
            plan.group_costs.first().copied().unwrap_or(0.0),
            plan.capacity_ns
        );
    }
    let mut members: Vec<Vec<&str>> = vec![Vec::new(); plan.group_costs.len()];
    for (name, t) in &plan.assignments {
        members[*t].push(name);
    }
    let groups: Vec<String> = plan
        .group_costs
        .iter()
        .enumerate()
        .map(|(t, c)| format!("thread {t}: {} ({c:.0} ns)", members[t].join(", ")))
        .collect();
    let cuts: Vec<String> = plan.cut_edges.iter().map(|(a, b)| format!("{a}->{b}")).collect();
    format!(
        "{} solver threads — {}; each cut edge gains a one-macro-step delay: {}",
        plan.group_costs.len(),
        groups.join("; "),
        if cuts.is_empty() { "none".to_owned() } else { cuts.join(", ") }
    )
}

/// Leaf streamers (declaration order): containers contribute no runtime
/// nodes, so they carry no cost and take no partition slot.
fn leaves(model: &UnifiedModel) -> Vec<StreamerRef> {
    let containers: HashSet<StreamerRef> = model
        .iter_streamers()
        .filter_map(|(r, _, _)| match model.streamer_owner(r) {
            Some(Owner::Streamer(parent)) => Some(parent),
            _ => None,
        })
        .collect();
    model.iter_streamers().map(|(r, _, _)| r).filter(|r| !containers.contains(r)).collect()
}

/// Computes the budget report for a model, or `None` when the model
/// declares no budgets (the pass is opt-in).
pub fn budget_report(model: &UnifiedModel, cost: &CostModel) -> Option<BudgetReport> {
    if !model.has_budgets() {
        return None;
    }
    let leaf_refs = leaves(model);

    // --- worst case per declared thread ---------------------------------
    let mut by_thread: BTreeMap<usize, GroupCost> = BTreeMap::new();
    for &s in &leaf_refs {
        let t = model.streamer_thread(s);
        let (ns, _) = cost.streamer_cost(model, s);
        let entry = by_thread.entry(t).or_insert_with(|| GroupCost {
            thread: t,
            cost_ns: 0.0,
            budget_ns: model.budget_for_thread(t),
            streamers: Vec::new(),
        });
        entry.cost_ns += ns;
        entry.streamers.push(model.streamer_name(s).unwrap_or("?").to_owned());
    }

    // --- recommendation: feasibility-pruned greedy bin-packing ----------
    // Contract every effective edge into a feedthrough consumer: cutting
    // it would create a zero-delay cross-group path (URT207 error) and a
    // same-step rendezvous wait (URT206 fuel), so those endpoints must
    // share a thread. What remains are the units the packer may place
    // freely; every cut edge then has a non-feedthrough consumer, which
    // tolerates the channel's one-macro-step delay by construction.
    let index: HashMap<StreamerRef, usize> =
        leaf_refs.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut parent: Vec<usize> = (0..leaf_refs.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let edges: Vec<(StreamerRef, StreamerRef)> = effective_streamer_edges(model);
    for &(a, b) in &edges {
        if a == b {
            continue;
        }
        if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
            if model.streamer_feedthrough(b) {
                let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
                parent[ra] = rb;
            }
        }
    }
    let mut units: BTreeMap<usize, (f64, Vec<usize>)> = BTreeMap::new();
    for (i, &leaf) in leaf_refs.iter().enumerate() {
        let root = find(&mut parent, i);
        let (ns, _) = cost.streamer_cost(model, leaf);
        let entry = units.entry(root).or_insert((0.0, Vec::new()));
        entry.0 += ns;
        entry.1.push(i);
    }
    // The tightest declared budget is the bin capacity.
    let capacity = model.iter_budgets().map(|(_, ns)| ns).fold(f64::INFINITY, f64::min);
    // First-fit decreasing; ties broken by first declared member, so the
    // plan is deterministic across map orders.
    let mut unit_list: Vec<(f64, Vec<usize>)> = units.into_values().collect();
    unit_list.sort_by(|a, b| {
        b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1[0].cmp(&b.1[0]))
    });
    let total: f64 = unit_list.iter().map(|(c, _)| *c).sum();
    let mut bins: Vec<(f64, Vec<usize>)> = Vec::new();
    if total <= capacity {
        // Splitting is pure overhead when one thread meets the budget —
        // the bench's lesson (4 groups cost ~4× on fig2).
        bins.push((total, unit_list.iter().flat_map(|(_, m)| m.iter().copied()).collect()));
    } else {
        for (c, members) in unit_list {
            match bins.iter_mut().find(|(used, _)| *used + c <= capacity) {
                Some(bin) => {
                    bin.0 += c;
                    bin.1.extend(members);
                }
                None => bins.push((c, members)),
            }
        }
    }
    for (_, members) in &mut bins {
        members.sort_unstable();
    }
    let mut assignment_of = vec![0usize; leaf_refs.len()];
    for (t, (_, members)) in bins.iter().enumerate() {
        for &m in members {
            assignment_of[m] = t;
        }
    }
    let assignments: Vec<(String, usize)> = leaf_refs
        .iter()
        .enumerate()
        .map(|(i, &s)| (model.streamer_name(s).unwrap_or("?").to_owned(), assignment_of[i]))
        .collect();
    let mut cut_edges: Vec<(String, String)> = Vec::new();
    let mut seen = HashSet::new();
    for &(a, b) in &edges {
        if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
            if assignment_of[ia] != assignment_of[ib] && seen.insert((ia, ib)) {
                cut_edges.push((
                    model.streamer_name(a).unwrap_or("?").to_owned(),
                    model.streamer_name(b).unwrap_or("?").to_owned(),
                ));
            }
        }
    }

    Some(BudgetReport {
        model: model.name().to_owned(),
        calibrated: cost.is_calibrated(),
        groups: by_thread.into_values().collect(),
        plan: PartitionPlan {
            assignments,
            group_costs: bins.iter().map(|(c, _)| *c).collect(),
            cut_edges,
            capacity_ns: capacity,
        },
    })
}

/// Runs the cost pass with the process-wide default [`CostModel`].
pub fn run(model: &UnifiedModel, out: &mut Vec<Diagnostic>) {
    run_with(model, CostModel::shared(), out);
}

/// Runs the cost pass with an explicit cost model.
pub fn run_with(model: &UnifiedModel, cost: &CostModel, out: &mut Vec<Diagnostic>) {
    let Some(report) = budget_report(model, cost) else {
        return; // no declared budgets: the pass is opt-in
    };
    let mpath = model.name();

    // URT302 / URT305: per-streamer cost hygiene on budgeted threads.
    for &s in &leaves(model) {
        let t = model.streamer_thread(s);
        if model.budget_for_thread(t).is_none() {
            continue;
        }
        let name = model.streamer_name(s).unwrap_or("?");
        let solver = model
            .iter_streamers()
            .find(|(r, _, _)| *r == s)
            .map(|(_, _, solver)| solver.to_owned())
            .unwrap_or_default();
        let (ns, basis) = cost.streamer_cost(model, s);
        if basis == CostBasis::Default {
            out.push(
                Diagnostic::new(
                    "URT302",
                    Severity::Warning,
                    format!("{mpath}/{name}"),
                    format!(
                        "streamer `{name}` sits on budgeted thread {t} with neither a declared \
                         step cost nor a calibration entry for solver `{solver}`; the \
                         conservative default ({ns:.0} ns) was assumed"
                    ),
                )
                .suggest(
                    "declare_step_cost(...) on the model, or regenerate the calibration table \
                     with `bench_engine --emit-cost-table`",
                ),
            );
        }
        if let (Some(declared), Some(calibrated)) =
            (model.streamer_step_cost(s), cost.solver_ns(&solver))
        {
            let ratio = declared / calibrated;
            if !(1.0 / CONTRADICTION_FACTOR..=CONTRADICTION_FACTOR).contains(&ratio) {
                out.push(
                    Diagnostic::new(
                        "URT305",
                        Severity::Warning,
                        format!("{mpath}/{name}"),
                        format!(
                            "declared step cost of `{name}` ({declared:.0} ns) contradicts the \
                             calibration table ({calibrated:.0} ns for solver `{solver}`) by \
                             more than {CONTRADICTION_FACTOR:.0}x — stale annotation?"
                        ),
                    )
                    .suggest(
                        "re-measure (bench_engine --emit-cost-table) or drop the declaration \
                         so calibration takes over",
                    ),
                );
            }
        }
    }

    // URT301: worst case vs. budget, per declared thread group.
    for g in &report.groups {
        let Some(budget) = g.budget_ns else { continue };
        if g.cost_ns > budget {
            let over = 100.0 * (g.cost_ns - budget) / budget;
            out.push(
                Diagnostic::new(
                    "URT301",
                    Severity::Error,
                    format!("{mpath}/thread:{}", g.thread),
                    format!(
                        "worst-case macro-step cost of solver thread {} is {:.0} ns, exceeding \
                         its {budget:.0} ns budget by {over:.0}% (members: {})",
                        g.thread,
                        g.cost_ns,
                        g.streamers.join(", ")
                    ),
                )
                .suggest(
                    "raise the budget, cut member cost, or split the thread — see the URT304 \
                     partition recommendation",
                ),
            );
        }
    }

    // URT303: imbalance across the declared multi-thread plan.
    if report.groups.len() >= 2 {
        let total: f64 = report.groups.iter().map(|g| g.cost_ns).sum();
        let mean = total / report.groups.len() as f64;
        if let Some(worst) = report
            .groups
            .iter()
            .max_by(|a, b| a.cost_ns.partial_cmp(&b.cost_ns).unwrap_or(std::cmp::Ordering::Equal))
        {
            if total > 0.0 && worst.cost_ns > IMBALANCE_FACTOR * mean {
                let shares: Vec<String> = report
                    .groups
                    .iter()
                    .map(|g| format!("thread {}: {:.0}%", g.thread, 100.0 * g.cost_ns / total))
                    .collect();
                out.push(
                    Diagnostic::new(
                        "URT303",
                        Severity::Warning,
                        format!("{mpath}/threads"),
                        format!(
                            "partition imbalance: solver thread {} carries {:.0}% of the \
                             worst-case cost ({:.0} ns of {total:.0} ns total; shares: {})",
                            worst.thread,
                            100.0 * worst.cost_ns / total,
                            worst.cost_ns,
                            shares.join(", ")
                        ),
                    )
                    .suggest("rebalance with assign_thread — see the URT304 recommendation"),
                );
            }
        }
    }

    // URT304: the recommendation itself.
    out.push(
        Diagnostic::new(
            "URT304",
            Severity::Info,
            format!("{mpath}/partition"),
            format!("recommended partition: {}", render_plan(&report.plan)),
        )
        .suggest(
            report
                .plan
                .assignments
                .iter()
                .map(|(name, t)| format!("assign_thread({name}, {t})"))
                .collect::<Vec<_>>()
                .join("; "),
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use urt_core::model::{BudgetScope, ModelBuilder};
    use urt_dataflow::flowtype::FlowType;

    fn table() -> CostModel {
        CostModel::from_entries(&[("euler", 40.0), ("rk4", 6000.0)], 10_000.0)
    }

    /// Three-stage non-feedthrough pipeline with declared costs and a
    /// per-thread budget; everything starts on thread 0.
    fn pipeline(costs: [f64; 3], budget: f64) -> urt_core::model::UnifiedModel {
        let mut b = ModelBuilder::new("pipe");
        let mut prev = None;
        for (i, ns) in costs.iter().enumerate() {
            let s = b.streamer(format!("st{i}"), "euler");
            if i > 0 {
                b.streamer_in(s, "u", FlowType::scalar());
            }
            b.streamer_out(s, "y", FlowType::scalar());
            b.streamer_feedthrough(s, false);
            b.declare_step_cost(s, *ns);
            if let Some(p) = prev {
                b.flow_between_streamers(p, "y", s, "u");
            }
            prev = Some(s);
        }
        b.declare_budget(BudgetScope::Model, budget);
        b.build()
    }

    #[test]
    fn no_budget_means_no_findings() {
        let mut b = ModelBuilder::new("quiet");
        let s = b.streamer("s", "rk4");
        b.streamer_out(s, "y", FlowType::scalar());
        let mut out = Vec::new();
        run_with(&b.build(), &table(), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn over_budget_thread_is_an_error_with_members() {
        let model = pipeline([400.0, 400.0, 400.0], 1000.0);
        let mut out = Vec::new();
        run_with(&model, &table(), &mut out);
        let d = out.iter().find(|d| d.code == "URT301").expect("URT301");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.path, "pipe/thread:0");
        assert!(d.message.contains("1200 ns"), "{}", d.message);
        assert!(d.message.contains("st0, st1, st2"), "{}", d.message);
    }

    #[test]
    fn met_budget_is_silent_except_the_recommendation() {
        let model = pipeline([100.0, 100.0, 100.0], 1000.0);
        let mut out = Vec::new();
        run_with(&model, &table(), &mut out);
        assert!(!out.iter().any(|d| d.code == "URT301"), "{out:#?}");
        let rec = out.iter().find(|d| d.code == "URT304").expect("URT304");
        assert_eq!(rec.severity, Severity::Info);
        assert!(rec.message.contains("keep all leaf streamers"), "{}", rec.message);
    }

    #[test]
    fn uncalibrated_streamer_on_budgeted_thread_warns() {
        let mut b = ModelBuilder::new("m");
        let s = b.streamer("mystery", "levenberg");
        b.streamer_out(s, "y", FlowType::scalar());
        b.declare_budget(BudgetScope::Thread(0), 50_000.0);
        let mut out = Vec::new();
        run_with(&b.build(), &table(), &mut out);
        let d = out.iter().find(|d| d.code == "URT302").expect("URT302");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("levenberg"), "{}", d.message);
        assert!(d.message.contains("10000 ns"), "conservative default: {}", d.message);
    }

    #[test]
    fn declared_cost_contradicting_calibration_warns() {
        let mut b = ModelBuilder::new("m");
        let s = b.streamer("stale", "euler");
        b.streamer_out(s, "y", FlowType::scalar());
        b.declare_step_cost(s, 40_000.0); // 1000x the table's euler
        b.declare_budget(BudgetScope::Model, 100_000.0);
        let mut out = Vec::new();
        run_with(&b.build(), &table(), &mut out);
        let d = out.iter().find(|d| d.code == "URT305").expect("URT305");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("stale annotation"), "{}", d.message);
        // The declaration still wins for budgeting (no URT302).
        assert!(!out.iter().any(|d| d.code == "URT302"), "{out:#?}");
    }

    #[test]
    fn imbalanced_declared_plan_warns_with_shares() {
        let mut b = ModelBuilder::new("m");
        let s1 = b.streamer("heavy", "euler");
        let s2 = b.streamer("light", "euler");
        b.streamer_out(s1, "y", FlowType::scalar());
        b.streamer_out(s2, "y", FlowType::scalar());
        b.declare_step_cost(s1, 900.0);
        b.declare_step_cost(s2, 100.0);
        b.assign_thread(s1, 0);
        b.assign_thread(s2, 1);
        b.declare_budget(BudgetScope::Model, 1000.0);
        let mut out = Vec::new();
        run_with(&b.build(), &table(), &mut out);
        let d = out.iter().find(|d| d.code == "URT303").expect("URT303");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("90%"), "{}", d.message);
        assert!(d.message.contains("thread 1: 10%"), "{}", d.message);
    }

    #[test]
    fn recommendation_splits_when_one_thread_cannot_meet_the_budget() {
        let model = pipeline([600.0, 600.0, 600.0], 1300.0);
        let report = budget_report(&model, &table()).expect("budgeted");
        assert_eq!(report.plan.group_costs.len(), 2, "{report:#?}");
        assert!(report.plan.group_costs.iter().all(|&c| c <= 1300.0), "{report:#?}");
        assert!(!report.plan.cut_edges.is_empty(), "a split must cut an edge");
        // Every cut consumer is non-feedthrough (URT207-feasible).
        let mut out = Vec::new();
        run_with(&model, &table(), &mut out);
        assert!(out.iter().any(|d| d.code == "URT304" && d.message.contains("one-macro-step")));
    }

    #[test]
    fn feedthrough_consumers_are_never_cut() {
        // st0 -> st1 with st1 feedthrough: the pair is one unit even when
        // splitting would balance better.
        let mut b = ModelBuilder::new("m");
        let s0 = b.streamer("st0", "euler");
        let s1 = b.streamer("st1", "euler");
        let s2 = b.streamer("st2", "euler");
        b.streamer_out(s0, "y", FlowType::scalar());
        b.streamer_in(s1, "u", FlowType::scalar());
        b.streamer_out(s1, "y", FlowType::scalar());
        b.streamer_in(s2, "u", FlowType::scalar());
        b.streamer_feedthrough(s0, false);
        b.streamer_feedthrough(s1, true); // same-step consumer: uncuttable
        b.streamer_feedthrough(s2, false);
        b.flow_between_streamers(s0, "y", s1, "u");
        b.flow_between_streamers(s1, "y", s2, "u");
        for (s, ns) in [(s0, 700.0), (s1, 700.0), (s2, 700.0)] {
            b.declare_step_cost(s, ns);
        }
        b.declare_budget(BudgetScope::Model, 1500.0);
        let report = budget_report(&b.build(), &table()).expect("budgeted");
        let thread_of = |name: &str| {
            report.plan.assignments.iter().find(|(n, _)| n == name).map(|(_, t)| *t).unwrap()
        };
        assert_eq!(thread_of("st0"), thread_of("st1"), "{:#?}", report.plan);
        assert!(
            !report.plan.cut_edges.iter().any(|(_, to)| to == "st1"),
            "{:#?}",
            report.plan.cut_edges
        );
    }

    #[test]
    fn cost_table_parses_and_falls_back() {
        let json = "{\"schema\":\"cost_table/v1\",\"fitted_from\":\"bench_engine\",\
                    \"step_s\":0.001,\"default_ns_per_step\":1234.5,\"solvers\":[\
                    {\"solver\":\"euler\",\"ns_per_step\":33.1},\
                    {\"solver\":\"rk4\",\"ns_per_step\":6358.0}]}";
        let table = CostModel::from_json(json).expect("parses");
        assert!(table.is_calibrated());
        assert_eq!(table.solver_ns("euler"), Some(33.1));
        assert_eq!(table.solver_ns("rk4"), Some(6358.0));
        assert_eq!(table.solver_ns("nope"), None);
        assert_eq!(table.default_ns(), 1234.5);

        assert!(CostModel::from_json("{}").is_err());
        assert!(CostModel::from_json("{\"schema\":\"cost_table/v1\"}").is_err());

        // Missing file: conservative fallback.
        let fallback = CostModel::load_from(&[Path::new("/nonexistent/COST_table.json")]);
        assert!(!fallback.is_calibrated());
        assert_eq!(fallback.default_ns(), CONSERVATIVE_NS_PER_STEP);
        // Present file: the committed table loads through the same path
        // the shared() accessor uses from a crate root.
        let loaded = CostModel::load_from(&[
            Path::new("results/COST_table.json"),
            Path::new("../../results/COST_table.json"),
        ]);
        assert!(loaded.is_calibrated(), "committed results/COST_table.json loads");
        assert!(loaded.solver_ns("rk4").is_some());
    }

    #[test]
    fn containers_carry_no_cost() {
        let mut b = ModelBuilder::new("m");
        let top = b.streamer("top", "rk4"); // container: excluded
        let sub = b.streamer("sub", "euler");
        b.contain_streamer(sub, top);
        b.streamer_out(sub, "y", FlowType::scalar());
        b.declare_step_cost(sub, 500.0);
        b.declare_budget(BudgetScope::Model, 1000.0);
        let report = budget_report(&b.build(), &table()).expect("budgeted");
        assert_eq!(report.groups.len(), 1);
        assert_eq!(report.groups[0].streamers, vec!["sub".to_owned()]);
        assert_eq!(report.groups[0].cost_ns, 500.0);
    }
}
