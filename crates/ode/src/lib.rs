//! Numerical substrate for the time-continuous half of the unified model.
//!
//! The DATE 2005 paper extends UML-RT with *streamers* whose behaviour "is
//! carried out by solvers through computing the equations". This crate is
//! that solver layer, built from scratch:
//!
//! * [`system`] — continuous systems described by differential equations
//!   (`dx/dt = f(t, x, u)`).
//! * [`solver`] — integration strategies (the *strategy* stereotype of the
//!   paper's Figure 1): explicit Euler, Heun, classic RK4, adaptive
//!   Dormand–Prince RK45 and a fixed-point backward Euler.
//! * [`difference`] — time-discrete systems described by difference
//!   equations, which UML-RT can already host inside capsule actions.
//! * [`events`] — zero-crossing detection and bisection localisation, the
//!   mechanism by which continuous trajectories raise discrete signals.
//! * [`linalg`] — small dense matrices with LU decomposition, enough for
//!   state-space models.
//! * [`state`] — the state-vector type shared by all of the above.
//!
//! # Examples
//!
//! Integrate exponential decay with RK4:
//!
//! ```
//! use urt_ode::{solver::{Rk4, Solver}, system::FnSystem, integrate};
//!
//! # fn main() -> Result<(), urt_ode::SolveError> {
//! let sys = FnSystem::new(1, |_t, x, dx| dx[0] = -x[0]);
//! let traj = integrate(&sys, &mut Rk4::new(), 0.0, 1.0, &[1.0], 0.01)?;
//! let x1 = traj.last_state()[0];
//! assert!((x1 - (-1.0f64).exp()).abs() < 1e-8);
//! # Ok(())
//! # }
//! ```

pub mod difference;
pub mod error;
pub mod events;
pub mod hybrid;
pub mod interp;
pub mod linalg;
pub mod rng;
pub mod solver;
pub mod state;
pub mod system;

pub use error::SolveError;
pub use events::{EventDirection, ZeroCrossing};
pub use solver::{Solver, SolverKind, StepOutcome};
pub use state::{StateVec, LANE_WIDTH};
pub use system::{AffineSystem, BatchOdeSystem, FnSystem, LinearSystem, OdeSystem};

use solver::SolverDriver;

/// A recorded trajectory: sampled times and the matching state vectors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    times: Vec<f64>,
    states: Vec<StateVec>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not strictly greater than the previously pushed time.
    pub fn push(&mut self, t: f64, x: StateVec) {
        if let Some(&last) = self.times.last() {
            assert!(t > last, "trajectory times must be strictly increasing");
        }
        self.times.push(t);
        self.states.push(x);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trajectory holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sampled times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sampled states, parallel to [`Trajectory::times`].
    pub fn states(&self) -> &[StateVec] {
        &self.states
    }

    /// The final state.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn last_state(&self) -> &StateVec {
        self.states.last().expect("trajectory is empty")
    }

    /// The final time.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn last_time(&self) -> f64 {
        *self.times.last().expect("trajectory is empty")
    }

    /// Iterates over `(t, state)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &StateVec)> {
        self.times.iter().copied().zip(self.states.iter())
    }

    /// Linear interpolation of the state at time `t`, clamped to the
    /// recorded range.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn sample(&self, t: f64) -> StateVec {
        assert!(!self.is_empty(), "cannot sample an empty trajectory");
        if t <= self.times[0] {
            return self.states[0].clone();
        }
        if t >= *self.times.last().unwrap() {
            return self.states.last().unwrap().clone();
        }
        let idx = match self.times.binary_search_by(|probe| probe.partial_cmp(&t).unwrap()) {
            Ok(i) => return self.states[i].clone(),
            Err(i) => i,
        };
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let alpha = (t - t0) / (t1 - t0);
        self.states[idx - 1].lerp(&self.states[idx], alpha)
    }
}

/// Integrates `sys` from `t0` to `t1` starting at `x0` with nominal step
/// `h`, recording every accepted step.
///
/// The last step is shortened so the trajectory ends exactly at `t1`.
///
/// # Errors
///
/// Returns [`SolveError`] if the solver rejects the problem (e.g. dimension
/// mismatch or a non-finite state).
///
/// # Examples
///
/// ```
/// use urt_ode::{integrate, solver::ForwardEuler, system::FnSystem};
/// # fn main() -> Result<(), urt_ode::SolveError> {
/// let sys = FnSystem::new(1, |_t, x, dx| dx[0] = -x[0]);
/// let traj = integrate(&sys, &mut ForwardEuler::new(), 0.0, 0.5, &[1.0], 0.01)?;
/// assert!(traj.last_state()[0] < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn integrate<S: Solver + ?Sized>(
    sys: &dyn OdeSystem,
    solver: &mut S,
    t0: f64,
    t1: f64,
    x0: &[f64],
    h: f64,
) -> Result<Trajectory, SolveError> {
    let mut driver = SolverDriver::new(t0, x0, h)?;
    let mut traj = Trajectory::new();
    traj.push(t0, StateVec::from_slice(x0));
    while driver.time() < t1 {
        driver.advance(sys, solver, t1)?;
        traj.push(driver.time(), driver.state().clone());
    }
    Ok(traj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{ForwardEuler, Rk4};

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, x: &[f64], dx: &mut [f64]| dx[0] = -x[0])
    }

    #[test]
    fn trajectory_push_and_sample() {
        let mut traj = Trajectory::new();
        traj.push(0.0, StateVec::from_slice(&[0.0]));
        traj.push(1.0, StateVec::from_slice(&[2.0]));
        assert_eq!(traj.len(), 2);
        assert!((traj.sample(0.5)[0] - 1.0).abs() < 1e-12);
        assert_eq!(traj.sample(-1.0)[0], 0.0);
        assert_eq!(traj.sample(9.0)[0], 2.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn trajectory_rejects_nonmonotonic_times() {
        let mut traj = Trajectory::new();
        traj.push(1.0, StateVec::from_slice(&[0.0]));
        traj.push(1.0, StateVec::from_slice(&[0.0]));
    }

    #[test]
    fn integrate_euler_decays() {
        let traj = integrate(&decay(), &mut ForwardEuler::new(), 0.0, 1.0, &[1.0], 1e-3)
            .expect("integration succeeds");
        let exact = (-1.0f64).exp();
        assert!((traj.last_state()[0] - exact).abs() < 1e-3);
        assert!((traj.last_time() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn integrate_rk4_is_much_more_accurate_than_euler() {
        let h = 0.05;
        let e = integrate(&decay(), &mut ForwardEuler::new(), 0.0, 1.0, &[1.0], h).unwrap();
        let r = integrate(&decay(), &mut Rk4::new(), 0.0, 1.0, &[1.0], h).unwrap();
        let exact = (-1.0f64).exp();
        let err_e = (e.last_state()[0] - exact).abs();
        let err_r = (r.last_state()[0] - exact).abs();
        assert!(err_r < err_e / 100.0, "rk4 {err_r} vs euler {err_e}");
    }

    #[test]
    fn integrate_ends_exactly_at_t1() {
        // Step that does not divide the interval evenly.
        let traj = integrate(&decay(), &mut Rk4::new(), 0.0, 1.0, &[1.0], 0.3).unwrap();
        assert!((traj.last_time() - 1.0).abs() < 1e-12);
    }
}
