//! Error type shared by all numerical routines in this crate.

use std::error::Error;
use std::fmt;

/// Error raised by solvers, systems and linear algebra routines.
///
/// # Examples
///
/// ```
/// use urt_ode::SolveError;
///
/// let err = SolveError::DimensionMismatch { expected: 2, found: 3 };
/// assert!(err.to_string().contains("dimension"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// A state or derivative buffer had the wrong length.
    DimensionMismatch {
        /// Dimension the system declares.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// The step size was zero, negative, or not finite.
    InvalidStep {
        /// The offending step size.
        step: f64,
    },
    /// A state component became NaN or infinite during integration.
    NonFiniteState {
        /// Simulation time at which the state diverged.
        time: f64,
    },
    /// An adaptive solver could not meet its tolerance above its minimum
    /// step size.
    StepSizeUnderflow {
        /// Simulation time at which control gave up.
        time: f64,
        /// Step size at which control gave up.
        step: f64,
    },
    /// An iterative (implicit) method failed to converge.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A matrix was singular (or numerically so) during factorisation.
    SingularMatrix {
        /// Pivot column where elimination broke down.
        pivot: usize,
    },
    /// An event function never bracketed a root it reported.
    EventNotBracketed,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::DimensionMismatch { expected, found } => {
                write!(f, "state dimension mismatch: expected {expected}, found {found}")
            }
            SolveError::InvalidStep { step } => {
                write!(f, "invalid integration step size {step}")
            }
            SolveError::NonFiniteState { time } => {
                write!(f, "state became non-finite at t = {time}")
            }
            SolveError::StepSizeUnderflow { time, step } => {
                write!(f, "adaptive step size underflow at t = {time} (h = {step})")
            }
            SolveError::NoConvergence { iterations } => {
                write!(f, "implicit iteration failed to converge after {iterations} iterations")
            }
            SolveError::SingularMatrix { pivot } => {
                write!(f, "singular matrix at pivot {pivot}")
            }
            SolveError::EventNotBracketed => {
                write!(f, "event root was not bracketed by the step")
            }
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let cases: Vec<SolveError> = vec![
            SolveError::DimensionMismatch { expected: 1, found: 2 },
            SolveError::InvalidStep { step: 0.0 },
            SolveError::NonFiniteState { time: 1.0 },
            SolveError::StepSizeUnderflow { time: 1.0, step: 1e-18 },
            SolveError::NoConvergence { iterations: 50 },
            SolveError::SingularMatrix { pivot: 3 },
            SolveError::EventNotBracketed,
        ];
        for c in cases {
            let msg = c.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("state"));
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SolveError>();
    }
}
