//! Small dense linear algebra: just enough for state-space blocks and
//! implicit methods — a row-major [`Matrix`] with LU factorisation.

// Row/column elimination indexes matrices and permutation vectors in
// lockstep; indexed loops read closer to the math than iterator chains.
#![allow(clippy::needless_range_loop)]

use crate::error::SolveError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use urt_ode::linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
/// let x = a.solve(&[2.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok::<(), urt_ode::SolveError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            y[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Scales every entry by `alpha`, in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Solves `A x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`SolveError::DimensionMismatch`] if `b.len() != rows` or the
    ///   matrix is not square.
    /// * [`SolveError::SingularMatrix`] if a pivot vanishes.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if !self.is_square() {
            return Err(SolveError::DimensionMismatch { expected: self.rows, found: self.cols });
        }
        if b.len() != self.rows {
            return Err(SolveError::DimensionMismatch { expected: self.rows, found: b.len() });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = lu[perm[col] * n + col].abs();
            for row in (col + 1)..n {
                let v = lu[perm[row] * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-300 {
                return Err(SolveError::SingularMatrix { pivot: col });
            }
            perm.swap(col, pivot_row);
            let p = perm[col];
            for row in (col + 1)..n {
                let r = perm[row];
                let factor = lu[r * n + col] / lu[p * n + col];
                lu[r * n + col] = factor;
                for j in (col + 1)..n {
                    lu[r * n + j] -= factor * lu[p * n + j];
                }
            }
        }

        // Forward substitution (L has unit diagonal), applying permutation.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let r = perm[i];
            let mut acc = x[r];
            for j in 0..i {
                acc -= lu[r * n + j] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let r = perm[i];
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= lu[r * n + j] * x[j];
            }
            x[i] = acc / lu[r * n + i];
        }
        Ok(x)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let id = Matrix::identity(3);
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
        assert!(id.is_square());
        assert_eq!(id.rows(), 3);
        assert_eq!(id.cols(), 3);
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn solve_diagonal() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.solve(&[2.0, 8.0]).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_general_3x3() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]);
        let x = a.solve(&[4.0, 5.0, 6.0]).unwrap();
        // Verify by substitution.
        let b = a.matvec(&x);
        for (bi, expect) in b.iter().zip([4.0, 5.0, 6.0]) {
            assert!((bi - expect).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.solve(&[1.0, 2.0]), Err(SolveError::SingularMatrix { .. })));
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.solve(&[1.0, 1.0]), Err(SolveError::DimensionMismatch { .. })));
        let a = Matrix::identity(2);
        assert!(matches!(a.solve(&[1.0]), Err(SolveError::DimensionMismatch { .. })));
    }

    #[test]
    fn scale_in_place() {
        let mut a = Matrix::identity(2);
        a.scale(3.0);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(1, 1)], 3.0);
    }
}
