//! Integration strategies — the paper's Figure 1 `Strategy` hierarchy.
//!
//! Each solver is a strategy object a streamer can hold behind
//! `Box<dyn Solver>` and swap without touching the equations, exactly the
//! State/Strategy separation the paper presents as its architectural
//! pattern.

// The kernels update several state vectors in lockstep; indexed loops
// read closer to the Butcher-tableau math than zipped iterator chains.
#![allow(clippy::needless_range_loop)]

use crate::error::SolveError;
use crate::state::{lanes_axpy, lanes_rk4_combine, lanes_stage, StateVec};
use crate::system::{BatchOdeSystem, OdeSystem};
use std::fmt;

/// Outcome of a single attempted integration step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Whether the step was accepted (fixed-step methods always accept).
    pub accepted: bool,
    /// Step size actually taken (equals the request for fixed-step methods).
    pub h_taken: f64,
    /// Suggested size for the next step.
    pub h_next: f64,
    /// Local error estimate, when the method produces one.
    pub error_estimate: Option<f64>,
}

impl StepOutcome {
    fn fixed(h: f64) -> Self {
        StepOutcome { accepted: true, h_taken: h, h_next: h, error_estimate: None }
    }
}

/// An ODE integration strategy.
///
/// Object-safe by design: streamers store solvers as trait objects so the
/// strategy can be replaced at run time (paper Figure 1).
///
/// # Examples
///
/// ```
/// use urt_ode::solver::{Rk4, Solver};
/// use urt_ode::system::FnSystem;
///
/// # fn main() -> Result<(), urt_ode::SolveError> {
/// let sys = FnSystem::new(1, |_t, x, dx| dx[0] = -x[0]);
/// let mut solver = Rk4::new();
/// let mut x = vec![1.0];
/// let outcome = solver.step(&sys, 0.0, &mut x, 0.1)?;
/// assert!(outcome.accepted);
/// assert!(x[0] < 1.0);
/// # Ok(())
/// # }
/// ```
pub trait Solver {
    /// Human-readable strategy name ("rk4", "dopri45", ...).
    fn name(&self) -> &str;

    /// Classical order of accuracy.
    fn order(&self) -> u32;

    /// Whether the method adapts its own step size.
    fn is_adaptive(&self) -> bool {
        false
    }

    /// Attempts one step of size `h` from `(t, x)`, updating `x` in place
    /// when the step is accepted.
    ///
    /// # Errors
    ///
    /// * [`SolveError::InvalidStep`] if `h` is not positive and finite.
    /// * [`SolveError::DimensionMismatch`] if `x` does not match the system.
    /// * [`SolveError::NonFiniteState`] if the step produces NaN/inf.
    /// * [`SolveError::NoConvergence`] for implicit methods that stall.
    fn step(
        &mut self,
        sys: &dyn OdeSystem,
        t: f64,
        x: &mut [f64],
        h: f64,
    ) -> Result<StepOutcome, SolveError>;

    /// Clones this strategy (configuration and scratch state) into a
    /// fresh boxed solver, or `None` when the concrete strategy is not
    /// cloneable. Ensemble execution uses this to stamp per-instance
    /// solver state out of one prototype.
    fn clone_boxed(&self) -> Option<Box<dyn Solver + Send>> {
        None
    }

    /// Whether this strategy overrides [`Solver::step_batch`] with a
    /// truly batched kernel (every stage evaluated across all lanes at
    /// once) rather than the per-lane default. Ensemble execution only
    /// routes lanes through the batched path for such solvers.
    fn has_batched_kernel(&self) -> bool {
        false
    }

    /// Advances `states.len() / dim` independent state lanes of the same
    /// system from `t` to exactly `t + h`, where lane `i` occupies
    /// `states[i * dim..(i + 1) * dim]` (instance-major layout).
    ///
    /// Fixed-step methods take one step of `h` per lane, so each lane is
    /// bit-identical to a standalone [`Solver::step`] call. Adaptive
    /// rejections are retried per lane with the suggested smaller step
    /// until the lane reaches `t + h`.
    ///
    /// Termination is pinned: a lane never *attempts* a step smaller than
    /// the interval's floating-point resolution — when a controller's
    /// `h_next` underflows that far (including to zero) near `t_end`, the
    /// call fails with [`SolveError::StepSizeUnderflow`] instead of
    /// spinning on steps too small to advance the clock. Every accepted
    /// step therefore moves a lane by at least the resolution, bounding
    /// the loop at `h / resolution` iterations per lane.
    ///
    /// # Errors
    ///
    /// * [`SolveError::DimensionMismatch`] if `dim` is zero or does not
    ///   divide `states.len()`.
    /// * [`SolveError::StepSizeUnderflow`] if a lane's suggested step
    ///   falls below the time resolution before reaching `t + h`.
    /// * Any error the per-lane [`Solver::step`] calls produce.
    fn step_batch(
        &mut self,
        sys: &dyn BatchOdeSystem,
        t: f64,
        states: &mut [f64],
        dim: usize,
        h: f64,
    ) -> Result<(), SolveError> {
        if dim == 0 || !states.len().is_multiple_of(dim) {
            return Err(SolveError::DimensionMismatch { expected: dim, found: states.len() });
        }
        let t_end = t + h;
        let resolution = f64::EPSILON * t_end.abs().max(1.0);
        for lane in states.chunks_mut(dim) {
            let mut tl = t;
            let mut hl = h;
            loop {
                let remaining = t_end - tl;
                if remaining <= resolution {
                    break;
                }
                let h_try = hl.min(remaining);
                if h_try < resolution {
                    return Err(SolveError::StepSizeUnderflow { time: tl, step: h_try });
                }
                let out = self.step(sys, tl, lane, h_try)?;
                if out.accepted {
                    tl += out.h_taken;
                }
                hl = out.h_next;
            }
        }
        Ok(())
    }
}

fn validate(sys: &dyn OdeSystem, x: &[f64], h: f64) -> Result<(), SolveError> {
    sys.check_dim(x)?;
    if !(h.is_finite() && h > 0.0) {
        return Err(SolveError::InvalidStep { step: h });
    }
    Ok(())
}

fn ensure_finite(t: f64, x: &[f64]) -> Result<(), SolveError> {
    if x.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(SolveError::NonFiniteState { time: t })
    }
}

/// Validates the instance-major batch layout the batched kernels consume
/// and returns the lane count `k`.
fn batch_layout(
    sys: &dyn BatchOdeSystem,
    states: &[f64],
    dim: usize,
    h: f64,
) -> Result<usize, SolveError> {
    if dim == 0 || !states.len().is_multiple_of(dim) {
        return Err(SolveError::DimensionMismatch { expected: dim, found: states.len() });
    }
    if dim != sys.dim() {
        return Err(SolveError::DimensionMismatch { expected: sys.dim(), found: dim });
    }
    if !(h.is_finite() && h > 0.0) {
        return Err(SolveError::InvalidStep { step: h });
    }
    Ok(states.len() / dim)
}

fn resize_buf(v: &mut Vec<f64>, n: usize) {
    if v.len() != n {
        v.clear();
        v.resize(n, 0.0);
    }
}

/// Instance-major (`[i * dim + v]`) → variable-major (`[v * k + i]`)
/// transpose into the kernel scratch. Pure data movement: the per-lane
/// values are untouched, so bit-identity survives the relayout.
fn gather_variable_major(states: &[f64], dim: usize, k: usize, xs: &mut [f64]) {
    for (i, lane) in states.chunks_exact(dim).enumerate() {
        for (v, value) in lane.iter().enumerate() {
            xs[v * k + i] = *value;
        }
    }
}

/// Variable-major → instance-major transpose back out of the scratch.
fn scatter_variable_major(xs: &[f64], dim: usize, k: usize, states: &mut [f64]) {
    for (i, lane) in states.chunks_exact_mut(dim).enumerate() {
        for (v, value) in lane.iter_mut().enumerate() {
            *value = xs[v * k + i];
        }
    }
}

/// Which solver strategy to instantiate; the configuration-level mirror of
/// the concrete strategy types.
///
/// # Examples
///
/// ```
/// use urt_ode::solver::SolverKind;
///
/// let solver = SolverKind::Rk4.create();
/// assert_eq!(solver.name(), "rk4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum SolverKind {
    /// Explicit forward Euler (order 1).
    ForwardEuler,
    /// Heun's method / explicit trapezoidal (order 2).
    Heun,
    /// Classic fourth-order Runge–Kutta.
    #[default]
    Rk4,
    /// Adaptive Dormand–Prince 4(5).
    Dopri45,
    /// Backward Euler via fixed-point iteration (order 1, damped).
    BackwardEuler,
}

impl SolverKind {
    /// All kinds, in ascending order of accuracy cost.
    pub const ALL: [SolverKind; 5] = [
        SolverKind::ForwardEuler,
        SolverKind::Heun,
        SolverKind::Rk4,
        SolverKind::Dopri45,
        SolverKind::BackwardEuler,
    ];

    /// Instantiates the strategy with default settings.
    pub fn create(self) -> Box<dyn Solver + Send> {
        match self {
            SolverKind::ForwardEuler => Box::new(ForwardEuler::new()),
            SolverKind::Heun => Box::new(Heun::new()),
            SolverKind::Rk4 => Box::new(Rk4::new()),
            SolverKind::Dopri45 => Box::new(Dopri45::new()),
            SolverKind::BackwardEuler => Box::new(BackwardEuler::new()),
        }
    }
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SolverKind::ForwardEuler => "euler",
            SolverKind::Heun => "heun",
            SolverKind::Rk4 => "rk4",
            SolverKind::Dopri45 => "dopri45",
            SolverKind::BackwardEuler => "backward-euler",
        };
        f.write_str(name)
    }
}

/// Explicit forward Euler: `x += h f(t, x)`.
#[derive(Debug, Clone, Default)]
pub struct ForwardEuler {
    k: StateVec,
    bxs: Vec<f64>,
    bk: Vec<f64>,
}

impl ForwardEuler {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Solver for ForwardEuler {
    fn name(&self) -> &str {
        "euler"
    }

    fn order(&self) -> u32 {
        1
    }

    fn clone_boxed(&self) -> Option<Box<dyn Solver + Send>> {
        Some(Box::new(self.clone()))
    }

    fn step(
        &mut self,
        sys: &dyn OdeSystem,
        t: f64,
        x: &mut [f64],
        h: f64,
    ) -> Result<StepOutcome, SolveError> {
        validate(sys, x, h)?;
        resize(&mut self.k, x.len());
        sys.derivatives(t, x, self.k.as_mut_slice());
        for (xi, ki) in x.iter_mut().zip(self.k.iter()) {
            *xi += h * ki;
        }
        ensure_finite(t + h, x)?;
        Ok(StepOutcome::fixed(h))
    }

    fn has_batched_kernel(&self) -> bool {
        true
    }

    /// Width-aware batch step: one `derivatives_batch` evaluation across
    /// all K lanes, then a single fused axpy sweep. Per-lane arithmetic is
    /// the exact `x[i] += h * k[i]` of the scalar kernel, so every lane is
    /// bit-identical to a standalone [`Solver::step`].
    fn step_batch(
        &mut self,
        sys: &dyn BatchOdeSystem,
        t: f64,
        states: &mut [f64],
        dim: usize,
        h: f64,
    ) -> Result<(), SolveError> {
        let k = batch_layout(sys, states, dim, h)?;
        let n = states.len();
        resize_buf(&mut self.bxs, n);
        resize_buf(&mut self.bk, n);
        gather_variable_major(states, dim, k, &mut self.bxs);
        sys.derivatives_batch(t, &self.bxs, dim, k, &mut self.bk);
        lanes_axpy(&mut self.bxs, h, &self.bk);
        ensure_finite(t + h, &self.bxs)?;
        scatter_variable_major(&self.bxs, dim, k, states);
        Ok(())
    }
}

/// Heun's method (explicit trapezoidal), order 2.
#[derive(Debug, Clone, Default)]
pub struct Heun {
    k1: StateVec,
    k2: StateVec,
    tmp: StateVec,
}

impl Heun {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Solver for Heun {
    fn name(&self) -> &str {
        "heun"
    }

    fn order(&self) -> u32 {
        2
    }

    fn clone_boxed(&self) -> Option<Box<dyn Solver + Send>> {
        Some(Box::new(self.clone()))
    }

    fn step(
        &mut self,
        sys: &dyn OdeSystem,
        t: f64,
        x: &mut [f64],
        h: f64,
    ) -> Result<StepOutcome, SolveError> {
        validate(sys, x, h)?;
        let n = x.len();
        resize(&mut self.k1, n);
        resize(&mut self.k2, n);
        resize(&mut self.tmp, n);
        sys.derivatives(t, x, self.k1.as_mut_slice());
        for i in 0..n {
            self.tmp[i] = x[i] + h * self.k1[i];
        }
        sys.derivatives(t + h, self.tmp.as_slice(), self.k2.as_mut_slice());
        for i in 0..n {
            x[i] += 0.5 * h * (self.k1[i] + self.k2[i]);
        }
        ensure_finite(t + h, x)?;
        Ok(StepOutcome::fixed(h))
    }
}

/// Classic fourth-order Runge–Kutta.
#[derive(Debug, Clone, Default)]
pub struct Rk4 {
    k1: StateVec,
    k2: StateVec,
    k3: StateVec,
    k4: StateVec,
    tmp: StateVec,
    bxs: Vec<f64>,
    bk1: Vec<f64>,
    bk2: Vec<f64>,
    bk3: Vec<f64>,
    bk4: Vec<f64>,
    bstage: Vec<f64>,
}

impl Rk4 {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Solver for Rk4 {
    fn name(&self) -> &str {
        "rk4"
    }

    fn order(&self) -> u32 {
        4
    }

    fn clone_boxed(&self) -> Option<Box<dyn Solver + Send>> {
        Some(Box::new(self.clone()))
    }

    fn step(
        &mut self,
        sys: &dyn OdeSystem,
        t: f64,
        x: &mut [f64],
        h: f64,
    ) -> Result<StepOutcome, SolveError> {
        validate(sys, x, h)?;
        let n = x.len();
        for k in [&mut self.k1, &mut self.k2, &mut self.k3, &mut self.k4, &mut self.tmp] {
            resize(k, n);
        }
        sys.derivatives(t, x, self.k1.as_mut_slice());
        for i in 0..n {
            self.tmp[i] = x[i] + 0.5 * h * self.k1[i];
        }
        sys.derivatives(t + 0.5 * h, self.tmp.as_slice(), self.k2.as_mut_slice());
        for i in 0..n {
            self.tmp[i] = x[i] + 0.5 * h * self.k2[i];
        }
        sys.derivatives(t + 0.5 * h, self.tmp.as_slice(), self.k3.as_mut_slice());
        for i in 0..n {
            self.tmp[i] = x[i] + h * self.k3[i];
        }
        sys.derivatives(t + h, self.tmp.as_slice(), self.k4.as_mut_slice());
        for i in 0..n {
            x[i] += h / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
        }
        ensure_finite(t + h, x)?;
        Ok(StepOutcome::fixed(h))
    }

    fn has_batched_kernel(&self) -> bool {
        true
    }

    /// Width-aware batch step: each RK stage is evaluated across all K
    /// lanes before the next stage begins, with the stage-combine loops
    /// fused into [`LANE_WIDTH`]-chunked sweeps over the variable-major
    /// scratch. Per-lane arithmetic keeps the scalar kernel's expression
    /// order (`x[i] + 0.5 * h * k[i]`, final `h / 6` weighted sum), so
    /// every lane is bit-identical to a standalone [`Solver::step`].
    fn step_batch(
        &mut self,
        sys: &dyn BatchOdeSystem,
        t: f64,
        states: &mut [f64],
        dim: usize,
        h: f64,
    ) -> Result<(), SolveError> {
        let k = batch_layout(sys, states, dim, h)?;
        let n = states.len();
        for buf in [
            &mut self.bxs,
            &mut self.bk1,
            &mut self.bk2,
            &mut self.bk3,
            &mut self.bk4,
            &mut self.bstage,
        ] {
            resize_buf(buf, n);
        }
        gather_variable_major(states, dim, k, &mut self.bxs);
        sys.derivatives_batch(t, &self.bxs, dim, k, &mut self.bk1);
        lanes_stage(&mut self.bstage, &self.bxs, 0.5 * h, &self.bk1);
        sys.derivatives_batch(t + 0.5 * h, &self.bstage, dim, k, &mut self.bk2);
        lanes_stage(&mut self.bstage, &self.bxs, 0.5 * h, &self.bk2);
        sys.derivatives_batch(t + 0.5 * h, &self.bstage, dim, k, &mut self.bk3);
        lanes_stage(&mut self.bstage, &self.bxs, h, &self.bk3);
        sys.derivatives_batch(t + h, &self.bstage, dim, k, &mut self.bk4);
        lanes_rk4_combine(&mut self.bxs, h / 6.0, &self.bk1, &self.bk2, &self.bk3, &self.bk4);
        ensure_finite(t + h, &self.bxs)?;
        scatter_variable_major(&self.bxs, dim, k, states);
        Ok(())
    }
}

/// Adaptive Dormand–Prince 4(5) with PI-free elementary step control.
///
/// Rejected steps leave `x` untouched and suggest a smaller `h_next`.
#[derive(Debug, Clone)]
pub struct Dopri45 {
    /// Absolute error tolerance.
    pub abs_tol: f64,
    /// Relative error tolerance.
    pub rel_tol: f64,
    /// Smallest step the controller may propose before erroring out.
    pub min_step: f64,
    k: [StateVec; 7],
    tmp: StateVec,
    x5: StateVec,
}

impl Default for Dopri45 {
    fn default() -> Self {
        Dopri45 {
            abs_tol: 1e-8,
            rel_tol: 1e-8,
            min_step: 1e-14,
            k: Default::default(),
            tmp: StateVec::default(),
            x5: StateVec::default(),
        }
    }
}

impl Dopri45 {
    /// Creates the strategy with `abs_tol = rel_tol = 1e-8`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the strategy with explicit tolerances.
    ///
    /// # Panics
    ///
    /// Panics if either tolerance is not positive.
    pub fn with_tolerances(abs_tol: f64, rel_tol: f64) -> Self {
        assert!(abs_tol > 0.0 && rel_tol > 0.0, "tolerances must be positive");
        Dopri45 { abs_tol, rel_tol, ..Self::default() }
    }
}

// Dormand–Prince Butcher tableau.
const A: [[f64; 6]; 6] = [
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [19372.0 / 6561.0, -25360.0 / 2187.0, 64448.0 / 6561.0, -212.0 / 729.0, 0.0, 0.0],
    [9017.0 / 3168.0, -355.0 / 33.0, 46732.0 / 5247.0, 49.0 / 176.0, -5103.0 / 18656.0, 0.0],
    [35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0],
];
const C: [f64; 6] = [1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
const B5: [f64; 7] =
    [35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0, 0.0];
const B4: [f64; 7] = [
    5179.0 / 57600.0,
    0.0,
    7571.0 / 16695.0,
    393.0 / 640.0,
    -92097.0 / 339200.0,
    187.0 / 2100.0,
    1.0 / 40.0,
];

impl Solver for Dopri45 {
    fn name(&self) -> &str {
        "dopri45"
    }

    fn order(&self) -> u32 {
        5
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn clone_boxed(&self) -> Option<Box<dyn Solver + Send>> {
        Some(Box::new(self.clone()))
    }

    fn step(
        &mut self,
        sys: &dyn OdeSystem,
        t: f64,
        x: &mut [f64],
        h: f64,
    ) -> Result<StepOutcome, SolveError> {
        validate(sys, x, h)?;
        let n = x.len();
        for k in &mut self.k {
            resize(k, n);
        }
        resize(&mut self.tmp, n);
        resize(&mut self.x5, n);

        sys.derivatives(t, x, self.k[0].as_mut_slice());
        for stage in 0..6 {
            for i in 0..n {
                let mut acc = 0.0;
                for (j, a) in A[stage].iter().enumerate().take(stage + 1) {
                    acc += a * self.k[j][i];
                }
                self.tmp[i] = x[i] + h * acc;
            }
            sys.derivatives(
                t + C[stage] * h,
                self.tmp.as_slice(),
                self.k[stage + 1].as_mut_slice(),
            );
        }

        // 5th-order solution and embedded 4th-order error estimate.
        let mut err_norm: f64 = 0.0;
        for i in 0..n {
            let mut s5 = 0.0;
            let mut s4 = 0.0;
            for j in 0..7 {
                s5 += B5[j] * self.k[j][i];
                s4 += B4[j] * self.k[j][i];
            }
            let x5i = x[i] + h * s5;
            let x4i = x[i] + h * s4;
            self.x5[i] = x5i;
            let scale = self.abs_tol + self.rel_tol * x[i].abs().max(x5i.abs());
            let e = (x5i - x4i) / scale;
            err_norm += e * e;
        }
        let err_norm = (err_norm / n.max(1) as f64).sqrt();

        let safety = 0.9;
        let exponent = 1.0 / 5.0;
        let factor =
            if err_norm == 0.0 { 5.0 } else { (safety * err_norm.powf(-exponent)).clamp(0.2, 5.0) };
        let h_next = h * factor;

        if err_norm <= 1.0 {
            x.copy_from_slice(self.x5.as_slice());
            ensure_finite(t + h, x)?;
            Ok(StepOutcome { accepted: true, h_taken: h, h_next, error_estimate: Some(err_norm) })
        } else {
            if h_next < self.min_step {
                return Err(SolveError::StepSizeUnderflow { time: t, step: h_next });
            }
            Ok(StepOutcome {
                accepted: false,
                h_taken: 0.0,
                h_next,
                error_estimate: Some(err_norm),
            })
        }
    }
}

/// Backward Euler solved by damped fixed-point iteration.
///
/// A-stable for the fixed-point-contractive regime (`h * L < 1` on the
/// system's Lipschitz constant); useful for the stiff decay experiments.
#[derive(Debug, Clone)]
pub struct BackwardEuler {
    /// Convergence tolerance on the state increment (infinity norm).
    pub tol: f64,
    /// Maximum fixed-point iterations per step.
    pub max_iters: usize,
    k: StateVec,
    guess: StateVec,
}

impl Default for BackwardEuler {
    fn default() -> Self {
        BackwardEuler {
            tol: 1e-12,
            max_iters: 100,
            k: StateVec::default(),
            guess: StateVec::default(),
        }
    }
}

impl BackwardEuler {
    /// Creates the strategy with default tolerance `1e-12`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Solver for BackwardEuler {
    fn name(&self) -> &str {
        "backward-euler"
    }

    fn order(&self) -> u32 {
        1
    }

    fn clone_boxed(&self) -> Option<Box<dyn Solver + Send>> {
        Some(Box::new(self.clone()))
    }

    fn step(
        &mut self,
        sys: &dyn OdeSystem,
        t: f64,
        x: &mut [f64],
        h: f64,
    ) -> Result<StepOutcome, SolveError> {
        validate(sys, x, h)?;
        let n = x.len();
        resize(&mut self.k, n);
        resize(&mut self.guess, n);
        // Initial guess: forward Euler predictor.
        sys.derivatives(t, x, self.k.as_mut_slice());
        for i in 0..n {
            self.guess[i] = x[i] + h * self.k[i];
        }
        let mut converged = false;
        for _ in 0..self.max_iters {
            sys.derivatives(t + h, self.guess.as_slice(), self.k.as_mut_slice());
            let mut delta: f64 = 0.0;
            for i in 0..n {
                let next = x[i] + h * self.k[i];
                delta = delta.max((next - self.guess[i]).abs());
                self.guess[i] = next;
            }
            if delta <= self.tol {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(SolveError::NoConvergence { iterations: self.max_iters });
        }
        x.copy_from_slice(self.guess.as_slice());
        ensure_finite(t + h, x)?;
        Ok(StepOutcome::fixed(h))
    }
}

fn resize(v: &mut StateVec, n: usize) {
    if v.dim() != n {
        *v = StateVec::zeros(n);
    }
}

/// Drives a solver across many steps, handling adaptive rejection and
/// end-of-interval clamping. Used by [`crate::integrate`] and by the
/// streamer executor in `urt-dataflow`.
#[derive(Debug, Clone)]
pub struct SolverDriver {
    t: f64,
    x: StateVec,
    h: f64,
    h_nominal: f64,
}

impl SolverDriver {
    /// Creates a driver at `(t0, x0)` with nominal step `h`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidStep`] if `h` is not positive and finite.
    pub fn new(t0: f64, x0: &[f64], h: f64) -> Result<Self, SolveError> {
        if !(h.is_finite() && h > 0.0) {
            return Err(SolveError::InvalidStep { step: h });
        }
        Ok(SolverDriver { t: t0, x: StateVec::from_slice(x0), h, h_nominal: h })
    }

    /// Current time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Current state.
    pub fn state(&self) -> &StateVec {
        &self.x
    }

    /// Mutable access to the state (for discrete resets at events).
    pub fn state_mut(&mut self) -> &mut StateVec {
        &mut self.x
    }

    /// Overwrites the current time (for executors that integrate the
    /// state out-of-band — e.g. a batched kernel — and re-synchronize
    /// the driver afterwards).
    pub fn set_time(&mut self, t: f64) {
        self.t = t;
    }

    /// Advances by one *accepted* step, never past `t_end`.
    ///
    /// When the remaining interval is below floating-point resolution the
    /// time is snapped to `t_end` with a zero-length accepted step, so
    /// `while driver.time() < t_end` loops always terminate.
    ///
    /// # Errors
    ///
    /// Propagates any [`SolveError`] from the solver; also errors if an
    /// adaptive solver rejects steps until underflow.
    pub fn advance<S: Solver + ?Sized>(
        &mut self,
        sys: &dyn OdeSystem,
        solver: &mut S,
        t_end: f64,
    ) -> Result<StepOutcome, SolveError> {
        loop {
            let remaining = t_end - self.t;
            let resolution = 4.0 * f64::EPSILON * t_end.abs().max(1.0);
            if remaining <= resolution {
                self.t = t_end;
                return Ok(StepOutcome {
                    accepted: true,
                    h_taken: remaining.max(0.0),
                    h_next: self.h,
                    error_estimate: None,
                });
            }
            // Fixed-step solvers always restart from the nominal step —
            // only adaptive solvers carry their own step suggestion, and a
            // clamped end-of-interval step must never poison it.
            let h = if solver.is_adaptive() {
                self.h.min(remaining)
            } else {
                self.h_nominal.min(remaining)
            };
            let h = if h <= 0.0 { remaining } else { h };
            let outcome = solver.step(sys, self.t, self.x.as_mut_slice(), h)?;
            if outcome.accepted {
                self.t += outcome.h_taken;
                // Snap when accumulation lands within resolution of t_end.
                if t_end - self.t <= resolution {
                    self.t = t_end;
                }
                if solver.is_adaptive() && outcome.h_taken >= remaining.min(self.h) * 0.99 {
                    self.h = outcome.h_next.min(self.h_nominal * 10.0).max(1e-300);
                }
                return Ok(outcome);
            }
            self.h = outcome.h_next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::library::{decay, HarmonicOscillator};
    use crate::system::FnSystem;

    fn solve_decay(kind: SolverKind, h: f64) -> f64 {
        let sys = decay(1.0);
        let mut solver = kind.create();
        let mut x = vec![1.0];
        let mut t = 0.0;
        while t < 1.0 - 1e-12 {
            let step = h.min(1.0 - t);
            let out = solver.step(&sys, t, &mut x, step).expect("step ok");
            if out.accepted {
                t += out.h_taken;
            }
        }
        x[0]
    }

    #[test]
    fn all_kinds_create_and_name() {
        for kind in SolverKind::ALL {
            let s = kind.create();
            assert_eq!(s.name(), kind.to_string());
            assert!(s.order() >= 1);
        }
    }

    #[test]
    fn convergence_orders_rank_correctly() {
        let exact = (-1.0f64).exp();
        let e1 = (solve_decay(SolverKind::ForwardEuler, 0.01) - exact).abs();
        let e2 = (solve_decay(SolverKind::Heun, 0.01) - exact).abs();
        let e4 = (solve_decay(SolverKind::Rk4, 0.01) - exact).abs();
        assert!(e2 < e1, "heun {e2} should beat euler {e1}");
        assert!(e4 < e2, "rk4 {e4} should beat heun {e2}");
    }

    #[test]
    fn euler_halving_h_halves_error() {
        let exact = (-1.0f64).exp();
        let e_h = (solve_decay(SolverKind::ForwardEuler, 0.02) - exact).abs();
        let e_h2 = (solve_decay(SolverKind::ForwardEuler, 0.01) - exact).abs();
        let ratio = e_h / e_h2;
        assert!((ratio - 2.0).abs() < 0.2, "order-1 ratio was {ratio}");
    }

    #[test]
    fn rk4_sixteenths_error_when_halving() {
        let exact = (-1.0f64).exp();
        let e_h = (solve_decay(SolverKind::Rk4, 0.2) - exact).abs();
        let e_h2 = (solve_decay(SolverKind::Rk4, 0.1) - exact).abs();
        let ratio = e_h / e_h2;
        assert!(ratio > 12.0 && ratio < 20.0, "order-4 ratio was {ratio}");
    }

    #[test]
    fn dopri_rejects_then_accepts() {
        let sys = decay(50.0);
        let mut solver = Dopri45::with_tolerances(1e-10, 1e-10);
        let mut x = vec![1.0];
        // Enormous first step must be rejected.
        let out = solver.step(&sys, 0.0, &mut x, 1.0).unwrap();
        assert!(!out.accepted);
        assert_eq!(x[0], 1.0, "rejected step must not modify state");
        assert!(out.h_next < 1.0);
        let out2 = solver.step(&sys, 0.0, &mut x, out.h_next).unwrap();
        // Eventually accepted (maybe after another rejection).
        let mut h = out2.h_next;
        let mut accepted = out2.accepted;
        for _ in 0..20 {
            if accepted {
                break;
            }
            let o = solver.step(&sys, 0.0, &mut x, h).unwrap();
            accepted = o.accepted;
            h = o.h_next;
        }
        assert!(accepted);
    }

    #[test]
    fn dopri_energy_preserved_on_oscillator() {
        let sys = HarmonicOscillator { omega: 1.0 };
        let traj = crate::integrate(&sys, &mut Dopri45::new(), 0.0, 20.0, &[1.0, 0.0], 0.1)
            .expect("integrates");
        let x = traj.last_state();
        let energy = x[0] * x[0] + x[1] * x[1];
        assert!((energy - 1.0).abs() < 1e-5, "energy drifted to {energy}");
    }

    #[test]
    fn backward_euler_is_stable_on_stiff_decay() {
        // Forward Euler with h=0.5 on x' = -10x diverges (|1 - 10*0.5| = 4 > 1);
        // backward Euler stays bounded.
        let sys = decay(10.0);
        let mut fe = ForwardEuler::new();
        let mut be = BackwardEuler::new();
        let mut xf = vec![1.0];
        let mut xb = vec![1.0];
        let mut t = 0.0;
        for _ in 0..20 {
            // h*L = 5 > 1 breaks the fixed point, use h where it contracts: 0.05.
            fe.step(&sys, t, &mut xf, 0.5).unwrap();
            be.step(&sys, t, &mut xb, 0.05).unwrap();
            t += 0.5;
        }
        assert!(xf[0].abs() > 1.0, "forward euler should diverge, got {}", xf[0]);
        assert!(xb[0].abs() < 1.0, "backward euler should contract, got {}", xb[0]);
    }

    #[test]
    fn backward_euler_reports_no_convergence() {
        // h*L >> 1 makes the fixed-point iteration diverge.
        let sys = decay(100.0);
        let mut be = BackwardEuler { max_iters: 5, ..BackwardEuler::new() };
        let mut x = vec![1.0];
        let err = be.step(&sys, 0.0, &mut x, 1.0).unwrap_err();
        assert!(matches!(err, SolveError::NoConvergence { .. }));
    }

    #[test]
    fn step_validates_inputs() {
        let sys = decay(1.0);
        let mut s = Rk4::new();
        let mut x = vec![1.0, 2.0];
        assert!(matches!(
            s.step(&sys, 0.0, &mut x, 0.1),
            Err(SolveError::DimensionMismatch { .. })
        ));
        let mut x = vec![1.0];
        assert!(matches!(s.step(&sys, 0.0, &mut x, 0.0), Err(SolveError::InvalidStep { .. })));
        assert!(matches!(s.step(&sys, 0.0, &mut x, f64::NAN), Err(SolveError::InvalidStep { .. })));
    }

    #[test]
    fn non_finite_state_detected() {
        let sys = FnSystem::new(1, |_t, _x, dx: &mut [f64]| dx[0] = f64::NAN);
        let mut s = ForwardEuler::new();
        let mut x = vec![1.0];
        assert!(matches!(s.step(&sys, 0.0, &mut x, 0.1), Err(SolveError::NonFiniteState { .. })));
    }

    #[test]
    fn driver_clamps_to_t_end() {
        let sys = decay(1.0);
        let mut driver = SolverDriver::new(0.0, &[1.0], 0.4).unwrap();
        let mut solver = Rk4::new();
        while driver.time() < 1.0 {
            driver.advance(&sys, &mut solver, 1.0).unwrap();
        }
        assert!((driver.time() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clone_boxed_replicates_every_kind() {
        for kind in SolverKind::ALL {
            let proto = kind.create();
            let clone = proto.clone_boxed().expect("library solvers are cloneable");
            assert_eq!(clone.name(), proto.name());
            assert_eq!(clone.order(), proto.order());
            assert_eq!(clone.is_adaptive(), proto.is_adaptive());
        }
    }

    #[test]
    fn step_batch_lanes_match_standalone_steps() {
        let sys = HarmonicOscillator { omega: 1.0 };
        // Four instance-major lanes with different initial conditions.
        let mut batch = vec![1.0, 0.0, 0.5, 0.0, 0.0, 1.0, -1.0, 0.5];
        let mut solver = Rk4::new();
        solver.step_batch(&sys, 0.0, &mut batch, 2, 0.1).unwrap();
        for (i, x0) in [[1.0, 0.0], [0.5, 0.0], [0.0, 1.0], [-1.0, 0.5]].iter().enumerate() {
            let mut lane = x0.to_vec();
            Rk4::new().step(&sys, 0.0, &mut lane, 0.1).unwrap();
            for d in 0..2 {
                assert_eq!(
                    batch[i * 2 + d].to_bits(),
                    lane[d].to_bits(),
                    "lane {i} bit-identical to a standalone step"
                );
            }
        }
    }

    #[test]
    fn step_batch_supports_adaptive_solvers() {
        let sys = decay(5.0);
        let mut batch = vec![1.0, 2.0];
        Dopri45::new().step_batch(&sys, 0.0, &mut batch, 1, 0.5).unwrap();
        let exact = (-5.0f64 * 0.5).exp();
        assert!((batch[0] - exact).abs() < 1e-6, "lane 0 got {}", batch[0]);
        assert!((batch[1] - 2.0 * exact).abs() < 1e-6, "lane 1 got {}", batch[1]);
    }

    #[test]
    fn step_batch_validates_layout() {
        let sys = decay(1.0);
        let mut batch = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            Rk4::new().step_batch(&sys, 0.0, &mut batch, 2, 0.1),
            Err(SolveError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Rk4::new().step_batch(&sys, 0.0, &mut batch, 0, 0.1),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn driver_rejects_bad_step() {
        assert!(SolverDriver::new(0.0, &[1.0], 0.0).is_err());
        assert!(SolverDriver::new(0.0, &[1.0], -1.0).is_err());
        assert!(SolverDriver::new(0.0, &[1.0], f64::INFINITY).is_err());
    }

    #[test]
    fn driver_set_time_overwrites_the_clock() {
        let mut driver = SolverDriver::new(0.0, &[1.0], 0.1).unwrap();
        driver.set_time(2.5);
        assert_eq!(driver.time(), 2.5);
    }

    #[test]
    fn only_explicit_fixed_step_solvers_report_batched_kernels() {
        for kind in SolverKind::ALL {
            let expect = matches!(kind, SolverKind::ForwardEuler | SolverKind::Rk4);
            assert_eq!(kind.create().has_batched_kernel(), expect, "{kind} batched-kernel flag");
        }
    }

    #[test]
    fn euler_batched_kernel_is_bit_identical_to_scalar_steps() {
        let sys = HarmonicOscillator { omega: 3.0 };
        let lanes = [[1.0, 0.0], [0.25, -0.5], [-2.0, 1.5], [0.1, 0.2], [7.0, -3.0]];
        let mut batch: Vec<f64> = lanes.iter().flatten().copied().collect();
        let mut solver = ForwardEuler::new();
        assert!(solver.has_batched_kernel());
        solver.step_batch(&sys, 0.5, &mut batch, 2, 0.01).unwrap();
        for (i, x0) in lanes.iter().enumerate() {
            let mut lane = x0.to_vec();
            ForwardEuler::new().step(&sys, 0.5, &mut lane, 0.01).unwrap();
            for d in 0..2 {
                assert_eq!(batch[i * 2 + d].to_bits(), lane[d].to_bits(), "lane {i} var {d}");
            }
        }
    }

    #[test]
    fn rk4_batched_kernel_handles_lane_width_remainders() {
        // 13 lanes of a 1-d system: neither 13 nor the flattened buffer is
        // a multiple of LANE_WIDTH, exercising the chunked-sweep tails.
        let sys = decay(2.0);
        let k = 13;
        let mut batch: Vec<f64> = (0..k).map(|i| 0.5 + i as f64).collect();
        let mut solver = Rk4::new();
        solver.step_batch(&sys, 0.0, &mut batch, 1, 0.05).unwrap();
        for i in 0..k {
            let mut lane = vec![0.5 + i as f64];
            Rk4::new().step(&sys, 0.0, &mut lane, 0.05).unwrap();
            assert_eq!(batch[i].to_bits(), lane[0].to_bits(), "lane {i}");
        }
    }

    #[test]
    fn batched_kernel_reports_non_finite_states() {
        // Derivative explodes to inf immediately.
        let sys = FnSystem::new(1, |_t, _x, dx| dx[0] = f64::INFINITY);
        let mut batch = vec![1.0, 2.0];
        assert!(matches!(
            ForwardEuler::new().step_batch(&sys, 0.0, &mut batch, 1, 0.1),
            Err(SolveError::NonFiniteState { .. })
        ));
    }

    #[test]
    fn batched_kernel_rejects_dim_mismatch_with_system() {
        let sys = HarmonicOscillator { omega: 1.0 };
        let mut batch = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            Rk4::new().step_batch(&sys, 0.0, &mut batch, 1, 0.1),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    /// An adaptive-looking strategy whose controller underflows: every
    /// step is rejected with a suggested `h_next` of zero. The pinned
    /// `step_batch` termination must surface this as
    /// [`SolveError::StepSizeUnderflow`] instead of spinning.
    struct UnderflowingSolver {
        attempts: Vec<f64>,
    }

    impl Solver for UnderflowingSolver {
        fn name(&self) -> &str {
            "underflowing"
        }

        fn order(&self) -> u32 {
            1
        }

        fn is_adaptive(&self) -> bool {
            true
        }

        fn step(
            &mut self,
            _sys: &dyn OdeSystem,
            _t: f64,
            _x: &mut [f64],
            h: f64,
        ) -> Result<StepOutcome, SolveError> {
            self.attempts.push(h);
            Ok(StepOutcome { accepted: false, h_taken: 0.0, h_next: 0.0, error_estimate: None })
        }
    }

    #[test]
    fn default_step_batch_errors_instead_of_spinning_on_h_next_underflow() {
        let sys = decay(1.0);
        let mut batch = vec![1.0];
        let mut solver = UnderflowingSolver { attempts: Vec::new() };
        let err = solver.step_batch(&sys, 0.0, &mut batch, 1, 1.0).unwrap_err();
        assert!(
            matches!(err, SolveError::StepSizeUnderflow { .. }),
            "expected StepSizeUnderflow, got {err:?}"
        );
        // Exactly one attempt: the first rejection suggests h_next = 0,
        // which is below resolution, so the loop must stop immediately.
        assert_eq!(solver.attempts.len(), 1);
    }

    /// Accepts every step but halves the suggestion each time, driving
    /// `h_next` towards zero as the lane closes in on `t_end`.
    struct HalvingSolver {
        attempts: Vec<f64>,
    }

    impl Solver for HalvingSolver {
        fn name(&self) -> &str {
            "halving"
        }

        fn order(&self) -> u32 {
            1
        }

        fn is_adaptive(&self) -> bool {
            true
        }

        fn step(
            &mut self,
            _sys: &dyn OdeSystem,
            _t: f64,
            _x: &mut [f64],
            h: f64,
        ) -> Result<StepOutcome, SolveError> {
            self.attempts.push(h);
            Ok(StepOutcome { accepted: true, h_taken: h, h_next: h / 2.0, error_estimate: None })
        }
    }

    #[test]
    fn default_step_batch_never_attempts_a_step_below_resolution() {
        let sys = decay(1.0);
        let mut batch = vec![1.0];
        let mut solver = HalvingSolver { attempts: Vec::new() };
        let t_end: f64 = 1.0;
        let resolution = f64::EPSILON * t_end.abs().max(1.0);
        // Halving converges on t_end geometrically; the loop must either
        // finish or error out, but every *attempted* step stays at or
        // above the interval resolution.
        let result = solver.step_batch(&sys, 0.0, &mut batch, 1, t_end);
        assert!(!solver.attempts.is_empty());
        for h in &solver.attempts {
            assert!(*h >= resolution, "attempted step {h} below resolution {resolution}");
        }
        if let Err(e) = result {
            assert!(matches!(e, SolveError::StepSizeUnderflow { .. }), "unexpected error {e:?}");
        }
    }
}
