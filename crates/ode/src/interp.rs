//! Dense output: interpolation between accepted solver steps.
//!
//! Streamer output DPorts publish at a fixed cadence that rarely matches
//! the solver's internal steps; cubic Hermite interpolation reconstructs
//! intermediate values without extra derivative evaluations.

/// Cubic Hermite interpolation on `[t0, t1]` given endpoint values and
/// derivatives.
///
/// # Examples
///
/// ```
/// use urt_ode::interp::hermite;
///
/// // Interpolating x(t) = t^2 on [0, 1] from exact endpoint data.
/// let mid = hermite(0.0, 0.0, 0.0, 1.0, 1.0, 2.0, 0.5);
/// assert!((mid - 0.25).abs() < 1e-12);
/// ```
pub fn hermite(t0: f64, x0: f64, dx0: f64, t1: f64, x1: f64, dx1: f64, t: f64) -> f64 {
    let h = t1 - t0;
    if h == 0.0 {
        return x0;
    }
    let s = (t - t0) / h;
    let s2 = s * s;
    let s3 = s2 * s;
    let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
    let h10 = s3 - 2.0 * s2 + s;
    let h01 = -2.0 * s3 + 3.0 * s2;
    let h11 = s3 - s2;
    h00 * x0 + h10 * h * dx0 + h01 * x1 + h11 * h * dx1
}

/// Vector-valued cubic Hermite interpolation.
///
/// # Panics
///
/// Panics if the slices have differing lengths.
// Two (t, x, dx) endpoint triples plus the query time and output slice:
// the argument list mirrors the interpolation formula.
#[allow(clippy::too_many_arguments)]
pub fn hermite_vec(
    t0: f64,
    x0: &[f64],
    dx0: &[f64],
    t1: f64,
    x1: &[f64],
    dx1: &[f64],
    t: f64,
    out: &mut [f64],
) {
    assert!(
        x0.len() == dx0.len()
            && x0.len() == x1.len()
            && x0.len() == dx1.len()
            && x0.len() == out.len(),
        "hermite_vec length mismatch"
    );
    for i in 0..x0.len() {
        out[i] = hermite(t0, x0[i], dx0[i], t1, x1[i], dx1[i], t);
    }
}

/// Piecewise-linear resampling of `(times, values)` onto a uniform grid of
/// `n` points spanning the same range.
///
/// # Panics
///
/// Panics if `times` is empty, lengths differ, or `n < 2`.
pub fn resample_uniform(times: &[f64], values: &[f64], n: usize) -> Vec<(f64, f64)> {
    assert!(!times.is_empty(), "cannot resample empty data");
    assert_eq!(times.len(), values.len(), "times/values length mismatch");
    assert!(n >= 2, "need at least two output samples");
    let t0 = times[0];
    let t1 = *times.last().unwrap();
    let mut out = Vec::with_capacity(n);
    let mut idx = 0;
    for k in 0..n {
        let t = t0 + (t1 - t0) * k as f64 / (n - 1) as f64;
        while idx + 1 < times.len() && times[idx + 1] < t {
            idx += 1;
        }
        let v = if idx + 1 >= times.len() || times[idx + 1] == times[idx] {
            values[idx]
        } else {
            let alpha = (t - times[idx]) / (times[idx + 1] - times[idx]);
            values[idx] * (1.0 - alpha) + values[idx + 1] * alpha
        };
        out.push((t, v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hermite_endpoints_exact() {
        let (t0, x0, d0) = (1.0, 2.0, -1.0);
        let (t1, x1, d1) = (3.0, 5.0, 0.5);
        assert!((hermite(t0, x0, d0, t1, x1, d1, t0) - x0).abs() < 1e-12);
        assert!((hermite(t0, x0, d0, t1, x1, d1, t1) - x1).abs() < 1e-12);
    }

    #[test]
    fn hermite_reproduces_cubics_exactly() {
        // x(t) = t^3 - t on [0, 2].
        let f = |t: f64| t * t * t - t;
        let df = |t: f64| 3.0 * t * t - 1.0;
        for k in 0..=10 {
            let t = 2.0 * k as f64 / 10.0;
            let v = hermite(0.0, f(0.0), df(0.0), 2.0, f(2.0), df(2.0), t);
            assert!((v - f(t)).abs() < 1e-10, "at t={t}: {v} vs {}", f(t));
        }
    }

    #[test]
    fn hermite_degenerate_interval() {
        assert_eq!(hermite(1.0, 7.0, 0.0, 1.0, 9.0, 0.0, 1.0), 7.0);
    }

    #[test]
    fn hermite_vec_componentwise() {
        let mut out = [0.0; 2];
        hermite_vec(0.0, &[0.0, 1.0], &[1.0, 0.0], 1.0, &[1.0, 1.0], &[1.0, 0.0], 0.5, &mut out);
        assert!((out[0] - 0.5).abs() < 1e-12);
        assert!((out[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resample_linear_data() {
        let times = [0.0, 1.0, 2.0];
        let values = [0.0, 10.0, 20.0];
        let out = resample_uniform(&times, &values, 5);
        assert_eq!(out.len(), 5);
        assert!((out[2].1 - 10.0).abs() < 1e-12);
        assert_eq!(out[0], (0.0, 0.0));
        assert!((out[4].1 - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn resample_needs_two_points() {
        let _ = resample_uniform(&[0.0], &[1.0], 1);
    }
}
