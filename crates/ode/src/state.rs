//! State vectors for continuous systems, plus the lane-width-aware sweep
//! primitives the batched ensemble kernels are built from.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// Compile-time lane width of the batched kernels: every fused sweep is
/// chunked into `LANE_WIDTH` f64 lanes so rustc can autovectorize the
/// inner loop (8 × f64 fills one AVX-512 register or two AVX2/NEON
/// pairs). Purely a code-generation hint — results are bit-identical for
/// any width because the per-lane arithmetic is elementwise.
pub const LANE_WIDTH: usize = 8;

/// Fused `dst[i] += a * src[i]` sweep, chunked to [`LANE_WIDTH`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn lanes_axpy(dst: &mut [f64], a: f64, src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "lane sweep length mismatch");
    let mut d = dst.chunks_exact_mut(LANE_WIDTH);
    let mut s = src.chunks_exact(LANE_WIDTH);
    for (dc, sc) in d.by_ref().zip(s.by_ref()) {
        for j in 0..LANE_WIDTH {
            dc[j] += a * sc[j];
        }
    }
    for (di, si) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *di += a * si;
    }
}

/// Fused `dst[i] = a * src[i]` sweep, chunked to [`LANE_WIDTH`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn lanes_scaled(dst: &mut [f64], a: f64, src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "lane sweep length mismatch");
    let mut d = dst.chunks_exact_mut(LANE_WIDTH);
    let mut s = src.chunks_exact(LANE_WIDTH);
    for (dc, sc) in d.by_ref().zip(s.by_ref()) {
        for j in 0..LANE_WIDTH {
            dc[j] = a * sc[j];
        }
    }
    for (di, si) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *di = a * si;
    }
}

/// Fused stage-combine sweep `dst[i] = x[i] + a * kk[i]`, chunked to
/// [`LANE_WIDTH`] — the RK "x + c·h·k" stage state, across all lanes.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn lanes_stage(dst: &mut [f64], x: &[f64], a: f64, kk: &[f64]) {
    assert_eq!(dst.len(), x.len(), "lane sweep length mismatch");
    assert_eq!(dst.len(), kk.len(), "lane sweep length mismatch");
    let mut d = dst.chunks_exact_mut(LANE_WIDTH);
    let mut xs = x.chunks_exact(LANE_WIDTH);
    let mut ks = kk.chunks_exact(LANE_WIDTH);
    for ((dc, xc), kc) in d.by_ref().zip(xs.by_ref()).zip(ks.by_ref()) {
        for j in 0..LANE_WIDTH {
            dc[j] = xc[j] + a * kc[j];
        }
    }
    for ((di, xi), ki) in d.into_remainder().iter_mut().zip(xs.remainder()).zip(ks.remainder()) {
        *di = xi + a * ki;
    }
}

/// Fused RK4 final combine across all lanes, chunked to [`LANE_WIDTH`]:
/// `xs[i] += w * (k1[i] + 2 k2[i] + 2 k3[i] + k4[i])` with the exact
/// per-lane expression of the scalar RK4 kernel (`w` is the caller's
/// precomputed `h / 6`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn lanes_rk4_combine(xs: &mut [f64], w: f64, k1: &[f64], k2: &[f64], k3: &[f64], k4: &[f64]) {
    let n = xs.len();
    assert_eq!(n, k1.len(), "lane sweep length mismatch");
    assert_eq!(n, k2.len(), "lane sweep length mismatch");
    assert_eq!(n, k3.len(), "lane sweep length mismatch");
    assert_eq!(n, k4.len(), "lane sweep length mismatch");
    let mut i = 0;
    while i + LANE_WIDTH <= n {
        for j in i..i + LANE_WIDTH {
            xs[j] += w * (k1[j] + 2.0 * k2[j] + 2.0 * k3[j] + k4[j]);
        }
        i += LANE_WIDTH;
    }
    for j in i..n {
        xs[j] += w * (k1[j] + 2.0 * k2[j] + 2.0 * k3[j] + k4[j]);
    }
}

/// A dense state vector of `f64` components.
///
/// `StateVec` is a thin newtype over `Vec<f64>` with the small amount of
/// vector arithmetic integration methods need (axpy, norms, lerp). It keeps
/// solver code honest about what is a state versus an arbitrary buffer.
///
/// # Examples
///
/// ```
/// use urt_ode::StateVec;
///
/// let a = StateVec::from_slice(&[1.0, 2.0]);
/// let b = StateVec::from_slice(&[3.0, 4.0]);
/// let c = &a + &b;
/// assert_eq!(c.as_slice(), &[4.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateVec(Vec<f64>);

impl StateVec {
    /// Creates a zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        StateVec(vec![0.0; dim])
    }

    /// Copies a slice into a new state vector.
    pub fn from_slice(values: &[f64]) -> Self {
        StateVec(values.to_vec())
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has zero dimension.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrows the components.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutably borrows the components.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Extracts the underlying `Vec<f64>`.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// `self += alpha * other` (the BLAS *axpy* primitive).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn axpy(&mut self, alpha: f64, other: &StateVec) {
        assert_eq!(self.dim(), other.dim(), "axpy dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += alpha * b;
        }
    }

    /// Scales every component by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.0 {
            *a *= alpha;
        }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Maximum absolute component.
    pub fn norm_inf(&self) -> f64 {
        self.0.iter().fold(0.0, |m, a| m.max(a.abs()))
    }

    /// Whether every component is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|a| a.is_finite())
    }

    /// Linear interpolation: `(1 - alpha) * self + alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn lerp(&self, other: &StateVec, alpha: f64) -> StateVec {
        assert_eq!(self.dim(), other.dim(), "lerp dimension mismatch");
        StateVec(
            self.0.iter().zip(other.0.iter()).map(|(a, b)| (1.0 - alpha) * a + alpha * b).collect(),
        )
    }

    /// Iterates over components.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.0.iter()
    }
}

impl fmt::Display for StateVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<f64>> for StateVec {
    fn from(v: Vec<f64>) -> Self {
        StateVec(v)
    }
}

impl FromIterator<f64> for StateVec {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        StateVec(iter.into_iter().collect())
    }
}

impl Extend<f64> for StateVec {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl AsRef<[f64]> for StateVec {
    fn as_ref(&self) -> &[f64] {
        &self.0
    }
}

impl AsMut<[f64]> for StateVec {
    fn as_mut(&mut self) -> &mut [f64] {
        &mut self.0
    }
}

impl Index<usize> for StateVec {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.0[index]
    }
}

impl IndexMut<usize> for StateVec {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.0[index]
    }
}

impl Add<&StateVec> for &StateVec {
    type Output = StateVec;

    fn add(self, rhs: &StateVec) -> StateVec {
        assert_eq!(self.dim(), rhs.dim(), "add dimension mismatch");
        StateVec(self.0.iter().zip(rhs.0.iter()).map(|(a, b)| a + b).collect())
    }
}

impl Sub<&StateVec> for &StateVec {
    type Output = StateVec;

    fn sub(self, rhs: &StateVec) -> StateVec {
        assert_eq!(self.dim(), rhs.dim(), "sub dimension mismatch");
        StateVec(self.0.iter().zip(rhs.0.iter()).map(|(a, b)| a - b).collect())
    }
}

impl Mul<f64> for &StateVec {
    type Output = StateVec;

    fn mul(self, rhs: f64) -> StateVec {
        StateVec(self.0.iter().map(|a| a * rhs).collect())
    }
}

impl AddAssign<&StateVec> for StateVec {
    fn add_assign(&mut self, rhs: &StateVec) {
        self.axpy(1.0, rhs);
    }
}

impl<'a> IntoIterator for &'a StateVec {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for StateVec {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let z = StateVec::zeros(3);
        assert_eq!(z.dim(), 3);
        assert!(!z.is_empty());
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);

        let s = StateVec::from_slice(&[1.0, -2.0]);
        assert_eq!(s[1], -2.0);
        assert_eq!(s.into_inner(), vec![1.0, -2.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = StateVec::from_slice(&[1.0, 1.0]);
        let b = StateVec::from_slice(&[2.0, -1.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0, 0.5]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[4.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "axpy dimension mismatch")]
    fn axpy_panics_on_mismatch() {
        let mut a = StateVec::zeros(2);
        a.axpy(1.0, &StateVec::zeros(3));
    }

    #[test]
    fn norms() {
        let v = StateVec::from_slice(&[3.0, -4.0]);
        assert!((v.norm() - 5.0).abs() < 1e-15);
        assert_eq!(v.norm_inf(), 4.0);
    }

    #[test]
    fn finite_detection() {
        assert!(StateVec::from_slice(&[1.0]).is_finite());
        assert!(!StateVec::from_slice(&[f64::NAN]).is_finite());
        assert!(!StateVec::from_slice(&[f64::INFINITY]).is_finite());
    }

    #[test]
    fn lerp_midpoint() {
        let a = StateVec::from_slice(&[0.0, 10.0]);
        let b = StateVec::from_slice(&[2.0, 20.0]);
        assert_eq!(a.lerp(&b, 0.5).as_slice(), &[1.0, 15.0]);
        assert_eq!(a.lerp(&b, 0.0).as_slice(), a.as_slice());
        assert_eq!(a.lerp(&b, 1.0).as_slice(), b.as_slice());
    }

    #[test]
    fn arithmetic_operators() {
        let a = StateVec::from_slice(&[1.0, 2.0]);
        let b = StateVec::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
    }

    #[test]
    fn collect_and_display() {
        let v: StateVec = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.to_string(), "[0, 1, 2]");
    }
}
