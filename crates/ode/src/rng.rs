//! In-tree deterministic pseudo-random numbers for tests, benchmarks and
//! noise sources.
//!
//! The workspace builds hermetically with zero registry dependencies, so
//! instead of `rand` this module provides a small, well-understood pair of
//! generators:
//!
//! * [`SplitMix64`] — a 64-bit state expander (Steele, Lea & Flood 2014)
//!   used to derive well-mixed seed material from a single `u64`.
//! * [`Pcg32`] — the PCG-XSH-RR 64/32 generator (O'Neill 2014): 64 bits of
//!   state, 32 bits out per step, excellent statistical quality for its
//!   size and trivially reproducible across platforms.
//!
//! Everything is deterministic from the seed; identical seeds produce
//! bit-identical streams on every platform, which is what the seeded
//! property tests and the determinism suite rely on.
//!
//! # Examples
//!
//! ```
//! use urt_ode::rng::Pcg32;
//!
//! let mut a = Pcg32::seed_from_u64(42);
//! let mut b = Pcg32::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range_f64(-1.0, 1.0);
//! assert!((-1.0..1.0).contains(&x));
//! ```

/// SplitMix64: expands one `u64` into a stream of well-mixed values.
///
/// Primarily a seeding aid for [`Pcg32`]; usable standalone when only a
/// few scattered values are needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32: the workspace's default deterministic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from an explicit state/stream pair (the PCG
    /// reference initialisation).
    pub fn new(initstate: u64, initseq: u64) -> Self {
        let mut rng = Pcg32 { state: 0, inc: (initseq << 1) | 1 };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a single seed, expanding it through
    /// [`SplitMix64`] into the state and stream-selector halves.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let initstate = mix.next_u64();
        let initseq = mix.next_u64();
        Pcg32::new(initstate, initseq)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64-bit value (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        let hi = u64::from(self.next_u32());
        let lo = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[lo, hi)` via Lemire-style rejection-free
    /// multiply-shift (negligible bias for the small ranges tests use).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        let span = (hi - lo) as u64;
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as usize
    }

    /// A vector of `len` uniform values in `[lo, hi)`.
    pub fn gen_vec_f64(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.gen_range_f64(lo, hi)).collect()
    }

    /// A vector of random length in `[min_len, max_len)` with uniform
    /// values in `[lo, hi)` — the shape the ported property tests draw.
    pub fn gen_vec_f64_var(
        &mut self,
        min_len: usize,
        max_len: usize,
        lo: f64,
        hi: f64,
    ) -> Vec<f64> {
        let len = self.gen_range_usize(min_len, max_len);
        self.gen_vec_f64(len, lo, hi)
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        // Adjacent seeds must not produce overlapping prefixes.
        let mut c = SplitMix64::new(2);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn pcg_streams_are_reproducible() {
        let mut a = Pcg32::seed_from_u64(7);
        let mut b = Pcg32::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = Pcg32::seed_from_u64(8);
        let d: Vec<u32> = (0..4).map(|_| c.next_u32()).collect();
        let mut a2 = Pcg32::seed_from_u64(7);
        let e: Vec<u32> = (0..4).map(|_| a2.next_u32()).collect();
        assert_ne!(d, e, "different seeds diverge");
    }

    #[test]
    fn distinct_streams_from_same_state() {
        let mut a = Pcg32::new(5, 1);
        let mut b = Pcg32::new(5, 2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_draws_stay_in_unit_interval() {
        let mut r = Pcg32::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Pcg32::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.gen_range_f64(-2.5, 7.0);
            assert!((-2.5..7.0).contains(&x));
            let n = r.gen_range_usize(3, 9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        // Every value of a small integer range must eventually appear.
        let mut r = Pcg32::seed_from_u64(13);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_range_usize(0, 5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = Pcg32::seed_from_u64(17);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn vec_helpers_shape() {
        let mut r = Pcg32::seed_from_u64(19);
        let v = r.gen_vec_f64(6, 0.0, 1.0);
        assert_eq!(v.len(), 6);
        for _ in 0..100 {
            let v = r.gen_vec_f64_var(1, 5, -1.0, 1.0);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn empty_range_panics() {
        let mut r = Pcg32::seed_from_u64(1);
        let _ = r.gen_range_f64(1.0, 1.0);
    }
}
