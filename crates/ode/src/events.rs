//! Zero-crossing detection: how continuous trajectories raise discrete
//! signals.
//!
//! In the unified model a streamer's solver watches guard functions
//! `g(t, x)`; when one crosses zero the streamer emits a signal message
//! through an SPort to the event-driven capsule world. This module provides
//! the crossing test plus bisection root localisation.

use crate::error::SolveError;
use crate::solver::Solver;
use crate::system::OdeSystem;

/// Which sign changes of `g` count as an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EventDirection {
    /// Trigger on `g` going from negative to positive.
    Rising,
    /// Trigger on `g` going from positive to negative.
    Falling,
    /// Trigger on any sign change.
    #[default]
    Both,
}

impl EventDirection {
    /// Whether the pair `(before, after)` constitutes a crossing in this
    /// direction. Exactly-zero endpoints count as crossings.
    pub fn matches(self, before: f64, after: f64) -> bool {
        match self {
            EventDirection::Rising => before < 0.0 && after >= 0.0,
            EventDirection::Falling => before > 0.0 && after <= 0.0,
            EventDirection::Both => {
                (before < 0.0 && after >= 0.0) || (before > 0.0 && after <= 0.0)
            }
        }
    }
}

/// A guard function with a crossing direction and a label.
///
/// # Examples
///
/// ```
/// use urt_ode::events::{EventDirection, ZeroCrossing};
///
/// // Fire when the first state component rises through 1.0.
/// let zc = ZeroCrossing::new("threshold", EventDirection::Rising, |_t, x| x[0] - 1.0);
/// assert_eq!(zc.label(), "threshold");
/// assert_eq!(zc.eval(0.0, &[1.5]), 0.5);
/// ```
/// A boxed guard function `g(t, x)` whose sign change marks the event.
pub type GuardFn = Box<dyn Fn(f64, &[f64]) -> f64 + Send>;

pub struct ZeroCrossing {
    label: String,
    direction: EventDirection,
    guard: GuardFn,
}

impl std::fmt::Debug for ZeroCrossing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZeroCrossing")
            .field("label", &self.label)
            .field("direction", &self.direction)
            .finish_non_exhaustive()
    }
}

impl ZeroCrossing {
    /// Creates a labelled guard.
    pub fn new<F>(label: impl Into<String>, direction: EventDirection, guard: F) -> Self
    where
        F: Fn(f64, &[f64]) -> f64 + Send + 'static,
    {
        ZeroCrossing { label: label.into(), direction, guard: Box::new(guard) }
    }

    /// The guard's label (used in emitted signal messages).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The configured crossing direction.
    pub fn direction(&self) -> EventDirection {
        self.direction
    }

    /// Evaluates the guard function.
    pub fn eval(&self, t: f64, x: &[f64]) -> f64 {
        (self.guard)(t, x)
    }
}

/// A localised event: where a guard crossed zero within a step.
#[derive(Debug, Clone, PartialEq)]
pub struct LocatedEvent {
    /// Index of the guard in the watcher's list.
    pub guard_index: usize,
    /// Guard label.
    pub label: String,
    /// Event time, localised to `tol`.
    pub time: f64,
    /// State at the event time.
    pub state: Vec<f64>,
}

/// Detects the earliest zero crossing of any guard inside the step
/// `[t0, t1]`, by re-integrating with bisection on the step length.
///
/// `x0` is the state at `t0`. A fresh copy of `solver` state is not
/// required; fixed-step solvers are deterministic given `(t, x, h)`.
///
/// # Errors
///
/// Propagates solver failures. Returns `Ok(None)` when no guard crosses.
///
/// # Examples
///
/// ```
/// use urt_ode::events::{locate_first_crossing, EventDirection, ZeroCrossing};
/// use urt_ode::solver::Rk4;
/// use urt_ode::system::FnSystem;
///
/// # fn main() -> Result<(), urt_ode::SolveError> {
/// // x(t) = t; guard x - 0.5 crosses at t = 0.5.
/// let sys = FnSystem::new(1, |_t, _x, dx| dx[0] = 1.0);
/// let guards = [ZeroCrossing::new("half", EventDirection::Rising, |_t, x| x[0] - 0.5)];
/// let hit = locate_first_crossing(&sys, &mut Rk4::new(), &guards, 0.0, &[0.0], 1.0, 1e-10)?
///     .expect("crossing exists");
/// assert!((hit.time - 0.5).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn locate_first_crossing<S: Solver + ?Sized>(
    sys: &dyn OdeSystem,
    solver: &mut S,
    guards: &[ZeroCrossing],
    t0: f64,
    x0: &[f64],
    t1: f64,
    tol: f64,
) -> Result<Option<LocatedEvent>, SolveError> {
    if guards.is_empty() || t1 <= t0 {
        return Ok(None);
    }
    let g0: Vec<f64> = guards.iter().map(|g| g.eval(t0, x0)).collect();
    // Fixed-step solvers need sub-steps small enough to stay accurate over
    // re-integrations of arbitrary partial intervals.
    let max_sub = (t1 - t0) / 16.0;

    // Integrate the full step once to get end values.
    let mut x_end = x0.to_vec();
    step_to(sys, solver, t0, &mut x_end, t1 - t0, max_sub)?;
    let crossing =
        guards.iter().enumerate().find(|(i, g)| g.direction().matches(g0[*i], g.eval(t1, &x_end)));
    let Some((idx, guard)) = crossing else {
        return Ok(None);
    };

    // Bisection on step length h in (0, t1 - t0].
    let mut lo = 0.0;
    let mut hi = t1 - t0;
    let mut x_hit = x_end;
    for _ in 0..200 {
        if hi - lo <= tol {
            break;
        }
        let mid = 0.5 * (lo + hi);
        let mut x_mid = x0.to_vec();
        step_to(sys, solver, t0, &mut x_mid, mid, max_sub)?;
        let g_mid = guard.eval(t0 + mid, &x_mid);
        if guard.direction().matches(g0[idx], g_mid) {
            hi = mid;
            x_hit = x_mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(LocatedEvent {
        guard_index: idx,
        label: guard.label().to_owned(),
        time: t0 + hi,
        state: x_hit,
    }))
}

/// Takes one fixed sub-step of exactly `h` (retrying on adaptive
/// rejection with the suggested smaller step, accumulating to `h`).
fn step_to<S: Solver + ?Sized>(
    sys: &dyn OdeSystem,
    solver: &mut S,
    t0: f64,
    x: &mut [f64],
    h: f64,
    max_sub: f64,
) -> Result<(), SolveError> {
    if h <= 0.0 {
        return Ok(());
    }
    let mut t = t0;
    let target = t0 + h;
    let mut next_h = h.min(max_sub);
    while t < target - 1e-300 {
        let step = next_h.min(target - t).min(max_sub);
        let out = solver.step(sys, t, x, step)?;
        if out.accepted {
            t += out.h_taken;
        }
        next_h = out.h_next.min(target - t).max(1e-300);
        if target - t <= f64::EPSILON * target.abs().max(1.0) {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Dopri45, Rk4};
    use crate::system::library::HarmonicOscillator;
    use crate::system::FnSystem;

    #[test]
    fn direction_matching() {
        assert!(EventDirection::Rising.matches(-1.0, 1.0));
        assert!(!EventDirection::Rising.matches(1.0, -1.0));
        assert!(EventDirection::Falling.matches(1.0, -1.0));
        assert!(!EventDirection::Falling.matches(-1.0, 1.0));
        assert!(EventDirection::Both.matches(-1.0, 1.0));
        assert!(EventDirection::Both.matches(1.0, -1.0));
        assert!(!EventDirection::Both.matches(1.0, 2.0));
        // Landing exactly on zero counts.
        assert!(EventDirection::Rising.matches(-1.0, 0.0));
    }

    #[test]
    fn locates_linear_crossing() {
        let sys = FnSystem::new(1, |_t, _x, dx: &mut [f64]| dx[0] = 2.0);
        let guards = [ZeroCrossing::new("g", EventDirection::Rising, |_t, x: &[f64]| x[0] - 1.0)];
        let hit = locate_first_crossing(&sys, &mut Rk4::new(), &guards, 0.0, &[0.0], 1.0, 1e-12)
            .unwrap()
            .unwrap();
        assert!((hit.time - 0.5).abs() < 1e-9, "time {}", hit.time);
        assert!((hit.state[0] - 1.0).abs() < 1e-8);
        assert_eq!(hit.label, "g");
    }

    #[test]
    fn no_crossing_returns_none() {
        let sys = FnSystem::new(1, |_t, _x, dx: &mut [f64]| dx[0] = 1.0);
        let guards = [ZeroCrossing::new("g", EventDirection::Rising, |_t, x: &[f64]| x[0] - 10.0)];
        let hit =
            locate_first_crossing(&sys, &mut Rk4::new(), &guards, 0.0, &[0.0], 1.0, 1e-10).unwrap();
        assert!(hit.is_none());
    }

    #[test]
    fn oscillator_crossing_is_at_quarter_period() {
        // cos(t) falls through zero at t = pi/2.
        let sys = HarmonicOscillator { omega: 1.0 };
        let guards = [ZeroCrossing::new("zero", EventDirection::Falling, |_t, x: &[f64]| x[0])];
        let hit =
            locate_first_crossing(&sys, &mut Rk4::new(), &guards, 0.0, &[1.0, 0.0], 2.0, 1e-10)
                .unwrap()
                .unwrap();
        assert!((hit.time - std::f64::consts::FRAC_PI_2).abs() < 1e-4, "time {}", hit.time);
    }

    #[test]
    fn adaptive_solver_also_locates() {
        let sys = FnSystem::new(1, |_t, _x, dx: &mut [f64]| dx[0] = 1.0);
        let guards = [ZeroCrossing::new("g", EventDirection::Rising, |_t, x: &[f64]| x[0] - 0.25)];
        let hit =
            locate_first_crossing(&sys, &mut Dopri45::new(), &guards, 0.0, &[0.0], 1.0, 1e-10)
                .unwrap()
                .unwrap();
        assert!((hit.time - 0.25).abs() < 1e-6, "time {}", hit.time);
    }

    #[test]
    fn earliest_guard_wins() {
        let sys = FnSystem::new(1, |_t, _x, dx: &mut [f64]| dx[0] = 1.0);
        let guards = [
            ZeroCrossing::new("late", EventDirection::Rising, |_t, x: &[f64]| x[0] - 0.8),
            ZeroCrossing::new("early", EventDirection::Rising, |_t, x: &[f64]| x[0] - 0.2),
        ];
        // `find` returns the first guard in list order that crossed over the
        // whole step; both crossed, so index 0 is chosen, but callers that
        // need the earliest *time* shrink the interval. Here we simply check
        // the API reports a crossing with a localised time for guard 0.
        let hit = locate_first_crossing(&sys, &mut Rk4::new(), &guards, 0.0, &[0.0], 1.0, 1e-10)
            .unwrap()
            .unwrap();
        assert_eq!(hit.guard_index, 0);
        assert!((hit.time - 0.8).abs() < 1e-6);
    }

    #[test]
    fn empty_guards_and_empty_interval() {
        let sys = FnSystem::new(1, |_t, _x, dx: &mut [f64]| dx[0] = 1.0);
        let none: [ZeroCrossing; 0] = [];
        assert!(locate_first_crossing(&sys, &mut Rk4::new(), &none, 0.0, &[0.0], 1.0, 1e-10)
            .unwrap()
            .is_none());
        let guards = [ZeroCrossing::new("g", EventDirection::Both, |_t, x: &[f64]| x[0])];
        assert!(locate_first_crossing(&sys, &mut Rk4::new(), &guards, 1.0, &[0.0], 1.0, 1e-10)
            .unwrap()
            .is_none());
    }
}
