//! Time-discrete systems described by difference equations.
//!
//! The paper notes that difference equations *can* already live inside
//! UML-RT capsule actions ("transition, entry, exit state") because one
//! update per event fits run-to-completion semantics. This module provides
//! the update machinery both for capsule actions and for discrete blocks.

use crate::linalg::Matrix;

/// A discrete-time system `x[k+1] = f(k, x[k], u[k])`, `y[k] = g(...)`.
///
/// Unlike continuous systems these are stepped exactly once per sample
/// period, which is why they can run inside a capsule's run-to-completion
/// action while differential equations cannot.
///
/// # Examples
///
/// ```
/// use urt_ode::difference::{DifferenceSystem, UnitDelay};
///
/// let mut d = UnitDelay::new(0.0);
/// assert_eq!(d.step(&[5.0]), vec![0.0]);
/// assert_eq!(d.step(&[7.0]), vec![5.0]);
/// ```
pub trait DifferenceSystem {
    /// Input dimension.
    fn input_dim(&self) -> usize;

    /// Output dimension.
    fn output_dim(&self) -> usize;

    /// Consumes one input sample and produces one output sample.
    fn step(&mut self, u: &[f64]) -> Vec<f64>;

    /// Resets internal state to its initial value.
    fn reset(&mut self);
}

/// `y[k] = u[k-1]`, the fundamental discrete delay.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitDelay {
    initial: f64,
    state: f64,
}

impl UnitDelay {
    /// Creates a delay that outputs `initial` at `k = 0`.
    pub fn new(initial: f64) -> Self {
        UnitDelay { initial, state: initial }
    }
}

impl DifferenceSystem for UnitDelay {
    fn input_dim(&self) -> usize {
        1
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn step(&mut self, u: &[f64]) -> Vec<f64> {
        let out = self.state;
        self.state = u[0];
        vec![out]
    }

    fn reset(&mut self) {
        self.state = self.initial;
    }
}

/// Forward-Euler discrete integrator: `x[k+1] = x[k] + T u[k]`, `y = x`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteIntegrator {
    period: f64,
    initial: f64,
    state: f64,
}

impl DiscreteIntegrator {
    /// Creates an integrator with sample period `period` starting at
    /// `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0`.
    pub fn new(period: f64, initial: f64) -> Self {
        assert!(period > 0.0, "sample period must be positive");
        DiscreteIntegrator { period, initial, state: initial }
    }

    /// Current accumulated value.
    pub fn value(&self) -> f64 {
        self.state
    }
}

impl DifferenceSystem for DiscreteIntegrator {
    fn input_dim(&self) -> usize {
        1
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn step(&mut self, u: &[f64]) -> Vec<f64> {
        let out = self.state;
        self.state += self.period * u[0];
        vec![out]
    }

    fn reset(&mut self) {
        self.state = self.initial;
    }
}

/// A linear time-invariant discrete state-space system
/// `x[k+1] = A x + B u`, `y = C x + D u`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearDiscrete {
    a: Matrix,
    b: Matrix,
    c: Matrix,
    d: Matrix,
    x0: Vec<f64>,
    x: Vec<f64>,
}

impl LinearDiscrete {
    /// Builds the system; `x0` is the initial state.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes are inconsistent.
    pub fn new(a: Matrix, b: Matrix, c: Matrix, d: Matrix, x0: Vec<f64>) -> Self {
        let n = a.rows();
        assert!(a.is_square(), "A must be square");
        assert_eq!(b.rows(), n, "B row count must match A");
        assert_eq!(c.cols(), n, "C column count must match A");
        assert_eq!(d.rows(), c.rows(), "D rows must match C rows");
        assert_eq!(d.cols(), b.cols(), "D cols must match B cols");
        assert_eq!(x0.len(), n, "x0 must match state dimension");
        LinearDiscrete { a, b, c, d, x: x0.clone(), x0 }
    }

    /// Current internal state.
    pub fn state(&self) -> &[f64] {
        &self.x
    }
}

impl DifferenceSystem for LinearDiscrete {
    fn input_dim(&self) -> usize {
        self.b.cols()
    }

    fn output_dim(&self) -> usize {
        self.c.rows()
    }

    fn step(&mut self, u: &[f64]) -> Vec<f64> {
        let mut y = self.c.matvec(&self.x);
        for (yi, di) in y.iter_mut().zip(self.d.matvec(u)) {
            *yi += di;
        }
        let mut x_next = self.a.matvec(&self.x);
        for (xi, bi) in x_next.iter_mut().zip(self.b.matvec(u)) {
            *xi += bi;
        }
        self.x = x_next;
        y
    }

    fn reset(&mut self) {
        self.x = self.x0.clone();
    }
}

/// A discrete transfer function `Y(z)/U(z) = (b0 + b1 z^-1 + ...) /
/// (1 + a1 z^-1 + ...)` in direct form II transposed.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferFunctionZ {
    b: Vec<f64>,
    a: Vec<f64>,
    w: Vec<f64>,
}

impl TransferFunctionZ {
    /// Creates a transfer function from numerator `b` and denominator `a`
    /// coefficients (`a[0]` is normalised to 1).
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty or `a[0] == 0`.
    pub fn new(b: &[f64], a: &[f64]) -> Self {
        assert!(!a.is_empty() && a[0] != 0.0, "denominator must have a nonzero leading term");
        let a0 = a[0];
        let b: Vec<f64> = b.iter().map(|v| v / a0).collect();
        let a: Vec<f64> = a.iter().map(|v| v / a0).collect();
        let order = a.len().max(b.len()) - 1;
        TransferFunctionZ { b, a, w: vec![0.0; order] }
    }
}

impl DifferenceSystem for TransferFunctionZ {
    fn input_dim(&self) -> usize {
        1
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn step(&mut self, u: &[f64]) -> Vec<f64> {
        let u = u[0];
        let b0 = self.b.first().copied().unwrap_or(0.0);
        let y = b0 * u + self.w.first().copied().unwrap_or(0.0);
        let n = self.w.len();
        for i in 0..n {
            let bi = self.b.get(i + 1).copied().unwrap_or(0.0);
            let ai = self.a.get(i + 1).copied().unwrap_or(0.0);
            let w_next = self.w.get(i + 1).copied().unwrap_or(0.0);
            self.w[i] = bi * u - ai * y + w_next;
        }
        vec![y]
    }

    fn reset(&mut self) {
        self.w.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_delay_delays_by_one() {
        let mut d = UnitDelay::new(-1.0);
        assert_eq!(d.step(&[1.0])[0], -1.0);
        assert_eq!(d.step(&[2.0])[0], 1.0);
        assert_eq!(d.step(&[3.0])[0], 2.0);
        d.reset();
        assert_eq!(d.step(&[9.0])[0], -1.0);
    }

    #[test]
    fn discrete_integrator_accumulates() {
        let mut i = DiscreteIntegrator::new(0.5, 0.0);
        i.step(&[2.0]);
        i.step(&[2.0]);
        assert_eq!(i.value(), 2.0);
        i.reset();
        assert_eq!(i.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sample period must be positive")]
    fn discrete_integrator_rejects_bad_period() {
        let _ = DiscreteIntegrator::new(0.0, 0.0);
    }

    #[test]
    fn linear_discrete_matches_delay() {
        // x[k+1] = u, y = x: a one-sample delay.
        let sys = LinearDiscrete::new(
            Matrix::zeros(1, 1),
            Matrix::identity(1),
            Matrix::identity(1),
            Matrix::zeros(1, 1),
            vec![0.0],
        );
        let mut sys = sys;
        assert_eq!(sys.step(&[5.0])[0], 0.0);
        assert_eq!(sys.step(&[0.0])[0], 5.0);
    }

    #[test]
    fn transfer_function_pure_gain() {
        let mut tf = TransferFunctionZ::new(&[3.0], &[1.0]);
        assert_eq!(tf.step(&[2.0])[0], 6.0);
    }

    #[test]
    fn transfer_function_first_order_lowpass_converges() {
        // y[k] = 0.5 y[k-1] + 0.5 u[k] -> DC gain 1.
        let mut tf = TransferFunctionZ::new(&[0.5], &[1.0, -0.5]);
        let mut y = 0.0;
        for _ in 0..200 {
            y = tf.step(&[1.0])[0];
        }
        assert!((y - 1.0).abs() < 1e-9, "settled at {y}");
    }

    #[test]
    fn transfer_function_normalises_denominator() {
        let mut a = TransferFunctionZ::new(&[1.0], &[2.0]);
        assert_eq!(a.step(&[4.0])[0], 2.0);
    }

    #[test]
    fn transfer_function_reset_clears_state() {
        let mut tf = TransferFunctionZ::new(&[0.5], &[1.0, -0.5]);
        tf.step(&[1.0]);
        tf.reset();
        let y = tf.step(&[0.0])[0];
        assert_eq!(y, 0.0);
    }
}
