//! Continuous systems: `dx/dt = f(t, x)` and the input-carrying variant
//! `dx/dt = f(t, x, u)` used by streamers whose equations read DPort data.
//!
//! Systems that can evaluate many state lanes at once additionally
//! implement [`BatchOdeSystem`], the entry point of the vectorized
//! ensemble kernels in [`crate::solver`].

use crate::error::SolveError;
use crate::linalg::Matrix;

/// A first-order system of ordinary differential equations.
///
/// Implementors describe `dx/dt = f(t, x)`. The trait is object-safe so a
/// streamer can hold its equations as `Box<dyn OdeSystem>` and swap solver
/// strategies independently (the paper's Figure 1).
///
/// # Examples
///
/// ```
/// use urt_ode::system::{FnSystem, OdeSystem};
///
/// let sys = FnSystem::new(2, |_t, x, dx| {
///     dx[0] = x[1];
///     dx[1] = -x[0];
/// });
/// let mut dx = [0.0; 2];
/// sys.derivatives(0.0, &[1.0, 0.0], &mut dx);
/// assert_eq!(dx, [0.0, -1.0]);
/// ```
pub trait OdeSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Writes `f(t, x)` into `dx`.
    ///
    /// Callers guarantee `x.len() == dx.len() == self.dim()`.
    fn derivatives(&self, t: f64, x: &[f64], dx: &mut [f64]);

    /// Validates that a state buffer matches this system's dimension.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] when lengths differ.
    fn check_dim(&self, x: &[f64]) -> Result<(), SolveError> {
        if x.len() == self.dim() {
            Ok(())
        } else {
            Err(SolveError::DimensionMismatch { expected: self.dim(), found: x.len() })
        }
    }
}

/// An [`OdeSystem`] that can evaluate `k` independent state lanes in one
/// call — the derivative side of the vectorized ensemble kernels.
///
/// `states` and `dx` use the *variable-major* (transposed
/// structure-of-arrays) layout: variable `v` of lane `i` lives at
/// `[v * k + i]`, so each variable forms one contiguous row of `k`
/// values. Structured systems (linear, affine) turn their derivative into
/// fused row sweeps over that layout, which rustc autovectorizes; the
/// default falls back to gathering each lane and calling
/// [`OdeSystem::derivatives`], which keeps every implementor
/// bit-identical to its scalar path by construction.
///
/// # Examples
///
/// ```
/// use urt_ode::system::{BatchOdeSystem, library::HarmonicOscillator};
///
/// let sys = HarmonicOscillator { omega: 1.0 };
/// // Two lanes, variable-major: x0 = [1, 0], x1 = [0, 1] per row.
/// let states = [1.0, 0.0, 0.0, 1.0];
/// let mut dx = [0.0; 4];
/// sys.derivatives_batch(0.0, &states, 2, 2, &mut dx);
/// assert_eq!(dx, [0.0, 1.0, -1.0, 0.0]);
/// ```
pub trait BatchOdeSystem: OdeSystem {
    /// Writes `f(t, x_i)` for every lane `i < k` into `dx`, both buffers
    /// variable-major (`[v * k + i]`).
    ///
    /// Callers guarantee `states.len() == dx.len() == dim * k` and
    /// `dim == self.dim()`.
    fn derivatives_batch(&self, t: f64, states: &[f64], dim: usize, k: usize, dx: &mut [f64]) {
        debug_assert_eq!(dim, self.dim(), "batched dim mismatch");
        debug_assert_eq!(states.len(), dim * k, "batched state layout mismatch");
        debug_assert_eq!(dx.len(), dim * k, "batched derivative layout mismatch");
        // Scalar fallback: gather one lane at a time. The per-lane values
        // fed to `derivatives` are exactly the scalar path's, so lanes
        // stay bit-identical; only the traversal order changes.
        let mut x = vec![0.0; dim];
        let mut d = vec![0.0; dim];
        for i in 0..k {
            for v in 0..dim {
                x[v] = states[v * k + i];
            }
            self.derivatives(t, &x, &mut d);
            for v in 0..dim {
                dx[v * k + i] = d[v];
            }
        }
    }
}

/// An [`OdeSystem`] built from a closure.
///
/// # Examples
///
/// ```
/// use urt_ode::system::FnSystem;
///
/// // Logistic growth: dx/dt = x (1 - x).
/// let logistic = FnSystem::new(1, |_t, x, dx| dx[0] = x[0] * (1.0 - x[0]));
/// ```
#[derive(Debug, Clone)]
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wraps closure `f` computing derivatives for a `dim`-dimensional state.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn derivatives(&self, t: f64, x: &[f64], dx: &mut [f64]) {
        (self.f)(t, x, dx)
    }
}

// Opaque closures batch through the scalar-gather default.
impl<F: Fn(f64, &[f64], &mut [f64])> BatchOdeSystem for FnSystem<F> {}

/// A linear time-invariant system `x' = A x` with a truly batched
/// derivative: each state variable's derivative row is accumulated as
/// fused `dx_row += a[v][j] * x_row_j` sweeps over the variable-major
/// layout.
///
/// # Examples
///
/// ```
/// use urt_ode::linalg::Matrix;
/// use urt_ode::system::LinearSystem;
///
/// // x' = [[0, 1], [-1, 0]] x — the unit harmonic oscillator.
/// let sys = LinearSystem::new(Matrix::from_rows(&[&[0.0, 1.0], &[-1.0, 0.0]]));
/// assert_eq!(sys.matrix().rows(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSystem {
    a: Matrix,
}

impl LinearSystem {
    /// Wraps the square system matrix `A`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: Matrix) -> Self {
        assert!(a.is_square(), "system matrix must be square");
        LinearSystem { a }
    }

    /// The system matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }
}

/// Row-sweep core shared by [`LinearSystem`] and [`AffineSystem`]:
/// `dx_row_v = init_v + sum_j a[v][j] * x_row_j`, accumulated in ascending
/// `j` so each lane performs exactly the scalar accumulation sequence.
fn accumulate_rows(a: &Matrix, init: Option<&[f64]>, states: &[f64], k: usize, dx: &mut [f64]) {
    let dim = a.rows();
    for v in 0..dim {
        let row = &mut dx[v * k..(v + 1) * k];
        match init {
            Some(b) => row.fill(b[v]),
            None => row.fill(0.0),
        }
        for j in 0..dim {
            let avj = a[(v, j)];
            crate::state::lanes_axpy(row, avj, &states[j * k..(j + 1) * k]);
        }
    }
}

impl OdeSystem for LinearSystem {
    fn dim(&self) -> usize {
        self.a.rows()
    }

    fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
        // Same accumulation sequence as the batched path: start from 0,
        // add `a[v][j] * x[j]` in ascending `j`.
        for (v, out) in dx.iter_mut().enumerate().take(self.a.rows()) {
            let mut acc = 0.0;
            for (j, xj) in x.iter().enumerate().take(self.a.cols()) {
                acc += self.a[(v, j)] * xj;
            }
            *out = acc;
        }
    }
}

impl BatchOdeSystem for LinearSystem {
    fn derivatives_batch(&self, _t: f64, states: &[f64], dim: usize, k: usize, dx: &mut [f64]) {
        debug_assert_eq!(dim, self.a.rows(), "batched dim mismatch");
        accumulate_rows(&self.a, None, states, k, dx);
    }
}

/// An affine system `x' = A x + b` (a linear system with a constant
/// drift), batched exactly like [`LinearSystem`] with the drift seeding
/// each derivative row.
///
/// # Examples
///
/// ```
/// use urt_ode::linalg::Matrix;
/// use urt_ode::system::{AffineSystem, OdeSystem};
///
/// // x' = -x + 1: settles at x = 1.
/// let sys = AffineSystem::new(Matrix::from_rows(&[&[-1.0]]), vec![1.0]);
/// let mut dx = [0.0];
/// sys.derivatives(0.0, &[1.0], &mut dx);
/// assert_eq!(dx[0], 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AffineSystem {
    a: Matrix,
    b: Vec<f64>,
}

impl AffineSystem {
    /// Wraps `A` and the drift vector `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square or `b.len() != a.rows()`.
    pub fn new(a: Matrix, b: Vec<f64>) -> Self {
        assert!(a.is_square(), "system matrix must be square");
        assert_eq!(b.len(), a.rows(), "drift dimension mismatch");
        AffineSystem { a, b }
    }

    /// The system matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }

    /// The drift vector.
    pub fn drift(&self) -> &[f64] {
        &self.b
    }

    /// Mutable drift access (e.g. re-freezing `B u` between steps).
    pub fn drift_mut(&mut self) -> &mut [f64] {
        &mut self.b
    }
}

impl OdeSystem for AffineSystem {
    fn dim(&self) -> usize {
        self.a.rows()
    }

    fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
        for (v, out) in dx.iter_mut().enumerate().take(self.a.rows()) {
            let mut acc = self.b[v];
            for (j, xj) in x.iter().enumerate().take(self.a.cols()) {
                acc += self.a[(v, j)] * xj;
            }
            *out = acc;
        }
    }
}

impl BatchOdeSystem for AffineSystem {
    fn derivatives_batch(&self, _t: f64, states: &[f64], dim: usize, k: usize, dx: &mut [f64]) {
        debug_assert_eq!(dim, self.a.rows(), "batched dim mismatch");
        accumulate_rows(&self.a, Some(&self.b), states, k, dx);
    }
}

/// A system with an exogenous input vector `u`: `dx/dt = f(t, x, u)`.
///
/// This is the shape a streamer's equations take: `u` is whatever arrived
/// on its input DPorts, frozen for the duration of a step.
pub trait InputSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Dimension of the input vector.
    fn input_dim(&self) -> usize;

    /// Writes `f(t, x, u)` into `dx`.
    fn derivatives(&self, t: f64, x: &[f64], u: &[f64], dx: &mut [f64]);

    /// Optional output map `y = g(t, x, u)`; defaults to `y = x`.
    fn output(&self, _t: f64, x: &[f64], _u: &[f64], y: &mut [f64]) {
        y.copy_from_slice(x);
    }

    /// Dimension of the output vector; defaults to the state dimension.
    fn output_dim(&self) -> usize {
        self.dim()
    }
}

/// An [`InputSystem`] built from a derivative closure (identity output map).
#[derive(Debug, Clone)]
pub struct FnInputSystem<F> {
    dim: usize,
    input_dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &[f64], &mut [f64])> FnInputSystem<F> {
    /// Wraps closure `f(t, x, u, dx)`.
    pub fn new(dim: usize, input_dim: usize, f: F) -> Self {
        FnInputSystem { dim, input_dim, f }
    }
}

impl<F: Fn(f64, &[f64], &[f64], &mut [f64])> InputSystem for FnInputSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn derivatives(&self, t: f64, x: &[f64], u: &[f64], dx: &mut [f64]) {
        (self.f)(t, x, u, dx)
    }
}

/// Adapts an [`InputSystem`] plus a frozen input vector into an
/// [`OdeSystem`], the form integration strategies consume.
///
/// During one solver macro-step the paper's streamer semantics hold DPort
/// inputs constant; this adapter encodes exactly that freeze.
#[derive(Debug)]
pub struct FrozenInput<'a, S: ?Sized> {
    system: &'a S,
    input: &'a [f64],
}

impl<'a, S: InputSystem + ?Sized> FrozenInput<'a, S> {
    /// Freezes `input` over `system`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != system.input_dim()`.
    pub fn new(system: &'a S, input: &'a [f64]) -> Self {
        assert_eq!(input.len(), system.input_dim(), "frozen input dimension mismatch");
        FrozenInput { system, input }
    }
}

impl<S: InputSystem + ?Sized> OdeSystem for FrozenInput<'_, S> {
    fn dim(&self) -> usize {
        self.system.dim()
    }

    fn derivatives(&self, t: f64, x: &[f64], dx: &mut [f64]) {
        self.system.derivatives(t, x, self.input, dx)
    }
}

// A frozen input is opaque to the batch layer; lanes gather through the
// scalar default (every lane shares the same frozen `u`).
impl<S: InputSystem + ?Sized> BatchOdeSystem for FrozenInput<'_, S> {}

/// Library of classic benchmark systems used across tests, examples and the
/// E1 solver-accuracy experiment.
pub mod library {
    use super::{BatchOdeSystem, FnSystem, OdeSystem};
    use crate::state::lanes_scaled;

    /// Harmonic oscillator `x'' = -omega^2 x` as a first-order pair.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct HarmonicOscillator {
        /// Angular frequency (rad/s).
        pub omega: f64,
    }

    impl OdeSystem for HarmonicOscillator {
        fn dim(&self) -> usize {
            2
        }

        fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = x[1];
            dx[1] = -self.omega * self.omega * x[0];
        }
    }

    impl BatchOdeSystem for HarmonicOscillator {
        fn derivatives_batch(
            &self,
            _t: f64,
            states: &[f64],
            _dim: usize,
            k: usize,
            dx: &mut [f64],
        ) {
            let (x0, x1) = states.split_at(k);
            let (d0, d1) = dx.split_at_mut(k);
            d0.copy_from_slice(x1);
            // `(-omega) * omega` mirrors the scalar `-omega * omega * x0`
            // product order, keeping lanes bit-identical.
            let c = -self.omega * self.omega;
            lanes_scaled(d1, c, x0);
        }
    }

    /// Van der Pol oscillator, the standard mildly-stiff test problem.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct VanDerPol {
        /// Nonlinearity parameter `mu >= 0`.
        pub mu: f64,
    }

    impl OdeSystem for VanDerPol {
        fn dim(&self) -> usize {
            2
        }

        fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = x[1];
            dx[1] = self.mu * (1.0 - x[0] * x[0]) * x[1] - x[0];
        }
    }

    impl BatchOdeSystem for VanDerPol {
        fn derivatives_batch(
            &self,
            _t: f64,
            states: &[f64],
            _dim: usize,
            k: usize,
            dx: &mut [f64],
        ) {
            let (x0, x1) = states.split_at(k);
            let (d0, d1) = dx.split_at_mut(k);
            d0.copy_from_slice(x1);
            let mu = self.mu;
            // Per-lane expression identical to the scalar derivative.
            for i in 0..k {
                d1[i] = mu * (1.0 - x0[i] * x0[i]) * x1[i] - x0[i];
            }
        }
    }

    // The pendulum's `sin` keeps it on the scalar-gather fallback.
    impl BatchOdeSystem for Pendulum {}

    /// Damped pendulum `theta'' = -(g/l) sin theta - c theta'`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Pendulum {
        /// Gravity (m/s^2).
        pub gravity: f64,
        /// Rod length (m).
        pub length: f64,
        /// Viscous damping coefficient.
        pub damping: f64,
    }

    impl Default for Pendulum {
        fn default() -> Self {
            Pendulum { gravity: 9.81, length: 1.0, damping: 0.0 }
        }
    }

    impl OdeSystem for Pendulum {
        fn dim(&self) -> usize {
            2
        }

        fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = x[1];
            dx[1] = -(self.gravity / self.length) * x[0].sin() - self.damping * x[1];
        }
    }

    /// Exponential decay `x' = -lambda x`, with a closed-form solution.
    pub fn decay(lambda: f64) -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, move |_t, x: &[f64], dx: &mut [f64]| dx[0] = -lambda * x[0])
    }
}

#[cfg(test)]
mod tests {
    use super::library::*;
    use super::*;

    #[test]
    fn fn_system_evaluates() {
        let sys = FnSystem::new(1, |t, _x, dx: &mut [f64]| dx[0] = t);
        let mut dx = [0.0];
        sys.derivatives(2.5, &[0.0], &mut dx);
        assert_eq!(dx[0], 2.5);
        assert_eq!(sys.dim(), 1);
    }

    #[test]
    fn check_dim_reports_mismatch() {
        let sys = FnSystem::new(2, |_t, _x, _dx: &mut [f64]| {});
        assert!(sys.check_dim(&[0.0, 0.0]).is_ok());
        let err = sys.check_dim(&[0.0]).unwrap_err();
        assert_eq!(err, crate::SolveError::DimensionMismatch { expected: 2, found: 1 });
    }

    #[test]
    fn frozen_input_holds_u_constant() {
        let plant = FnInputSystem::new(1, 1, |_t, x: &[f64], u: &[f64], dx: &mut [f64]| {
            dx[0] = u[0] - x[0];
        });
        let u = [3.0];
        let frozen = FrozenInput::new(&plant, &u);
        let mut dx = [0.0];
        frozen.derivatives(0.0, &[1.0], &mut dx);
        assert_eq!(dx[0], 2.0);
    }

    #[test]
    #[should_panic(expected = "frozen input dimension mismatch")]
    fn frozen_input_checks_dimension() {
        let plant = FnInputSystem::new(1, 2, |_t, _x: &[f64], _u: &[f64], _dx: &mut [f64]| {});
        let u = [1.0];
        let _ = FrozenInput::new(&plant, &u);
    }

    #[test]
    fn default_output_is_identity() {
        let plant = FnInputSystem::new(2, 0, |_t, _x: &[f64], _u: &[f64], dx: &mut [f64]| {
            dx.fill(0.0);
        });
        let mut y = [0.0, 0.0];
        plant.output(0.0, &[4.0, 5.0], &[], &mut y);
        assert_eq!(y, [4.0, 5.0]);
        assert_eq!(plant.output_dim(), 2);
    }

    #[test]
    fn library_systems_have_expected_derivatives() {
        let ho = HarmonicOscillator { omega: 2.0 };
        let mut dx = [0.0; 2];
        ho.derivatives(0.0, &[1.0, 0.0], &mut dx);
        assert_eq!(dx, [0.0, -4.0]);

        let vdp = VanDerPol { mu: 1.0 };
        vdp.derivatives(0.0, &[0.0, 1.0], &mut dx);
        assert_eq!(dx, [1.0, 1.0]);

        let p = Pendulum::default();
        p.derivatives(0.0, &[0.0, 0.0], &mut dx);
        assert_eq!(dx, [0.0, 0.0]);
    }
}
