//! Hybrid trajectories: continuous integration punctuated by discrete
//! resets at zero crossings.
//!
//! This is the numerical core of hybrid-system simulation: integrate
//! until a guard crosses zero, localise the event, apply a reset map to
//! the state, and continue — the bouncing ball being the canonical
//! example.

use crate::error::SolveError;
use crate::events::{locate_first_crossing, ZeroCrossing};
use crate::solver::Solver;
use crate::state::StateVec;
use crate::system::OdeSystem;
use crate::Trajectory;

/// What a reset map tells the simulator to do after an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventOutcome {
    /// Keep integrating with the (possibly reset) state.
    #[default]
    Continue,
    /// Stop the simulation at the event time.
    Stop,
}

/// A discrete event on a hybrid trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridEvent {
    /// Guard label.
    pub label: String,
    /// Event time.
    pub time: f64,
    /// State *before* the reset.
    pub state_before: Vec<f64>,
    /// State *after* the reset.
    pub state_after: Vec<f64>,
}

/// Result of a hybrid simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridTrajectory {
    /// The continuous samples (restarts included).
    pub trajectory: Trajectory,
    /// The discrete events, in time order.
    pub events: Vec<HybridEvent>,
}

/// Integrates `sys` over `[t0, t1]` with step `h`, watching `guards`;
/// whenever one crosses, `reset` maps the state and decides whether to
/// continue. At most `max_events` are processed (guarding against Zeno
/// behaviour).
///
/// # Errors
///
/// Propagates solver failures; returns [`SolveError::EventNotBracketed`]
/// if more than `max_events` fire.
///
/// # Examples
///
/// Bouncing ball with restitution 0.8:
///
/// ```
/// use urt_ode::events::{EventDirection, ZeroCrossing};
/// use urt_ode::hybrid::{simulate_hybrid, EventOutcome};
/// use urt_ode::solver::Rk4;
/// use urt_ode::system::FnSystem;
///
/// # fn main() -> Result<(), urt_ode::SolveError> {
/// let ball = FnSystem::new(2, |_t, x, dx| {
///     dx[0] = x[1];
///     dx[1] = -9.81;
/// });
/// let guards = vec![ZeroCrossing::new("bounce", EventDirection::Falling, |_t, x| x[0])];
/// let result = simulate_hybrid(
///     &ball,
///     &mut Rk4::new(),
///     guards,
///     |label, _t, x| {
///         assert_eq!(label, "bounce");
///         x[1] = -0.8 * x[1];
///         EventOutcome::Continue
///     },
///     0.0,
///     &[1.0, 0.0],
///     3.0,
///     1e-3,
///     50,
/// )?;
/// assert!(!result.events.is_empty());
/// # Ok(())
/// # }
/// ```
#[allow(clippy::too_many_arguments)]
pub fn simulate_hybrid<S, R>(
    sys: &dyn OdeSystem,
    solver: &mut S,
    guards: Vec<ZeroCrossing>,
    mut reset: R,
    t0: f64,
    x0: &[f64],
    t1: f64,
    h: f64,
    max_events: usize,
) -> Result<HybridTrajectory, SolveError>
where
    S: Solver + ?Sized,
    R: FnMut(&str, f64, &mut [f64]) -> EventOutcome,
{
    sys.check_dim(x0)?;
    if !(h.is_finite() && h > 0.0) {
        return Err(SolveError::InvalidStep { step: h });
    }
    let mut t = t0;
    let mut x = x0.to_vec();
    let mut traj = Trajectory::new();
    traj.push(t, StateVec::from_slice(&x));
    let mut events = Vec::new();

    while t < t1 - 1e-12 {
        let step_end = (t + h).min(t1);
        // Try the step; check guards over it.
        let hit = locate_first_crossing(sys, solver, &guards, t, &x, step_end, 1e-10)?;
        match hit {
            None => {
                // Commit the full step.
                let mut x_next = x.clone();
                advance_exact(sys, solver, t, &mut x_next, step_end)?;
                t = step_end;
                x = x_next;
                traj.push(t, StateVec::from_slice(&x));
            }
            Some(event) => {
                if events.len() >= max_events {
                    return Err(SolveError::EventNotBracketed);
                }
                let state_before = event.state.clone();
                let mut state_after = event.state.clone();
                let outcome = reset(&event.label, event.time, &mut state_after);
                // Past-the-event nudge so the same guard cannot re-fire
                // at the identical instant.
                t = event.time + 1e-12;
                x = state_after.clone();
                if traj.last_time() < t {
                    traj.push(t, StateVec::from_slice(&x));
                }
                events.push(HybridEvent {
                    label: event.label,
                    time: event.time,
                    state_before,
                    state_after,
                });
                if outcome == EventOutcome::Stop {
                    break;
                }
            }
        }
    }
    Ok(HybridTrajectory { trajectory: traj, events })
}

/// Integrates from `t` to exactly `t_end` with bounded substeps.
fn advance_exact<S: Solver + ?Sized>(
    sys: &dyn OdeSystem,
    solver: &mut S,
    t: f64,
    x: &mut [f64],
    t_end: f64,
) -> Result<(), SolveError> {
    let mut cur = t;
    let resolution = 4.0 * f64::EPSILON * t_end.abs().max(1.0);
    let sub = (t_end - t) / 4.0;
    while t_end - cur > resolution {
        let step = sub.min(t_end - cur);
        let out = solver.step(sys, cur, x, step)?;
        if out.accepted {
            cur += out.h_taken;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventDirection;
    use crate::solver::Rk4;
    use crate::system::FnSystem;

    fn ball() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, |_t, x: &[f64], dx: &mut [f64]| {
            dx[0] = x[1];
            dx[1] = -9.81;
        })
    }

    #[test]
    fn bouncing_ball_loses_energy_each_bounce() {
        let guards =
            vec![ZeroCrossing::new("bounce", EventDirection::Falling, |_t, x: &[f64]| x[0])];
        let result = simulate_hybrid(
            &ball(),
            &mut Rk4::new(),
            guards,
            |_l, _t, x| {
                x[0] = 0.0;
                x[1] = -0.8 * x[1];
                EventOutcome::Continue
            },
            0.0,
            &[1.0, 0.0],
            4.0,
            1e-3,
            100,
        )
        .expect("simulate");
        assert!(result.events.len() >= 3, "several bounces in 4 s");
        // First bounce: free fall from 1 m lands at sqrt(2/g) ≈ 0.4515 s.
        let t_first = result.events[0].time;
        assert!((t_first - (2.0 / 9.81f64).sqrt()).abs() < 1e-3, "first bounce at {t_first}");
        // Impact speeds decay by the restitution factor.
        let speeds: Vec<f64> = result.events.iter().map(|e| e.state_before[1].abs()).collect();
        for w in speeds.windows(2) {
            assert!(w[1] < w[0] * 0.85, "impact speed must decay: {speeds:?}");
        }
        // Height stays (numerically) non-negative.
        for (_, state) in result.trajectory.iter() {
            assert!(state[0] > -1e-3, "ball under the floor: {}", state[0]);
        }
    }

    #[test]
    fn stop_outcome_halts_simulation() {
        let guards =
            vec![ZeroCrossing::new("floor", EventDirection::Falling, |_t, x: &[f64]| x[0])];
        let result = simulate_hybrid(
            &ball(),
            &mut Rk4::new(),
            guards,
            |_l, _t, _x| EventOutcome::Stop,
            0.0,
            &[1.0, 0.0],
            10.0,
            1e-3,
            10,
        )
        .expect("simulate");
        assert_eq!(result.events.len(), 1);
        assert!(result.trajectory.last_time() < 0.5, "stopped at the first event");
    }

    #[test]
    fn zeno_guard_trips_max_events() {
        let guards =
            vec![ZeroCrossing::new("bounce", EventDirection::Falling, |_t, x: &[f64]| x[0])];
        let err = simulate_hybrid(
            &ball(),
            &mut Rk4::new(),
            guards,
            |_l, _t, x| {
                x[0] = 0.0;
                x[1] = -0.99 * x[1];
                EventOutcome::Continue
            },
            0.0,
            &[1.0, 0.0],
            200.0,
            1e-3,
            5,
        )
        .expect_err("more than 5 bounces in 200 s");
        assert_eq!(err, SolveError::EventNotBracketed);
    }

    #[test]
    fn no_events_matches_plain_integration() {
        let sys = FnSystem::new(1, |_t, x: &[f64], dx: &mut [f64]| dx[0] = -x[0]);
        let guards =
            vec![ZeroCrossing::new("never", EventDirection::Rising, |_t, x: &[f64]| x[0] - 100.0)];
        let result = simulate_hybrid(
            &sys,
            &mut Rk4::new(),
            guards,
            |_l, _t, _x| EventOutcome::Continue,
            0.0,
            &[1.0],
            1.0,
            1e-2,
            10,
        )
        .expect("simulate");
        assert!(result.events.is_empty());
        let x1 = result.trajectory.last_state()[0];
        assert!((x1 - (-1.0f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn validates_inputs() {
        let sys = ball();
        assert!(
            simulate_hybrid(
                &sys,
                &mut Rk4::new(),
                vec![],
                |_l, _t, _x| EventOutcome::Continue,
                0.0,
                &[1.0],
                1.0,
                1e-2,
                10
            )
            .is_err(),
            "dimension mismatch"
        );
        assert!(
            simulate_hybrid(
                &sys,
                &mut Rk4::new(),
                vec![],
                |_l, _t, _x| EventOutcome::Continue,
                0.0,
                &[1.0, 0.0],
                1.0,
                0.0,
                10
            )
            .is_err(),
            "invalid step"
        );
    }
}
