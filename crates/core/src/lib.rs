//! The unified model of complex real-time control systems — the DATE 2005
//! paper's contribution, reproduced end to end.
//!
//! Complex real-time control systems are hybrids of a time-discrete,
//! event-driven part (UML-RT capsules) and a time-continuous part
//! (differential equations). The paper unifies both on one UML-RT platform
//! by adding eight stereotypes and assigning capsules and streamers to
//! different threads. This crate is that platform:
//!
//! * [`stereotype`] — the Table 1 stereotype registry.
//! * [`model`] — the declarative unified model (capsules + streamers +
//!   containment + connections) with the paper's well-formedness rules
//!   from Figures 2 and 3.
//! * [`elaborate`] — lowering a validated model plus a behaviour
//!   registry into an immutable `CompiledSystem` artifact (hierarchy
//!   flattening, dense id assignment, resolved link/probe tables, a
//!   stable content hash) whose `instantiate()` stamps out live
//!   `SystemInstance`s.
//! * [`cache`] — compile-once, instantiate-many: `SystemCache` memoizes
//!   compiled artifacts by model content hash with hit/miss counters.
//! * [`time`] — the continuous `Time` stereotype: a predictable hybrid
//!   simulation clock, versus UML-RT's tick-quantised timers.
//! * [`strategy`] — the Figure 1 State/Strategy catalogue: named solver
//!   strategies attachable to streamers at run time.
//! * [`threading`] — thread-assignment policies ("assigned to one or
//!   several threads").
//! * [`engine`] — the hybrid co-simulation engine: a capsule controller
//!   plus streamer groups on dedicated solver threads, bridged by channel
//!   communication ("communication mechanism of threads").
//! * [`ensemble`] — structure-of-arrays ensemble execution: `K`
//!   parameter-variants of one compiled system stepped in lockstep, with
//!   routing and channel bookkeeping paid once per step instead of once
//!   per instance.
//! * [`pacer`] — hard real-time mode: wall-clock pacing, per-step
//!   deadline budgets and overrun policies behind
//!   [`engine::HybridEngine::run_paced`], the paced, deadline-enforced
//!   run loop in the compiled path.
//! * [`recorder`] — thread-safe signal recording for experiments.
//!
//! # Examples
//!
//! A thermostat capsule supervising a thermal plant streamer:
//!
//! ```
//! use urt_core::engine::{EngineConfig, HybridEngine};
//! use urt_core::threading::ThreadPolicy;
//! use urt_dataflow::flowtype::FlowType;
//! use urt_dataflow::graph::StreamerNetwork;
//! use urt_dataflow::streamer::FnStreamer;
//! use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
//! use urt_umlrt::controller::Controller;
//! use urt_umlrt::statemachine::StateMachineBuilder;
//!
//! # fn main() -> Result<(), urt_core::CoreError> {
//! let mut net = StreamerNetwork::new("plant");
//! let p = net.add_streamer(
//!     FnStreamer::new("osc", 0, 1, |t, _h, _u, y| y[0] = t.sin()),
//!     &[],
//!     &[("y", FlowType::scalar())],
//! )?;
//! let sm = StateMachineBuilder::new("supervisor")
//!     .state("watching")
//!     .initial("watching", |_d: &mut (), _ctx: &mut CapsuleContext| {})
//!     .build()?;
//! let mut controller = Controller::new("events");
//! controller.add_capsule(Box::new(SmCapsule::new(sm, ())));
//! let mut engine = HybridEngine::new(
//!     controller,
//!     EngineConfig { step: 0.001, policy: ThreadPolicy::CurrentThread },
//! );
//! engine.add_group(net)?;
//! engine.run_until(0.1)?;
//! assert!((engine.time() - 0.1).abs() < 1e-9);
//! # let _ = p;
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod elaborate;
pub mod engine;
pub mod ensemble;
pub mod error;
pub mod model;
pub mod pacer;
pub mod recorder;
pub mod rng;
pub mod scenario;
pub mod stereotype;
pub mod strategy;
pub mod sync;
pub mod threading;
pub mod time;

pub use cache::SystemCache;
pub use elaborate::{elaborate, BehaviorRegistry, CompiledSystem, SystemInstance};
pub use engine::{EngineConfig, HybridEngine};
pub use ensemble::{EnsembleEngine, VariantSpec};
pub use error::CoreError;
pub use model::{ModelBuilder, UnifiedModel};
pub use pacer::{
    LatencyHistogram, OverrunPolicy, PacedConfig, PacedReport, RealTimePacer, StepBudget,
    TimeSource, WallClock,
};
pub use recorder::{Recorder, SeriesHandle};
pub use stereotype::Stereotype;
pub use threading::ThreadPolicy;
pub use time::HybridTime;
