//! The declarative unified model: capsules + streamers + containment +
//! connections, with the paper's well-formedness rules.
//!
//! The rules come straight from §2 and Figures 2–3:
//!
//! * **fig3-containment** — capsules can contain streamers, but "streamers
//!   don't contain any capsule".
//! * **containment-acyclic** — the ownership tree has no cycles.
//! * **fig3-dport-relay** — capsules may carry DPorts, "but in capsules,
//!   DPorts are only used as relay ports. No data will be processed by
//!   capsules": every capsule DPort must both receive and forward a flow.
//! * **flow-subset** — "the output DPort's flow type must be a subset of
//!   the input DPort's flow type".
//! * **sport-protocol** — SPort links connect ports with the same
//!   protocol.
//! * **unique-names** — element names are unique per kind.
//!
//! The model is *declarative*: it describes structure for validation, code
//! generation and reporting. The executable counterpart is assembled with
//! [`crate::engine::HybridEngine`].

use crate::error::CoreError;
use std::fmt;
use urt_dataflow::flowtype::FlowType;
use urt_umlrt::protocol::Protocol;
use urt_umlrt::statemachine::SmSpec;

/// Reference to a capsule declaration in a [`UnifiedModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapsuleRef(usize);

/// Reference to a streamer declaration in a [`UnifiedModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamerRef(usize);

/// Who owns (contains) an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Owner {
    /// Top level.
    #[default]
    System,
    /// Contained in a capsule.
    Capsule(CapsuleRef),
    /// Contained in a streamer.
    Streamer(StreamerRef),
}

/// Scope of a declared per-macro-step timing budget (nanoseconds).
///
/// The static cost pass (`urt_analysis::cost_pass`) checks the
/// worst-case per-macro-step cost of every solver-thread group against
/// these: a [`BudgetScope::Thread`] budget binds one declared thread, a
/// [`BudgetScope::Model`] budget binds every thread that has no
/// more-specific declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetScope {
    /// Applies to every solver thread without a thread-specific budget.
    Model,
    /// Applies to one declared solver thread.
    Thread(usize),
}

impl fmt::Display for BudgetScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetScope::Model => f.write_str("model"),
            BudgetScope::Thread(t) => write!(f, "thread {t}"),
        }
    }
}

/// An endpoint of a flow: a named DPort on a capsule or a streamer.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowEnd {
    /// `(capsule, dport name)` — necessarily a relay DPort.
    Capsule(CapsuleRef, String),
    /// `(streamer, dport name)`.
    Streamer(StreamerRef, String),
}

#[derive(Debug, Clone, PartialEq)]
struct CapsuleDecl {
    name: String,
    owner: Owner,
    /// Relay-only data ports: `(name, flow type)`.
    dports: Vec<(String, FlowType)>,
    /// Signal ports: `(name, protocol name)`.
    sports: Vec<(String, String)>,
    /// Declarative behaviour, if modelled (linted by `urt_analysis`).
    machine: Option<SmSpec>,
}

#[derive(Debug, Clone, PartialEq)]
struct StreamerDecl {
    name: String,
    owner: Owner,
    in_dports: Vec<(String, FlowType)>,
    out_dports: Vec<(String, FlowType)>,
    sports: Vec<(String, String)>,
    solver: String,
    /// Whether outputs depend on same-step inputs (conservative default:
    /// `true`; integrator-style streamers should declare `false`).
    feedthrough: bool,
    /// Solver-thread assignment for the deployment plan (default 0).
    thread: usize,
    /// Declared worst-case cost of one macro step, in nanoseconds.
    /// `None` means "ask the calibration table" (static cost pass).
    step_cost_ns: Option<f64>,
}

#[derive(Debug, Clone, PartialEq)]
struct FlowDecl {
    from: FlowEnd,
    to: FlowEnd,
}

#[derive(Debug, Clone, PartialEq)]
struct SportLink {
    capsule: CapsuleRef,
    capsule_port: String,
    streamer: StreamerRef,
    sport: String,
}

#[derive(Debug, Clone, PartialEq)]
struct ProbeDecl {
    streamer: StreamerRef,
    port: String,
    series: String,
}

/// Summary statistics of a model (used by reports and the Kühl baseline
/// comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelStats {
    /// Number of capsule declarations.
    pub capsules: usize,
    /// Number of streamer declarations.
    pub streamers: usize,
    /// Number of flows.
    pub flows: usize,
    /// Number of SPort links.
    pub sport_links: usize,
    /// Total DPorts (capsule relays + streamer in/out).
    pub dports: usize,
    /// Total SPorts.
    pub sports: usize,
}

/// A validated-or-validatable unified model.
///
/// Build with [`ModelBuilder`]; check with [`UnifiedModel::validate`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UnifiedModel {
    name: String,
    capsules: Vec<CapsuleDecl>,
    streamers: Vec<StreamerDecl>,
    flows: Vec<FlowDecl>,
    sport_links: Vec<SportLink>,
    /// Protocols declared by name, from the capsule's perspective:
    /// `in_signals` are deliverable *to* the capsule.
    protocols: Vec<Protocol>,
    /// Recorder probes: named series tapped off streamer output DPorts.
    probes: Vec<ProbeDecl>,
    /// Declared per-macro-step timing budgets, in nanoseconds.
    budgets: Vec<(BudgetScope, f64)>,
}

impl UnifiedModel {
    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A stable 64-bit content hash of the model: FNV-1a over the
    /// model's canonical (derived `Debug`) rendering. Every collection
    /// in `UnifiedModel` is a `Vec` in declaration order, so the
    /// rendering — and therefore the hash — is deterministic across
    /// processes and platforms. This is the compile-cache key
    /// ([`SystemCache`](crate::cache::SystemCache)) and the value
    /// `urt-lint --hash` prints; the compiled artifact folds the
    /// registry shape on top
    /// ([`CompiledSystem::content_hash`](crate::elaborate::CompiledSystem::content_hash)).
    pub fn content_hash(&self) -> u64 {
        crate::cache::fnv1a_64(format!("{self:?}").as_bytes())
    }

    /// Summary statistics.
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            capsules: self.capsules.len(),
            streamers: self.streamers.len(),
            flows: self.flows.len(),
            sport_links: self.sport_links.len(),
            dports: self.capsules.iter().map(|c| c.dports.len()).sum::<usize>()
                + self
                    .streamers
                    .iter()
                    .map(|s| s.in_dports.len() + s.out_dports.len())
                    .sum::<usize>(),
            sports: self.capsules.iter().map(|c| c.sports.len()).sum::<usize>()
                + self.streamers.iter().map(|s| s.sports.len()).sum::<usize>(),
        }
    }

    /// Capsule name by reference.
    pub fn capsule_name(&self, c: CapsuleRef) -> Option<&str> {
        self.capsules.get(c.0).map(|d| d.name.as_str())
    }

    /// Streamer name by reference.
    pub fn streamer_name(&self, s: StreamerRef) -> Option<&str> {
        self.streamers.get(s.0).map(|d| d.name.as_str())
    }

    /// Iterates `(ref, name, solver)` over streamers (for codegen).
    pub fn iter_streamers(&self) -> impl Iterator<Item = (StreamerRef, &str, &str)> {
        self.streamers
            .iter()
            .enumerate()
            .map(|(i, d)| (StreamerRef(i), d.name.as_str(), d.solver.as_str()))
    }

    /// Iterates `(ref, name)` over capsules (for codegen).
    pub fn iter_capsules(&self) -> impl Iterator<Item = (CapsuleRef, &str)> {
        self.capsules.iter().enumerate().map(|(i, d)| (CapsuleRef(i), d.name.as_str()))
    }

    /// Iterates every flow as `(from, to)` endpoints.
    pub fn iter_flows(&self) -> impl Iterator<Item = (&FlowEnd, &FlowEnd)> {
        self.flows.iter().map(|f| (&f.from, &f.to))
    }

    /// Iterates SPort links as `(capsule, capsule port, streamer, sport)`.
    pub fn iter_sport_links(&self) -> impl Iterator<Item = (CapsuleRef, &str, StreamerRef, &str)> {
        self.sport_links
            .iter()
            .map(|l| (l.capsule, l.capsule_port.as_str(), l.streamer, l.sport.as_str()))
    }

    /// Relay DPorts `(name, flow type)` declared on a capsule.
    pub fn capsule_dports(&self, c: CapsuleRef) -> &[(String, FlowType)] {
        self.capsules.get(c.0).map_or(&[], |d| d.dports.as_slice())
    }

    /// SPorts `(name, protocol name)` declared on a capsule.
    pub fn capsule_sports(&self, c: CapsuleRef) -> &[(String, String)] {
        self.capsules.get(c.0).map_or(&[], |d| d.sports.as_slice())
    }

    /// The capsule's declarative state machine, if one was attached.
    pub fn capsule_machine(&self, c: CapsuleRef) -> Option<&SmSpec> {
        self.capsules.get(c.0).and_then(|d| d.machine.as_ref())
    }

    /// Input DPorts `(name, flow type)` declared on a streamer.
    pub fn streamer_in_dports(&self, s: StreamerRef) -> &[(String, FlowType)] {
        self.streamers.get(s.0).map_or(&[], |d| d.in_dports.as_slice())
    }

    /// Output DPorts `(name, flow type)` declared on a streamer.
    pub fn streamer_out_dports(&self, s: StreamerRef) -> &[(String, FlowType)] {
        self.streamers.get(s.0).map_or(&[], |d| d.out_dports.as_slice())
    }

    /// SPorts `(name, protocol name)` declared on a streamer.
    pub fn streamer_sports(&self, s: StreamerRef) -> &[(String, String)] {
        self.streamers.get(s.0).map_or(&[], |d| d.sports.as_slice())
    }

    /// Whether a streamer's outputs depend on same-step inputs
    /// (default `true`).
    pub fn streamer_feedthrough(&self, s: StreamerRef) -> bool {
        self.streamers.get(s.0).is_none_or(|d| d.feedthrough)
    }

    /// Solver-thread assignment of a streamer in the deployment plan.
    pub fn streamer_thread(&self, s: StreamerRef) -> usize {
        self.streamers.get(s.0).map_or(0, |d| d.thread)
    }

    /// Declared worst-case cost of one macro step for a streamer, in
    /// nanoseconds (`None` when the model left it to calibration).
    pub fn streamer_step_cost(&self, s: StreamerRef) -> Option<f64> {
        self.streamers.get(s.0).and_then(|d| d.step_cost_ns)
    }

    /// Iterates the declared timing budgets as `(scope, ns per macro
    /// step)`.
    pub fn iter_budgets(&self) -> impl Iterator<Item = (BudgetScope, f64)> + '_ {
        self.budgets.iter().copied()
    }

    /// Whether any per-macro-step budget is declared — the static cost
    /// pass is active exactly when this holds.
    pub fn has_budgets(&self) -> bool {
        !self.budgets.is_empty()
    }

    /// The budget binding a solver thread: a [`BudgetScope::Thread`]
    /// declaration for `thread` wins, else a [`BudgetScope::Model`]
    /// declaration, else `None`. Later declarations of the same scope
    /// override earlier ones.
    pub fn budget_for_thread(&self, thread: usize) -> Option<f64> {
        self.budgets
            .iter()
            .rev()
            .find(|(scope, _)| *scope == BudgetScope::Thread(thread))
            .or_else(|| self.budgets.iter().rev().find(|(scope, _)| *scope == BudgetScope::Model))
            .map(|(_, ns)| *ns)
    }

    /// The model-wide budget ([`BudgetScope::Model`]), if declared.
    pub fn model_budget(&self) -> Option<f64> {
        self.budgets.iter().rev().find(|(scope, _)| *scope == BudgetScope::Model).map(|(_, ns)| *ns)
    }

    /// Re-assigns a streamer (by name) to a solver thread — the hook the
    /// analyzer's recommended partition (`URT304`) is applied through.
    /// Returns `false` when no streamer has that name.
    pub fn reassign_thread(&mut self, streamer: &str, thread: usize) -> bool {
        match self.streamers.iter_mut().find(|d| d.name == streamer) {
            Some(d) => {
                d.thread = thread;
                true
            }
            None => false,
        }
    }

    /// Owner of a capsule.
    pub fn capsule_owner(&self, c: CapsuleRef) -> Option<Owner> {
        self.capsules.get(c.0).map(|d| d.owner)
    }

    /// Owner of a streamer.
    pub fn streamer_owner(&self, s: StreamerRef) -> Option<Owner> {
        self.streamers.get(s.0).map(|d| d.owner)
    }

    /// Looks up a declared protocol by name.
    pub fn protocol(&self, name: &str) -> Option<&Protocol> {
        self.protocols.iter().find(|p| p.name() == name)
    }

    /// Iterates the declared protocols.
    pub fn iter_protocols(&self) -> impl Iterator<Item = &Protocol> {
        self.protocols.iter()
    }

    /// Iterates declared probes as `(streamer, output port, series name)`.
    pub fn iter_probes(&self) -> impl Iterator<Item = (StreamerRef, &str, &str)> {
        self.probes.iter().map(|p| (p.streamer, p.port.as_str(), p.series.as_str()))
    }

    fn flow_end_type(&self, end: &FlowEnd, incoming: bool) -> Result<&FlowType, CoreError> {
        match end {
            FlowEnd::Capsule(c, port) => self
                .capsules
                .get(c.0)
                .and_then(|d| d.dports.iter().find(|(n, _)| n == port))
                .map(|(_, t)| t)
                .ok_or_else(|| CoreError::Validation {
                    rule: "flow-endpoint",
                    detail: format!("capsule DPort `{port}` not declared"),
                }),
            FlowEnd::Streamer(s, port) => {
                let d = self.streamers.get(s.0).ok_or(CoreError::Validation {
                    rule: "flow-endpoint",
                    detail: format!("streamer #{} not declared", s.0),
                })?;
                let ports = if incoming { &d.in_dports } else { &d.out_dports };
                ports.iter().find(|(n, _)| n == port).map(|(_, t)| t).ok_or_else(|| {
                    CoreError::Validation {
                        rule: "flow-endpoint",
                        detail: format!(
                            "streamer `{}` has no {} DPort `{port}`",
                            d.name,
                            if incoming { "input" } else { "output" }
                        ),
                    }
                })
            }
        }
    }

    /// Collects **every** well-formedness violation instead of failing
    /// fast — the model half of the `urt_analysis` analyzer. Pass order
    /// matches the historical fail-fast order, so
    /// [`UnifiedModel::validate`] (which fails on the first entry)
    /// reports the same error it always did.
    pub fn violations(&self) -> Vec<CoreError> {
        let mut found = Vec::new();
        self.collect_unique_names(&mut found);
        self.collect_containment(&mut found);
        self.collect_flows(&mut found);
        self.collect_capsule_dports_relay(&mut found);
        self.collect_sport_links(&mut found);
        self.collect_probes(&mut found);
        found
    }

    /// Checks every well-formedness rule; returns the first violation.
    /// Thin wrapper over the collecting analyzer
    /// ([`UnifiedModel::violations`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::Validation`] with the rule identifier (see the module
    /// docs for the rule list).
    pub fn validate(&self) -> Result<(), CoreError> {
        match self.violations().into_iter().next() {
            Some(first) => Err(first),
            None => Ok(()),
        }
    }

    fn collect_unique_names(&self, found: &mut Vec<CoreError>) {
        let mut seen = std::collections::HashSet::new();
        for d in &self.capsules {
            if !seen.insert(&d.name) {
                found.push(CoreError::Validation {
                    rule: "unique-names",
                    detail: format!("capsule `{}` declared twice", d.name),
                });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for d in &self.streamers {
            if !seen.insert(&d.name) {
                found.push(CoreError::Validation {
                    rule: "unique-names",
                    detail: format!("streamer `{}` declared twice", d.name),
                });
            }
        }
    }

    fn collect_containment(&self, found: &mut Vec<CoreError>) {
        // fig3-containment: capsules must never sit inside streamers.
        for d in &self.capsules {
            if let Owner::Streamer(s) = d.owner {
                found.push(CoreError::Validation {
                    rule: "fig3-containment",
                    detail: format!(
                        "capsule `{}` is contained in streamer `{}`; streamers don't contain any capsule",
                        d.name,
                        self.streamer_name(s).unwrap_or("?")
                    ),
                });
            }
        }
        // containment-acyclic over the combined ownership graph.
        // Node encoding: capsule i -> i, streamer j -> capsules.len() + j.
        let n = self.capsules.len() + self.streamers.len();
        let owner_of = |idx: usize| -> Option<usize> {
            let owner = if idx < self.capsules.len() {
                self.capsules[idx].owner
            } else {
                self.streamers[idx - self.capsules.len()].owner
            };
            match owner {
                Owner::System => None,
                Owner::Capsule(c) => Some(c.0),
                Owner::Streamer(s) => Some(self.capsules.len() + s.0),
            }
        };
        let mut on_cycle = Vec::new();
        for start in 0..n {
            let mut steps = 0;
            let mut cur = Some(start);
            while let Some(i) = cur {
                cur = owner_of(i);
                steps += 1;
                if steps > n {
                    on_cycle.push(start);
                    break;
                }
            }
        }
        if !on_cycle.is_empty() {
            // One diagnostic naming every element caught in a cycle, not
            // one duplicate per start node.
            let names: Vec<String> = on_cycle
                .iter()
                .map(|&i| {
                    if i < self.capsules.len() {
                        format!("`{}`", self.capsules[i].name)
                    } else {
                        format!("`{}`", self.streamers[i - self.capsules.len()].name)
                    }
                })
                .collect();
            found.push(CoreError::Validation {
                rule: "containment-acyclic",
                detail: format!("ownership cycle involving {}", names.join(", ")),
            });
        }
    }

    fn collect_flows(&self, found: &mut Vec<CoreError>) {
        for flow in &self.flows {
            let src = match self.flow_end_type(&flow.from, false) {
                Ok(t) => Some(t),
                Err(e) => {
                    found.push(e);
                    None
                }
            };
            let dst = match self.flow_end_type(&flow.to, true) {
                Ok(t) => Some(t),
                Err(e) => {
                    found.push(e);
                    None
                }
            };
            let (Some(src), Some(dst)) = (src, dst) else { continue };
            if let Some(why) = src.subset_failure(dst) {
                found.push(CoreError::Validation {
                    rule: "flow-subset",
                    detail: format!(
                        "flow {} -> {}: type {src} is not a subset of {dst}: {why}",
                        self.flow_end_path(&flow.from),
                        self.flow_end_path(&flow.to),
                    ),
                });
            }
        }
    }

    fn collect_capsule_dports_relay(&self, found: &mut Vec<CoreError>) {
        for (ci, d) in self.capsules.iter().enumerate() {
            for (port, _) in &d.dports {
                let as_dest = self
                    .flows
                    .iter()
                    .any(|f| matches!(&f.to, FlowEnd::Capsule(c, p) if c.0 == ci && p == port));
                let as_src = self
                    .flows
                    .iter()
                    .any(|f| matches!(&f.from, FlowEnd::Capsule(c, p) if c.0 == ci && p == port));
                if !(as_dest && as_src) {
                    found.push(CoreError::Validation {
                        rule: "fig3-dport-relay",
                        detail: format!(
                            "capsule `{}` DPort `{port}` must relay (needs both an incoming and an outgoing flow); no data is processed by capsules",
                            d.name
                        ),
                    });
                }
            }
        }
    }

    fn collect_sport_links(&self, found: &mut Vec<CoreError>) {
        for link in &self.sport_links {
            let (Some(cap), Some(st)) =
                (self.capsules.get(link.capsule.0), self.streamers.get(link.streamer.0))
            else {
                found.push(CoreError::Validation {
                    rule: "sport-protocol",
                    detail: "sport link references an unknown capsule or streamer".into(),
                });
                continue;
            };
            let cp = cap.sports.iter().find(|(n, _)| n == &link.capsule_port);
            let sp = st.sports.iter().find(|(n, _)| n == &link.sport);
            match (cp, sp) {
                (Some((_, proto_c)), Some((_, proto_s))) if proto_c == proto_s => {}
                (Some((_, proto_c)), Some((_, proto_s))) => {
                    found.push(CoreError::Validation {
                        rule: "sport-protocol",
                        detail: format!("sport link protocols differ: `{proto_c}` vs `{proto_s}`"),
                    });
                }
                _ => {
                    found.push(CoreError::Validation {
                        rule: "sport-protocol",
                        detail: format!(
                            "sport link `{}`.`{}` <-> `{}`.`{}` references undeclared ports",
                            cap.name, link.capsule_port, st.name, link.sport
                        ),
                    });
                }
            }
        }
    }

    fn collect_probes(&self, found: &mut Vec<CoreError>) {
        for p in &self.probes {
            let Some(st) = self.streamers.get(p.streamer.0) else {
                found.push(CoreError::Validation {
                    rule: "probe-port",
                    detail: format!("probe `{}` references an unknown streamer", p.series),
                });
                continue;
            };
            if !st.out_dports.iter().any(|(n, _)| n == &p.port) {
                found.push(CoreError::Validation {
                    rule: "probe-port",
                    detail: format!(
                        "probe `{}` taps streamer `{}` output DPort `{}`, which is not declared",
                        p.series, st.name, p.port
                    ),
                });
            }
        }
    }

    /// Human-readable `element.dport:name` path for a flow endpoint.
    pub fn flow_end_path(&self, end: &FlowEnd) -> String {
        match end {
            FlowEnd::Capsule(c, port) => {
                format!("{}.dport:{port}", self.capsule_name(*c).unwrap_or("?"))
            }
            FlowEnd::Streamer(s, port) => {
                format!("{}.dport:{port}", self.streamer_name(*s).unwrap_or("?"))
            }
        }
    }

    /// Renders the containment tree (the shape of Figures 2 and 3).
    pub fn render_structure(&self) -> String {
        let mut out = format!("model {}\n", self.name);
        let owner_matches = |owner: Owner, target: Owner| owner == target;
        fn walk(
            model: &UnifiedModel,
            out: &mut String,
            owner: Owner,
            depth: usize,
            owner_matches: &dyn Fn(Owner, Owner) -> bool,
        ) {
            for (i, c) in model.capsules.iter().enumerate() {
                if owner_matches(c.owner, owner) {
                    out.push_str(&format!(
                        "{}capsule {} (dports: {}, sports: {})\n",
                        "  ".repeat(depth),
                        c.name,
                        c.dports.len(),
                        c.sports.len()
                    ));
                    walk(model, out, Owner::Capsule(CapsuleRef(i)), depth + 1, owner_matches);
                }
            }
            for (i, s) in model.streamers.iter().enumerate() {
                if owner_matches(s.owner, owner) {
                    out.push_str(&format!(
                        "{}streamer {} [solver: {}] (in: {}, out: {}, sports: {})\n",
                        "  ".repeat(depth),
                        s.name,
                        s.solver,
                        s.in_dports.len(),
                        s.out_dports.len(),
                        s.sports.len()
                    ));
                    walk(model, out, Owner::Streamer(StreamerRef(i)), depth + 1, owner_matches);
                }
            }
        }
        walk(self, &mut out, Owner::System, 1, &owner_matches);
        out.push_str(&format!(
            "flows: {}, sport links: {}\n",
            self.flows.len(),
            self.sport_links.len()
        ));
        out
    }
}

impl fmt::Display for UnifiedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_structure())
    }
}

/// Builder for [`UnifiedModel`].
///
/// # Examples
///
/// The paper's Figure 3 structure — a top capsule containing a sub-capsule
/// and two streamers:
///
/// ```
/// use urt_core::model::ModelBuilder;
/// use urt_dataflow::flowtype::FlowType;
///
/// let mut b = ModelBuilder::new("fig3");
/// let top = b.capsule("top");
/// let sub = b.capsule("sub");
/// let s1 = b.streamer("streamer1", "rk4");
/// let s2 = b.streamer("streamer2", "rk4");
/// b.contain_capsule(sub, top);
/// b.contain_streamer_in_capsule(s1, top);
/// b.contain_streamer_in_capsule(s2, top);
/// b.streamer_out(s1, "y", FlowType::scalar());
/// b.streamer_in(s2, "u", FlowType::scalar());
/// b.flow_between_streamers(s1, "y", s2, "u");
/// let model = b.build();
/// assert!(model.validate().is_ok());
/// ```
#[derive(Debug, Default)]
pub struct ModelBuilder {
    model: UnifiedModel,
}

impl ModelBuilder {
    /// Starts a model called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ModelBuilder { model: UnifiedModel { name: name.into(), ..UnifiedModel::default() } }
    }

    /// Declares a top-level capsule.
    pub fn capsule(&mut self, name: impl Into<String>) -> CapsuleRef {
        self.model.capsules.push(CapsuleDecl {
            name: name.into(),
            owner: Owner::System,
            dports: Vec::new(),
            sports: Vec::new(),
            machine: None,
        });
        CapsuleRef(self.model.capsules.len() - 1)
    }

    /// Declares a top-level streamer with a named solver strategy.
    pub fn streamer(&mut self, name: impl Into<String>, solver: impl Into<String>) -> StreamerRef {
        self.model.streamers.push(StreamerDecl {
            name: name.into(),
            owner: Owner::System,
            in_dports: Vec::new(),
            out_dports: Vec::new(),
            sports: Vec::new(),
            solver: solver.into(),
            feedthrough: true,
            thread: 0,
            step_cost_ns: None,
        });
        StreamerRef(self.model.streamers.len() - 1)
    }

    /// Nests a capsule inside another capsule.
    pub fn contain_capsule(&mut self, child: CapsuleRef, parent: CapsuleRef) {
        self.model.capsules[child.0].owner = Owner::Capsule(parent);
    }

    /// Nests a streamer inside a capsule (allowed, Figure 3).
    pub fn contain_streamer_in_capsule(&mut self, child: StreamerRef, parent: CapsuleRef) {
        self.model.streamers[child.0].owner = Owner::Capsule(parent);
    }

    /// Nests a streamer inside another streamer (allowed, Figure 2).
    pub fn contain_streamer(&mut self, child: StreamerRef, parent: StreamerRef) {
        self.model.streamers[child.0].owner = Owner::Streamer(parent);
    }

    /// Nests a capsule inside a streamer — **forbidden** by the paper;
    /// representable so that validation can reject it.
    pub fn contain_capsule_in_streamer(&mut self, child: CapsuleRef, parent: StreamerRef) {
        self.model.capsules[child.0].owner = Owner::Streamer(parent);
    }

    /// Declares a relay DPort on a capsule.
    pub fn capsule_dport(&mut self, c: CapsuleRef, name: impl Into<String>, ty: FlowType) {
        self.model.capsules[c.0].dports.push((name.into(), ty));
    }

    /// Declares an SPort on a capsule with a protocol name.
    pub fn capsule_sport(
        &mut self,
        c: CapsuleRef,
        name: impl Into<String>,
        protocol: impl Into<String>,
    ) {
        self.model.capsules[c.0].sports.push((name.into(), protocol.into()));
    }

    /// Declares an input DPort on a streamer.
    pub fn streamer_in(&mut self, s: StreamerRef, name: impl Into<String>, ty: FlowType) {
        self.model.streamers[s.0].in_dports.push((name.into(), ty));
    }

    /// Declares an output DPort on a streamer.
    pub fn streamer_out(&mut self, s: StreamerRef, name: impl Into<String>, ty: FlowType) {
        self.model.streamers[s.0].out_dports.push((name.into(), ty));
    }

    /// Declares an SPort on a streamer with a protocol name.
    pub fn streamer_sport(
        &mut self,
        s: StreamerRef,
        name: impl Into<String>,
        protocol: impl Into<String>,
    ) {
        self.model.streamers[s.0].sports.push((name.into(), protocol.into()));
    }

    /// Adds a flow between two streamer DPorts.
    pub fn flow_between_streamers(
        &mut self,
        from: StreamerRef,
        from_port: impl Into<String>,
        to: StreamerRef,
        to_port: impl Into<String>,
    ) {
        self.model.flows.push(FlowDecl {
            from: FlowEnd::Streamer(from, from_port.into()),
            to: FlowEnd::Streamer(to, to_port.into()),
        });
    }

    /// Adds a flow with arbitrary endpoints (including capsule relay
    /// DPorts).
    pub fn flow(&mut self, from: FlowEnd, to: FlowEnd) {
        self.model.flows.push(FlowDecl { from, to });
    }

    /// Links a capsule SPort to a streamer SPort.
    pub fn sport_link(
        &mut self,
        capsule: CapsuleRef,
        capsule_port: impl Into<String>,
        streamer: StreamerRef,
        sport: impl Into<String>,
    ) {
        self.model.sport_links.push(SportLink {
            capsule,
            capsule_port: capsule_port.into(),
            streamer,
            sport: sport.into(),
        });
    }

    /// Registers a protocol definition (capsule perspective: `in` signals
    /// are deliverable to the capsule). Used by the `urt_analysis`
    /// undeliverable-trigger lint.
    pub fn declare_protocol(&mut self, protocol: Protocol) {
        self.model.protocols.push(protocol);
    }

    /// Attaches a declarative state machine to a capsule.
    pub fn capsule_machine(&mut self, c: CapsuleRef, machine: SmSpec) {
        self.model.capsules[c.0].machine = Some(machine);
    }

    /// Declares whether a streamer's outputs depend on same-step inputs.
    /// Integrator-style streamers should pass `false` to break algebraic
    /// loops through themselves.
    pub fn streamer_feedthrough(&mut self, s: StreamerRef, feedthrough: bool) {
        self.model.streamers[s.0].feedthrough = feedthrough;
    }

    /// Assigns a streamer to a solver thread in the deployment plan.
    pub fn assign_thread(&mut self, s: StreamerRef, thread: usize) {
        self.model.streamers[s.0].thread = thread;
    }

    /// Declares the worst-case cost of one macro step of streamer `s`,
    /// in nanoseconds. Declared costs take precedence over the
    /// calibration table in the static cost pass.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is not positive and finite.
    pub fn declare_step_cost(&mut self, s: StreamerRef, ns: f64) {
        assert!(ns.is_finite() && ns > 0.0, "step cost must be positive ns");
        self.model.streamers[s.0].step_cost_ns = Some(ns);
    }

    /// Declares a per-macro-step timing budget, in nanoseconds: the
    /// static cost pass (`URT301`) refuses any solver-thread group whose
    /// worst-case macro-step cost exceeds the budget binding it.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is not positive and finite.
    pub fn declare_budget(&mut self, scope: BudgetScope, ns: f64) {
        assert!(ns.is_finite() && ns > 0.0, "budget must be positive ns");
        self.model.budgets.push((scope, ns));
    }

    /// Declares a recorder probe: the first lane of streamer `s`'s output
    /// DPort `port` is sampled every macro step into a series named
    /// `series`. Elaboration resolves the tap once, so probing costs no
    /// per-step name lookup.
    pub fn probe(&mut self, s: StreamerRef, port: impl Into<String>, series: impl Into<String>) {
        self.model.probes.push(ProbeDecl { streamer: s, port: port.into(), series: series.into() });
    }

    /// Finalises the (unvalidated) model.
    pub fn build(self) -> UnifiedModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urt_dataflow::flowtype::Unit;

    fn fig2_model() -> UnifiedModel {
        // Top streamer containing sub-streamers with a relayed flow, as in
        // the paper's Figure 2.
        let mut b = ModelBuilder::new("fig2");
        let top = b.streamer("top", "rk4");
        let sub1 = b.streamer("sub1", "rk4");
        let sub2 = b.streamer("sub2", "euler");
        let sub3 = b.streamer("sub3", "euler");
        b.contain_streamer(sub1, top);
        b.contain_streamer(sub2, top);
        b.contain_streamer(sub3, top);
        b.streamer_out(sub1, "y", FlowType::scalar());
        b.streamer_in(sub2, "u", FlowType::scalar());
        b.streamer_in(sub3, "u", FlowType::scalar());
        b.flow_between_streamers(sub1, "y", sub2, "u");
        b.flow_between_streamers(sub1, "y", sub3, "u");
        b.streamer_sport(top, "ctl", "StreamCtl");
        b.build()
    }

    #[test]
    fn fig2_structure_validates() {
        let m = fig2_model();
        m.validate().unwrap();
        let stats = m.stats();
        assert_eq!(stats.streamers, 4);
        assert_eq!(stats.flows, 2);
        assert_eq!(stats.sports, 1);
        let s = m.render_structure();
        assert!(s.contains("streamer top"));
        assert!(s.contains("  streamer sub1") || s.contains("streamer sub1"));
    }

    #[test]
    fn fig3_containment_rule_rejects_capsule_in_streamer() {
        let mut b = ModelBuilder::new("bad");
        let s = b.streamer("s", "rk4");
        let c = b.capsule("c");
        b.contain_capsule_in_streamer(c, s);
        let err = b.build().validate().unwrap_err();
        match err {
            CoreError::Validation { rule, detail } => {
                assert_eq!(rule, "fig3-containment");
                assert!(detail.contains("streamers don't contain any capsule"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn capsules_may_contain_streamers() {
        let mut b = ModelBuilder::new("ok");
        let c = b.capsule("c");
        let s = b.streamer("s", "rk4");
        b.contain_streamer_in_capsule(s, c);
        assert!(b.build().validate().is_ok());
    }

    #[test]
    fn containment_cycle_detected() {
        let mut b = ModelBuilder::new("cycle");
        let a = b.streamer("a", "rk4");
        let c = b.streamer("c", "rk4");
        b.contain_streamer(a, c);
        b.contain_streamer(c, a);
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, CoreError::Validation { rule: "containment-acyclic", .. }));
    }

    #[test]
    fn flow_subset_rule_enforced() {
        let mut b = ModelBuilder::new("m");
        let s1 = b.streamer("s1", "rk4");
        let s2 = b.streamer("s2", "rk4");
        b.streamer_out(s1, "y", FlowType::with_unit(Unit::Meter));
        b.streamer_in(s2, "u", FlowType::with_unit(Unit::Kelvin));
        b.flow_between_streamers(s1, "y", s2, "u");
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, CoreError::Validation { rule: "flow-subset", .. }));
    }

    #[test]
    fn flow_endpoint_must_exist() {
        let mut b = ModelBuilder::new("m");
        let s1 = b.streamer("s1", "rk4");
        let s2 = b.streamer("s2", "rk4");
        b.flow_between_streamers(s1, "ghost", s2, "u");
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, CoreError::Validation { rule: "flow-endpoint", .. }));
    }

    #[test]
    fn capsule_dport_must_relay() {
        // DPort with only an incoming flow: not relaying.
        let mut b = ModelBuilder::new("m");
        let c = b.capsule("c");
        let s = b.streamer("s", "rk4");
        b.capsule_dport(c, "d", FlowType::scalar());
        b.streamer_out(s, "y", FlowType::scalar());
        b.flow(FlowEnd::Streamer(s, "y".into()), FlowEnd::Capsule(c, "d".into()));
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, CoreError::Validation { rule: "fig3-dport-relay", .. }));
    }

    #[test]
    fn capsule_dport_relaying_validates() {
        let mut b = ModelBuilder::new("m");
        let c = b.capsule("c");
        let producer = b.streamer("producer", "rk4");
        let inner = b.streamer("inner", "rk4");
        b.contain_streamer_in_capsule(inner, c);
        b.capsule_dport(c, "d", FlowType::scalar());
        b.streamer_out(producer, "y", FlowType::scalar());
        b.streamer_in(inner, "u", FlowType::scalar());
        b.flow(FlowEnd::Streamer(producer, "y".into()), FlowEnd::Capsule(c, "d".into()));
        b.flow(FlowEnd::Capsule(c, "d".into()), FlowEnd::Streamer(inner, "u".into()));
        b.build().validate().unwrap();
    }

    #[test]
    fn sport_link_protocols_must_match() {
        let mut b = ModelBuilder::new("m");
        let c = b.capsule("c");
        let s = b.streamer("s", "rk4");
        b.capsule_sport(c, "ctl", "ProtoA");
        b.streamer_sport(s, "ctl", "ProtoB");
        b.sport_link(c, "ctl", s, "ctl");
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, CoreError::Validation { rule: "sport-protocol", .. }));

        let mut b = ModelBuilder::new("m2");
        let c = b.capsule("c");
        let s = b.streamer("s", "rk4");
        b.capsule_sport(c, "ctl", "Proto");
        b.streamer_sport(s, "ctl", "Proto");
        b.sport_link(c, "ctl", s, "ctl");
        b.build().validate().unwrap();
    }

    #[test]
    fn sport_link_undeclared_port_rejected() {
        let mut b = ModelBuilder::new("m");
        let c = b.capsule("c");
        let s = b.streamer("s", "rk4");
        b.sport_link(c, "ghost", s, "ghost");
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, CoreError::Validation { rule: "sport-protocol", .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = ModelBuilder::new("m");
        b.capsule("x");
        b.capsule("x");
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, CoreError::Validation { rule: "unique-names", .. }));

        let mut b = ModelBuilder::new("m");
        b.streamer("y", "rk4");
        b.streamer("y", "rk4");
        assert!(matches!(
            b.build().validate().unwrap_err(),
            CoreError::Validation { rule: "unique-names", .. }
        ));
    }

    #[test]
    fn violations_collects_every_rule_break() {
        // Three distinct rule violations in one model: duplicate names,
        // a flow-subset break and a non-relaying capsule DPort.
        let mut b = ModelBuilder::new("multi");
        b.capsule("dup");
        let c = b.capsule("dup");
        let s1 = b.streamer("s1", "rk4");
        let s2 = b.streamer("s2", "rk4");
        b.streamer_out(s1, "y", FlowType::with_unit(Unit::Meter));
        b.streamer_in(s2, "u", FlowType::with_unit(Unit::Kelvin));
        b.flow_between_streamers(s1, "y", s2, "u");
        b.capsule_dport(c, "d", FlowType::scalar());
        let m = b.build();
        let found = m.violations();
        let rules: Vec<&str> = found
            .iter()
            .map(|e| match e {
                CoreError::Validation { rule, .. } => *rule,
                other => panic!("unexpected {other}"),
            })
            .collect();
        assert_eq!(rules, vec!["unique-names", "flow-subset", "fig3-dport-relay"]);
        // validate() reports the first collected violation.
        assert!(matches!(
            m.validate().unwrap_err(),
            CoreError::Validation { rule: "unique-names", .. }
        ));
        // flow-subset detail names the endpoints and the failing field.
        let CoreError::Validation { detail, .. } = &found[1] else { unreachable!() };
        assert!(detail.contains("s1.dport:y"), "{detail}");
        assert!(detail.contains("unit"), "{detail}");
    }

    #[test]
    fn new_declarations_round_trip() {
        use urt_umlrt::protocol::{PayloadKind, Protocol};
        use urt_umlrt::statemachine::SmSpec;
        let mut b = ModelBuilder::new("decl");
        let c = b.capsule("ctl");
        let s = b.streamer("plant", "rk4");
        b.capsule_machine(c, SmSpec::new("ctl_sm").state("idle").initial("idle"));
        b.streamer_feedthrough(s, false);
        b.assign_thread(s, 2);
        b.declare_protocol(Protocol::new("Sense").with_in("sample", PayloadKind::Real));
        let m = b.build();
        assert_eq!(m.capsule_machine(c).unwrap().name, "ctl_sm");
        assert!(!m.streamer_feedthrough(s));
        assert_eq!(m.streamer_thread(s), 2);
        assert!(m.protocol("Sense").is_some());
        assert!(m.protocol("Nope").is_none());
        assert_eq!(m.iter_protocols().count(), 1);
        // Unknown refs take the conservative defaults.
        assert!(m.streamer_feedthrough(StreamerRef(9)));
        assert_eq!(m.streamer_thread(StreamerRef(9)), 0);
        assert!(m.capsule_dports(CapsuleRef(9)).is_empty());
    }

    #[test]
    fn iteration_and_names() {
        let m = fig2_model();
        let streamers: Vec<_> = m.iter_streamers().collect();
        assert_eq!(streamers.len(), 4);
        assert_eq!(streamers[0].1, "top");
        assert_eq!(streamers[0].2, "rk4");
        assert_eq!(m.iter_capsules().count(), 0);
        assert_eq!(m.streamer_name(StreamerRef(0)), Some("top"));
        assert_eq!(m.capsule_name(CapsuleRef(0)), None);
    }
}
