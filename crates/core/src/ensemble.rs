//! Structure-of-arrays ensemble execution: step `K` parameter-variants
//! of one [`CompiledSystem`] in lockstep.
//!
//! Parameter sweeps, Monte-Carlo robustness studies and scenario fans
//! all run the *same* lowered model many times with slightly different
//! parameters. Driving `K` independent [`HybridEngine`]s pays the full
//! per-step bookkeeping — routing-table walks, barrier crossings,
//! cross-group channel latching, clock arithmetic — once **per
//! instance**. [`EnsembleEngine`] pays it once **per step**: each group's
//! [`StepPlan`] (the dense routing schedule computed once from the
//! network) is replayed with instance-major inner loops over contiguous
//! state arrays, so the plan walk, the channel parity bookkeeping and the
//! probe/clock overhead are amortised over all `K` instances, and the
//! inner lane copies run over contiguous memory — auto-vectorisable where
//! the block math allows.
//!
//! Layout: instance `i` of a group owns lanes `[i*W .. (i+1)*W)` of that
//! group's flat input/output arrays, where `W` is the per-instance dense
//! width from the plan. Behaviours are replicated per instance by
//! re-invoking the compiled system's behaviour factories (every
//! registered behaviour replicates; the network-first
//! [`EnsembleEngine::from_network`] path still falls back to
//! [`StreamerBehavior::clone_fresh`]), with per-instance parameter
//! overrides applied through [`StreamerBehavior::set_param`] before
//! initialisation ([`VariantSpec`]).
//!
//! **Determinism is the correctness anchor**: instance `i` of a
//! `K`-ensemble is bit-identical to a standalone run with the same
//! variant parameters — same step plan semantics as
//! [`StreamerNetwork::step`], same accumulated group time, same
//! cross-group channel parity slots, same drift-free probe timestamps.
//! The equivalence suites pin this for both thread policies.
//!
//! Scope: ensembles run the time-continuous half only. Systems with SPort
//! links are refused (capsule signal routing is per-instance discrete
//! state, which would serialise the ensemble); the compiled controller is
//! not stepped, and signals emitted by behaviours are drained and
//! dropped.

use crate::elaborate::CompiledSystem;
use crate::engine::EngineConfig;
use crate::error::CoreError;
use crate::recorder::{Recorder, SeriesHandle};
use crate::sync::{Mutex, SpinBarrier};
use crate::threading::ThreadPolicy;
use crate::time::SimClock;
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;
use urt_dataflow::graph::{NodeId, PlanNodeKind, StepPlan, StreamerNetwork};
use urt_dataflow::streamer::StreamerBehavior;
use urt_ode::solver::Solver;
use urt_ode::system::BatchOdeSystem;
use urt_ode::OdeSystem;

#[cfg(doc)]
use crate::engine::HybridEngine;

/// Per-instance parameter overrides for one ensemble member: a list of
/// `(streamer, parameter, value)` assignments applied through
/// [`StreamerBehavior::set_param`] after replication and before
/// initialisation.
///
/// An empty spec replicates the compiled system's parameters unchanged.
/// [`OdeStreamer`](urt_dataflow::streamer::OdeStreamer) understands the
/// built-in `x0[i]` names (initial-state lanes) plus whatever its
/// `with_param_fn` hook recognises.
///
/// # Examples
///
/// ```
/// use urt_core::ensemble::VariantSpec;
///
/// let v = VariantSpec::new().set("plant", "x0[0]", 2.5).set("plant", "mu", 1.2);
/// assert_eq!(v.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VariantSpec {
    overrides: Vec<(String, String, f64)>,
}

impl VariantSpec {
    /// An empty spec (the compiled system's own parameters).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one override (builder style).
    pub fn set(
        mut self,
        streamer: impl Into<String>,
        param: impl Into<String>,
        value: f64,
    ) -> Self {
        self.overrides.push((streamer.into(), param.into(), value));
        self
    }

    /// Number of overrides.
    pub fn len(&self) -> usize {
        self.overrides.len()
    }

    /// Whether the spec has no overrides.
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }
}

/// Which ODE stepping kernel ensemble groups use for solver-backed lanes.
///
/// [`Batched`](EnsembleKernel::Batched) (the default) routes every
/// eligible streamer row — homogeneous, guard-free lanes whose solver has
/// a true batched kernel — through one width-aware
/// [`Solver::step_batch`] call per sub-step. Per-lane arithmetic is the
/// exact scalar sequence, so results stay bit-identical either way;
/// [`PerLane`](EnsembleKernel::PerLane) exists as the measurable baseline
/// (the `bench_engine` kernel axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnsembleKernel {
    /// Per-lane scalar stepping: K independent `advance` calls per row.
    PerLane,
    /// Width-aware batched stepping for eligible rows.
    #[default]
    Batched,
}

/// Batch-stepping state for one eligible streamer row: the row's lanes
/// share `dim`/`substep`, and the row owns one solver clone (explicit
/// fixed-step strategies carry no cross-step scratch, so a single solver
/// serves all K lanes) plus the instance-major state staging.
struct BatchRow {
    dim: usize,
    substep: f64,
    /// The row's solver clock, shared by all lanes (lockstep): the exact
    /// mirror of the lanes' `SolverDriver` time, persistent across macro
    /// steps. It is *not* recomputed from the group time — the driver's
    /// end-of-interval snap can leave it one rounding shy of `t_end`, and
    /// the next macro step's clamped final sub-step depends on that value
    /// bit-for-bit.
    time: f64,
    solver: Box<dyn Solver + Send>,
    /// Instance-major staging, `K * dim`: gathered from the lanes' drivers
    /// before the sub-step loop, scattered back through
    /// [`OdeLane::lane_sync`](urt_dataflow::streamer::OdeLane::lane_sync) after.
    states: Vec<f64>,
    /// Per-lane gather/scatter scratch for [`LaneBatchSystem`] (`dim`
    /// each), parked here between macro steps to stay allocation-free.
    scratch_x: Vec<f64>,
    scratch_d: Vec<f64>,
}

/// The K lanes of one streamer row viewed as a single batched ODE system.
///
/// Each lane keeps its own parameters and frozen inputs, so the
/// derivative evaluation dispatches per lane — but every lane computes
/// exactly what the scalar path's `FrozenInput` wrapper computes, and the
/// solver's stage algebra above this runs as fused sweeps across all
/// lanes. `OdeSystem::derivatives` is unreachable by construction: only
/// solvers with true batched kernels (which never fall back to the scalar
/// entry point) are routed here.
struct LaneBatchSystem<'a> {
    lanes: &'a [Box<dyn StreamerBehavior>],
    ins: &'a [f64],
    inw: usize,
    in_offset: usize,
    in_width: usize,
    dim: usize,
    scratch: RefCell<(Vec<f64>, Vec<f64>)>,
}

impl OdeSystem for LaneBatchSystem<'_> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn derivatives(&self, _t: f64, _x: &[f64], _dx: &mut [f64]) {
        unreachable!("lane batch systems are only evaluated through derivatives_batch");
    }
}

impl BatchOdeSystem for LaneBatchSystem<'_> {
    fn derivatives_batch(&self, t: f64, states: &[f64], dim: usize, k: usize, dx: &mut [f64]) {
        let mut scratch = self.scratch.borrow_mut();
        let (x, d) = &mut *scratch;
        for (i, b) in self.lanes.iter().enumerate() {
            let lane = b.as_ode_lane().expect("batch rows contain only ODE lanes");
            for v in 0..dim {
                x[v] = states[v * k + i];
            }
            let ui = i * self.inw + self.in_offset;
            lane.lane_derivatives(t, x, &self.ins[ui..ui + self.in_width], d);
            for v in 0..dim {
                dx[v * k + i] = d[v];
            }
        }
    }
}

/// One group's ensemble state: the shared routing plan plus `K`
/// instance-major copies of the dense per-instance arrays.
struct GroupState {
    plan: StepPlan,
    /// `behaviours[r][i]` is instance `i` of the `r`-th *streamer* plan
    /// node (relays carry no behaviour), in plan order.
    behaviours: Vec<Vec<Box<dyn StreamerBehavior>>>,
    /// `batch_rows[r]` is the batch-stepping state of the `r`-th streamer
    /// row, `None` for rows that are not batch-eligible. Built once at
    /// start (after `initialize`), empty before.
    batch_rows: Vec<Option<BatchRow>>,
    /// Kernel selection for this group's solver-backed rows.
    kernel: EnsembleKernel,
    /// Dense input lanes, `K * plan.in_width()`.
    ins: Vec<f64>,
    /// Dense output lanes, `K * plan.out_width()`.
    outs: Vec<f64>,
    /// External (channel-fed) input staging, `K * plan.ext_in_width()`.
    ext: Vec<f64>,
    /// Accumulated group time — `t += h` per step, exactly like
    /// `StreamerNetwork::step`, so behaviours see bit-identical instants.
    time: f64,
}

impl GroupState {
    /// Replays the plan once, advancing all `k` instances by `h`.
    fn step(&mut self, h: f64, k: usize) -> Result<(), CoreError> {
        let t = self.time;
        let inw = self.plan.in_width();
        let outw = self.plan.out_width();
        let extw = self.plan.ext_in_width();
        for c in self.plan.ext_loads() {
            for i in 0..k {
                let (src, dst) = (i * extw + c.src, i * inw + c.dst);
                self.ins[dst..dst + c.len].copy_from_slice(&self.ext[src..src + c.len]);
            }
        }
        let mut row = 0usize;
        for pn in self.plan.nodes() {
            for c in &pn.gathers {
                for i in 0..k {
                    let (src, dst) = (i * outw + c.src, i * inw + c.dst);
                    self.ins[dst..dst + c.len].copy_from_slice(&self.outs[src..src + c.len]);
                }
            }
            match pn.kind {
                PlanNodeKind::Streamer => {
                    let r = row;
                    row += 1;
                    let batched = matches!(self.kernel, EnsembleKernel::Batched)
                        && matches!(self.batch_rows.get(r), Some(Some(_)));
                    if batched {
                        let br = self.batch_rows[r].as_mut().expect("row checked above");
                        let dim = br.dim;
                        let t_end = t + h;
                        let resolution = 4.0 * f64::EPSILON * t_end.abs().max(1.0);
                        {
                            let lanes = &self.behaviours[r];
                            for (i, b) in lanes.iter().enumerate() {
                                let lane =
                                    b.as_ode_lane().expect("batch rows contain only ODE lanes");
                                let x = lane.lane_state().expect("batch rows are initialized");
                                br.states[i * dim..(i + 1) * dim].copy_from_slice(x);
                            }
                            let sys = LaneBatchSystem {
                                lanes,
                                ins: &self.ins,
                                inw,
                                in_offset: pn.in_offset,
                                in_width: pn.in_width,
                                dim,
                                scratch: RefCell::new((
                                    std::mem::take(&mut br.scratch_x),
                                    std::mem::take(&mut br.scratch_d),
                                )),
                            };
                            // The scalar path's sub-step schedule verbatim
                            // (`OdeStreamer::advance` + `SolverDriver::advance`
                            // for a fixed-step solver), resuming from the
                            // persistent row clock, so every lane sees the
                            // exact `(t, h)` sequence of a standalone run.
                            let mut tl = br.time;
                            while tl < t_end - resolution {
                                let remaining = t_end - tl;
                                if remaining <= resolution {
                                    // The driver's own entry check can
                                    // disagree with the loop test by one
                                    // rounding: snap without stepping.
                                    tl = t_end;
                                    continue;
                                }
                                let h_sub = br.substep.min(remaining);
                                br.solver
                                    .step_batch(&sys, tl, &mut br.states, dim, h_sub)
                                    .map_err(|e| CoreError::Flow(e.into()))?;
                                tl += h_sub;
                                if t_end - tl <= resolution {
                                    tl = t_end;
                                }
                            }
                            br.time = tl;
                            (br.scratch_x, br.scratch_d) = sys.scratch.into_inner();
                        }
                        let lanes = &mut self.behaviours[r];
                        for (i, b) in lanes.iter_mut().enumerate() {
                            let ui = i * inw + pn.in_offset;
                            let yi = i * outw + pn.out_offset;
                            let x = &br.states[i * dim..(i + 1) * dim];
                            let lane =
                                b.as_ode_lane_mut().expect("batch rows contain only ODE lanes");
                            // Sync the driver to the row clock (which may
                            // sit one rounding shy of `t_end`), exactly
                            // where the scalar driver would have left it.
                            lane.lane_sync(br.time, x).map_err(|e| CoreError::Flow(e.into()))?;
                            lane.lane_output(
                                t_end,
                                x,
                                &self.ins[ui..ui + pn.in_width],
                                &mut self.outs[yi..yi + pn.out_width],
                            );
                            // Parity with the scalar branch: batchable
                            // lanes are guard-free so nothing can be
                            // pending, but drain regardless.
                            let _ = b.take_emitted();
                        }
                    } else {
                        let lanes = &mut self.behaviours[r];
                        for (i, b) in lanes.iter_mut().enumerate() {
                            let ui = i * inw + pn.in_offset;
                            let yi = i * outw + pn.out_offset;
                            b.advance(
                                t,
                                h,
                                &self.ins[ui..ui + pn.in_width],
                                &mut self.outs[yi..yi + pn.out_width],
                            )
                            .map_err(|e| CoreError::Flow(e.into()))?;
                            // No SPort links exist in an ensemble: drain
                            // emitted signals so they cannot accumulate.
                            let _ = b.take_emitted();
                        }
                    }
                }
                PlanNodeKind::Relay { in_width, fanout } => {
                    for i in 0..k {
                        let src = i * inw + pn.in_offset;
                        let base = i * outw + pn.out_offset;
                        for f in 0..fanout {
                            let dst = base + f * in_width;
                            self.outs[dst..dst + in_width]
                                .copy_from_slice(&self.ins[src..src + in_width]);
                        }
                    }
                }
            }
        }
        self.time += h;
        Ok(())
    }
}

/// One cross-group flow, widened to `K` lanesets: double-buffered parity
/// slots exactly like the [`HybridEngine`] channel (consumer reads slot
/// `step % 2` pre-tick, producer writes the same index post-tick), but
/// each slot carries all `K` instances' samples.
struct EnsembleChannel {
    from_group: usize,
    /// Per-instance dense offset of the producer's first output lane.
    from_base: usize,
    width: usize,
    to_group: usize,
    /// Per-instance offset inside the consumer's external input staging.
    to_offset: usize,
    bufs: Arc<[Mutex<Vec<f64>>; 2]>,
}

/// One resolved probe: the first output lane of `(group, out_base)`,
/// recorded per instance into series `{series}#{instance}`.
struct EnsembleProbe {
    group: usize,
    out_base: usize,
    series: String,
}

/// The ensemble engine (see module docs): `K` parameter-variants of one
/// [`CompiledSystem`] stepped in lockstep over structure-of-arrays state.
///
/// Construct with [`EnsembleEngine::from_compiled`] (identical
/// parameters) or [`EnsembleEngine::from_variants`] (per-instance
/// overrides); the compiled system is only *borrowed* — it can still be
/// handed to a [`HybridEngine`] afterwards.
///
/// # Examples
///
/// ```
/// use urt_core::ensemble::EnsembleEngine;
/// # use urt_core::elaborate::{elaborate, validate_gate, BehaviorRegistry};
/// # use urt_core::engine::EngineConfig;
/// # use urt_core::model::ModelBuilder;
/// # use urt_core::recorder::Recorder;
/// # use urt_dataflow::flowtype::FlowType;
/// # use urt_dataflow::streamer::FnStreamer;
/// # let mut b = ModelBuilder::new("m");
/// # let s = b.streamer("sine", "none");
/// # b.streamer_out(s, "y", FlowType::scalar());
/// # b.probe(s, "y", "y");
/// # let registry = BehaviorRegistry::new().streamer("sine", || {
/// #     Box::new(FnStreamer::new("sine", 0, 1, |t: f64, _h, _u: &[f64], y: &mut [f64]| {
/// #         y[0] = t.sin()
/// #     }))
/// # });
/// # let compiled = elaborate(&b.build(), registry, &validate_gate).unwrap();
/// let mut ensemble = EnsembleEngine::from_compiled(&compiled, 8, EngineConfig::default())?;
/// let rec = Recorder::new();
/// ensemble.set_recorder(rec.clone());
/// ensemble.run_until(0.01)?;
/// assert_eq!(rec.series(&EnsembleEngine::series_name("y", 7)).len(), 10);
/// # Ok::<(), urt_core::error::CoreError>(())
/// ```
pub struct EnsembleEngine {
    config: EngineConfig,
    clock: SimClock,
    k: usize,
    groups: Vec<GroupState>,
    channels: Vec<EnsembleChannel>,
    probes: Vec<EnsembleProbe>,
    /// `probe_series[p][i]`: interned handle of probe `p`, instance `i`.
    /// Empty while no recorder is attached.
    probe_series: Vec<Vec<SeriesHandle>>,
    recorder: Option<Recorder>,
    /// Declared per-macro-step budget (ns) carried over from the
    /// compiled system — the default budget of
    /// [`EnsembleEngine::run_paced`]. The budget covers one macro step of
    /// the whole ensemble: all `K` instances advance inside it.
    step_budget_ns: Option<f64>,
    started: bool,
}

impl fmt::Debug for EnsembleEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnsembleEngine")
            .field("time", &self.clock.seconds())
            .field("instances", &self.k)
            .field("groups", &self.groups.len())
            .field("policy", &self.config.policy)
            .finish_non_exhaustive()
    }
}

fn engine_err(detail: String) -> CoreError {
    CoreError::Engine { detail }
}

/// Builds one group's ensemble state: plan the network, replicate every
/// streamer behaviour `k` times via `replicate` (a compiled system's
/// behaviour factory, or `clone_fresh` on the network-first path), apply
/// the overrides targeting group `gi`, and allocate the instance-major
/// dense arrays.
fn build_group(
    net: &StreamerNetwork,
    resolved: &[Vec<(usize, usize, &str, f64)>],
    gi: usize,
    k: usize,
    replicate: &dyn Fn(NodeId) -> Result<Box<dyn StreamerBehavior>, CoreError>,
) -> Result<GroupState, CoreError> {
    let plan = net.step_plan().map_err(CoreError::Flow)?;
    let mut behaviours: Vec<Vec<Box<dyn StreamerBehavior>>> = Vec::new();
    for pn in plan.nodes() {
        if !matches!(pn.kind, PlanNodeKind::Streamer) {
            continue;
        }
        let mut lanes: Vec<Box<dyn StreamerBehavior>> = Vec::with_capacity(k);
        for (i, overrides) in resolved.iter().enumerate() {
            let mut b = replicate(pn.node)?;
            for &(og, on, param, value) in overrides {
                if og != gi || on != pn.node.index() {
                    continue;
                }
                if !b.set_param(param, value) {
                    return Err(engine_err(format!(
                        "variant {i}: streamer `{}` does not recognise parameter `{param}`",
                        net.node_name(pn.node).unwrap_or("?")
                    )));
                }
            }
            lanes.push(b);
        }
        behaviours.push(lanes);
    }
    Ok(GroupState {
        ins: vec![0.0; k * plan.in_width()],
        outs: vec![0.0; k * plan.out_width()],
        ext: vec![0.0; k * plan.ext_in_width()],
        plan,
        behaviours,
        batch_rows: Vec::new(),
        kernel: EnsembleKernel::default(),
        time: 0.0,
    })
}

/// Decides, per streamer row, whether all K lanes can step through the
/// batched kernel path: every lane must expose itself as a batchable
/// [`OdeLane`](urt_dataflow::streamer::OdeLane) (initialized, guard-free, handler-free, batched-kernel
/// solver) and the row must be homogeneous in `dim` and `substep` — the
/// lockstep schedule is shared. Called once after `initialize`.
fn build_batch_rows(gs: &mut GroupState, k: usize) {
    let rows = gs.behaviours.len();
    gs.batch_rows.clear();
    gs.batch_rows.reserve(rows);
    for lanes in &gs.behaviours {
        let candidate = (|| {
            let first = lanes.first()?.as_ode_lane()?;
            if !first.lane_batchable() {
                return None;
            }
            let dim = first.lane_dim();
            let substep = first.lane_substep();
            if dim == 0 || !(substep.is_finite() && substep > 0.0) {
                return None;
            }
            let time = first.lane_time()?;
            for b in lanes {
                let lane = b.as_ode_lane()?;
                if !lane.lane_batchable()
                    || lane.lane_dim() != dim
                    || lane.lane_substep().to_bits() != substep.to_bits()
                    || lane.lane_state().is_none()
                    || lane.lane_time().map(f64::to_bits) != Some(time.to_bits())
                {
                    return None;
                }
            }
            let solver = first.lane_clone_solver()?;
            Some(BatchRow {
                dim,
                substep,
                time,
                solver,
                states: vec![0.0; k * dim],
                scratch_x: vec![0.0; dim],
                scratch_d: vec![0.0; dim],
            })
        })();
        gs.batch_rows.push(candidate);
    }
}

impl EnsembleEngine {
    /// Builds a `k`-instance ensemble with identical parameters (the
    /// compiled system's own) for every instance.
    ///
    /// # Errors
    ///
    /// Same as [`EnsembleEngine::from_variants`].
    pub fn from_compiled(
        compiled: &CompiledSystem,
        k: usize,
        config: EngineConfig,
    ) -> Result<Self, CoreError> {
        Self::from_variants(compiled, &vec![VariantSpec::default(); k], config)
    }

    /// Builds one ensemble instance per [`VariantSpec`], applying each
    /// spec's overrides to its instance's freshly manufactured behaviours
    /// before initialisation. Replication re-invokes the compiled
    /// system's behaviour factories — every behaviour kind replicates,
    /// with no [`StreamerBehavior::clone_fresh`] requirement (that
    /// fallback remains only on the network-first
    /// [`EnsembleEngine::from_network`] path).
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidStep`] (`URT116`) if `config.step` is not
    ///   positive and finite.
    /// * [`CoreError::Engine`] for an empty variant list, a system with
    ///   SPort links (ensembles run the continuous half only), an
    ///   override naming an unknown streamer, or a parameter the
    ///   behaviour does not recognise.
    /// * [`CoreError::Flow`] for structural errors surfaced while
    ///   planning (same conditions as `StreamerNetwork::validate`).
    pub fn from_variants(
        compiled: &CompiledSystem,
        variants: &[VariantSpec],
        config: EngineConfig,
    ) -> Result<Self, CoreError> {
        if !(config.step.is_finite() && config.step > 0.0) {
            return Err(CoreError::InvalidStep { step: config.step });
        }
        let k = variants.len();
        if k == 0 {
            return Err(engine_err("an ensemble needs at least one instance".into()));
        }
        if compiled.sport_link_count() > 0 {
            return Err(engine_err(format!(
                "ensemble execution runs the continuous half only: the compiled system has {} \
                 SPort link(s); run it on a HybridEngine instead",
                compiled.sport_link_count()
            )));
        }
        // Resolve overrides up front: instance -> (group, node index) ->
        // (param, value), failing fast on unknown streamer names.
        let mut resolved: Vec<Vec<(usize, usize, &str, f64)>> = Vec::with_capacity(k);
        for (i, v) in variants.iter().enumerate() {
            let mut per_instance = Vec::with_capacity(v.overrides.len());
            for (streamer, param, value) in &v.overrides {
                let Some((group, node)) = compiled.streamer_node(streamer) else {
                    return Err(engine_err(format!(
                        "variant {i}: no streamer `{streamer}` in the compiled system"
                    )));
                };
                per_instance.push((group, node.index(), param.as_str(), *value));
            }
            resolved.push(per_instance);
        }

        // One throwaway instantiation supplies the structural nets
        // (plans, output handles, export lane layout); the K live
        // behaviour sets come straight from the artifact's factories.
        let instance = compiled.instantiate()?;
        let nets = &instance.groups;
        let mut groups = Vec::with_capacity(nets.len());
        for (gi, net) in nets.iter().enumerate() {
            let replicate = |node: NodeId| {
                compiled.behavior_for(gi, node).ok_or_else(|| {
                    engine_err(format!(
                        "streamer `{}` has no behaviour factory in the compiled system",
                        net.node_name(node).unwrap_or("?")
                    ))
                })
            };
            groups.push(build_group(net, &resolved, gi, k, &replicate)?);
        }

        // Cross-group channels: same parity-slot protocol as the
        // HybridEngine, each slot widened to K instances.
        let mut channels = Vec::with_capacity(compiled.cross_flows.len());
        for cf in &compiled.cross_flows {
            let from_net = &nets[cf.from_group];
            let handle =
                from_net.output_handle(cf.from_node, &cf.from_port).map_err(CoreError::Flow)?;
            let from_base = groups[cf.from_group]
                .plan
                .out_offset(handle.node())
                .expect("plan covers every node")
                + handle.offset();
            let width = handle.width();
            // Consumer lane offset inside its group's exported-input
            // vector (exports accumulate in registration order).
            let to_net = &nets[cf.to_group];
            let mut to_offset = None;
            let mut cursor = 0usize;
            for (n, p) in to_net.exported_inputs() {
                let w: usize = to_net
                    .in_ports(n)
                    .map_err(CoreError::Flow)?
                    .iter()
                    .find(|spec| spec.name() == p)
                    .map(|spec| spec.width())
                    .unwrap_or(0);
                if n == cf.to_node && p == cf.to_port {
                    to_offset = Some(cursor);
                    break;
                }
                cursor += w;
            }
            let Some(to_offset) = to_offset else {
                return Err(engine_err(format!(
                    "cross-group flow into `{}`.`{}`: the consumer input is not exported",
                    to_net.node_name(cf.to_node).unwrap_or("?"),
                    cf.to_port
                )));
            };
            channels.push(EnsembleChannel {
                from_group: cf.from_group,
                from_base,
                width,
                to_group: cf.to_group,
                to_offset,
                bufs: Arc::new([
                    Mutex::new(vec![0.0; k * width]),
                    Mutex::new(vec![0.0; k * width]),
                ]),
            });
        }

        // Probes: resolved to per-instance dense offsets; recorded as
        // `{series}#{instance}` once a recorder is attached.
        let mut probes = Vec::with_capacity(compiled.probes.len());
        for p in &compiled.probes {
            let net = &nets[p.group];
            let handle = net.output_handle(p.node, &p.port).map_err(CoreError::Flow)?;
            let out_base =
                groups[p.group].plan.out_offset(handle.node()).expect("plan covers every node")
                    + handle.offset();
            probes.push(EnsembleProbe { group: p.group, out_base, series: p.series.clone() });
        }

        Ok(EnsembleEngine {
            config,
            clock: SimClock::new(),
            k,
            groups,
            channels,
            probes,
            probe_series: Vec::new(),
            recorder: None,
            step_budget_ns: compiled.step_budget_ns(),
            started: false,
        })
    }

    /// Builds a `k`-instance single-group ensemble over a raw
    /// [`StreamerNetwork`] (the network-first path, no elaboration).
    /// `probes` lists `(node, output port, series)` outputs to record —
    /// raw networks carry no declared probes, so they are registered
    /// here, against the borrowed network.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidStep`] (`URT116`) if `config.step` is not
    ///   positive and finite.
    /// * [`CoreError::Engine`] for `k == 0` or a behaviour that cannot
    ///   be replicated ([`StreamerBehavior::clone_fresh`] returned
    ///   `None` — with no behaviour registry in sight, `clone_fresh` is
    ///   the only replication source on this path).
    /// * [`CoreError::Flow`] for structural errors surfaced while
    ///   planning and for unknown probe nodes/ports.
    pub fn from_network(
        net: &StreamerNetwork,
        k: usize,
        probes: &[(NodeId, &str, &str)],
        config: EngineConfig,
    ) -> Result<Self, CoreError> {
        if !(config.step.is_finite() && config.step > 0.0) {
            return Err(CoreError::InvalidStep { step: config.step });
        }
        if k == 0 {
            return Err(engine_err("an ensemble needs at least one instance".into()));
        }
        let resolved: Vec<Vec<(usize, usize, &str, f64)>> = vec![Vec::new(); k];
        let replicate = |node: NodeId| {
            net.try_clone_behavior(node).map_err(CoreError::Flow)?.ok_or_else(|| {
                engine_err(format!(
                    "streamer `{}` cannot be replicated for ensemble execution (clone_fresh \
                     returned None — boxed handlers, guards and non-cloneable systems are not \
                     replicable)",
                    net.node_name(node).unwrap_or("?")
                ))
            })
        };
        let group = build_group(net, &resolved, 0, k, &replicate)?;
        let mut ensemble_probes = Vec::with_capacity(probes.len());
        for &(node, port, series) in probes {
            let handle = net.output_handle(node, port).map_err(CoreError::Flow)?;
            let out_base = group.plan.out_offset(handle.node()).expect("plan covers every node")
                + handle.offset();
            ensemble_probes.push(EnsembleProbe { group: 0, out_base, series: series.to_owned() });
        }
        Ok(EnsembleEngine {
            config,
            clock: SimClock::new(),
            k,
            groups: vec![group],
            channels: Vec::new(),
            probes: ensemble_probes,
            probe_series: Vec::new(),
            recorder: None,
            step_budget_ns: None,
            started: false,
        })
    }

    /// The recorder series name of probe series `series` for ensemble
    /// instance `instance`: `{series}#{instance}`.
    pub fn series_name(series: &str, instance: usize) -> String {
        format!("{series}#{instance}")
    }

    /// Number of ensemble instances `K`.
    pub fn instances(&self) -> usize {
        self.k
    }

    /// Number of streamer groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.clock.seconds()
    }

    /// Number of macro steps taken.
    pub fn step_count(&self) -> u64 {
        self.clock.step_count()
    }

    /// Attaches a recorder, interning one `{series}#{instance}` handle
    /// per (probe, instance) pair so the per-step record path is
    /// lookup-free.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.probe_series = self
            .probes
            .iter()
            .map(|p| {
                (0..self.k).map(|i| recorder.handle(&Self::series_name(&p.series, i))).collect()
            })
            .collect();
        self.recorder = Some(recorder);
    }

    fn start_if_needed(&mut self) -> Result<(), CoreError> {
        if self.started {
            return Ok(());
        }
        let t0 = self.clock.seconds();
        for gs in &mut self.groups {
            gs.time = t0;
            for lanes in &mut gs.behaviours {
                for b in lanes {
                    b.initialize(t0).map_err(|e| CoreError::Flow(e.into()))?;
                }
            }
            build_batch_rows(gs, self.k);
        }
        self.started = true;
        Ok(())
    }

    /// Selects the ODE stepping kernel for all groups (see
    /// [`EnsembleKernel`]). The default is
    /// [`Batched`](EnsembleKernel::Batched); results are bit-identical
    /// either way, so this is a pure performance knob (and the
    /// `bench_engine` kernel axis).
    pub fn set_kernel(&mut self, kernel: EnsembleKernel) {
        for gs in &mut self.groups {
            gs.kernel = kernel;
        }
    }

    /// Runs until simulation time `t_end`, in macro steps of
    /// `config.step`.
    ///
    /// # Errors
    ///
    /// Propagates solver and thread failures.
    pub fn run_until(&mut self, t_end: f64) -> Result<(), CoreError> {
        self.start_if_needed()?;
        let n = crate::time::steps_until(self.clock.seconds(), t_end, self.config.step);
        match self.config.policy {
            ThreadPolicy::CurrentThread => {
                for _ in 0..n {
                    self.step_once()?;
                }
                Ok(())
            }
            ThreadPolicy::DedicatedThreads => self.run_threaded(n),
        }
    }

    /// The per-macro-step deadline budget the ensemble carries (from the
    /// compiled system's declared budget), nanoseconds per macro step.
    pub fn step_budget_ns(&self) -> Option<f64> {
        self.step_budget_ns
    }

    /// Hard real-time mode for ensembles: runs until `t_end` with each
    /// macro step of the whole ensemble paced against the wall clock and
    /// measured against the budget — the analogue of
    /// [`HybridEngine::run_paced`](crate::engine::HybridEngine::run_paced),
    /// with one cycle covering all `K` instances (hardware-in-the-loop
    /// ensembles release every variant at the same instant).
    ///
    /// A paced ensemble always steps on the calling thread, regardless of
    /// `config.policy`: the dedicated-thread schedule hands each worker a
    /// whole segment with no per-step release points, so there is nothing
    /// for a pacer to anchor to (and spawning threads per step would put
    /// allocation back into the loop). Results are bit-identical either
    /// way — the policy-equivalence anchor pins local and threaded
    /// ensemble runs to the same series.
    ///
    /// # Errors
    ///
    /// [`CoreError::DeadlineOverrun`] when an
    /// [`OverrunPolicy::SafetyStop`](crate::pacer::OverrunPolicy::SafetyStop)
    /// run exhausts its consecutive-miss tolerance, plus the usual solver
    /// failures.
    pub fn run_paced(
        &mut self,
        t_end: f64,
        config: crate::pacer::PacedConfig,
    ) -> Result<crate::pacer::PacedReport, CoreError> {
        self.start_if_needed()?;
        let mut runner =
            crate::pacer::PacedRunner::new(config, self.step_budget_ns, self.config.step);
        let n = crate::time::steps_until(self.clock.seconds(), t_end, self.config.step);
        for _ in 0..n {
            runner.begin();
            self.step_once()?;
            runner.end(1, self.clock.seconds())?;
        }
        Ok(runner.finish())
    }

    /// One macro step of all `K` instances on the calling thread.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn step_once(&mut self) -> Result<(), CoreError> {
        self.start_if_needed()?;
        let h = self.config.step;
        self.latch_channel_inputs();
        let k = self.k;
        for gs in &mut self.groups {
            gs.step(h, k)?;
        }
        self.clock.tick(h);
        self.publish_channel_outputs();
        self.record_probes();
        Ok(())
    }

    /// Copies every channel's front slot (`step_count % 2`, pre-tick)
    /// into its consumer group's external staging — all `K` instances'
    /// previous-step samples (the channel's one-step delay).
    fn latch_channel_inputs(&mut self) {
        if self.channels.is_empty() {
            return;
        }
        let slot = (self.clock.step_count() % 2) as usize;
        for ch in &self.channels {
            let src = ch.bufs[slot].lock();
            let gs = &mut self.groups[ch.to_group];
            let extw = gs.plan.ext_in_width();
            for i in 0..self.k {
                let dst = i * extw + ch.to_offset;
                gs.ext[dst..dst + ch.width].copy_from_slice(&src[i * ch.width..(i + 1) * ch.width]);
            }
        }
    }

    /// Copies every channel's producer lanes into its back slot
    /// (`step_count % 2` post-tick — what consumers read next step).
    fn publish_channel_outputs(&mut self) {
        if self.channels.is_empty() {
            return;
        }
        let slot = (self.clock.step_count() % 2) as usize;
        for ch in &self.channels {
            let mut dst = ch.bufs[slot].lock();
            let gs = &self.groups[ch.from_group];
            let outw = gs.plan.out_width();
            for i in 0..self.k {
                let src = i * outw + ch.from_base;
                dst[i * ch.width..(i + 1) * ch.width]
                    .copy_from_slice(&gs.outs[src..src + ch.width]);
            }
        }
    }

    fn record_probes(&mut self) {
        if self.recorder.is_none() {
            return;
        }
        let t = self.clock.seconds();
        for (p, handles) in self.probes.iter().zip(&self.probe_series) {
            let gs = &self.groups[p.group];
            let outw = gs.plan.out_width();
            for (i, series) in handles.iter().enumerate() {
                series.push(t, gs.outs[i * outw + p.out_base]);
            }
        }
    }

    /// Threaded execution: one worker per group for the whole segment,
    /// synchronised between sub-steps over a [`SpinBarrier`] only where
    /// channels demand it (exactly the [`HybridEngine`] discipline).
    /// Workers stamp probe samples from private clock copies, so the
    /// series carry bit-identical instants to the local path.
    fn run_threaded(&mut self, n_steps: u64) -> Result<(), CoreError> {
        if n_steps == 0 {
            return Ok(());
        }
        let h = self.config.step;
        if self.groups.is_empty() {
            for _ in 0..n_steps {
                self.clock.tick(h);
            }
            return Ok(());
        }
        let k = self.k;
        let n_groups = self.groups.len();
        type Bufs = Arc<[Mutex<Vec<f64>>; 2]>;
        let mut incoming: Vec<Vec<(Bufs, usize, usize)>> = vec![Vec::new(); n_groups];
        let mut outgoing: Vec<Vec<(Bufs, usize, usize)>> = vec![Vec::new(); n_groups];
        for ch in &self.channels {
            incoming[ch.to_group].push((Arc::clone(&ch.bufs), ch.to_offset, ch.width));
            outgoing[ch.from_group].push((Arc::clone(&ch.bufs), ch.from_base, ch.width));
        }
        let participating: Vec<bool> =
            (0..n_groups).map(|g| !incoming[g].is_empty() || !outgoing[g].is_empty()).collect();
        let n_participants = participating.iter().filter(|&&p| p).count();
        let barrier = (n_participants >= 2).then(|| Arc::new(SpinBarrier::new(n_participants)));
        let record = self.recorder.is_some();
        let mut group_probes: Vec<Vec<(usize, Vec<SeriesHandle>)>> = vec![Vec::new(); n_groups];
        if record {
            for (p, handles) in self.probes.iter().zip(&self.probe_series) {
                group_probes[p.group].push((p.out_base, handles.clone()));
            }
        }
        let clock0 = self.clock.clone();

        let result = std::thread::scope(|scope| -> Result<(), CoreError> {
            let mut workers = Vec::with_capacity(n_groups);
            for (gi, gs) in self.groups.iter_mut().enumerate() {
                let my_in = std::mem::take(&mut incoming[gi]);
                let my_out = std::mem::take(&mut outgoing[gi]);
                let my_probes = std::mem::take(&mut group_probes[gi]);
                let my_barrier = participating[gi].then(|| barrier.clone()).flatten();
                let mut clock = clock0.clone();
                workers.push(scope.spawn(move || -> Result<(), CoreError> {
                    let mut result: Result<(), CoreError> = Ok(());
                    for s in 0..n_steps {
                        // A worker that already failed stops stepping and
                        // publishing but keeps waiting at the sub-step
                        // barrier, so its peers never deadlock.
                        if s > 0 {
                            if let Some(b) = &my_barrier {
                                b.wait();
                            }
                        }
                        if result.is_err() {
                            clock.tick(h);
                            continue;
                        }
                        if !my_in.is_empty() {
                            let slot = (clock.step_count() % 2) as usize;
                            let extw = gs.plan.ext_in_width();
                            for (bufs, off, w) in &my_in {
                                let src = bufs[slot].lock();
                                for i in 0..k {
                                    let dst = i * extw + off;
                                    gs.ext[dst..dst + w].copy_from_slice(&src[i * w..(i + 1) * w]);
                                }
                            }
                        }
                        result = gs.step(h, k);
                        clock.tick(h);
                        if result.is_err() {
                            continue;
                        }
                        if !my_out.is_empty() {
                            let slot = (clock.step_count() % 2) as usize;
                            let outw = gs.plan.out_width();
                            for (bufs, base, w) in &my_out {
                                let mut dst = bufs[slot].lock();
                                for i in 0..k {
                                    let src = i * outw + base;
                                    dst[i * w..(i + 1) * w].copy_from_slice(&gs.outs[src..src + w]);
                                }
                            }
                        }
                        if !my_probes.is_empty() {
                            let t = clock.seconds();
                            let outw = gs.plan.out_width();
                            for (base, series) in &my_probes {
                                for (i, sh) in series.iter().enumerate() {
                                    sh.push(t, gs.outs[i * outw + base]);
                                }
                            }
                        }
                    }
                    result
                }));
            }
            let mut first_err = None;
            for w in workers {
                match w.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
        for _ in 0..n_steps {
            self.clock.tick(h);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::{elaborate, validate_gate, BehaviorRegistry};
    use crate::engine::HybridEngine;
    use crate::model::{ModelBuilder, UnifiedModel};
    use crate::recorder::Recorder;
    use urt_dataflow::flowtype::FlowType;
    use urt_dataflow::streamer::{FnStreamer, OdeStreamer};
    use urt_ode::solver::SolverKind;
    use urt_ode::system::InputSystem;

    /// x' = -rate * x, a one-lane system with a named `rate` parameter.
    #[derive(Clone)]
    struct Decay {
        rate: f64,
    }

    impl InputSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn input_dim(&self) -> usize {
            0
        }
        fn derivatives(&self, _t: f64, x: &[f64], _u: &[f64], dx: &mut [f64]) {
            dx[0] = -self.rate * x[0];
        }
    }

    fn decay_streamer(rate: f64, x0: f64) -> OdeStreamer<Decay> {
        OdeStreamer::new("plant", Decay { rate }, SolverKind::Rk4.create(), &[x0], 1e-3)
            .with_param_fn(|s, name, v| {
                if name == "rate" {
                    s.rate = v;
                    true
                } else {
                    false
                }
            })
    }

    /// Model: non-feedthrough decaying plant -> feedthrough doubler.
    fn decay_chain(rate: f64, x0: f64) -> (UnifiedModel, BehaviorRegistry) {
        let mut b = ModelBuilder::new("m");
        let p = b.streamer("plant", "none");
        let d = b.streamer("dbl", "none");
        b.streamer_out(p, "y", FlowType::scalar());
        b.streamer_in(d, "u", FlowType::scalar());
        b.streamer_out(d, "y", FlowType::scalar());
        b.streamer_feedthrough(p, false);
        b.flow_between_streamers(p, "y", d, "u");
        b.probe(d, "y", "out");
        let registry = BehaviorRegistry::new()
            .streamer("plant", move || Box::new(decay_streamer(rate, x0)))
            .streamer("dbl", || {
                Box::new(FnStreamer::new("dbl", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| {
                    y[0] = 2.0 * u[0]
                }))
            });
        (b.build(), registry)
    }

    fn compile(rate: f64, x0: f64) -> CompiledSystem {
        let (model, registry) = decay_chain(rate, x0);
        elaborate(&model, registry, &validate_gate).expect("elaborates")
    }

    fn bit_eq(a: &[(f64, f64)], b: &[(f64, f64)], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, ((t1, v1), (t2, v2))) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(t1.to_bits(), t2.to_bits(), "{what}: time at {i}");
            assert_eq!(v1.to_bits(), v2.to_bits(), "{what}: value at {i}");
        }
    }

    #[test]
    fn ensemble_refuses_zero_instances() {
        let compiled = compile(1.0, 1.0);
        let err =
            EnsembleEngine::from_variants(&compiled, &[], EngineConfig::default()).unwrap_err();
        assert!(err.to_string().contains("at least one instance"), "{err}");
    }

    #[test]
    fn ensemble_refuses_sport_links() {
        #[derive(Clone)]
        struct P;
        impl StreamerBehavior for P {
            fn name(&self) -> &str {
                "plant"
            }
            fn input_width(&self) -> usize {
                0
            }
            fn output_width(&self) -> usize {
                1
            }
            fn direct_feedthrough(&self) -> bool {
                false
            }
            fn advance(
                &mut self,
                t: f64,
                _h: f64,
                _u: &[f64],
                y: &mut [f64],
            ) -> Result<(), urt_ode::SolveError> {
                y[0] = t;
                Ok(())
            }
            fn clone_fresh(&self) -> Option<Box<dyn StreamerBehavior>> {
                Some(Box::new(self.clone()))
            }
        }
        let mut b = ModelBuilder::new("m");
        let cap = b.capsule("sup");
        let s = b.streamer("plant", "none");
        b.streamer_out(s, "y", FlowType::scalar());
        b.streamer_feedthrough(s, false);
        b.capsule_sport(cap, "p", "Ctl");
        b.streamer_sport(s, "ctl", "Ctl");
        b.sport_link(cap, "p", s, "ctl");
        let registry = BehaviorRegistry::new().streamer("plant", || Box::new(P));
        let compiled = elaborate(&b.build(), registry, &validate_gate).expect("elaborates");
        assert_eq!(compiled.sport_link_count(), 1);
        let err = EnsembleEngine::from_compiled(&compiled, 4, EngineConfig::default()).unwrap_err();
        assert!(err.to_string().contains("SPort link"), "{err}");
    }

    #[test]
    fn factory_replication_outlives_clone_fresh() {
        // A behaviour without a clone_fresh override cannot be *cloned*
        // — but the compiled path replicates by re-invoking the registry
        // factory, so the ensemble builds and runs anyway. Only the
        // network-first path (no registry in sight) still depends on
        // clone_fresh, and refuses.
        struct Opaque;
        impl StreamerBehavior for Opaque {
            fn name(&self) -> &str {
                "opaque"
            }
            fn input_width(&self) -> usize {
                0
            }
            fn output_width(&self) -> usize {
                1
            }
            fn direct_feedthrough(&self) -> bool {
                false
            }
            fn advance(
                &mut self,
                t: f64,
                _h: f64,
                _u: &[f64],
                y: &mut [f64],
            ) -> Result<(), urt_ode::SolveError> {
                y[0] = t;
                Ok(())
            }
        }
        let mut b = ModelBuilder::new("m");
        let s = b.streamer("opaque", "none");
        b.streamer_out(s, "y", FlowType::scalar());
        b.streamer_feedthrough(s, false);
        b.probe(s, "y", "out");
        let registry = BehaviorRegistry::new().streamer("opaque", || Box::new(Opaque));
        let compiled = elaborate(&b.build(), registry, &validate_gate).expect("elaborates");
        let mut ensemble =
            EnsembleEngine::from_compiled(&compiled, 2, EngineConfig::default()).unwrap();
        let rec = Recorder::new();
        ensemble.set_recorder(rec.clone());
        ensemble.run_until(0.01).unwrap();
        for i in 0..2 {
            let series = rec.series(&EnsembleEngine::series_name("out", i));
            assert!(!series.is_empty(), "instance {i} produced no samples");
        }

        // Network-first path: clone_fresh is the only replication source.
        let mut net = StreamerNetwork::new("raw");
        net.add_streamer(Opaque, &[], &[("y", FlowType::scalar())]).unwrap();
        let err = EnsembleEngine::from_network(&net, 2, &[], EngineConfig::default()).unwrap_err();
        assert!(err.to_string().contains("cannot be replicated"), "{err}");
    }

    #[test]
    fn ensemble_refuses_bad_step_with_structured_error() {
        let compiled = compile(1.0, 1.0);
        let bad = EngineConfig { step: 0.0, policy: ThreadPolicy::CurrentThread };
        let err = EnsembleEngine::from_compiled(&compiled, 2, bad).unwrap_err();
        assert!(matches!(err, CoreError::InvalidStep { .. }), "{err}");
        assert!(err.to_string().starts_with("URT116: "), "{err}");

        let net = StreamerNetwork::new("raw");
        let bad = EngineConfig { step: f64::NAN, policy: ThreadPolicy::CurrentThread };
        let err = EnsembleEngine::from_network(&net, 1, &[], bad).unwrap_err();
        assert!(matches!(err, CoreError::InvalidStep { .. }), "{err}");
    }

    #[test]
    fn variant_errors_name_the_offender() {
        let compiled = compile(1.0, 1.0);
        let bad_streamer = [VariantSpec::new().set("ghost", "rate", 1.0)];
        let err = EnsembleEngine::from_variants(&compiled, &bad_streamer, EngineConfig::default())
            .unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
        let bad_param = [VariantSpec::new().set("plant", "unknown", 1.0)];
        let err = EnsembleEngine::from_variants(&compiled, &bad_param, EngineConfig::default())
            .unwrap_err();
        assert!(err.to_string().contains("unknown"), "{err}");
    }

    #[test]
    fn k1_ensemble_matches_hybrid_engine_bitwise() {
        let compiled = compile(1.5, 2.0);
        let mut ensemble =
            EnsembleEngine::from_compiled(&compiled, 1, EngineConfig::default()).unwrap();
        let erec = Recorder::new();
        ensemble.set_recorder(erec.clone());
        ensemble.run_until(0.05).unwrap();

        let mut engine = HybridEngine::from_compiled(&compiled, EngineConfig::default()).unwrap();
        let hrec = Recorder::new();
        engine.set_recorder(hrec.clone());
        engine.run_until(0.05).unwrap();

        assert_eq!(ensemble.step_count(), engine.step_count());
        assert_eq!(ensemble.time().to_bits(), engine.time().to_bits());
        bit_eq(
            &erec.series(&EnsembleEngine::series_name("out", 0)),
            &hrec.series("out"),
            "K=1 ensemble vs HybridEngine",
        );
    }

    #[test]
    fn from_network_replays_a_relay_topology_bitwise() {
        // A raw network with a relay node (which elaborate never emits):
        // source -> relay(2) -> two sinks. All instances of the ensemble
        // must be bit-identical to stepping the network directly.
        let build = || {
            let mut net = StreamerNetwork::new("fig2ish");
            let src = net
                .add_streamer(
                    FnStreamer::new("src", 0, 1, |t: f64, _h, _u: &[f64], y: &mut [f64]| {
                        y[0] = (2.0 * t).sin()
                    }),
                    &[],
                    &[("y", FlowType::scalar())],
                )
                .unwrap();
            let relay = net.add_relay("relay", FlowType::scalar(), 2).unwrap();
            let dbl = net
                .add_streamer(
                    FnStreamer::new("dbl", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| {
                        y[0] = 2.0 * u[0]
                    }),
                    &[("u", FlowType::scalar())],
                    &[("y", FlowType::scalar())],
                )
                .unwrap();
            let sq = net
                .add_streamer(
                    FnStreamer::new("sq", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| {
                        y[0] = u[0] * u[0]
                    }),
                    &[("u", FlowType::scalar())],
                    &[("y", FlowType::scalar())],
                )
                .unwrap();
            net.flow((src, "y"), (relay, "in")).unwrap();
            net.flow((relay, "out0"), (dbl, "u")).unwrap();
            net.flow((relay, "out1"), (sq, "u")).unwrap();
            (net, dbl, sq)
        };
        let (net, dbl, sq) = build();
        let mut ensemble = EnsembleEngine::from_network(
            &net,
            3,
            &[(dbl, "y", "dbl"), (sq, "y", "sq")],
            EngineConfig { step: 0.01, policy: ThreadPolicy::CurrentThread },
        )
        .unwrap();
        let rec = Recorder::new();
        ensemble.set_recorder(rec.clone());
        ensemble.run_until(0.2).unwrap();

        // Reference: the network stepped directly.
        let (mut reference, rdbl, rsq) = build();
        reference.initialize(0.0).unwrap();
        let mut expect_dbl = Vec::new();
        let mut expect_sq = Vec::new();
        let mut clock = SimClock::new();
        for _ in 0..20 {
            reference.step(0.01).unwrap();
            clock.tick(0.01);
            let t = clock.seconds();
            expect_dbl.push((t, reference.output(rdbl, "y").unwrap()[0]));
            expect_sq.push((t, reference.output(rsq, "y").unwrap()[0]));
        }
        for i in 0..3 {
            bit_eq(
                &rec.series(&EnsembleEngine::series_name("dbl", i)),
                &expect_dbl,
                &format!("relay instance {i} (dbl)"),
            );
            bit_eq(
                &rec.series(&EnsembleEngine::series_name("sq", i)),
                &expect_sq,
                &format!("relay instance {i} (sq)"),
            );
        }
    }

    #[test]
    fn variants_apply_parameter_overrides_bitwise() {
        // Instance i of a 3-variant ensemble must match a standalone
        // HybridEngine whose behaviours were *constructed* with the same
        // parameters, bit for bit.
        let compiled = compile(1.0, 1.0);
        let variants = [
            VariantSpec::new(),
            VariantSpec::new().set("plant", "x0[0]", 2.5),
            VariantSpec::new().set("plant", "rate", 4.0).set("plant", "x0[0]", 0.5),
        ];
        let mut ensemble =
            EnsembleEngine::from_variants(&compiled, &variants, EngineConfig::default()).unwrap();
        let rec = Recorder::new();
        ensemble.set_recorder(rec.clone());
        ensemble.run_until(0.02).unwrap();

        for (i, (rate, x0)) in [(1.0, 1.0), (1.0, 2.5), (4.0, 0.5)].iter().enumerate() {
            let mut engine =
                HybridEngine::from_compiled(&compile(*rate, *x0), EngineConfig::default()).unwrap();
            let hrec = Recorder::new();
            engine.set_recorder(hrec.clone());
            engine.run_until(0.02).unwrap();
            bit_eq(
                &rec.series(&EnsembleEngine::series_name("out", i)),
                &hrec.series("out"),
                &format!("variant {i}"),
            );
        }
        // The overrides actually changed the trajectories.
        let s0 = rec.series("out#0");
        let s1 = rec.series("out#1");
        let s2 = rec.series("out#2");
        assert!(s0.last().unwrap().1 != s1.last().unwrap().1);
        assert!(s1.last().unwrap().1 != s2.last().unwrap().1);
    }

    #[test]
    fn per_lane_and_batched_kernels_are_bit_identical() {
        let variants = [
            VariantSpec::new(),
            VariantSpec::new().set("plant", "x0[0]", 2.5),
            VariantSpec::new().set("plant", "rate", 4.0).set("plant", "x0[0]", 0.5),
        ];
        let run = |kernel: EnsembleKernel| {
            let compiled = compile(1.0, 1.0);
            let mut ensemble =
                EnsembleEngine::from_variants(&compiled, &variants, EngineConfig::default())
                    .unwrap();
            ensemble.set_kernel(kernel);
            let rec = Recorder::new();
            ensemble.set_recorder(rec.clone());
            ensemble.run_until(0.05).unwrap();
            // The plant row (Rk4 OdeStreamer) is batch-eligible; the
            // FnStreamer doubler row is not.
            let eligible: usize =
                ensemble.groups.iter().map(|g| g.batch_rows.iter().flatten().count()).sum();
            assert_eq!(eligible, 1, "exactly the ODE row is batch-eligible");
            rec
        };
        let scalar = run(EnsembleKernel::PerLane);
        let batched = run(EnsembleKernel::Batched);
        for i in 0..variants.len() {
            let name = EnsembleEngine::series_name("out", i);
            bit_eq(&scalar.series(&name), &batched.series(&name), &format!("kernel axis lane {i}"));
        }
    }

    #[test]
    fn solvers_without_batched_kernels_stay_on_the_per_lane_path() {
        let mut b = ModelBuilder::new("m");
        let p = b.streamer("plant", "none");
        b.streamer_out(p, "y", FlowType::scalar());
        b.streamer_feedthrough(p, false);
        b.probe(p, "y", "out");
        let registry = BehaviorRegistry::new().streamer("plant", || {
            Box::new(OdeStreamer::new(
                "plant",
                Decay { rate: 1.0 },
                SolverKind::Heun.create(),
                &[1.0],
                1e-3,
            ))
        });
        let compiled = elaborate(&b.build(), registry, &validate_gate).expect("elaborates");
        let mut ensemble =
            EnsembleEngine::from_compiled(&compiled, 3, EngineConfig::default()).unwrap();
        let rec = Recorder::new();
        ensemble.set_recorder(rec.clone());
        ensemble.run_until(0.02).unwrap();
        let eligible: usize =
            ensemble.groups.iter().map(|g| g.batch_rows.iter().flatten().count()).sum();
        assert_eq!(eligible, 0, "Heun has no batched kernel: no row may batch");
        assert!(rec.series("out#0").last().unwrap().1 < 1.0);
    }

    /// Cross-thread model: a non-feedthrough ramp on thread 0 feeding a
    /// non-feedthrough witness on thread 1 (lowered to a channel).
    fn cross_thread_model() -> (UnifiedModel, BehaviorRegistry) {
        #[derive(Clone)]
        struct Ramp {
            slope: f64,
        }
        impl StreamerBehavior for Ramp {
            fn name(&self) -> &str {
                "ramp"
            }
            fn input_width(&self) -> usize {
                0
            }
            fn output_width(&self) -> usize {
                1
            }
            fn direct_feedthrough(&self) -> bool {
                false
            }
            fn advance(
                &mut self,
                t: f64,
                _h: f64,
                _u: &[f64],
                y: &mut [f64],
            ) -> Result<(), urt_ode::SolveError> {
                y[0] = self.slope * t;
                Ok(())
            }
            fn clone_fresh(&self) -> Option<Box<dyn StreamerBehavior>> {
                Some(Box::new(self.clone()))
            }
            fn set_param(&mut self, name: &str, value: f64) -> bool {
                if name == "slope" {
                    self.slope = value;
                    true
                } else {
                    false
                }
            }
        }
        #[derive(Clone)]
        struct Witness;
        impl StreamerBehavior for Witness {
            fn name(&self) -> &str {
                "witness"
            }
            fn input_width(&self) -> usize {
                1
            }
            fn output_width(&self) -> usize {
                1
            }
            fn direct_feedthrough(&self) -> bool {
                false
            }
            fn advance(
                &mut self,
                _t: f64,
                _h: f64,
                u: &[f64],
                y: &mut [f64],
            ) -> Result<(), urt_ode::SolveError> {
                y[0] = u[0];
                Ok(())
            }
            fn clone_fresh(&self) -> Option<Box<dyn StreamerBehavior>> {
                Some(Box::new(self.clone()))
            }
        }
        let mut b = ModelBuilder::new("xg");
        let r = b.streamer("ramp", "none");
        let w = b.streamer("witness", "none");
        b.streamer_out(r, "y", FlowType::scalar());
        b.streamer_in(w, "u", FlowType::scalar());
        b.streamer_out(w, "y", FlowType::scalar());
        b.streamer_feedthrough(r, false);
        b.streamer_feedthrough(w, false);
        b.assign_thread(r, 0);
        b.assign_thread(w, 1);
        b.flow_between_streamers(r, "y", w, "u");
        b.probe(r, "y", "src");
        b.probe(w, "y", "wit");
        let registry = BehaviorRegistry::new()
            .streamer("ramp", || Box::new(Ramp { slope: 100.0 }))
            .streamer("witness", || Box::new(Witness));
        (b.build(), registry)
    }

    #[test]
    fn threaded_ensemble_matches_local_with_channels() {
        let run = |policy| {
            let (model, registry) = cross_thread_model();
            let compiled = elaborate(&model, registry, &validate_gate).expect("elaborates");
            assert_eq!(compiled.group_count(), 2);
            assert_eq!(compiled.cross_flow_count(), 1);
            let variants = [
                VariantSpec::new(),
                VariantSpec::new().set("ramp", "slope", -3.0),
                VariantSpec::new().set("ramp", "slope", 7.0),
                VariantSpec::new().set("ramp", "slope", 0.0),
            ];
            let mut ensemble = EnsembleEngine::from_variants(
                &compiled,
                &variants,
                EngineConfig { step: 0.01, policy },
            )
            .unwrap();
            let rec = Recorder::new();
            ensemble.set_recorder(rec.clone());
            ensemble.run_until(0.25).unwrap();
            rec
        };
        let local = run(ThreadPolicy::CurrentThread);
        let threaded = run(ThreadPolicy::DedicatedThreads);
        for i in 0..4 {
            for series in ["src", "wit"] {
                let name = EnsembleEngine::series_name(series, i);
                bit_eq(&local.series(&name), &threaded.series(&name), &name);
            }
        }
        // One-step channel delay, per instance: wit[k] == src[k-1].
        for i in 0..4 {
            let src = local.series(&EnsembleEngine::series_name("src", i));
            let wit = local.series(&EnsembleEngine::series_name("wit", i));
            assert_eq!(wit[0].1.to_bits(), 0.0f64.to_bits(), "instance {i}: initial sample");
            for k in 1..wit.len() {
                assert_eq!(
                    wit[k].1.to_bits(),
                    src[k - 1].1.to_bits(),
                    "instance {i}: one-step delay at {k}"
                );
            }
        }
    }

    #[test]
    fn ensemble_run_paced_matches_run_until() {
        use crate::pacer::PacedConfig;
        let compiled = compile(2.0, 1.0);
        let free = {
            let mut e =
                EnsembleEngine::from_compiled(&compiled, 3, EngineConfig::default()).unwrap();
            let rec = Recorder::new();
            e.set_recorder(rec.clone());
            e.run_until(0.05).unwrap();
            rec
        };
        // Paced always steps locally, even under DedicatedThreads (no
        // per-step release points in the segment-wise threaded schedule).
        for policy in [ThreadPolicy::CurrentThread, ThreadPolicy::DedicatedThreads] {
            let mut e =
                EnsembleEngine::from_compiled(&compiled, 3, EngineConfig { step: 1e-3, policy })
                    .unwrap();
            assert_eq!(e.step_budget_ns(), None, "decay chain declares no budget");
            let rec = Recorder::new();
            e.set_recorder(rec.clone());
            let report =
                e.run_paced(0.05, PacedConfig::new().with_rate(1e9).with_budget_ns(1e12)).unwrap();
            assert_eq!(report.steps, 50, "{policy}");
            assert_eq!(report.samples, 50, "{policy}: per-step cycles, never batched");
            assert_eq!(report.misses, 0, "{policy}");
            assert!(!report.batched, "{policy}");
            for i in 0..3 {
                let name = EnsembleEngine::series_name("out", i);
                bit_eq(&free.series(&name), &rec.series(&name), &name);
            }
        }
    }
}
