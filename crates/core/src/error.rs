//! Unified error type for the core crate.

use std::error::Error;
use std::fmt;
use urt_dataflow::FlowError;
use urt_umlrt::RtError;

/// Errors raised by the unified model and the hybrid engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The event-driven runtime failed.
    Rt(RtError),
    /// The dataflow extension failed.
    Flow(FlowError),
    /// A model well-formedness rule from the paper was violated.
    Validation {
        /// Which rule (short identifier, e.g. "fig3-containment").
        rule: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// An engine lifecycle or configuration problem.
    Engine {
        /// What went wrong.
        detail: String,
    },
    /// A solver thread disappeared (panicked or disconnected).
    ThreadLost {
        /// Index of the streamer group whose thread died.
        group: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rt(e) => write!(f, "runtime error: {e}"),
            CoreError::Flow(e) => write!(f, "dataflow error: {e}"),
            CoreError::Validation { rule, detail } => {
                write!(f, "model rule `{rule}` violated: {detail}")
            }
            CoreError::Engine { detail } => write!(f, "engine error: {detail}"),
            CoreError::ThreadLost { group } => {
                write!(f, "solver thread for group {group} was lost")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Rt(e) => Some(e),
            CoreError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RtError> for CoreError {
    fn from(e: RtError) -> Self {
        CoreError::Rt(e)
    }
}

impl From<FlowError> for CoreError {
    fn from(e: FlowError) -> Self {
        CoreError::Flow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = RtError::MissingInitial.into();
        assert!(e.source().is_some());
        let e: CoreError = FlowError::UnknownNode { index: 1 }.into();
        assert!(e.to_string().contains("dataflow"));
        let e = CoreError::Validation { rule: "fig3-containment", detail: "x".into() };
        assert!(e.to_string().contains("fig3-containment"));
        assert!(e.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CoreError>();
    }
}
