//! Unified error type for the core crate.

use std::error::Error;
use std::fmt;
use urt_dataflow::FlowError;
use urt_umlrt::RtError;

/// Errors raised by the unified model and the hybrid engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The event-driven runtime failed.
    Rt(RtError),
    /// The dataflow extension failed.
    Flow(FlowError),
    /// A model well-formedness rule from the paper was violated.
    Validation {
        /// Which rule (short identifier, e.g. "fig3-containment").
        rule: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// An engine lifecycle or configuration problem.
    Engine {
        /// What went wrong.
        detail: String,
    },
    /// A solver thread disappeared (panicked or disconnected).
    ThreadLost {
        /// Index of the streamer group whose thread died.
        group: usize,
    },
    /// A second SPort link was registered for the same
    /// `(group, node, sport)` key — each streamer SPort routes to exactly
    /// one capsule port, so the duplicate would silently shadow the first.
    DuplicateSportLink {
        /// Streamer group index.
        group: usize,
        /// Node name (or index rendering) within the group.
        node: String,
        /// The SPort that was linked twice.
        sport: String,
    },
    /// Elaboration of a `UnifiedModel` into a `CompiledSystem` failed:
    /// the model was rejected by the analysis gate, referenced a behavior
    /// the registry does not provide, or declared structure the executable
    /// form cannot realise.
    Elaborate {
        /// What went wrong.
        detail: String,
    },
    /// An engine configuration declared a macro step that is not a
    /// positive, finite number — refused before any engine state is
    /// built. Raised by `HybridEngine::from_compiled` and the ensemble
    /// constructors (the hand-wired `HybridEngine::new` keeps its
    /// documented panic for API-misuse at the lowest layer).
    InvalidStep {
        /// The offending step value.
        step: f64,
    },
    /// A paced run under `OverrunPolicy::SafetyStop` exhausted its
    /// tolerance for consecutive deadline misses — the runtime half of
    /// the URT301 budget contract. Carries the miss report at the point
    /// of abort.
    DeadlineOverrun {
        /// Macro step count when the run aborted.
        step: u64,
        /// Consecutive misses at the point of abort.
        consecutive: u64,
        /// The enforced budget, nanoseconds per macro step.
        budget_ns: f64,
        /// Worst observed per-step cycle time, nanoseconds.
        worst_ns: f64,
        /// Total deadline misses over the whole run.
        misses: u64,
    },
}

impl CoreError {
    /// Stable diagnostic code for a model well-formedness rule, shared
    /// with the `urt_analysis` lint registry.
    pub fn validation_code(rule: &str) -> &'static str {
        match rule {
            "unique-names" => "URT101",
            "fig3-containment" => "URT102",
            "containment-acyclic" => "URT103",
            "flow-endpoint" => "URT104",
            "flow-subset" => "URT105",
            "fig3-dport-relay" => "URT106",
            "sport-protocol" => "URT107",
            "probe-port" => "URT108",
            _ => "URT199",
        }
    }

    /// Stable diagnostic code (`URTxxx`) for this error, included in the
    /// display string so log greps and tests can match on the code
    /// instead of prose. [`CoreError::Flow`] delegates to the inner
    /// [`FlowError::code`].
    pub fn code(&self) -> &'static str {
        match self {
            CoreError::Rt(_) => "URT110",
            CoreError::Flow(e) => e.code(),
            CoreError::Validation { rule, .. } => Self::validation_code(rule),
            CoreError::Engine { .. } => "URT111",
            CoreError::ThreadLost { .. } => "URT112",
            CoreError::DuplicateSportLink { .. } => "URT113",
            CoreError::Elaborate { .. } => "URT114",
            CoreError::DeadlineOverrun { .. } => "URT115",
            CoreError::InvalidStep { .. } => "URT116",
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rt(e) => write!(f, "{}: runtime error: {e}", self.code()),
            // The inner FlowError display already carries its code.
            CoreError::Flow(e) => write!(f, "dataflow error: {e}"),
            CoreError::Validation { rule, detail } => {
                write!(f, "{}: model rule `{rule}` violated: {detail}", self.code())
            }
            CoreError::Engine { detail } => write!(f, "{}: engine error: {detail}", self.code()),
            CoreError::ThreadLost { group } => {
                write!(f, "{}: solver thread for group {group} was lost", self.code())
            }
            CoreError::DuplicateSportLink { group, node, sport } => {
                write!(
                    f,
                    "{}: duplicate SPort link: group {group} node `{node}` sport `{sport}` \
                     is already linked to a capsule port",
                    self.code()
                )
            }
            CoreError::Elaborate { detail } => {
                write!(f, "{}: elaboration error: {detail}", self.code())
            }
            CoreError::InvalidStep { step } => {
                write!(
                    f,
                    "{}: macro step must be a positive, finite number, got {step}",
                    self.code()
                )
            }
            CoreError::DeadlineOverrun { step, consecutive, budget_ns, worst_ns, misses } => {
                write!(
                    f,
                    "{}: deadline overrun at step {step}: {consecutive} consecutive misses \
                     (budget {budget_ns} ns, worst {worst_ns} ns, {misses} total misses)",
                    self.code()
                )
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Rt(e) => Some(e),
            CoreError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RtError> for CoreError {
    fn from(e: RtError) -> Self {
        CoreError::Rt(e)
    }
}

impl From<FlowError> for CoreError {
    fn from(e: FlowError) -> Self {
        CoreError::Flow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = RtError::MissingInitial.into();
        assert!(e.source().is_some());
        let e: CoreError = FlowError::UnknownNode { index: 1 }.into();
        assert!(e.to_string().contains("dataflow"));
        let e = CoreError::Validation { rule: "fig3-containment", detail: "x".into() };
        assert!(e.to_string().contains("fig3-containment"));
        assert!(e.source().is_none());
    }

    #[test]
    fn display_carries_stable_codes() {
        let e = CoreError::Validation { rule: "flow-subset", detail: "x".into() };
        assert_eq!(e.code(), "URT105");
        assert!(e.to_string().starts_with("URT105: "));
        let e: CoreError =
            FlowError::UnconnectedInput { node: "n".into(), port: "p".into() }.into();
        assert_eq!(e.code(), "URT006", "Flow delegates to the inner code");
        assert!(e.to_string().contains("URT006"));
        let e = CoreError::Engine { detail: "x".into() };
        assert!(e.to_string().starts_with("URT111: "));
        let e = CoreError::ThreadLost { group: 3 };
        assert!(e.to_string().starts_with("URT112: "));
        let e =
            CoreError::DuplicateSportLink { group: 0, node: "tank".into(), sport: "ctl".into() };
        assert_eq!(e.code(), "URT113");
        assert!(e.to_string().starts_with("URT113: "));
        let e = CoreError::Elaborate { detail: "x".into() };
        assert_eq!(e.code(), "URT114");
        assert!(e.to_string().starts_with("URT114: "));
        let e = CoreError::DeadlineOverrun {
            step: 42,
            consecutive: 3,
            budget_ns: 1e6,
            worst_ns: 2.5e6,
            misses: 7,
        };
        assert_eq!(e.code(), "URT115");
        assert!(e.to_string().starts_with("URT115: "));
        assert!(e.to_string().contains("step 42"));
        assert!(e.to_string().contains("3 consecutive"));
        let e = CoreError::InvalidStep { step: -1.0 };
        assert_eq!(e.code(), "URT116");
        assert!(e.to_string().starts_with("URT116: "));
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CoreError>();
    }
}
