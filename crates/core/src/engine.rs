//! The hybrid co-simulation engine: event-driven capsules and
//! time-continuous streamers on separate threads, bridged by channels.
//!
//! "During implementation, capsules and streamers are assigned to
//! different threads. Communication between capsules and streamers is
//! realized by communication mechanism of threads." Here the capsule side
//! is a [`Controller`]; each streamer *group* is a [`StreamerNetwork`]
//! which, under [`ThreadPolicy::DedicatedThreads`], runs on its own solver
//! thread synchronised once per macro step. SPort links carry signal
//! messages across the boundary in both directions over `std::sync::mpsc`
//! channels.

use crate::elaborate::CompiledSystem;
use crate::error::CoreError;
use crate::recorder::{Recorder, SeriesHandle};
use crate::threading::ThreadPolicy;
use crate::time::SimClock;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use urt_dataflow::graph::{NodeId, OutputHandle, StreamerNetwork};
use urt_umlrt::controller::Controller;
use urt_umlrt::message::Message;

/// A signal drained from a streamer group: `(node, sport, message)`.
type DrainedSignal = (NodeId, String, Message);

/// Per-group buffers recycled through `Cmd::Step`: drained signals plus
/// `(probe index, value)` samples from the worker's last macro step.
type StepBuffers = (Vec<DrainedSignal>, Vec<(usize, f64)>);

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Macro step in seconds: the synchronisation period between the
    /// capsule thread and the solver threads.
    pub step: f64,
    /// Thread assignment policy.
    pub policy: ThreadPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { step: 1e-3, policy: ThreadPolicy::CurrentThread }
    }
}

/// An SPort bridge between a capsule port and a streamer node. The sport
/// name lives in the engine's `link_index` (it is only ever consulted for
/// routing lookups).
#[derive(Debug)]
struct SportLink {
    group: usize,
    node: NodeId,
    capsule: usize,
    capsule_port: String,
    /// Drains messages the capsule sent out of its port.
    from_capsule: Receiver<Message>,
}

/// A signal-series probe on a streamer output DPort. The port is
/// resolved to an [`OutputHandle`] at registration, so per-step sampling
/// is array indexing with no name lookup.
#[derive(Debug, Clone)]
struct Probe {
    group: usize,
    handle: OutputHandle,
    series: String,
}

/// The unified execution engine (see module docs).
///
/// Typical lifecycle: construct, [`HybridEngine::add_group`] /
/// [`HybridEngine::link_sport`] / [`HybridEngine::add_probe`], then
/// [`HybridEngine::run_until`] repeatedly.
pub struct HybridEngine {
    controller: Controller,
    config: EngineConfig,
    clock: SimClock,
    groups: Vec<StreamerNetwork>,
    links: Vec<SportLink>,
    /// Dense routing table for streamer-emitted signals, maintained by
    /// [`HybridEngine::link_sport`]: `link_index[group][node]` holds the
    /// node's `(sport, link index)` pairs — direct array indexing to the
    /// node, then a scan over its (almost always 0–2) linked sports. A
    /// second link for the same `(group, node, sport)` is refused with
    /// [`CoreError::DuplicateSportLink`].
    link_index: Vec<Vec<Vec<(String, usize)>>>,
    probes: Vec<Probe>,
    /// Recorder series handles, parallel to `probes` — resolved once at
    /// probe/recorder registration so the per-step record path never does
    /// a string lookup. Empty while no recorder is attached.
    probe_series: Vec<SeriesHandle>,
    recorder: Option<Recorder>,
    /// Reused per-step buffer for drained streamer signals.
    signal_scratch: Vec<DrainedSignal>,
    started: bool,
}

impl fmt::Debug for HybridEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridEngine")
            .field("time", &self.clock.seconds())
            .field("groups", &self.groups.len())
            .field("links", &self.links.len())
            .field("policy", &self.config.policy)
            .finish_non_exhaustive()
    }
}

impl HybridEngine {
    /// Creates an engine around a capsule controller.
    ///
    /// # Panics
    ///
    /// Panics if `config.step` is not positive and finite.
    pub fn new(controller: Controller, config: EngineConfig) -> Self {
        assert!(config.step.is_finite() && config.step > 0.0, "macro step must be positive");
        HybridEngine {
            controller,
            config,
            clock: SimClock::new(),
            groups: Vec::new(),
            links: Vec::new(),
            link_index: Vec::new(),
            probes: Vec::new(),
            probe_series: Vec::new(),
            recorder: None,
            signal_scratch: Vec::new(),
            started: false,
        }
    }

    /// Adds a streamer group (one candidate solver thread). Returns the
    /// group index.
    ///
    /// # Errors
    ///
    /// Propagates network validation errors.
    pub fn add_group(&mut self, mut network: StreamerNetwork) -> Result<usize, CoreError> {
        network.validate()?;
        self.link_index.push(vec![Vec::new(); network.node_count()]);
        self.groups.push(network);
        Ok(self.groups.len() - 1)
    }

    /// Builds an engine from an elaborated [`CompiledSystem`] — the
    /// model-first path (`ModelBuilder` → `elaborate` → run). Groups,
    /// SPort links and probes arrive fully resolved; attach a recorder
    /// with [`HybridEngine::set_recorder`] to capture the model's
    /// declared probe series.
    ///
    /// # Errors
    ///
    /// Propagates network validation and wiring errors (none are
    /// expected from a system produced by `elaborate`).
    ///
    /// # Panics
    ///
    /// Panics if `config.step` is not positive and finite.
    pub fn from_compiled(
        compiled: CompiledSystem,
        config: EngineConfig,
    ) -> Result<Self, CoreError> {
        let CompiledSystem { groups, controller, links, probes, .. } = compiled;
        let mut engine = HybridEngine::new(controller, config);
        for net in groups {
            engine.add_group(net)?;
        }
        for l in &links {
            engine.link_sport(l.group, l.node, &l.sport, l.capsule, &l.capsule_port)?;
        }
        for p in &probes {
            engine.add_probe(p.group, p.node, &p.port, &p.series)?;
        }
        Ok(engine)
    }

    /// Bridges a capsule SPort to a streamer SPort: messages the capsule
    /// sends on `capsule_port` are delivered to the streamer's signal
    /// handler, and signals the streamer emits on `sport` are injected
    /// into the capsule on the same port.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Engine`] for a bad group index.
    /// * [`CoreError::DuplicateSportLink`] if `(group, node, sport)` is
    ///   already linked — a second link would silently shadow the first.
    /// * Runtime errors from the controller for bad capsule indices.
    pub fn link_sport(
        &mut self,
        group: usize,
        node: NodeId,
        sport: &str,
        capsule: usize,
        capsule_port: &str,
    ) -> Result<(), CoreError> {
        if group >= self.groups.len() {
            return Err(CoreError::Engine { detail: format!("no streamer group {group}") });
        }
        // When the node declares its SPorts, the link must name one.
        let declared = self.groups[group].sports(node)?;
        if !declared.is_empty() && !declared.iter().any(|s| s.name() == sport) {
            return Err(CoreError::Engine {
                detail: format!(
                    "node `{}` declares no SPort `{sport}`",
                    self.groups[group].node_name(node).unwrap_or("?")
                ),
            });
        }
        let by_node = &mut self.link_index[group][node.index()];
        if by_node.iter().any(|(s, _)| s == sport) {
            return Err(CoreError::DuplicateSportLink {
                group,
                node: self.groups[group].node_name(node).unwrap_or("?").to_owned(),
                sport: sport.to_owned(),
            });
        }
        let (tx, rx): (Sender<Message>, Receiver<Message>) = channel();
        self.controller.connect_external(capsule, capsule_port, tx)?;
        let li = self.links.len();
        self.links.push(SportLink {
            group,
            node,
            capsule,
            capsule_port: capsule_port.to_owned(),
            from_capsule: rx,
        });
        self.link_index[group][node.index()].push((sport.to_owned(), li));
        Ok(())
    }

    /// Records the first lane of `(group, node, port)` into the recorder
    /// series `series` after every macro step. The port is resolved to an
    /// output handle here, once — recording never looks names up again.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Engine`] for a bad group index and
    /// [`CoreError::Flow`] for an unknown node or output port.
    pub fn add_probe(
        &mut self,
        group: usize,
        node: NodeId,
        port: &str,
        series: &str,
    ) -> Result<(), CoreError> {
        if group >= self.groups.len() {
            return Err(CoreError::Engine { detail: format!("no streamer group {group}") });
        }
        let handle = self.groups[group].output_handle(node, port)?;
        self.probes.push(Probe { group, handle, series: series.to_owned() });
        if let Some(rec) = &self.recorder {
            self.probe_series.push(rec.handle(series));
        }
        Ok(())
    }

    /// Attaches a recorder for probes, interning every registered probe's
    /// series so the per-step record path is lookup-free.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.probe_series = self.probes.iter().map(|p| recorder.handle(&p.series)).collect();
        self.recorder = Some(recorder);
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.clock.seconds()
    }

    /// Number of macro steps taken.
    pub fn step_count(&self) -> u64 {
        self.clock.step_count()
    }

    /// The capsule controller (for injecting environment events and
    /// asserting on capsule state).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to the capsule controller.
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// Read access to a streamer group.
    pub fn network(&self, group: usize) -> Option<&StreamerNetwork> {
        self.groups.get(group)
    }

    /// Mutable access to a streamer group.
    pub fn network_mut(&mut self, group: usize) -> Option<&mut StreamerNetwork> {
        self.groups.get_mut(group)
    }

    fn start_if_needed(&mut self) -> Result<(), CoreError> {
        if self.started {
            return Ok(());
        }
        let t0 = self.clock.seconds();
        for g in &mut self.groups {
            g.initialize(t0)?;
        }
        if !self.controller.is_started() {
            self.controller.start()?;
        }
        self.started = true;
        Ok(())
    }

    /// Runs until simulation time `t_end`, in macro steps of
    /// `config.step`.
    ///
    /// # Errors
    ///
    /// Propagates solver, runtime and thread failures.
    pub fn run_until(&mut self, t_end: f64) -> Result<(), CoreError> {
        self.start_if_needed()?;
        match self.config.policy {
            ThreadPolicy::CurrentThread => self.run_local(t_end),
            ThreadPolicy::DedicatedThreads => self.run_threaded(t_end),
        }
    }

    /// One macro step on the calling thread (exposed for fine-grained
    /// drivers and benchmarks).
    ///
    /// # Errors
    ///
    /// Propagates solver and runtime failures.
    pub fn step_once(&mut self) -> Result<(), CoreError> {
        self.start_if_needed()?;
        let h = self.config.step;
        self.deliver_capsule_signals_local()?;
        for g in &mut self.groups {
            g.step(h)?;
        }
        self.clock.tick(h);
        // Post-tick derived instant: the same drift-free product both
        // thread policies stamp on probes and hand to the controller.
        let t_next = self.clock.seconds();
        self.collect_streamer_signals_local()?;
        self.record_probes();
        self.controller.run_until(t_next)?;
        Ok(())
    }

    /// Number of whole macro steps needed to reach `t_end` from the
    /// current instant. Uses a *relative* tolerance so a step landing
    /// within rounding distance of `t_end` counts as having reached it —
    /// the former `seconds() + 1e-12 < t_end` loop condition used an
    /// absolute epsilon that is absorbed for large `t_end` (or dwarfs tiny
    /// `h`), running one step too many or too few.
    fn steps_until(&self, t_end: f64) -> u64 {
        let t = self.clock.seconds();
        if t_end <= t {
            return 0;
        }
        let raw = (t_end - t) / self.config.step;
        (raw * (1.0 - 1e-12)).ceil() as u64
    }

    fn run_local(&mut self, t_end: f64) -> Result<(), CoreError> {
        for _ in 0..self.steps_until(t_end) {
            self.step_once()?;
        }
        Ok(())
    }

    fn deliver_capsule_signals_local(&mut self) -> Result<(), CoreError> {
        for li in 0..self.links.len() {
            while let Ok(msg) = self.links[li].from_capsule.try_recv() {
                let (group, node) = (self.links[li].group, self.links[li].node);
                self.groups[group].send_signal(node, &msg)?;
            }
        }
        Ok(())
    }

    fn collect_streamer_signals_local(&mut self) -> Result<(), CoreError> {
        let mut buf = std::mem::take(&mut self.signal_scratch);
        let mut result = Ok(());
        'groups: for gi in 0..self.groups.len() {
            buf.clear();
            self.groups[gi].drain_signals_into(&mut buf);
            for (node, sport, msg) in buf.drain(..) {
                if let Err(e) = self.route_streamer_signal(gi, node, &sport, msg) {
                    result = Err(e);
                    break 'groups;
                }
            }
        }
        buf.clear();
        self.signal_scratch = buf;
        result
    }

    fn route_streamer_signal(
        &mut self,
        group: usize,
        node: NodeId,
        sport: &str,
        msg: Message,
    ) -> Result<(), CoreError> {
        let link = self
            .link_index
            .get(group)
            .and_then(|by_node| by_node.get(node.index()))
            .and_then(|sports| sports.iter().find(|(s, _)| s == sport))
            .map(|&(_, li)| &self.links[li]);
        if let Some(link) = link {
            self.controller.inject(link.capsule, &link.capsule_port, msg)?;
        }
        Ok(())
    }

    fn record_probes(&mut self) {
        if self.recorder.is_none() {
            return;
        }
        let t = self.clock.seconds();
        for (p, series) in self.probes.iter().zip(&self.probe_series) {
            if let Some(&v) = self.groups[p.group].output_by_handle(&p.handle).first() {
                series.push(t, v);
            }
        }
    }

    /// Threaded execution: one worker per group, lock-stepped per macro
    /// step via channels (the paper's deployment).
    ///
    /// Per-step buffers (drained signals, probe samples) are recycled:
    /// each `Cmd::Step` carries the previous step's vectors back to the
    /// worker, so the steady state allocates nothing.
    fn run_threaded(&mut self, t_end: f64) -> Result<(), CoreError> {
        let h = self.config.step;
        let n_groups = self.groups.len();
        let n_steps = self.steps_until(t_end);
        if n_groups == 0 {
            // Pure event-driven run. Still drain the capsule-side SPort
            // channels every step — with no solver thread to deliver to,
            // undrained sends would otherwise accumulate unbounded.
            for _ in 0..n_steps {
                self.clock.tick(h);
                let t_next = self.clock.seconds();
                for link in &self.links {
                    while link.from_capsule.try_recv().is_ok() {}
                }
                self.controller.run_until(t_next)?;
            }
            return Ok(());
        }

        enum Cmd {
            /// One macro step, carrying recycled output buffers.
            Step {
                h: f64,
                signals: Vec<DrainedSignal>,
                probes: Vec<(usize, f64)>,
            },
            Signal {
                node: NodeId,
                msg: Message,
            },
        }
        struct Done {
            signals: Vec<DrainedSignal>,
            probes: Vec<(usize, f64)>,
            result: Result<(), urt_dataflow::FlowError>,
        }

        let networks: Vec<StreamerNetwork> = std::mem::take(&mut self.groups);
        let probes = self.probes.clone();

        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(n_groups);
        let mut done_rxs: Vec<Receiver<Done>> = Vec::with_capacity(n_groups);
        let mut back_rxs: Vec<Receiver<StreamerNetwork>> = Vec::with_capacity(n_groups);

        let result = std::thread::scope(|scope| -> Result<(), CoreError> {
            for (gi, mut net) in networks.into_iter().enumerate() {
                let (cmd_tx, cmd_rx) = channel::<Cmd>();
                let (done_tx, done_rx) = channel::<Done>();
                let (back_tx, back_rx) = channel::<StreamerNetwork>();
                cmd_txs.push(cmd_tx);
                done_rxs.push(done_rx);
                back_rxs.push(back_rx);
                let my_probes: Vec<(usize, Probe)> = probes
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.group == gi)
                    .map(|(i, p)| (i, p.clone()))
                    .collect();
                scope.spawn(move || {
                    // First delivery failure, surfaced in the next Done so
                    // both thread policies fail identically (the local path
                    // propagates send_signal errors before stepping).
                    let mut signal_err: Option<urt_dataflow::FlowError> = None;
                    while let Ok(cmd) = cmd_rx.recv() {
                        match cmd {
                            Cmd::Signal { node, msg } => {
                                if let Err(e) = net.send_signal(node, &msg) {
                                    signal_err.get_or_insert(e);
                                }
                            }
                            Cmd::Step { h, mut signals, mut probes } => {
                                signals.clear();
                                probes.clear();
                                let result = match signal_err.take() {
                                    Some(e) => Err(e),
                                    None => net.step(h),
                                };
                                if result.is_ok() {
                                    net.drain_signals_into(&mut signals);
                                    for (i, p) in &my_probes {
                                        if let Some(&v) = net.output_by_handle(&p.handle).first() {
                                            probes.push((*i, v));
                                        }
                                    }
                                }
                                if done_tx.send(Done { signals, probes, result }).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    let _ = back_tx.send(net);
                });
            }

            // Recycled per-group buffers for Cmd::Step, and the cross-group
            // routing staging area — all allocated once per run.
            let mut recycled: Vec<StepBuffers> =
                (0..n_groups).map(|_| (Vec::new(), Vec::new())).collect();
            let mut all_signals: Vec<(usize, NodeId, String, Message)> = Vec::new();
            for _ in 0..n_steps {
                // 1. Capsule -> streamer signals.
                for link in &self.links {
                    while let Ok(msg) = link.from_capsule.try_recv() {
                        cmd_txs[link.group]
                            .send(Cmd::Signal { node: link.node, msg })
                            .map_err(|_| CoreError::ThreadLost { group: link.group })?;
                    }
                }
                // 2. Parallel macro step.
                for (gi, tx) in cmd_txs.iter().enumerate() {
                    let (signals, probes) = std::mem::take(&mut recycled[gi]);
                    tx.send(Cmd::Step { h, signals, probes })
                        .map_err(|_| CoreError::Engine { detail: "worker gone".into() })?;
                }
                self.clock.tick(h);
                let t_next = self.clock.seconds();
                // 3. Barrier: gather results, signals, probes.
                all_signals.clear();
                for (gi, rx) in done_rxs.iter().enumerate() {
                    let mut done = rx.recv().map_err(|_| CoreError::ThreadLost { group: gi })?;
                    done.result.map_err(CoreError::Flow)?;
                    for (node, sport, msg) in done.signals.drain(..) {
                        all_signals.push((gi, node, sport, msg));
                    }
                    if self.recorder.is_some() {
                        for &(pi, v) in &done.probes {
                            self.probe_series[pi].push(t_next, v);
                        }
                    }
                    done.probes.clear();
                    recycled[gi] = (done.signals, done.probes);
                }
                // 4. Streamer -> capsule signals.
                for (gi, node, sport, msg) in all_signals.drain(..) {
                    self.route_streamer_signal(gi, node, &sport, msg)?;
                }
                // 5. Event-driven world catches up.
                self.controller.run_until(t_next)?;
            }
            drop(cmd_txs);
            Ok(())
        });

        // Recover the networks regardless of success.
        for rx in back_rxs {
            if let Ok(net) = rx.recv() {
                self.groups.push(net);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threading::ThreadPolicy;
    use urt_dataflow::flowtype::FlowType;
    use urt_dataflow::streamer::FnStreamer;
    use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
    use urt_umlrt::statemachine::StateMachineBuilder;
    use urt_umlrt::value::Value;

    fn empty_controller() -> Controller {
        let mut c = Controller::new("events");
        let sm = StateMachineBuilder::new("idle")
            .state("s")
            .initial("s", |_d: &mut (), _ctx: &mut CapsuleContext| {})
            .build()
            .unwrap();
        c.add_capsule(Box::new(SmCapsule::new(sm, ())));
        c
    }

    fn sine_net(name: &str) -> (StreamerNetwork, NodeId) {
        let mut net = StreamerNetwork::new(name);
        let n = net
            .add_streamer(
                FnStreamer::new("sine", 0, 1, |t: f64, _h, _u: &[f64], y: &mut [f64]| {
                    y[0] = t.sin()
                }),
                &[],
                &[("y", FlowType::scalar())],
            )
            .unwrap();
        (net, n)
    }

    #[test]
    fn local_engine_advances_time() {
        let (net, _) = sine_net("p");
        let mut e = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.01, policy: ThreadPolicy::CurrentThread },
        );
        e.add_group(net).unwrap();
        e.run_until(0.1).unwrap();
        assert!((e.time() - 0.1).abs() < 1e-9);
        assert_eq!(e.step_count(), 10);
    }

    #[test]
    fn probes_record_series() {
        let (net, n) = sine_net("p");
        let mut e = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.01, policy: ThreadPolicy::CurrentThread },
        );
        let g = e.add_group(net).unwrap();
        let rec = Recorder::new();
        e.set_recorder(rec.clone());
        e.add_probe(g, n, "y", "sine").unwrap();
        e.run_until(1.0).unwrap();
        let series = rec.series("sine");
        assert_eq!(series.len(), 100);
        // The sine source emits sin(t_start_of_step).
        let (t_last, v_last) = *series.last().unwrap();
        assert!((v_last - (t_last - 0.01).sin()).abs() < 1e-9);
    }

    #[test]
    fn threaded_engine_matches_local() {
        let run = |policy| {
            let (net, n) = sine_net("p");
            let mut e = HybridEngine::new(empty_controller(), EngineConfig { step: 0.01, policy });
            let g = e.add_group(net).unwrap();
            let rec = Recorder::new();
            e.set_recorder(rec.clone());
            e.add_probe(g, n, "y", "s").unwrap();
            e.run_until(0.5).unwrap();
            rec.series("s")
        };
        let local = run(ThreadPolicy::CurrentThread);
        let threaded = run(ThreadPolicy::DedicatedThreads);
        assert_eq!(local.len(), threaded.len());
        for ((t1, v1), (t2, v2)) in local.iter().zip(&threaded) {
            assert!((t1 - t2).abs() < 1e-12);
            assert!((v1 - v2).abs() < 1e-12, "lockstep equivalence");
        }
    }

    #[test]
    fn sport_round_trip_capsule_to_streamer_and_back() {
        use urt_dataflow::streamer::StreamerBehavior;
        use urt_ode::SolveError;

        // A streamer that echoes every received signal value +1 as an
        // emitted `echo` signal.
        struct Echo {
            pending: Vec<f64>,
            emitted: Vec<(String, Message)>,
        }
        impl StreamerBehavior for Echo {
            fn name(&self) -> &str {
                "echo"
            }
            fn input_width(&self) -> usize {
                0
            }
            fn output_width(&self) -> usize {
                0
            }
            fn advance(
                &mut self,
                t: f64,
                _h: f64,
                _u: &[f64],
                _y: &mut [f64],
            ) -> Result<(), SolveError> {
                for v in self.pending.drain(..) {
                    self.emitted.push((
                        "ctl".to_owned(),
                        Message::new("echo", Value::Real(v + 1.0)).with_sent_at(t),
                    ));
                }
                Ok(())
            }
            fn on_signal(&mut self, msg: &Message) {
                if let Some(v) = msg.value().as_real() {
                    self.pending.push(v);
                }
            }
            fn take_emitted(&mut self) -> Vec<(String, Message)> {
                std::mem::take(&mut self.emitted)
            }
        }

        for policy in [ThreadPolicy::CurrentThread, ThreadPolicy::DedicatedThreads] {
            let mut net = StreamerNetwork::new("p");
            let node = net
                .add_streamer(Echo { pending: Vec::new(), emitted: Vec::new() }, &[], &[])
                .unwrap();

            // Capsule: on start send `ping(41)`, count echo replies.
            let sm = StateMachineBuilder::new("driver")
                .state("s")
                .initial("s", |_d: &mut Vec<f64>, ctx: &mut CapsuleContext| {
                    ctx.send("plant", "ping", Value::Real(41.0));
                })
                .internal("s", ("plant", "echo"), |d, m, _| {
                    d.push(m.value().as_real().unwrap_or(f64::NAN));
                })
                .build()
                .unwrap();
            let mut controller = Controller::new("events");
            let cap = controller.add_capsule(Box::new(SmCapsule::new(sm, Vec::new())));

            let mut e = HybridEngine::new(controller, EngineConfig { step: 0.01, policy });
            let g = e.add_group(net).unwrap();
            e.link_sport(g, node, "ctl", cap, "plant").unwrap();
            e.run_until(0.05).unwrap();
            // The reply arrived back in the capsule: verify by state data
            // via the controller debug path (delivered count >= 1).
            assert!(e.controller().delivered_count() >= 1, "{policy}: echo reply delivered");
        }
    }

    #[test]
    fn declared_sports_are_checked_at_link_time() {
        use urt_dataflow::port::SPortSpec;
        use urt_umlrt::protocol::Protocol;

        let (mut net, n) = sine_net("p");
        net.add_sport(n, SPortSpec::new("ctl", Protocol::new("Ctl"))).unwrap();
        let mut e = HybridEngine::new(empty_controller(), EngineConfig::default());
        let g = e.add_group(net).unwrap();
        // Wrong sport name: rejected because the node declares its sports.
        assert!(matches!(e.link_sport(g, n, "ghost", 0, "plant"), Err(CoreError::Engine { .. })));
        // Declared name: accepted.
        e.link_sport(g, n, "ctl", 0, "plant").unwrap();
    }

    #[test]
    fn duplicate_sport_link_is_refused() {
        // Regression: the old index kept the first link per key and
        // silently dropped the second — now it is a stable-coded error.
        let (net, n) = sine_net("p");
        let mut e = HybridEngine::new(empty_controller(), EngineConfig::default());
        let g = e.add_group(net).unwrap();
        e.link_sport(g, n, "ctl", 0, "plant").unwrap();
        let err = e.link_sport(g, n, "ctl", 0, "other").unwrap_err();
        assert!(matches!(err, CoreError::DuplicateSportLink { .. }));
        assert!(err.to_string().starts_with("URT113: "), "stable code: {err}");
        // A different sport on the same node is still fine.
        e.link_sport(g, n, "aux", 0, "plant").unwrap();
    }

    #[test]
    fn engine_errors_on_bad_indices() {
        let mut e = HybridEngine::new(empty_controller(), EngineConfig::default());
        assert!(matches!(
            e.add_probe(0, NodeId::from_index(0), "y", "s"),
            Err(CoreError::Engine { .. })
        ));
        assert!(matches!(
            e.link_sport(3, NodeId::from_index(0), "s", 0, "p"),
            Err(CoreError::Engine { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "macro step must be positive")]
    fn config_validates_step() {
        let _ = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.0, policy: ThreadPolicy::CurrentThread },
        );
    }

    #[test]
    fn threaded_engine_with_no_groups_is_pure_event_run() {
        let mut e = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.01, policy: ThreadPolicy::DedicatedThreads },
        );
        e.run_until(0.05).unwrap();
        assert!((e.time() - 0.05).abs() < 1e-9);
    }
}
