//! The hybrid co-simulation engine: event-driven capsules and
//! time-continuous streamers on separate threads, bridged by channels.
//!
//! "During implementation, capsules and streamers are assigned to
//! different threads. Communication between capsules and streamers is
//! realized by communication mechanism of threads." Here the capsule side
//! is a [`Controller`]; each streamer *group* is a [`StreamerNetwork`]
//! which, under [`ThreadPolicy::DedicatedThreads`], runs on its own solver
//! thread synchronised once per macro step. SPort links carry signal
//! messages across the boundary in both directions over `std::sync::mpsc`
//! channels.

use crate::elaborate::{CompiledSystem, SystemInstance};
use crate::error::CoreError;
use crate::pacer::{PacedConfig, PacedReport, PacedRunner};
use crate::recorder::{Recorder, SeriesHandle};
use crate::sync::{Mutex, SpinBarrier};
use crate::threading::ThreadPolicy;
use crate::time::SimClock;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use urt_dataflow::graph::{NodeId, OutputHandle, StreamerNetwork};
use urt_umlrt::controller::Controller;
use urt_umlrt::message::Message;

/// A signal drained from a streamer group: `(node, sport, message)`.
type DrainedSignal = (NodeId, String, Message);

/// One recorded probe sample from a worker:
/// `(probe index, post-tick time, value)`. The worker stamps the time
/// itself (from its per-batch clock copy) so samples buffered across a
/// batch merge into the recorder with exactly the instants the local
/// path would have produced.
type ProbeSample = (usize, f64, f64);

/// Per-group buffers recycled through `Cmd::Step`: drained signals plus
/// probe samples from the worker's last batch of macro steps.
type StepBuffers = (Vec<DrainedSignal>, Vec<ProbeSample>);

/// The two sample buffers of one cross-group flow channel, shared between
/// the producer and the consumer thread.
type ChannelBufs = Arc<[Mutex<Vec<f64>>; 2]>;

/// Upper bound on the auto-computed macro-step batch size `K` in
/// [`ThreadPolicy::DedicatedThreads`] runs: bounds the per-batch probe
/// sample buffers (a few kilobytes per probe at this value) while still
/// amortising the per-batch rendezvous to nothing.
const DEFAULT_MAX_BATCH: u64 = 4096;

/// A double-buffered dataflow channel carrying one cross-group flow.
///
/// Buffers are indexed by macro-step parity: during step `k` the consumer
/// reads slot `k % 2` *before* its group steps, and the producer writes
/// slot `(k + 1) % 2` *after* stepping. One barrier between consecutive
/// macro steps is what separates every write of a slot from every read of
/// the same slot, so there is no swap, no torn sample, and the consumer
/// deterministically sees the producer's previous step's output — the
/// documented one-macro-step channel delay (zero for lane values at
/// step 0, where the consumer reads the initial all-zero buffer).
struct FlowChannel {
    from_group: usize,
    from_handle: OutputHandle,
    to_group: usize,
    /// Lane offset inside the consumer group's exported-input vector.
    to_offset: usize,
    bufs: ChannelBufs,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Macro step in seconds: the synchronisation period between the
    /// capsule thread and the solver threads. Must be positive and
    /// finite: the compiled-path constructors
    /// ([`HybridEngine::from_compiled`], the ensemble constructors)
    /// refuse anything else with [`CoreError::InvalidStep`] (URT116),
    /// while the hand-wired [`HybridEngine::new`] keeps its documented
    /// panic (API misuse at the lowest layer).
    pub step: f64,
    /// Thread assignment policy.
    pub policy: ThreadPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { step: 1e-3, policy: ThreadPolicy::CurrentThread }
    }
}

/// An SPort bridge between a capsule port and a streamer node. The sport
/// name lives in the engine's `link_index` (it is only ever consulted for
/// routing lookups).
#[derive(Debug)]
struct SportLink {
    group: usize,
    node: NodeId,
    capsule: usize,
    capsule_port: String,
    /// Drains messages the capsule sent out of its port.
    from_capsule: Receiver<Message>,
}

/// A signal-series probe on a streamer output DPort. The port is
/// resolved to an [`OutputHandle`] at registration, so per-step sampling
/// is array indexing with no name lookup.
#[derive(Debug, Clone)]
struct Probe {
    group: usize,
    handle: OutputHandle,
    series: String,
}

/// The unified execution engine (see module docs).
///
/// Typical lifecycle: construct, [`HybridEngine::add_group`] /
/// [`HybridEngine::link_sport`] / [`HybridEngine::add_probe`], then
/// [`HybridEngine::run_until`] repeatedly.
pub struct HybridEngine {
    controller: Controller,
    config: EngineConfig,
    clock: SimClock,
    groups: Vec<StreamerNetwork>,
    links: Vec<SportLink>,
    /// Dense routing table for streamer-emitted signals, maintained by
    /// [`HybridEngine::link_sport`]: `link_index[group][node]` holds the
    /// node's `(sport, link index)` pairs — direct array indexing to the
    /// node, then a scan over its (almost always 0–2) linked sports. A
    /// second link for the same `(group, node, sport)` is refused with
    /// [`CoreError::DuplicateSportLink`].
    link_index: Vec<Vec<Vec<(String, usize)>>>,
    probes: Vec<Probe>,
    /// Recorder series handles, parallel to `probes` — resolved once at
    /// probe/recorder registration so the per-step record path never does
    /// a string lookup. Empty while no recorder is attached.
    probe_series: Vec<SeriesHandle>,
    recorder: Option<Recorder>,
    /// Cross-group flow channels registered by
    /// [`HybridEngine::link_flow`].
    channels: Vec<FlowChannel>,
    /// Per-group staging for exported-input lanes, written from channel
    /// front buffers before each macro step (local path only — workers
    /// keep their own staging).
    staging: Vec<Vec<f64>>,
    /// Which groups receive at least one channel (their staging must be
    /// latched every step).
    has_incoming: Vec<bool>,
    /// Upper bound on the auto-computed threaded batch size; 1 disables
    /// batching ([`HybridEngine::set_max_batch`]).
    max_batch: u64,
    /// Declared per-macro-step deadline budget in nanoseconds, carried
    /// over from the compiled system — the default budget of
    /// [`HybridEngine::run_paced`].
    step_budget_ns: Option<f64>,
    /// Reused per-step buffer for drained streamer signals.
    signal_scratch: Vec<DrainedSignal>,
    started: bool,
}

impl fmt::Debug for HybridEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridEngine")
            .field("time", &self.clock.seconds())
            .field("groups", &self.groups.len())
            .field("links", &self.links.len())
            .field("policy", &self.config.policy)
            .finish_non_exhaustive()
    }
}

impl HybridEngine {
    /// Creates an engine around a capsule controller.
    ///
    /// # Panics
    ///
    /// Panics if `config.step` is not positive and finite.
    pub fn new(controller: Controller, config: EngineConfig) -> Self {
        assert!(config.step.is_finite() && config.step > 0.0, "macro step must be positive");
        HybridEngine {
            controller,
            config,
            clock: SimClock::new(),
            groups: Vec::new(),
            links: Vec::new(),
            link_index: Vec::new(),
            probes: Vec::new(),
            probe_series: Vec::new(),
            recorder: None,
            channels: Vec::new(),
            staging: Vec::new(),
            has_incoming: Vec::new(),
            max_batch: DEFAULT_MAX_BATCH,
            step_budget_ns: None,
            signal_scratch: Vec::new(),
            started: false,
        }
    }

    /// Adds a streamer group (one candidate solver thread). Returns the
    /// group index.
    ///
    /// To receive cross-group flows ([`HybridEngine::link_flow`]), export
    /// the consumer inputs (`StreamerNetwork::export_input`) *before*
    /// adding the group — validation treats exported inputs as driven.
    ///
    /// # Errors
    ///
    /// Propagates network validation errors.
    pub fn add_group(&mut self, mut network: StreamerNetwork) -> Result<usize, CoreError> {
        network.validate()?;
        self.link_index.push(vec![Vec::new(); network.node_count()]);
        self.staging.push(vec![0.0; network.external_input_width()]);
        self.has_incoming.push(false);
        self.groups.push(network);
        Ok(self.groups.len() - 1)
    }

    /// Builds an engine from a compiled [`CompiledSystem`] artifact —
    /// the model-first path (`ModelBuilder` → `compile` → instantiate →
    /// run). The artifact is **borrowed**: this call stamps out a fresh
    /// [`SystemInstance`](crate::elaborate::SystemInstance) (behaviour
    /// factories re-invoked, networks re-wired), so one compile serves
    /// any number of engines, each bit-identical to an independent
    /// elaboration. SPort links, probes and cross-group channels arrive
    /// fully resolved; attach a recorder with
    /// [`HybridEngine::set_recorder`] to capture the model's declared
    /// probe series.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidStep`] (URT116) if `config.step` is not
    /// positive and finite; otherwise propagates instantiation and
    /// wiring errors (none are expected from a system produced by
    /// `elaborate`, which validates one instantiation at compile time).
    pub fn from_compiled(
        compiled: &CompiledSystem,
        config: EngineConfig,
    ) -> Result<Self, CoreError> {
        if !(config.step.is_finite() && config.step > 0.0) {
            return Err(CoreError::InvalidStep { step: config.step });
        }
        let SystemInstance { groups, controller } = compiled.instantiate()?;
        let mut engine = HybridEngine::new(controller, config);
        engine.step_budget_ns = compiled.step_budget_ns;
        for net in groups {
            engine.add_group(net)?;
        }
        for l in &compiled.links {
            engine.link_sport(l.group, l.node, &l.sport, l.capsule, &l.capsule_port)?;
        }
        for p in &compiled.probes {
            engine.add_probe(p.group, p.node, &p.port, &p.series)?;
        }
        for cf in &compiled.cross_flows {
            engine.link_flow(
                (cf.from_group, cf.from_node, &cf.from_port),
                (cf.to_group, cf.to_node, &cf.to_port),
            )?;
        }
        Ok(engine)
    }

    /// Connects a producer output DPort in one group to a consumer input
    /// DPort in *another* group through a double-buffered channel.
    ///
    /// Unlike an in-network flow (zero-delay, schedule-ordered), a
    /// cross-group channel carries a deterministic **one-macro-step
    /// delay**: during step `k` the consumer reads the sample the
    /// producer wrote at the end of step `k - 1` (all-zero lanes at step
    /// 0). The delay is what lets the two groups integrate concurrently —
    /// it is identical under both thread policies and independent of the
    /// threaded batch size.
    ///
    /// The consumer input must have been exported
    /// (`StreamerNetwork::export_input`) before its group was added; the
    /// elaboration pipeline does this automatically for model flows whose
    /// endpoints carry distinct `assign_thread` declarations.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Engine`] for bad group indices, endpoints in the
    ///   same group, a direct-feedthrough consumer (the unit delay would
    ///   break its same-step input dependency — lint URT207 catches this
    ///   at model level), an unexported consumer input, or a consumer
    ///   input already fed by another channel.
    /// * [`CoreError::Flow`] for unknown nodes/ports and flow-type subset
    ///   violations (the paper's connection rule, same as in-network
    ///   flows).
    pub fn link_flow(
        &mut self,
        from: (usize, NodeId, &str),
        to: (usize, NodeId, &str),
    ) -> Result<(), CoreError> {
        let (fg, fnode, fport) = from;
        let (tg, tnode, tport) = to;
        for g in [fg, tg] {
            if g >= self.groups.len() {
                return Err(CoreError::Engine { detail: format!("no streamer group {g}") });
            }
        }
        if fg == tg {
            return Err(CoreError::Engine {
                detail: format!(
                    "flow endpoints are both in group {fg}; use an in-network flow (zero-delay) \
                     instead of a channel"
                ),
            });
        }
        if self.groups[tg].node_feedthrough(tnode)? {
            return Err(CoreError::Engine {
                detail: format!(
                    "cross-group flow into `{}`.`{tport}`: the consumer declares direct \
                     feedthrough, which a one-step-delay channel cannot honour (keep both \
                     streamers on one thread or make the consumer non-feedthrough)",
                    self.groups[tg].node_name(tnode).unwrap_or("?")
                ),
            });
        }
        let from_handle = self.groups[fg].output_handle(fnode, fport)?;
        // The paper's connection rule, channel edition: the producer's
        // flow type must be a subset of the consumer's.
        let src_ty = self.groups[fg]
            .out_ports(fnode)?
            .iter()
            .find(|p| p.name() == fport)
            .map(|p| p.flow_type().clone())
            .ok_or(CoreError::Flow(urt_dataflow::FlowError::UnknownPort {
                node: self.groups[fg].node_name(fnode).unwrap_or("?").to_owned(),
                port: fport.to_owned(),
            }))?;
        let dst_spec =
            self.groups[tg].in_ports(tnode)?.iter().find(|p| p.name() == tport).cloned().ok_or(
                CoreError::Flow(urt_dataflow::FlowError::UnknownPort {
                    node: self.groups[tg].node_name(tnode).unwrap_or("?").to_owned(),
                    port: tport.to_owned(),
                }),
            )?;
        if let Some(detail) = src_ty.subset_failure(dst_spec.flow_type()) {
            return Err(CoreError::Flow(urt_dataflow::FlowError::TypeMismatch {
                from: format!("{}.{fport}", self.groups[fg].node_name(fnode).unwrap_or("?")),
                to: format!("{}.{tport}", self.groups[tg].node_name(tnode).unwrap_or("?")),
                detail,
            }));
        }
        // Resolve the consumer's lane offset inside its group's exported
        // input vector (exports accumulate in registration order).
        let mut to_offset = None;
        let mut cursor = 0usize;
        for (n, p) in self.groups[tg].exported_inputs() {
            let width: usize = self.groups[tg]
                .in_ports(n)?
                .iter()
                .find(|spec| spec.name() == p)
                .map(|spec| spec.width())
                .unwrap_or(0);
            if n == tnode && p == tport {
                to_offset = Some(cursor);
                break;
            }
            cursor += width;
        }
        let Some(to_offset) = to_offset else {
            return Err(CoreError::Engine {
                detail: format!(
                    "cross-group flow into `{}`.`{tport}`: the consumer input is not exported — \
                     call export_input before add_group",
                    self.groups[tg].node_name(tnode).unwrap_or("?")
                ),
            });
        };
        if self.channels.iter().any(|c| c.to_group == tg && c.to_offset == to_offset) {
            return Err(CoreError::Engine {
                detail: format!(
                    "cross-group flow into `{}`.`{tport}`: the consumer input is already fed by \
                     another channel",
                    self.groups[tg].node_name(tnode).unwrap_or("?")
                ),
            });
        }
        let width = from_handle.width();
        let bufs: ChannelBufs =
            Arc::new([Mutex::new(vec![0.0; width]), Mutex::new(vec![0.0; width])]);
        // Group construction may have widened the exported-input vector
        // since add_group snapshotted it; re-sync the staging row.
        let ext_width = self.groups[tg].external_input_width();
        self.staging[tg].resize(ext_width, 0.0);
        self.has_incoming[tg] = true;
        self.channels.push(FlowChannel {
            from_group: fg,
            from_handle,
            to_group: tg,
            to_offset,
            bufs,
        });
        Ok(())
    }

    /// Caps the batch size `K` the threaded scheduler may choose (1
    /// forces every macro step through the full `Step`/`Done`
    /// rendezvous, today's pre-batching behaviour). Values below 1 are
    /// clamped to 1. Batching never changes results — only how often the
    /// coordinator and the solver threads synchronise over mpsc.
    pub fn set_max_batch(&mut self, max_batch: u64) {
        self.max_batch = max_batch.max(1);
    }

    /// Bridges a capsule SPort to a streamer SPort: messages the capsule
    /// sends on `capsule_port` are delivered to the streamer's signal
    /// handler, and signals the streamer emits on `sport` are injected
    /// into the capsule on the same port.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Engine`] for a bad group index.
    /// * [`CoreError::DuplicateSportLink`] if `(group, node, sport)` is
    ///   already linked — a second link would silently shadow the first.
    /// * Runtime errors from the controller for bad capsule indices.
    pub fn link_sport(
        &mut self,
        group: usize,
        node: NodeId,
        sport: &str,
        capsule: usize,
        capsule_port: &str,
    ) -> Result<(), CoreError> {
        if group >= self.groups.len() {
            return Err(CoreError::Engine { detail: format!("no streamer group {group}") });
        }
        // When the node declares its SPorts, the link must name one.
        let declared = self.groups[group].sports(node)?;
        if !declared.is_empty() && !declared.iter().any(|s| s.name() == sport) {
            return Err(CoreError::Engine {
                detail: format!(
                    "node `{}` declares no SPort `{sport}`",
                    self.groups[group].node_name(node).unwrap_or("?")
                ),
            });
        }
        let by_node = &mut self.link_index[group][node.index()];
        if by_node.iter().any(|(s, _)| s == sport) {
            return Err(CoreError::DuplicateSportLink {
                group,
                node: self.groups[group].node_name(node).unwrap_or("?").to_owned(),
                sport: sport.to_owned(),
            });
        }
        let (tx, rx): (Sender<Message>, Receiver<Message>) = channel();
        self.controller.connect_external(capsule, capsule_port, tx)?;
        let li = self.links.len();
        self.links.push(SportLink {
            group,
            node,
            capsule,
            capsule_port: capsule_port.to_owned(),
            from_capsule: rx,
        });
        self.link_index[group][node.index()].push((sport.to_owned(), li));
        Ok(())
    }

    /// Records the first lane of `(group, node, port)` into the recorder
    /// series `series` after every macro step. The port is resolved to an
    /// output handle here, once — recording never looks names up again.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Engine`] for a bad group index and
    /// [`CoreError::Flow`] for an unknown node or output port.
    pub fn add_probe(
        &mut self,
        group: usize,
        node: NodeId,
        port: &str,
        series: &str,
    ) -> Result<(), CoreError> {
        if group >= self.groups.len() {
            return Err(CoreError::Engine { detail: format!("no streamer group {group}") });
        }
        let handle = self.groups[group].output_handle(node, port)?;
        self.probes.push(Probe { group, handle, series: series.to_owned() });
        if let Some(rec) = &self.recorder {
            self.probe_series.push(rec.handle(series));
        }
        Ok(())
    }

    /// Attaches a recorder for probes, interning every registered probe's
    /// series so the per-step record path is lookup-free.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.probe_series = self.probes.iter().map(|p| recorder.handle(&p.series)).collect();
        self.recorder = Some(recorder);
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.clock.seconds()
    }

    /// Number of macro steps taken.
    pub fn step_count(&self) -> u64 {
        self.clock.step_count()
    }

    /// The capsule controller (for injecting environment events and
    /// asserting on capsule state).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to the capsule controller.
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// Read access to a streamer group.
    pub fn network(&self, group: usize) -> Option<&StreamerNetwork> {
        self.groups.get(group)
    }

    /// Mutable access to a streamer group.
    pub fn network_mut(&mut self, group: usize) -> Option<&mut StreamerNetwork> {
        self.groups.get_mut(group)
    }

    fn start_if_needed(&mut self) -> Result<(), CoreError> {
        if self.started {
            return Ok(());
        }
        let t0 = self.clock.seconds();
        for g in &mut self.groups {
            g.initialize(t0)?;
        }
        if !self.controller.is_started() {
            self.controller.start()?;
        }
        self.started = true;
        Ok(())
    }

    /// Runs until simulation time `t_end`, in macro steps of
    /// `config.step`.
    ///
    /// # Errors
    ///
    /// Propagates solver, runtime and thread failures.
    pub fn run_until(&mut self, t_end: f64) -> Result<(), CoreError> {
        self.start_if_needed()?;
        match self.config.policy {
            ThreadPolicy::CurrentThread => self.run_local(t_end),
            ThreadPolicy::DedicatedThreads => self.run_threaded(t_end, None),
        }
    }

    /// The per-macro-step deadline budget the engine carries (from the
    /// compiled system's declared budget), nanoseconds per macro step —
    /// the default budget of [`HybridEngine::run_paced`].
    pub fn step_budget_ns(&self) -> Option<f64> {
        self.step_budget_ns
    }

    /// Hard real-time mode: runs until simulation time `t_end` with each
    /// macro step *paced* against the wall clock and *measured* against a
    /// deadline budget — the deployment discipline of the paper (a
    /// controller is only correct if every cycle both releases on time
    /// and finishes inside its budget).
    ///
    /// Pacing couples simulation time to the wall clock at
    /// `config.rate` simulated seconds per wall second; the budget
    /// resolves [`PacedConfig::with_budget_ns`] > the compiled system's
    /// declared budget ([`HybridEngine::step_budget_ns`]) > the pacing
    /// period. Overruns follow the configured
    /// [`OverrunPolicy`](crate::pacer::OverrunPolicy). The loop itself is
    /// allocation-free in steady state: pacing, budget accounting and the
    /// latency histogram behind the returned [`PacedReport`] all run on
    /// inline fixed-size storage, on top of the engine's recycled-buffer
    /// step path.
    ///
    /// Under [`ThreadPolicy::DedicatedThreads`] pacing happens at the
    /// batch barrier — the only rendezvous the threaded schedule has —
    /// and a batch of `K` macro steps is measured as one cycle with the
    /// batch budget attributed as `K ×` the step budget (the recorded
    /// per-step sample is the batch time divided by `K`). Cap the batch
    /// with [`HybridEngine::set_max_batch`] to bound release jitter:
    /// `set_max_batch(1)` paces every macro step individually.
    ///
    /// Results are bit-identical to [`HybridEngine::run_until`] over the
    /// same span — pacing only inserts waits between steps, it never
    /// changes what a step computes.
    ///
    /// # Errors
    ///
    /// [`CoreError::DeadlineOverrun`] when an
    /// [`OverrunPolicy::SafetyStop`](crate::pacer::OverrunPolicy::SafetyStop)
    /// run exhausts its consecutive-miss tolerance, plus the usual
    /// solver, runtime and thread failures.
    pub fn run_paced(&mut self, t_end: f64, config: PacedConfig) -> Result<PacedReport, CoreError> {
        self.start_if_needed()?;
        let mut runner = PacedRunner::new(config, self.step_budget_ns, self.config.step);
        let threaded =
            matches!(self.config.policy, ThreadPolicy::DedicatedThreads) && !self.groups.is_empty();
        if threaded {
            self.run_threaded(t_end, Some(&mut runner))?;
        } else {
            for _ in 0..self.steps_until(t_end) {
                runner.begin();
                self.step_once()?;
                runner.end(1, self.clock.seconds())?;
            }
        }
        Ok(runner.finish())
    }

    /// One macro step on the calling thread (exposed for fine-grained
    /// drivers and benchmarks).
    ///
    /// # Errors
    ///
    /// Propagates solver and runtime failures.
    pub fn step_once(&mut self) -> Result<(), CoreError> {
        self.start_if_needed()?;
        let h = self.config.step;
        self.deliver_capsule_signals_local()?;
        self.latch_channel_inputs_local();
        for g in &mut self.groups {
            g.step(h)?;
        }
        self.clock.tick(h);
        self.publish_channel_outputs_local();
        // Post-tick derived instant: the same drift-free product both
        // thread policies stamp on probes and hand to the controller.
        let t_next = self.clock.seconds();
        self.collect_streamer_signals_local()?;
        self.record_probes();
        self.controller.run_until(t_next)?;
        Ok(())
    }

    /// Copies every channel's front buffer (slot `step_count % 2`,
    /// pre-tick) into its consumer group's exported-input lanes. Reads
    /// the sample the producer published at the end of the *previous*
    /// step — the channel's one-step delay.
    fn latch_channel_inputs_local(&mut self) {
        if self.channels.is_empty() {
            return;
        }
        let slot = (self.clock.step_count() % 2) as usize;
        for ch in &self.channels {
            let src = ch.bufs[slot].lock();
            let w = src.len();
            self.staging[ch.to_group][ch.to_offset..ch.to_offset + w].copy_from_slice(&src);
        }
        for (gi, latch) in self.has_incoming.iter().enumerate() {
            if *latch {
                self.groups[gi].set_external_inputs(&self.staging[gi]);
            }
        }
    }

    /// Copies every channel's producer output into its back buffer (slot
    /// `step_count % 2` *post-tick*, i.e. the slot the consumer will read
    /// at the next step).
    fn publish_channel_outputs_local(&mut self) {
        let slot = (self.clock.step_count() % 2) as usize;
        for ch in &self.channels {
            ch.bufs[slot]
                .lock()
                .copy_from_slice(self.groups[ch.from_group].output_by_handle(&ch.from_handle));
        }
    }

    /// Number of whole macro steps needed to reach `t_end` from the
    /// current instant (see [`crate::time::steps_until`] for the
    /// relative-tolerance rationale).
    fn steps_until(&self, t_end: f64) -> u64 {
        crate::time::steps_until(self.clock.seconds(), t_end, self.config.step)
    }

    fn run_local(&mut self, t_end: f64) -> Result<(), CoreError> {
        for _ in 0..self.steps_until(t_end) {
            self.step_once()?;
        }
        Ok(())
    }

    fn deliver_capsule_signals_local(&mut self) -> Result<(), CoreError> {
        for li in 0..self.links.len() {
            while let Ok(msg) = self.links[li].from_capsule.try_recv() {
                let (group, node) = (self.links[li].group, self.links[li].node);
                self.groups[group].send_signal(node, &msg)?;
            }
        }
        Ok(())
    }

    fn collect_streamer_signals_local(&mut self) -> Result<(), CoreError> {
        let mut buf = std::mem::take(&mut self.signal_scratch);
        let mut result = Ok(());
        'groups: for gi in 0..self.groups.len() {
            buf.clear();
            self.groups[gi].drain_signals_into(&mut buf);
            for (node, sport, msg) in buf.drain(..) {
                if let Err(e) = self.route_streamer_signal(gi, node, &sport, msg) {
                    result = Err(e);
                    break 'groups;
                }
            }
        }
        buf.clear();
        self.signal_scratch = buf;
        result
    }

    fn route_streamer_signal(
        &mut self,
        group: usize,
        node: NodeId,
        sport: &str,
        msg: Message,
    ) -> Result<(), CoreError> {
        let link = self
            .link_index
            .get(group)
            .and_then(|by_node| by_node.get(node.index()))
            .and_then(|sports| sports.iter().find(|(s, _)| s == sport))
            .map(|&(_, li)| &self.links[li]);
        if let Some(link) = link {
            self.controller.inject(link.capsule, &link.capsule_port, msg)?;
        }
        Ok(())
    }

    fn record_probes(&mut self) {
        if self.recorder.is_none() {
            return;
        }
        let t = self.clock.seconds();
        for (p, series) in self.probes.iter().zip(&self.probe_series) {
            if let Some(&v) = self.groups[p.group].output_by_handle(&p.handle).first() {
                series.push(t, v);
            }
        }
    }

    /// Threaded execution: one worker per group, synchronised via
    /// channels once per *batch* of macro steps (the paper's deployment,
    /// with the rendezvous amortised).
    ///
    /// The coordinator picks the largest batch `K` such that nothing due
    /// within the next `K` macro steps needs the coordinator: with SPort
    /// links present a signal exchange may be due every step, so `K = 1`
    /// (bit-exactly today's behaviour); without links `K` is only capped
    /// by the remaining step count and [`HybridEngine::set_max_batch`].
    /// Inside a batch, workers run counted inner loops; groups touching a
    /// cross-group flow channel synchronise between sub-steps over a
    /// [`SpinBarrier`] (one wait per sub-step), everyone else runs free.
    /// Each worker stamps its probe samples from a private clock copy, so
    /// batch-buffered samples carry exactly the local path's instants.
    ///
    /// Per-batch buffers (drained signals, probe samples) are recycled:
    /// each `Cmd::Step` carries the previous batch's vectors back to the
    /// worker, so the steady state allocates nothing.
    ///
    /// When `paced` is set ([`HybridEngine::run_paced`]), each batch is
    /// bracketed by the runner at the batch barrier: the cycle starts
    /// before capsule signals are flushed and ends once the batch's
    /// results are merged, so the measured cycle covers exactly the work
    /// the local path does for the same `K` steps.
    fn run_threaded(
        &mut self,
        t_end: f64,
        mut paced: Option<&mut PacedRunner>,
    ) -> Result<(), CoreError> {
        let h = self.config.step;
        let n_groups = self.groups.len();
        if n_groups == 0 {
            // Pure event-driven run: no solver threads to coordinate, so
            // the local path *is* the threaded path. (This also delivers
            // capsule-bound SPort messages instead of discarding them —
            // with zero groups no links can exist today, but the local
            // loop keeps that invariant by construction.)
            return self.run_local(t_end);
        }
        let n_steps = self.steps_until(t_end);

        enum Cmd {
            /// A batch of `k` macro steps, carrying recycled output
            /// buffers and a clock copy for probe timestamps.
            Step {
                h: f64,
                k: u64,
                clock: SimClock,
                signals: Vec<DrainedSignal>,
                probes: Vec<ProbeSample>,
            },
            Signal {
                node: NodeId,
                msg: Message,
            },
        }
        struct Done {
            signals: Vec<DrainedSignal>,
            probes: Vec<ProbeSample>,
            result: Result<(), urt_dataflow::FlowError>,
        }

        let networks: Vec<StreamerNetwork> = std::mem::take(&mut self.groups);
        let probes = self.probes.clone();
        let record = self.recorder.is_some();

        // Channel wiring per worker: which channels it reads before each
        // sub-step and which it publishes after. Only channel-touching
        // groups join the inner sub-step barrier.
        let mut incoming: Vec<Vec<(ChannelBufs, usize)>> = vec![Vec::new(); n_groups];
        let mut outgoing: Vec<Vec<(ChannelBufs, OutputHandle)>> = vec![Vec::new(); n_groups];
        for ch in &self.channels {
            incoming[ch.to_group].push((Arc::clone(&ch.bufs), ch.to_offset));
            outgoing[ch.from_group].push((Arc::clone(&ch.bufs), ch.from_handle));
        }
        let participating: Vec<bool> =
            (0..n_groups).map(|g| !incoming[g].is_empty() || !outgoing[g].is_empty()).collect();
        let n_participants = participating.iter().filter(|&&p| p).count();
        let barrier = (n_participants >= 2).then(|| Arc::new(SpinBarrier::new(n_participants)));

        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(n_groups);
        let mut done_rxs: Vec<Receiver<Done>> = Vec::with_capacity(n_groups);
        let mut back_rxs: Vec<Receiver<StreamerNetwork>> = Vec::with_capacity(n_groups);

        let result = std::thread::scope(|scope| -> Result<(), CoreError> {
            for (gi, mut net) in networks.into_iter().enumerate() {
                let (cmd_tx, cmd_rx) = channel::<Cmd>();
                let (done_tx, done_rx) = channel::<Done>();
                let (back_tx, back_rx) = channel::<StreamerNetwork>();
                cmd_txs.push(cmd_tx);
                done_rxs.push(done_rx);
                back_rxs.push(back_rx);
                let my_probes: Vec<(usize, Probe)> = probes
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.group == gi)
                    .map(|(i, p)| (i, p.clone()))
                    .collect();
                let my_incoming = std::mem::take(&mut incoming[gi]);
                let my_outgoing = std::mem::take(&mut outgoing[gi]);
                let my_barrier = participating[gi].then(|| barrier.clone()).flatten();
                scope.spawn(move || {
                    // First delivery failure, surfaced in the next Done so
                    // both thread policies fail identically (the local path
                    // propagates send_signal errors before stepping).
                    let mut signal_err: Option<urt_dataflow::FlowError> = None;
                    let mut staging = vec![0.0; net.external_input_width()];
                    while let Ok(cmd) = cmd_rx.recv() {
                        match cmd {
                            Cmd::Signal { node, msg } => {
                                if let Err(e) = net.send_signal(node, &msg) {
                                    signal_err.get_or_insert(e);
                                }
                            }
                            Cmd::Step { h, k, mut clock, mut signals, mut probes } => {
                                signals.clear();
                                probes.clear();
                                let mut result = match signal_err.take() {
                                    Some(e) => Err(e),
                                    None => Ok(()),
                                };
                                for i in 0..k {
                                    // Between consecutive sub-steps the
                                    // channel-touching groups rendezvous:
                                    // the wait separates last sub-step's
                                    // slot writes from this sub-step's
                                    // same-slot reads. A worker that
                                    // already failed stops stepping and
                                    // publishing but keeps waiting, so
                                    // its peers never deadlock.
                                    if i > 0 {
                                        if let Some(b) = &my_barrier {
                                            b.wait();
                                        }
                                    }
                                    if result.is_ok() && !my_incoming.is_empty() {
                                        // Front slot: pre-tick parity.
                                        let slot = (clock.step_count() % 2) as usize;
                                        for (bufs, off) in &my_incoming {
                                            let src = bufs[slot].lock();
                                            staging[*off..*off + src.len()].copy_from_slice(&src);
                                        }
                                        net.set_external_inputs(&staging);
                                    }
                                    if result.is_ok() {
                                        result = net.step(h);
                                    }
                                    clock.tick(h);
                                    if result.is_ok() {
                                        // Back slot: post-tick parity (what
                                        // consumers read next sub-step).
                                        let slot = (clock.step_count() % 2) as usize;
                                        for (bufs, handle) in &my_outgoing {
                                            bufs[slot]
                                                .lock()
                                                .copy_from_slice(net.output_by_handle(handle));
                                        }
                                        net.drain_signals_into(&mut signals);
                                        if record {
                                            let t = clock.seconds();
                                            for (pi, p) in &my_probes {
                                                if let Some(&v) =
                                                    net.output_by_handle(&p.handle).first()
                                                {
                                                    probes.push((*pi, t, v));
                                                }
                                            }
                                        }
                                    }
                                }
                                if done_tx.send(Done { signals, probes, result }).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    let _ = back_tx.send(net);
                });
            }

            // Recycled per-group buffers for Cmd::Step, and the cross-group
            // routing staging area — all allocated once per run.
            let mut recycled: Vec<StepBuffers> =
                (0..n_groups).map(|_| (Vec::new(), Vec::new())).collect();
            let mut all_signals: Vec<(usize, NodeId, String, Message)> = Vec::new();
            let mut remaining = n_steps;
            while remaining > 0 {
                // Batch size: with SPort links a signal exchange may be
                // due after any step, so the rendezvous must run every
                // step. Without links, nothing inside the batch needs the
                // coordinator (probe samples buffer with their own
                // timestamps; channels synchronise on the inner barrier).
                let k = if self.links.is_empty() { remaining.min(self.max_batch) } else { 1 };
                if let Some(runner) = paced.as_deref_mut() {
                    runner.begin();
                }
                // 1. Capsule -> streamer signals.
                for link in &self.links {
                    while let Ok(msg) = link.from_capsule.try_recv() {
                        cmd_txs[link.group]
                            .send(Cmd::Signal { node: link.node, msg })
                            .map_err(|_| CoreError::ThreadLost { group: link.group })?;
                    }
                }
                // 2. Parallel batch of macro steps.
                for (gi, tx) in cmd_txs.iter().enumerate() {
                    let (signals, probes) = std::mem::take(&mut recycled[gi]);
                    tx.send(Cmd::Step { h, k, clock: self.clock.clone(), signals, probes })
                        .map_err(|_| CoreError::Engine { detail: "worker gone".into() })?;
                }
                // 3. Coordinator catch-up. Without links the controller
                // cannot interact with the streamer world, so its
                // per-instant catch-ups run here, overlapping the solver
                // threads; with links (k = 1) it runs after signal
                // routing below, exactly as the local path orders it.
                if self.links.is_empty() {
                    for _ in 0..k {
                        self.clock.tick(h);
                        self.controller.run_until(self.clock.seconds())?;
                    }
                } else {
                    self.clock.tick(h);
                }
                let t_next = self.clock.seconds();
                // 4. Batch barrier: gather results, signals, probes.
                all_signals.clear();
                for (gi, rx) in done_rxs.iter().enumerate() {
                    let mut done = rx.recv().map_err(|_| CoreError::ThreadLost { group: gi })?;
                    done.result.map_err(CoreError::Flow)?;
                    for (node, sport, msg) in done.signals.drain(..) {
                        all_signals.push((gi, node, sport, msg));
                    }
                    if record {
                        for &(pi, t, v) in &done.probes {
                            self.probe_series[pi].push(t, v);
                        }
                    }
                    done.probes.clear();
                    recycled[gi] = (done.signals, done.probes);
                }
                // 5. Streamer -> capsule signals.
                for (gi, node, sport, msg) in all_signals.drain(..) {
                    self.route_streamer_signal(gi, node, &sport, msg)?;
                }
                // 6. Event-driven world catches up (links path; without
                // links it already ran in step 3).
                if !self.links.is_empty() {
                    self.controller.run_until(t_next)?;
                }
                if let Some(runner) = paced.as_deref_mut() {
                    // Batch barrier pacing: K steps measured as one cycle,
                    // budget attributed as K x the step budget. An early
                    // SafetyStop return drops cmd_txs, so workers exit.
                    runner.end(k, t_next)?;
                }
                remaining -= k;
            }
            drop(cmd_txs);
            Ok(())
        });

        // Recover the networks regardless of success.
        for rx in back_rxs {
            if let Ok(net) = rx.recv() {
                self.groups.push(net);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threading::ThreadPolicy;
    use urt_dataflow::flowtype::FlowType;
    use urt_dataflow::streamer::FnStreamer;
    use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
    use urt_umlrt::statemachine::StateMachineBuilder;
    use urt_umlrt::value::Value;

    fn empty_controller() -> Controller {
        let mut c = Controller::new("events");
        let sm = StateMachineBuilder::new("idle")
            .state("s")
            .initial("s", |_d: &mut (), _ctx: &mut CapsuleContext| {})
            .build()
            .unwrap();
        c.add_capsule(Box::new(SmCapsule::new(sm, ())));
        c
    }

    fn sine_net(name: &str) -> (StreamerNetwork, NodeId) {
        let mut net = StreamerNetwork::new(name);
        let n = net
            .add_streamer(
                FnStreamer::new("sine", 0, 1, |t: f64, _h, _u: &[f64], y: &mut [f64]| {
                    y[0] = t.sin()
                }),
                &[],
                &[("y", FlowType::scalar())],
            )
            .unwrap();
        (net, n)
    }

    #[test]
    fn local_engine_advances_time() {
        let (net, _) = sine_net("p");
        let mut e = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.01, policy: ThreadPolicy::CurrentThread },
        );
        e.add_group(net).unwrap();
        e.run_until(0.1).unwrap();
        assert!((e.time() - 0.1).abs() < 1e-9);
        assert_eq!(e.step_count(), 10);
    }

    #[test]
    fn probes_record_series() {
        let (net, n) = sine_net("p");
        let mut e = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.01, policy: ThreadPolicy::CurrentThread },
        );
        let g = e.add_group(net).unwrap();
        let rec = Recorder::new();
        e.set_recorder(rec.clone());
        e.add_probe(g, n, "y", "sine").unwrap();
        e.run_until(1.0).unwrap();
        let series = rec.series("sine");
        assert_eq!(series.len(), 100);
        // The sine source emits sin(t_start_of_step).
        let (t_last, v_last) = *series.last().unwrap();
        assert!((v_last - (t_last - 0.01).sin()).abs() < 1e-9);
    }

    #[test]
    fn threaded_engine_matches_local() {
        let run = |policy| {
            let (net, n) = sine_net("p");
            let mut e = HybridEngine::new(empty_controller(), EngineConfig { step: 0.01, policy });
            let g = e.add_group(net).unwrap();
            let rec = Recorder::new();
            e.set_recorder(rec.clone());
            e.add_probe(g, n, "y", "s").unwrap();
            e.run_until(0.5).unwrap();
            rec.series("s")
        };
        let local = run(ThreadPolicy::CurrentThread);
        let threaded = run(ThreadPolicy::DedicatedThreads);
        assert_eq!(local.len(), threaded.len());
        for ((t1, v1), (t2, v2)) in local.iter().zip(&threaded) {
            assert!((t1 - t2).abs() < 1e-12);
            assert!((v1 - v2).abs() < 1e-12, "lockstep equivalence");
        }
    }

    #[test]
    fn sport_round_trip_capsule_to_streamer_and_back() {
        use urt_dataflow::streamer::StreamerBehavior;
        use urt_ode::SolveError;

        // A streamer that echoes every received signal value +1 as an
        // emitted `echo` signal.
        struct Echo {
            pending: Vec<f64>,
            emitted: Vec<(String, Message)>,
        }
        impl StreamerBehavior for Echo {
            fn name(&self) -> &str {
                "echo"
            }
            fn input_width(&self) -> usize {
                0
            }
            fn output_width(&self) -> usize {
                0
            }
            fn advance(
                &mut self,
                t: f64,
                _h: f64,
                _u: &[f64],
                _y: &mut [f64],
            ) -> Result<(), SolveError> {
                for v in self.pending.drain(..) {
                    self.emitted.push((
                        "ctl".to_owned(),
                        Message::new("echo", Value::Real(v + 1.0)).with_sent_at(t),
                    ));
                }
                Ok(())
            }
            fn on_signal(&mut self, msg: &Message) {
                if let Some(v) = msg.value().as_real() {
                    self.pending.push(v);
                }
            }
            fn take_emitted(&mut self) -> Vec<(String, Message)> {
                std::mem::take(&mut self.emitted)
            }
        }

        for policy in [ThreadPolicy::CurrentThread, ThreadPolicy::DedicatedThreads] {
            let mut net = StreamerNetwork::new("p");
            let node = net
                .add_streamer(Echo { pending: Vec::new(), emitted: Vec::new() }, &[], &[])
                .unwrap();

            // Capsule: on start send `ping(41)`, count echo replies.
            let sm = StateMachineBuilder::new("driver")
                .state("s")
                .initial("s", |_d: &mut Vec<f64>, ctx: &mut CapsuleContext| {
                    ctx.send("plant", "ping", Value::Real(41.0));
                })
                .internal("s", ("plant", "echo"), |d, m, _| {
                    d.push(m.value().as_real().unwrap_or(f64::NAN));
                })
                .build()
                .unwrap();
            let mut controller = Controller::new("events");
            let cap = controller.add_capsule(Box::new(SmCapsule::new(sm, Vec::new())));

            let mut e = HybridEngine::new(controller, EngineConfig { step: 0.01, policy });
            let g = e.add_group(net).unwrap();
            e.link_sport(g, node, "ctl", cap, "plant").unwrap();
            e.run_until(0.05).unwrap();
            // The reply arrived back in the capsule: verify by state data
            // via the controller debug path (delivered count >= 1).
            assert!(e.controller().delivered_count() >= 1, "{policy}: echo reply delivered");
        }
    }

    #[test]
    fn capsule_replies_pending_at_segment_end_survive_into_the_next_segment() {
        use urt_dataflow::streamer::StreamerBehavior;
        use urt_ode::SolveError;

        // Emits `tick` every step and reports how many `ack` replies it
        // has received so far as its output.
        struct Pinger {
            acks: u32,
            emitted: Vec<(String, Message)>,
        }
        impl StreamerBehavior for Pinger {
            fn name(&self) -> &str {
                "pinger"
            }
            fn input_width(&self) -> usize {
                0
            }
            fn output_width(&self) -> usize {
                1
            }
            fn advance(
                &mut self,
                t: f64,
                _h: f64,
                _u: &[f64],
                y: &mut [f64],
            ) -> Result<(), SolveError> {
                y[0] = f64::from(self.acks);
                self.emitted
                    .push(("ctl".to_owned(), Message::new("tick", Value::Empty).with_sent_at(t)));
                Ok(())
            }
            fn on_signal(&mut self, _msg: &Message) {
                self.acks += 1;
            }
            fn take_emitted(&mut self) -> Vec<(String, Message)> {
                std::mem::take(&mut self.emitted)
            }
        }

        // Regression for the threaded shutdown drain: the capsule's reply
        // to the *final* macro step of a `run_until` segment is queued
        // after the last rendezvous; the old teardown drained and
        // discarded it, so a follow-up segment started one ack short on
        // the threaded path only. Every ack must now survive the segment
        // boundary under both policies.
        let run = |policy| {
            let sm = StateMachineBuilder::new("driver")
                .state("s")
                .initial("s", |_d: &mut (), _ctx: &mut CapsuleContext| {})
                .internal("s", ("plant", "tick"), |_d, _m, ctx| {
                    ctx.send("plant", "ack", Value::Empty);
                })
                .build()
                .unwrap();
            let mut controller = Controller::new("events");
            let cap = controller.add_capsule(Box::new(SmCapsule::new(sm, ())));
            let mut net = StreamerNetwork::new("p");
            let node = net
                .add_streamer(
                    Pinger { acks: 0, emitted: Vec::new() },
                    &[],
                    &[("y", FlowType::scalar())],
                )
                .unwrap();
            let mut e = HybridEngine::new(controller, EngineConfig { step: 0.01, policy });
            let g = e.add_group(net).unwrap();
            e.link_sport(g, node, "ctl", cap, "plant").unwrap();
            let rec = Recorder::new();
            e.set_recorder(rec.clone());
            e.add_probe(g, node, "y", "acks").unwrap();
            // Two segments: the segment boundary is where the old drain
            // lost the in-flight reply.
            e.run_until(0.05).unwrap();
            e.run_until(0.10).unwrap();
            rec.series("acks")
        };
        let local = run(ThreadPolicy::CurrentThread);
        let threaded = run(ThreadPolicy::DedicatedThreads);
        assert_eq!(local.len(), 10);
        assert_eq!(threaded.len(), 10);
        // Step k sees the acks for ticks 0..k (each reply arrives at the
        // start of the next step) — including tick 4's reply, which was
        // in flight across the segment boundary.
        for (name, series) in [("local", &local), ("threaded", &threaded)] {
            for (k, (_, v)) in series.iter().enumerate() {
                assert_eq!(*v, k as f64, "{name}: acks visible at step {k}");
            }
        }
        for ((t1, v1), (t2, v2)) in local.iter().zip(&threaded) {
            assert_eq!(t1.to_bits(), t2.to_bits());
            assert_eq!(v1.to_bits(), v2.to_bits());
        }
    }

    #[test]
    fn declared_sports_are_checked_at_link_time() {
        use urt_dataflow::port::SPortSpec;
        use urt_umlrt::protocol::Protocol;

        let (mut net, n) = sine_net("p");
        net.add_sport(n, SPortSpec::new("ctl", Protocol::new("Ctl"))).unwrap();
        let mut e = HybridEngine::new(empty_controller(), EngineConfig::default());
        let g = e.add_group(net).unwrap();
        // Wrong sport name: rejected because the node declares its sports.
        assert!(matches!(e.link_sport(g, n, "ghost", 0, "plant"), Err(CoreError::Engine { .. })));
        // Declared name: accepted.
        e.link_sport(g, n, "ctl", 0, "plant").unwrap();
    }

    #[test]
    fn duplicate_sport_link_is_refused() {
        // Regression: the old index kept the first link per key and
        // silently dropped the second — now it is a stable-coded error.
        let (net, n) = sine_net("p");
        let mut e = HybridEngine::new(empty_controller(), EngineConfig::default());
        let g = e.add_group(net).unwrap();
        e.link_sport(g, n, "ctl", 0, "plant").unwrap();
        let err = e.link_sport(g, n, "ctl", 0, "other").unwrap_err();
        assert!(matches!(err, CoreError::DuplicateSportLink { .. }));
        assert!(err.to_string().starts_with("URT113: "), "stable code: {err}");
        // A different sport on the same node is still fine.
        e.link_sport(g, n, "aux", 0, "plant").unwrap();
    }

    #[test]
    fn engine_errors_on_bad_indices() {
        let mut e = HybridEngine::new(empty_controller(), EngineConfig::default());
        assert!(matches!(
            e.add_probe(0, NodeId::from_index(0), "y", "s"),
            Err(CoreError::Engine { .. })
        ));
        assert!(matches!(
            e.link_sport(3, NodeId::from_index(0), "s", 0, "p"),
            Err(CoreError::Engine { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "macro step must be positive")]
    fn config_validates_step() {
        let _ = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.0, policy: ThreadPolicy::CurrentThread },
        );
    }

    #[test]
    fn from_compiled_refuses_bad_step_with_structured_error() {
        use crate::elaborate::{elaborate, validate_gate, BehaviorRegistry};
        use crate::model::ModelBuilder;
        let mut b = ModelBuilder::new("m");
        let s = b.streamer("wave", "none");
        b.streamer_out(s, "y", FlowType::scalar());
        let registry = BehaviorRegistry::new().streamer("wave", || {
            Box::new(FnStreamer::new("wave", 0, 1, |t: f64, _h, _u: &[f64], y: &mut [f64]| {
                y[0] = t
            }))
        });
        let compiled = elaborate(&b.build(), registry, &validate_gate).unwrap();
        for step in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = HybridEngine::from_compiled(
                &compiled,
                EngineConfig { step, policy: ThreadPolicy::CurrentThread },
            )
            .expect_err("non-positive/non-finite step must be refused");
            assert!(matches!(err, CoreError::InvalidStep { .. }), "step {step}: {err}");
            assert!(err.to_string().starts_with("URT116: "), "step {step}: {err}");
        }
        // A valid step still builds from the same (borrowed) artifact.
        assert!(HybridEngine::from_compiled(&compiled, EngineConfig::default()).is_ok());
    }

    /// A non-feedthrough unit-delay block: output is the input latched at
    /// the step start (for cross-group consumers, the channel's front
    /// sample — i.e. the producer's previous step's output).
    struct Witness;
    impl urt_dataflow::streamer::StreamerBehavior for Witness {
        fn name(&self) -> &str {
            "witness"
        }
        fn input_width(&self) -> usize {
            1
        }
        fn output_width(&self) -> usize {
            1
        }
        fn direct_feedthrough(&self) -> bool {
            false
        }
        fn advance(
            &mut self,
            _t: f64,
            _h: f64,
            u: &[f64],
            y: &mut [f64],
        ) -> Result<(), urt_ode::SolveError> {
            y[0] = u[0];
            Ok(())
        }
    }

    /// Non-feedthrough ramp source: y = 100 t at the step start.
    struct Ramp;
    impl urt_dataflow::streamer::StreamerBehavior for Ramp {
        fn name(&self) -> &str {
            "ramp"
        }
        fn input_width(&self) -> usize {
            0
        }
        fn output_width(&self) -> usize {
            1
        }
        fn direct_feedthrough(&self) -> bool {
            false
        }
        fn advance(
            &mut self,
            t: f64,
            _h: f64,
            _u: &[f64],
            y: &mut [f64],
        ) -> Result<(), urt_ode::SolveError> {
            y[0] = 100.0 * t;
            Ok(())
        }
    }

    fn cross_group_engine(policy: ThreadPolicy) -> (HybridEngine, Recorder) {
        let mut producer = StreamerNetwork::new("producer");
        let src = producer.add_streamer(Ramp, &[], &[("y", FlowType::scalar())]).unwrap();
        let mut consumer = StreamerNetwork::new("consumer");
        let wit = consumer
            .add_streamer(Witness, &[("u", FlowType::scalar())], &[("y", FlowType::scalar())])
            .unwrap();
        consumer.export_input(wit, "u").unwrap();
        let mut e = HybridEngine::new(empty_controller(), EngineConfig { step: 0.01, policy });
        let gp = e.add_group(producer).unwrap();
        let gc = e.add_group(consumer).unwrap();
        e.link_flow((gp, src, "y"), (gc, wit, "y")).unwrap_err(); // wrong port direction
        e.link_flow((gp, src, "y"), (gc, wit, "u")).unwrap();
        let rec = Recorder::new();
        e.set_recorder(rec.clone());
        e.add_probe(gp, src, "y", "src").unwrap();
        e.add_probe(gc, wit, "y", "wit").unwrap();
        (e, rec)
    }

    #[test]
    fn cross_group_channel_delays_exactly_one_step() {
        for policy in [ThreadPolicy::CurrentThread, ThreadPolicy::DedicatedThreads] {
            let (mut e, rec) = cross_group_engine(policy);
            e.run_until(0.1).unwrap();
            let src = rec.series("src");
            let wit = rec.series("wit");
            assert_eq!(src.len(), 10, "{policy}");
            assert_eq!(wit.len(), 10, "{policy}");
            // Step 0: the witness read the channel's initial zero buffer.
            assert_eq!(wit[0].1.to_bits(), 0.0f64.to_bits(), "{policy}: initial sample");
            // Step k: the witness carries the producer's step k-1 output.
            for k in 1..wit.len() {
                assert_eq!(
                    wit[k].1.to_bits(),
                    src[k - 1].1.to_bits(),
                    "{policy}: one-step delay at sample {k}"
                );
            }
        }
    }

    #[test]
    fn cross_group_channel_is_policy_and_batch_invariant() {
        let run = |policy, max_batch| {
            let (mut e, rec) = cross_group_engine(policy);
            e.set_max_batch(max_batch);
            e.run_until(0.25).unwrap();
            (rec.series("src"), rec.series("wit"))
        };
        let local = run(ThreadPolicy::CurrentThread, 1);
        for max_batch in [1, 7, 4096] {
            let threaded = run(ThreadPolicy::DedicatedThreads, max_batch);
            for (a, b) in [(&local.0, &threaded.0), (&local.1, &threaded.1)] {
                assert_eq!(a.len(), b.len(), "max_batch={max_batch}");
                for ((t1, v1), (t2, v2)) in a.iter().zip(b) {
                    assert_eq!(t1.to_bits(), t2.to_bits(), "max_batch={max_batch}: time");
                    assert_eq!(v1.to_bits(), v2.to_bits(), "max_batch={max_batch}: value");
                }
            }
        }
    }

    #[test]
    fn set_max_batch_zero_clamps_to_one() {
        // Regression: `set_max_batch(0)` must behave as batch size 1, not
        // hang the threaded scheduler in a zero-progress loop (`remaining`
        // would never decrease) — the cap is clamped to 1.
        let run = |policy, max_batch| {
            let (mut e, rec) = cross_group_engine(policy);
            e.set_max_batch(max_batch);
            e.run_until(0.1).unwrap();
            (rec.series("src"), rec.series("wit"))
        };
        let reference = run(ThreadPolicy::DedicatedThreads, 1);
        let clamped = run(ThreadPolicy::DedicatedThreads, 0);
        for (a, b) in [(&reference.0, &clamped.0), (&reference.1, &clamped.1)] {
            assert_eq!(a.len(), b.len());
            assert_eq!(a.len(), 10, "all ten macro steps ran");
            for ((t1, v1), (t2, v2)) in a.iter().zip(b.iter()) {
                assert_eq!(t1.to_bits(), t2.to_bits());
                assert_eq!(v1.to_bits(), v2.to_bits());
            }
        }
    }

    #[test]
    fn link_flow_validates_its_endpoints() {
        let mut producer = StreamerNetwork::new("producer");
        let src = producer.add_streamer(Ramp, &[], &[("y", FlowType::scalar())]).unwrap();
        let mut consumer = StreamerNetwork::new("consumer");
        let wit = consumer
            .add_streamer(Witness, &[("u", FlowType::scalar())], &[("y", FlowType::scalar())])
            .unwrap();
        consumer.export_input(wit, "u").unwrap();
        // A feedthrough consumer in a third group.
        let mut ft_net = StreamerNetwork::new("ft");
        let gain = ft_net
            .add_streamer(
                FnStreamer::new("gain", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| y[0] = u[0]),
                &[("u", FlowType::scalar())],
                &[("y", FlowType::scalar())],
            )
            .unwrap();
        ft_net.export_input(gain, "u").unwrap();
        // An unexported consumer in a fourth group (input driven in-network
        // so the group still validates).
        let mut closed = StreamerNetwork::new("closed");
        let csrc = closed.add_streamer(Ramp, &[], &[("y", FlowType::scalar())]).unwrap();
        let cwit = closed
            .add_streamer(Witness, &[("u", FlowType::scalar())], &[("y", FlowType::scalar())])
            .unwrap();
        closed.flow((csrc, "y"), (cwit, "u")).unwrap();

        let mut e = HybridEngine::new(empty_controller(), EngineConfig::default());
        let gp = e.add_group(producer).unwrap();
        let gc = e.add_group(consumer).unwrap();
        let gf = e.add_group(ft_net).unwrap();
        let gx = e.add_group(closed).unwrap();

        // Bad group index.
        assert!(matches!(
            e.link_flow((9, src, "y"), (gc, wit, "u")),
            Err(CoreError::Engine { .. })
        ));
        // Same group.
        let err = e.link_flow((gc, wit, "y"), (gc, wit, "u")).unwrap_err();
        assert!(err.to_string().contains("in-network"), "{err}");
        // Feedthrough consumer.
        let err = e.link_flow((gp, src, "y"), (gf, gain, "u")).unwrap_err();
        assert!(err.to_string().contains("feedthrough"), "{err}");
        // Unexported consumer input.
        let err = e.link_flow((gp, src, "y"), (gx, cwit, "u")).unwrap_err();
        assert!(err.to_string().contains("not exported"), "{err}");
        // Valid link, then a second channel into the same input.
        e.link_flow((gp, src, "y"), (gc, wit, "u")).unwrap();
        let err = e.link_flow((gx, csrc, "y"), (gc, wit, "u")).unwrap_err();
        assert!(err.to_string().contains("already fed"), "{err}");
    }

    #[test]
    fn link_flow_enforces_the_subset_rule() {
        use urt_dataflow::flowtype::Unit;
        let mut producer = StreamerNetwork::new("producer");
        let src =
            producer.add_streamer(Ramp, &[], &[("y", FlowType::with_unit(Unit::Kelvin))]).unwrap();
        let mut consumer = StreamerNetwork::new("consumer");
        let wit = consumer
            .add_streamer(
                Witness,
                &[("u", FlowType::with_unit(Unit::Meter))],
                &[("y", FlowType::scalar())],
            )
            .unwrap();
        consumer.export_input(wit, "u").unwrap();
        let mut e = HybridEngine::new(empty_controller(), EngineConfig::default());
        let gp = e.add_group(producer).unwrap();
        let gc = e.add_group(consumer).unwrap();
        let err = e.link_flow((gp, src, "y"), (gc, wit, "u")).unwrap_err();
        assert!(
            matches!(err, CoreError::Flow(urt_dataflow::FlowError::TypeMismatch { .. })),
            "{err}"
        );
    }

    #[test]
    fn threaded_engine_with_no_groups_is_pure_event_run() {
        let mut e = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.01, policy: ThreadPolicy::DedicatedThreads },
        );
        e.run_until(0.05).unwrap();
        assert!((e.time() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn run_paced_matches_run_until_bit_identically() {
        use crate::pacer::PacedConfig;
        // Pacing only inserts waits; at an extreme rate the waits vanish
        // and the computed series must be bit-identical to a free run.
        let free = {
            let (mut e, rec) = cross_group_engine(ThreadPolicy::CurrentThread);
            e.run_until(0.1).unwrap();
            (rec.series("src"), rec.series("wit"))
        };
        for policy in [ThreadPolicy::CurrentThread, ThreadPolicy::DedicatedThreads] {
            let (mut e, rec) = cross_group_engine(policy);
            let report =
                e.run_paced(0.1, PacedConfig::new().with_rate(1e9).with_budget_ns(1e12)).unwrap();
            assert_eq!(report.steps, 10, "{policy}");
            assert_eq!(report.misses, 0, "{policy}: generous budget never misses");
            assert!(report.samples >= 1 && report.samples <= 10, "{policy}");
            assert!(report.p50_ns <= report.p99_ns && report.p99_ns <= report.worst_ns.max(1.0));
            for (name, a) in [("src", &free.0), ("wit", &free.1)] {
                let b = rec.series(name);
                assert_eq!(a.len(), b.len(), "{policy}/{name}");
                for ((t1, v1), (t2, v2)) in a.iter().zip(&b) {
                    assert_eq!(t1.to_bits(), t2.to_bits(), "{policy}/{name}: time");
                    assert_eq!(v1.to_bits(), v2.to_bits(), "{policy}/{name}: value");
                }
            }
        }
    }

    #[test]
    fn run_paced_threaded_paces_at_batch_barriers() {
        use crate::pacer::PacedConfig;
        // Without SPort links the threaded scheduler batches; pacing then
        // happens per batch and the report says so. With max_batch capped
        // to 1 every macro step becomes its own cycle again.
        let (net, _) = sine_net("p");
        let mut e = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.01, policy: ThreadPolicy::DedicatedThreads },
        );
        e.add_group(net).unwrap();
        let report = e.run_paced(0.1, PacedConfig::new().with_rate(1e9)).unwrap();
        assert_eq!(report.steps, 10);
        assert_eq!(report.samples, 1, "one 10-step batch");
        assert!(report.batched);

        let (net, _) = sine_net("p");
        let mut e = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.01, policy: ThreadPolicy::DedicatedThreads },
        );
        e.add_group(net).unwrap();
        e.set_max_batch(1);
        let report = e.run_paced(0.1, PacedConfig::new().with_rate(1e9)).unwrap();
        assert_eq!((report.steps, report.samples), (10, 10));
        assert!(!report.batched);
    }

    #[test]
    fn run_paced_with_no_groups_paces_the_event_loop() {
        use crate::pacer::PacedConfig;
        let mut e = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.01, policy: ThreadPolicy::DedicatedThreads },
        );
        let report = e.run_paced(0.05, PacedConfig::new().with_rate(1e9)).unwrap();
        assert_eq!(report.steps, 5);
        assert!((e.time() - 0.05).abs() < 1e-9);
    }

    #[cfg(feature = "timing-tests")]
    #[test]
    fn run_paced_actually_paces_against_the_wall_clock() {
        use crate::pacer::PacedConfig;
        // 10 steps of 10 ms sim at 10x real time = at least 10 ms of wall
        // time; a free run finishes in microseconds.
        let (net, _) = sine_net("p");
        let mut e = HybridEngine::new(
            empty_controller(),
            EngineConfig { step: 0.01, policy: ThreadPolicy::CurrentThread },
        );
        e.add_group(net).unwrap();
        let start = std::time::Instant::now();
        let report = e.run_paced(0.1, PacedConfig::new().with_rate(10.0)).unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(9), "paced to the clock");
        assert_eq!(report.steps, 10);
        assert_eq!(report.rate, 10.0);
    }
}
