//! Scripted environment scenarios: timed message injections driving an
//! engine run (the workload generators of the E-experiments and tests).

use crate::engine::HybridEngine;
use crate::error::CoreError;
use urt_umlrt::message::Message;
use urt_umlrt::value::Value;

/// One scripted stimulus.
#[derive(Debug, Clone, PartialEq)]
pub struct Stimulus {
    /// Injection time (engine simulation time, seconds).
    pub at: f64,
    /// Destination capsule index.
    pub capsule: usize,
    /// Destination port.
    pub port: String,
    /// Signal name.
    pub signal: String,
    /// Payload.
    pub value: Value,
}

/// A time-ordered list of stimuli, replayed into an engine.
///
/// # Examples
///
/// ```
/// use urt_core::scenario::Scenario;
/// use urt_umlrt::value::Value;
///
/// let scenario = Scenario::new()
///     .at(1.0, 0, "ctl", "start", Value::Empty)
///     .at(5.0, 0, "ctl", "stop", Value::Empty);
/// assert_eq!(scenario.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scenario {
    stimuli: Vec<Stimulus>,
}

impl Scenario {
    /// An empty scenario.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a stimulus (builder style). Stimuli may be added in any
    /// order; replay sorts by time.
    pub fn at(
        mut self,
        time: f64,
        capsule: usize,
        port: impl Into<String>,
        signal: impl Into<String>,
        value: Value,
    ) -> Self {
        self.stimuli.push(Stimulus {
            at: time,
            capsule,
            port: port.into(),
            signal: signal.into(),
            value,
        });
        self
    }

    /// Number of stimuli.
    pub fn len(&self) -> usize {
        self.stimuli.len()
    }

    /// Whether the scenario is empty.
    pub fn is_empty(&self) -> bool {
        self.stimuli.is_empty()
    }

    /// Runs `engine` until `t_end`, injecting each stimulus at (or just
    /// before) its scheduled time, in time order.
    ///
    /// # Errors
    ///
    /// Propagates engine and injection failures.
    pub fn run(&self, engine: &mut HybridEngine, t_end: f64) -> Result<(), CoreError> {
        let mut ordered: Vec<&Stimulus> = self.stimuli.iter().collect();
        ordered.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
        for s in ordered {
            if s.at > t_end {
                break;
            }
            if s.at > engine.time() {
                engine.run_until(s.at)?;
            }
            let msg = Message::new(s.signal.clone(), s.value.clone()).with_sent_at(engine.time());
            engine.controller_mut().inject(s.capsule, &s.port, msg)?;
        }
        engine.run_until(t_end)?;
        Ok(())
    }
}

impl FromIterator<Stimulus> for Scenario {
    fn from_iter<I: IntoIterator<Item = Stimulus>>(iter: I) -> Self {
        Scenario { stimuli: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::threading::ThreadPolicy;
    use urt_umlrt::capsule::{CapsuleContext, SmCapsule};
    use urt_umlrt::controller::Controller;
    use urt_umlrt::statemachine::StateMachineBuilder;

    fn counting_engine() -> HybridEngine {
        let sm = StateMachineBuilder::new("counter")
            .state("s")
            .initial("s", |_d: &mut Vec<f64>, _ctx: &mut CapsuleContext| {})
            .internal("s", ("env", "ping"), |d, m, ctx| {
                d.push(ctx.now());
                let _ = m;
            })
            .build()
            .unwrap();
        let mut c = Controller::new("ev");
        c.add_capsule(Box::new(SmCapsule::new(sm, Vec::new())));
        HybridEngine::new(c, EngineConfig { step: 0.01, policy: ThreadPolicy::CurrentThread })
    }

    #[test]
    fn stimuli_arrive_in_time_order() {
        // Added out of order on purpose.
        let scenario = Scenario::new()
            .at(0.5, 0, "env", "ping", Value::Empty)
            .at(0.1, 0, "env", "ping", Value::Empty)
            .at(0.3, 0, "env", "ping", Value::Empty);
        let mut engine = counting_engine();
        scenario.run(&mut engine, 1.0).unwrap();
        assert!((engine.time() - 1.0).abs() < 1e-9);
        assert_eq!(engine.controller().delivered_count(), 3);
    }

    #[test]
    fn stimuli_beyond_t_end_are_skipped() {
        let scenario = Scenario::new().at(0.1, 0, "env", "ping", Value::Empty).at(
            9.0,
            0,
            "env",
            "ping",
            Value::Empty,
        );
        let mut engine = counting_engine();
        scenario.run(&mut engine, 1.0).unwrap();
        assert_eq!(engine.controller().delivered_count(), 1);
    }

    #[test]
    fn empty_scenario_just_runs() {
        let mut engine = counting_engine();
        Scenario::new().run(&mut engine, 0.5).unwrap();
        assert!((engine.time() - 0.5).abs() < 1e-9);
        assert!(Scenario::new().is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let s: Scenario = (0..3)
            .map(|i| Stimulus {
                at: i as f64,
                capsule: 0,
                port: "p".into(),
                signal: "s".into(),
                value: Value::Int(i),
            })
            .collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn bad_capsule_index_errors() {
        let scenario = Scenario::new().at(0.1, 9, "env", "ping", Value::Empty);
        let mut engine = counting_engine();
        assert!(scenario.run(&mut engine, 1.0).is_err());
    }
}
