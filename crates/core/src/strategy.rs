//! The Figure 1 pattern: *State* for capsules, *Strategy* for solvers.
//!
//! The paper's class diagram separates state logic (capsule state
//! machines) from algorithms (concrete solver strategies attached to
//! streamers): "This method separating algorithms from states, making the
//! architecture of software very sound, is a good design pattern." The
//! [`StrategyCatalog`] is the runtime face of that diagram — named
//! strategy factories, swappable per streamer without touching equations.

use std::collections::BTreeMap;
use std::fmt;
use urt_ode::solver::{Solver, SolverKind};

/// Factory for a solver strategy instance.
pub type StrategyFactory = Box<dyn Fn() -> Box<dyn Solver + Send> + Send + Sync>;

/// A catalogue of named solver strategies (Figure 1's `Strategy` with its
/// `ConcreteStrategyA/B/C...` subclasses).
///
/// # Examples
///
/// ```
/// use urt_core::strategy::StrategyCatalog;
///
/// let catalog = StrategyCatalog::with_defaults();
/// let solver = catalog.create("rk4").expect("rk4 is a default strategy");
/// assert_eq!(solver.name(), "rk4");
/// assert!(catalog.names().len() >= 5);
/// ```
pub struct StrategyCatalog {
    factories: BTreeMap<String, StrategyFactory>,
}

impl fmt::Debug for StrategyCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategyCatalog").field("strategies", &self.names()).finish()
    }
}

impl Default for StrategyCatalog {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl StrategyCatalog {
    /// An empty catalogue.
    pub fn new() -> Self {
        StrategyCatalog { factories: BTreeMap::new() }
    }

    /// A catalogue pre-populated with every [`SolverKind`].
    pub fn with_defaults() -> Self {
        let mut cat = StrategyCatalog::new();
        for kind in SolverKind::ALL {
            cat.register(kind.to_string(), move || kind.create());
        }
        cat
    }

    /// Registers (or replaces) a named strategy.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> Box<dyn Solver + Send> + Send + Sync + 'static,
    {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Instantiates a strategy by name.
    pub fn create(&self, name: &str) -> Option<Box<dyn Solver + Send>> {
        self.factories.get(name).map(|f| f())
    }

    /// Registered strategy names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

/// Renders the realised Figure 1 relations: which concrete strategies
/// implement the `Strategy` interface and where `State` lives.
pub fn render_fig1(catalog: &StrategyCatalog) -> String {
    let mut out = String::new();
    out.push_str("State            <- urt_umlrt::statemachine::StateMachine (capsule behaviour)\n");
    out.push_str("Strategy         <- urt_ode::solver::Solver (streamer behaviour)\n");
    for name in catalog.names() {
        out.push_str(&format!("ConcreteStrategy <- {name}\n"));
    }
    out.push_str("Capsule 1..* State      (urt_umlrt::capsule::SmCapsule)\n");
    out.push_str("Streamer 1..* Strategy  (urt_dataflow::streamer::OdeStreamer)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use urt_ode::solver::ForwardEuler;

    #[test]
    fn defaults_cover_all_solver_kinds() {
        let cat = StrategyCatalog::with_defaults();
        assert_eq!(cat.len(), SolverKind::ALL.len());
        for kind in SolverKind::ALL {
            let s = cat.create(&kind.to_string()).expect("registered");
            assert_eq!(s.name(), kind.to_string());
        }
        assert!(cat.create("nonexistent").is_none());
        assert!(!cat.is_empty());
    }

    #[test]
    fn custom_strategy_registration() {
        let mut cat = StrategyCatalog::new();
        assert!(cat.is_empty());
        cat.register("my-euler", || Box::new(ForwardEuler::new()));
        let s = cat.create("my-euler").unwrap();
        assert_eq!(s.name(), "euler");
        assert_eq!(cat.names(), vec!["my-euler"]);
    }

    #[test]
    fn replacing_a_strategy() {
        let mut cat = StrategyCatalog::with_defaults();
        let before = cat.len();
        cat.register("rk4", || Box::new(ForwardEuler::new()));
        assert_eq!(cat.len(), before, "replacement does not grow the catalogue");
        assert_eq!(cat.create("rk4").unwrap().name(), "euler");
    }

    #[test]
    fn fig1_rendering_mentions_pattern_roles() {
        let cat = StrategyCatalog::with_defaults();
        let s = render_fig1(&cat);
        assert!(s.contains("State"));
        assert!(s.contains("Strategy"));
        assert!(s.contains("ConcreteStrategy"));
        assert!(s.contains("rk4"));
        assert!(s.contains("Streamer"));
    }
}
