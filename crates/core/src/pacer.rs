//! Real-time pacing: running the unified model against the wall clock.
//!
//! Simulation normally runs as fast as possible; deploying the model as a
//! real controller (the paper's end goal) means each macro step must wait
//! for wall-clock time to catch up. [`RealTimePacer`] provides that
//! coupling, plus lag diagnostics when the solver cannot keep up.

use std::time::{Duration, Instant};

/// Couples simulation time to the wall clock at a configurable rate.
///
/// # Examples
///
/// ```
/// use urt_core::pacer::RealTimePacer;
///
/// // Run 10x faster than real time (0.1 wall seconds per sim second).
/// let mut pacer = RealTimePacer::new(10.0);
/// let lag = pacer.pace(0.001); // returns almost immediately at this rate
/// assert!(lag >= 0.0);
/// assert_eq!(pacer.rate(), 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct RealTimePacer {
    start: Instant,
    rate: f64,
    worst_lag: f64,
}

impl RealTimePacer {
    /// Creates a pacer; `rate` is simulated seconds per wall second
    /// (1.0 = real time, 2.0 = twice as fast).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        RealTimePacer { start: Instant::now(), rate, worst_lag: 0.0 }
    }

    /// Restarts the wall-clock origin (call right before the run loop).
    pub fn restart(&mut self) {
        self.start = Instant::now();
        self.worst_lag = 0.0;
    }

    /// Blocks until the wall clock reaches simulation time `sim_time`.
    /// Returns the lag (seconds the simulation was *behind* the wall
    /// clock when it arrived; zero when it had to wait).
    pub fn pace(&mut self, sim_time: f64) -> f64 {
        let target = Duration::from_secs_f64((sim_time / self.rate).max(0.0));
        let elapsed = self.start.elapsed();
        if elapsed < target {
            std::thread::sleep(target - elapsed);
            0.0
        } else {
            let lag = (elapsed - target).as_secs_f64() * self.rate;
            self.worst_lag = self.worst_lag.max(lag);
            lag
        }
    }

    /// Worst lag observed so far, in simulated seconds.
    pub fn lag_seconds(&self) -> f64 {
        self.worst_lag
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Wall-clock latency bounds are inherently load-sensitive (the thread
    // can be descheduled between `new` and `pace`), so they only run with
    // `--features timing-tests`; the logic-only pacer tests below always run.
    #[cfg(feature = "timing-tests")]
    #[test]
    fn pacer_waits_for_wall_clock() {
        // 100x real time: 0.005 sim seconds = 50 us wall.
        let mut p = RealTimePacer::new(100.0);
        let start = Instant::now();
        p.pace(0.005);
        assert!(start.elapsed() >= Duration::from_micros(45), "waited for the wall clock");
        assert_eq!(p.lag_seconds(), 0.0);
    }

    #[test]
    fn pacer_logic_invariants() {
        // Timing-free invariants: lag is never negative, never decreases
        // except across restart, and a generous pace target is never late
        // by more than the elapsed wall time allows.
        let mut p = RealTimePacer::new(100.0);
        let lag = p.pace(0.005);
        assert!(lag >= 0.0);
        assert!(p.lag_seconds() >= lag);
        let worst = p.lag_seconds();
        let lag2 = p.pace(0.006);
        assert!(lag2 >= 0.0);
        assert!(p.lag_seconds() >= worst, "worst lag never decreases");
        p.restart();
        assert_eq!(p.lag_seconds(), 0.0, "restart resets the lag diagnostic");
        assert_eq!(p.rate(), 100.0);
    }

    #[test]
    fn pacer_reports_lag_when_behind() {
        let mut p = RealTimePacer::new(1e6);
        std::thread::sleep(Duration::from_millis(2));
        // Asking for sim time 0: we are already late by ~2000 sim seconds.
        let lag = p.pace(0.0);
        assert!(lag > 0.0);
        assert!(p.lag_seconds() >= lag * 0.99);
        p.restart();
        assert_eq!(p.lag_seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn pacer_validates_rate() {
        let _ = RealTimePacer::new(0.0);
    }
}
