//! Real-time pacing: running the unified model against the wall clock.
//!
//! Simulation normally runs as fast as possible; deploying the model as a
//! real controller (the paper's end goal) means each macro step must wait
//! for wall-clock time to catch up. [`RealTimePacer`] provides that
//! coupling, plus lag diagnostics when the solver cannot keep up.

use std::time::{Duration, Instant};

/// Couples simulation time to the wall clock at a configurable rate.
///
/// # Examples
///
/// ```
/// use urt_core::pacer::RealTimePacer;
///
/// // Run 10x faster than real time (0.1 wall seconds per sim second).
/// let mut pacer = RealTimePacer::new(10.0);
/// let lag = pacer.pace(0.001); // returns almost immediately at this rate
/// assert!(lag >= 0.0);
/// assert_eq!(pacer.rate(), 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct RealTimePacer {
    start: Instant,
    rate: f64,
    worst_lag: f64,
}

impl RealTimePacer {
    /// Creates a pacer; `rate` is simulated seconds per wall second
    /// (1.0 = real time, 2.0 = twice as fast).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        RealTimePacer { start: Instant::now(), rate, worst_lag: 0.0 }
    }

    /// Restarts the wall-clock origin (call right before the run loop).
    pub fn restart(&mut self) {
        self.start = Instant::now();
        self.worst_lag = 0.0;
    }

    /// Blocks until the wall clock reaches simulation time `sim_time`.
    /// Returns the lag (seconds the simulation was *behind* the wall
    /// clock when it arrived; zero when it had to wait).
    pub fn pace(&mut self, sim_time: f64) -> f64 {
        let target = Duration::from_secs_f64((sim_time / self.rate).max(0.0));
        let elapsed = self.start.elapsed();
        if elapsed < target {
            std::thread::sleep(target - elapsed);
            0.0
        } else {
            let lag = (elapsed - target).as_secs_f64() * self.rate;
            self.worst_lag = self.worst_lag.max(lag);
            lag
        }
    }

    /// Worst lag observed so far, in simulated seconds.
    pub fn lag_seconds(&self) -> f64 {
        self.worst_lag
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// Per-macro-step deadline accounting against a declared budget.
///
/// The static cost pass proves (from declared or calibrated costs) that
/// a model *can* meet its budget before anything runs; `StepBudget` is
/// the runtime half of the same contract: feed it the measured wall
/// time of each macro step and it counts deadline misses and tracks the
/// worst observed step. Construct it from the budget the compiled
/// artifact carries
/// ([`CompiledSystem::step_budget_ns`](crate::elaborate::CompiledSystem::step_budget_ns)).
///
/// # Examples
///
/// ```
/// use urt_core::pacer::StepBudget;
///
/// let mut budget = StepBudget::new(1_000_000.0); // 1 ms per macro step
/// assert!(!budget.record(800_000.0)); // met
/// assert!(budget.record(1_200_000.0)); // missed
/// assert_eq!(budget.misses(), 1);
/// assert_eq!(budget.worst_ns(), 1_200_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct StepBudget {
    budget_ns: f64,
    steps: u64,
    misses: u64,
    worst_ns: f64,
}

impl StepBudget {
    /// Creates a budget of `budget_ns` nanoseconds per macro step.
    ///
    /// # Panics
    ///
    /// Panics if `budget_ns` is not positive and finite.
    pub fn new(budget_ns: f64) -> Self {
        assert!(budget_ns.is_finite() && budget_ns > 0.0, "budget must be positive ns");
        StepBudget { budget_ns, steps: 0, misses: 0, worst_ns: 0.0 }
    }

    /// Records one macro step's measured wall time; returns `true` when
    /// the step missed its deadline.
    pub fn record(&mut self, elapsed_ns: f64) -> bool {
        self.steps += 1;
        self.worst_ns = self.worst_ns.max(elapsed_ns);
        let missed = elapsed_ns > self.budget_ns;
        if missed {
            self.misses += 1;
        }
        missed
    }

    /// Number of steps recorded so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of deadline misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Worst observed step, in nanoseconds.
    pub fn worst_ns(&self) -> f64 {
        self.worst_ns
    }

    /// The configured budget, in nanoseconds per macro step.
    pub fn budget_ns(&self) -> f64 {
        self.budget_ns
    }

    /// Resets the accounting (budget unchanged).
    pub fn reset(&mut self) {
        self.steps = 0;
        self.misses = 0;
        self.worst_ns = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Wall-clock latency bounds are inherently load-sensitive (the thread
    // can be descheduled between `new` and `pace`), so they only run with
    // `--features timing-tests`; the logic-only pacer tests below always run.
    #[cfg(feature = "timing-tests")]
    #[test]
    fn pacer_waits_for_wall_clock() {
        // 100x real time: 0.005 sim seconds = 50 us wall.
        let mut p = RealTimePacer::new(100.0);
        let start = Instant::now();
        p.pace(0.005);
        assert!(start.elapsed() >= Duration::from_micros(45), "waited for the wall clock");
        assert_eq!(p.lag_seconds(), 0.0);
    }

    #[test]
    fn pacer_logic_invariants() {
        // Timing-free invariants: lag is never negative, never decreases
        // except across restart, and a generous pace target is never late
        // by more than the elapsed wall time allows.
        let mut p = RealTimePacer::new(100.0);
        let lag = p.pace(0.005);
        assert!(lag >= 0.0);
        assert!(p.lag_seconds() >= lag);
        let worst = p.lag_seconds();
        let lag2 = p.pace(0.006);
        assert!(lag2 >= 0.0);
        assert!(p.lag_seconds() >= worst, "worst lag never decreases");
        p.restart();
        assert_eq!(p.lag_seconds(), 0.0, "restart resets the lag diagnostic");
        assert_eq!(p.rate(), 100.0);
    }

    #[test]
    fn pacer_reports_lag_when_behind() {
        let mut p = RealTimePacer::new(1e6);
        std::thread::sleep(Duration::from_millis(2));
        // Asking for sim time 0: we are already late by ~2000 sim seconds.
        let lag = p.pace(0.0);
        assert!(lag > 0.0);
        assert!(p.lag_seconds() >= lag * 0.99);
        p.restart();
        assert_eq!(p.lag_seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn pacer_validates_rate() {
        let _ = RealTimePacer::new(0.0);
    }

    #[test]
    fn step_budget_counts_misses_and_worst_case() {
        let mut b = StepBudget::new(1000.0);
        assert!(!b.record(400.0));
        assert!(!b.record(1000.0), "exactly on budget is a met deadline");
        assert!(b.record(1500.0));
        assert!(b.record(2500.0));
        assert_eq!(b.steps(), 4);
        assert_eq!(b.misses(), 2);
        assert_eq!(b.worst_ns(), 2500.0);
        assert_eq!(b.budget_ns(), 1000.0);
        b.reset();
        assert_eq!((b.steps(), b.misses()), (0, 0));
        assert_eq!(b.worst_ns(), 0.0);
        assert_eq!(b.budget_ns(), 1000.0, "reset keeps the budget");
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn step_budget_validates_budget() {
        let _ = StepBudget::new(f64::NAN);
    }
}
