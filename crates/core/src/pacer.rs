//! Real-time pacing: running the unified model against the wall clock.
//!
//! Simulation normally runs as fast as possible; deploying the model as a
//! real controller (the paper's end goal) means each macro step must wait
//! for wall-clock time to catch up and finish inside a declared budget.
//! This module is the runtime half of that timing contract (the static
//! half is `urt_analysis`'s URT3xx cost pass):
//!
//! * [`TimeSource`] / [`WallClock`] — the injectable monotonic clock the
//!   whole module runs on. Tests inject scripted clocks so deadline
//!   accounting is pinned without any wall-clock dependence.
//! * [`RealTimePacer`] — couples simulation time to the clock at a
//!   configurable rate, with lag diagnostics when the solver cannot keep
//!   up (including OS timer slack: oversleeps are re-measured and folded
//!   into the lag, never silently dropped).
//! * [`StepBudget`] — per-macro-step deadline accounting against the
//!   budget the compiled artifact carries.
//! * [`LatencyHistogram`] — fixed-size log-linear cycle-time histogram
//!   (allocation-free recording) behind the p50/p99 figures of a
//!   [`PacedReport`].
//! * [`PacedConfig`] / [`OverrunPolicy`] / [`PacedReport`] — the public
//!   surface of [`HybridEngine::run_paced`] and
//!   [`EnsembleEngine::run_paced`]: the paced, deadline-enforced run
//!   loops in the compiled path.
//!
//! [`HybridEngine::run_paced`]: crate::engine::HybridEngine::run_paced
//! [`EnsembleEngine::run_paced`]: crate::ensemble::EnsembleEngine::run_paced

use crate::error::CoreError;
use std::fmt;
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock the paced machinery runs on.
///
/// Production uses [`WallClock`]; deterministic tests inject scripted
/// sources so miss accounting and lag folding are pinned exactly. The
/// paced loop's call pattern is fixed — one `now_ns` when a cycle
/// starts, one when it ends, one `sleep_ns` + one re-measuring `now_ns`
/// when it pacing-waits — so a scripted source can drive every branch.
pub trait TimeSource: Send {
    /// Nanoseconds since an arbitrary fixed origin; never decreases.
    fn now_ns(&mut self) -> u64;

    /// Blocks for *at least* `ns` nanoseconds. Real clocks routinely
    /// overshoot (OS timer slack); callers re-measure after sleeping.
    fn sleep_ns(&mut self, ns: u64);
}

/// The default [`TimeSource`]: `std::time::Instant` + `thread::sleep`.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSource for WallClock {
    fn now_ns(&mut self) -> u64 {
        // ~584 years of run time saturate rather than wrap.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn sleep_ns(&mut self, ns: u64) {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

/// `sim_time / rate` seconds as saturating nanoseconds: the wall-clock
/// release target of a simulation instant. Non-finite or negative inputs
/// clamp to zero; overflow saturates to `u64::MAX` instead of panicking
/// (the old `Duration::from_secs_f64` path aborted on extreme rates).
fn target_ns(sim_time: f64, rate: f64) -> u64 {
    let ns = (sim_time / rate).max(0.0) * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

/// Couples simulation time to the wall clock at a configurable rate.
///
/// # Examples
///
/// ```
/// use urt_core::pacer::RealTimePacer;
///
/// // Run 10x faster than real time (0.1 wall seconds per sim second).
/// let mut pacer = RealTimePacer::new(10.0);
/// let lag = pacer.pace(0.001); // returns almost immediately at this rate
/// assert!(lag >= 0.0);
/// assert_eq!(pacer.rate(), 10.0);
/// ```
pub struct RealTimePacer {
    clock: Box<dyn TimeSource>,
    /// Clock reading at the wall-clock origin of the run.
    origin_ns: u64,
    rate: f64,
    worst_lag_ns: u64,
}

impl fmt::Debug for RealTimePacer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RealTimePacer")
            .field("rate", &self.rate)
            .field("worst_lag_ns", &self.worst_lag_ns)
            .finish_non_exhaustive()
    }
}

impl RealTimePacer {
    /// Creates a wall-clock pacer; `rate` is simulated seconds per wall
    /// second (1.0 = real time, 2.0 = twice as fast).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn new(rate: f64) -> Self {
        Self::with_clock(rate, Box::new(WallClock::new()))
    }

    /// Creates a pacer over an injected [`TimeSource`] (deterministic
    /// tests, embedded monotonic counters).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn with_clock(rate: f64, mut clock: Box<dyn TimeSource>) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        let origin_ns = clock.now_ns();
        RealTimePacer { clock, origin_ns, rate, worst_lag_ns: 0 }
    }

    /// Restarts the wall-clock origin (call right before the run loop).
    pub fn restart(&mut self) {
        self.origin_ns = self.clock.now_ns();
        self.worst_lag_ns = 0;
    }

    /// Nanoseconds elapsed on the clock since the origin.
    pub(crate) fn now_rel_ns(&mut self) -> u64 {
        self.clock.now_ns().saturating_sub(self.origin_ns)
    }

    /// Blocks until `target` nanoseconds past the origin; returns the lag
    /// in nanoseconds — how far *behind* the target the clock was on
    /// arrival. When the pacer had to wait, the lag is the oversleep: the
    /// sleep is re-measured and any OS timer slack is returned and folded
    /// into the worst-lag diagnostic instead of being dropped.
    pub(crate) fn pace_to_ns(&mut self, target: u64) -> u64 {
        let now = self.now_rel_ns();
        let lag_ns = if now < target {
            self.clock.sleep_ns(target - now);
            // Re-measure: `sleep` guarantees *at least* the requested
            // duration, and timer slack routinely overshoots it.
            self.now_rel_ns().saturating_sub(target)
        } else {
            now - target
        };
        self.worst_lag_ns = self.worst_lag_ns.max(lag_ns);
        lag_ns
    }

    /// Blocks until the wall clock reaches simulation time `sim_time`.
    /// Returns the lag in simulated seconds: how far the simulation was
    /// *behind* the wall clock on arrival — including, after a wait, the
    /// measured oversleep. Extreme `sim_time / rate` ratios saturate the
    /// wall-clock target instead of panicking.
    pub fn pace(&mut self, sim_time: f64) -> f64 {
        let lag_ns = self.pace_to_ns(target_ns(sim_time, self.rate));
        lag_ns as f64 * 1e-9 * self.rate
    }

    /// Worst lag observed so far, in simulated seconds.
    pub fn lag_seconds(&self) -> f64 {
        self.worst_lag_ns as f64 * 1e-9 * self.rate
    }

    /// Worst lag observed so far, in wall nanoseconds.
    pub fn lag_ns(&self) -> u64 {
        self.worst_lag_ns
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// Per-macro-step deadline accounting against a declared budget.
///
/// The static cost pass proves (from declared or calibrated costs) that
/// a model *can* meet its budget before anything runs; `StepBudget` is
/// the runtime half of the same contract: feed it the measured wall
/// time of each macro step and it counts deadline misses and tracks the
/// worst observed step. Construct it from the budget the compiled
/// artifact carries
/// ([`CompiledSystem::step_budget_ns`](crate::elaborate::CompiledSystem::step_budget_ns)),
/// or let [`HybridEngine::run_paced`](crate::engine::HybridEngine::run_paced)
/// do both ends for you.
///
/// Non-finite samples (a poisoned timer, an uninitialised measurement)
/// are counted as misses and tracked separately — a deadline that cannot
/// be shown met is a missed deadline.
///
/// # Examples
///
/// ```
/// use urt_core::pacer::StepBudget;
///
/// let mut budget = StepBudget::new(1_000_000.0); // 1 ms per macro step
/// assert!(!budget.record(800_000.0)); // met
/// assert!(budget.record(1_200_000.0)); // missed
/// assert!(budget.record(f64::NAN)); // unmeasurable: also a miss
/// assert_eq!(budget.misses(), 2);
/// assert_eq!(budget.non_finite(), 1);
/// assert_eq!(budget.worst_ns(), 1_200_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct StepBudget {
    budget_ns: f64,
    steps: u64,
    misses: u64,
    non_finite: u64,
    worst_ns: f64,
}

impl StepBudget {
    /// Creates a budget of `budget_ns` nanoseconds per macro step.
    ///
    /// # Panics
    ///
    /// Panics if `budget_ns` is not positive and finite.
    pub fn new(budget_ns: f64) -> Self {
        assert!(budget_ns.is_finite() && budget_ns > 0.0, "budget must be positive ns");
        StepBudget { budget_ns, steps: 0, misses: 0, non_finite: 0, worst_ns: 0.0 }
    }

    /// Records one macro step's measured wall time; returns `true` when
    /// the step missed its deadline. A non-finite sample is a miss:
    /// `NaN > budget` is false, so without this rule an unmeasurable
    /// step would silently count as a met deadline.
    pub fn record(&mut self, elapsed_ns: f64) -> bool {
        self.steps += 1;
        if !elapsed_ns.is_finite() {
            self.non_finite += 1;
            self.misses += 1;
            return true;
        }
        self.worst_ns = self.worst_ns.max(elapsed_ns);
        let missed = elapsed_ns > self.budget_ns;
        if missed {
            self.misses += 1;
        }
        missed
    }

    /// Number of steps recorded so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of deadline misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of non-finite (unmeasurable) samples, each also counted in
    /// [`StepBudget::misses`].
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Worst observed *finite* step, in nanoseconds.
    pub fn worst_ns(&self) -> f64 {
        self.worst_ns
    }

    /// The configured budget, in nanoseconds per macro step.
    pub fn budget_ns(&self) -> f64 {
        self.budget_ns
    }

    /// Resets the accounting (budget unchanged).
    pub fn reset(&mut self) {
        self.steps = 0;
        self.misses = 0;
        self.non_finite = 0;
        self.worst_ns = 0.0;
    }
}

/// Buckets: exact singletons below 16 ns, then 16 linear sub-buckets per
/// power of two up to `u64::MAX` — ≤ 1/16 relative quantisation error.
const HIST_BUCKETS: usize = 976;

/// Fixed-size log-linear latency histogram.
///
/// All storage is inline (no heap), so recording inside a paced loop is
/// allocation-free and O(1). Percentiles resolve to a bucket's upper
/// bound — conservative for latency reporting — clamped to the exact
/// observed maximum.
///
/// # Examples
///
/// ```
/// use urt_core::pacer::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [100, 120, 130, 90_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.5) >= 120 && h.percentile(0.5) < 136);
/// assert_eq!(h.percentile(1.0), 90_000);
/// assert_eq!(h.max_ns(), 90_000);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: [u64; HIST_BUCKETS],
    total: u64,
    min_ns: u64,
    max_ns: u64,
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("min_ns", &self.min_ns)
            .field("max_ns", &self.max_ns)
            .finish_non_exhaustive()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: [0; HIST_BUCKETS], total: 0, min_ns: u64::MAX, max_ns: 0 }
    }

    fn bucket_index(v: u64) -> usize {
        if v < 16 {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros() as usize;
            ((exp - 3) << 4) | ((v >> (exp - 4)) & 0xF) as usize
        }
    }

    /// Inclusive upper bound of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i < 16 {
            i as u64
        } else {
            let exp = (i >> 4) + 3;
            let sub = (i & 0xF) as u64;
            let hi = (((16 + sub + 1) as u128) << (exp - 4)) - 1;
            u64::try_from(hi).unwrap_or(u64::MAX)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_index(ns)] += 1;
        self.total += 1;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact observed maximum (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Exact observed minimum (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// The `q`-quantile (`q` in `0.0..=1.0`) as a conservative upper
    /// bound, clamped to the exact observed extrema. Returns 0 when no
    /// samples were recorded.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }
}

/// What a paced run does when a macro step (or batch) overruns its
/// deadline budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverrunPolicy {
    /// Count the miss and continue, re-anchoring the pacing schedule at
    /// the current instant so the next step gets its full period again
    /// (the schedule *slips* by the overrun; one slow step never
    /// cascades into a burst of late release points).
    Record,
    /// Count the miss and keep the original absolute schedule: pacing is
    /// skipped (no sleep) until real time catches the timeline again,
    /// and the sleep forgone while catching up is accounted as
    /// [`PacedReport::skipped_slack_ns`].
    CatchUp,
    /// Like [`OverrunPolicy::Record`], but abort the run with
    /// [`CoreError::DeadlineOverrun`] after `max_consecutive`
    /// consecutive misses — the evo control-unit discipline (overrun ⇒
    /// SAFETY_STOP) with a configurable tolerance for isolated spikes
    /// (`max_consecutive = 1` stops on the first miss).
    SafetyStop {
        /// Consecutive misses tolerated before the run aborts.
        max_consecutive: u32,
    },
}

/// Configuration of a paced run
/// ([`HybridEngine::run_paced`](crate::engine::HybridEngine::run_paced)).
///
/// Defaults: real time (`rate` 1.0), [`OverrunPolicy::Record`], budget
/// resolved from the compiled system's declared budget (falling back to
/// the pacing period itself — one period of wall time per macro step is
/// the natural deadline of a paced loop), wall-clock time source.
pub struct PacedConfig {
    pub(crate) rate: f64,
    pub(crate) budget_ns: Option<f64>,
    pub(crate) policy: OverrunPolicy,
    pub(crate) clock: Option<Box<dyn TimeSource>>,
}

impl fmt::Debug for PacedConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PacedConfig")
            .field("rate", &self.rate)
            .field("budget_ns", &self.budget_ns)
            .field("policy", &self.policy)
            .field("injected_clock", &self.clock.is_some())
            .finish()
    }
}

impl Default for PacedConfig {
    fn default() -> Self {
        PacedConfig { rate: 1.0, budget_ns: None, policy: OverrunPolicy::Record, clock: None }
    }
}

impl PacedConfig {
    /// Real-time defaults (see type docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pacing rate: simulated seconds per wall second (1.0 =
    /// real time, 2.0 = twice as fast).
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Overrides the per-macro-step deadline budget in nanoseconds
    /// (otherwise the compiled system's declared budget, otherwise the
    /// pacing period).
    pub fn with_budget_ns(mut self, budget_ns: f64) -> Self {
        self.budget_ns = Some(budget_ns);
        self
    }

    /// Sets the overrun policy.
    pub fn with_policy(mut self, policy: OverrunPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Injects a [`TimeSource`] (deterministic tests; defaults to
    /// [`WallClock`]).
    pub fn with_clock(mut self, clock: Box<dyn TimeSource>) -> Self {
        self.clock = Some(clock);
        self
    }
}

/// What a paced run measured: deadline accounting plus the cycle-time
/// distribution a latency-bound deployment is judged by.
///
/// Cycle times are *per macro step*: a batched `DedicatedThreads` run
/// measures whole batches at the batch barrier and attributes the batch
/// budget as `K ×` the step budget, so every sample here is the batch
/// time divided by its `K` ([`PacedReport::samples`] counts measured
/// cycles, [`PacedReport::steps`] macro steps; they differ exactly when
/// `batched` is set).
#[derive(Debug, Clone, PartialEq)]
pub struct PacedReport {
    /// Macro steps advanced.
    pub steps: u64,
    /// Measured cycles (pacing release points): equals `steps` on the
    /// local path, the number of batches on the batched threaded path.
    pub samples: u64,
    /// Deadline misses (per measured cycle).
    pub misses: u64,
    /// Longest run of consecutive misses observed.
    pub max_consecutive_misses: u64,
    /// The enforced budget, nanoseconds per macro step.
    pub budget_ns: f64,
    /// Median per-step cycle time, ns (histogram upper bound).
    pub p50_ns: f64,
    /// 99th-percentile per-step cycle time, ns (histogram upper bound).
    pub p99_ns: f64,
    /// Worst observed per-step cycle time, ns (exact).
    pub worst_ns: f64,
    /// Worst pacing lag in *wall* seconds: how far behind its release
    /// point a cycle started, or the worst measured oversleep.
    pub worst_lag_s: f64,
    /// [`OverrunPolicy::CatchUp`] only: wall nanoseconds of sleep
    /// forgone while catching back up to the absolute schedule.
    pub skipped_slack_ns: u64,
    /// The pacing rate the run used.
    pub rate: f64,
    /// Whether any measured cycle covered more than one macro step.
    pub batched: bool,
}

/// The engine-side driver of a paced run: owns the pacer, the budget,
/// the histogram and the overrun-policy state. Engines call
/// [`PacedRunner::begin`] / [`PacedRunner::end`] around each macro step
/// (or batch, at the batch barrier) — everything in between is plain
/// field arithmetic on inline storage, so the steady state allocates
/// nothing.
pub(crate) struct PacedRunner {
    pacer: RealTimePacer,
    budget: StepBudget,
    policy: OverrunPolicy,
    hist: LatencyHistogram,
    /// Pacing period per macro step, wall ns (`step / rate`).
    period_ns: u64,
    steps: u64,
    samples: u64,
    consecutive: u64,
    max_consecutive: u64,
    skipped_slack_ns: u64,
    worst_lag_ns: u64,
    /// Schedule slip accumulated by `Record`/`SafetyStop` re-anchoring.
    slip_ns: u64,
    batched: bool,
    cycle_start_ns: u64,
}

impl PacedRunner {
    /// Builds a runner for macro steps of `step_s` simulated seconds.
    /// The budget resolves explicit config > compiled system declaration
    /// (`compiled_budget_ns`) > the pacing period.
    ///
    /// # Panics
    ///
    /// Panics if the rate or the resolved budget is not positive and
    /// finite (same contracts as [`RealTimePacer::new`] /
    /// [`StepBudget::new`]).
    pub(crate) fn new(config: PacedConfig, compiled_budget_ns: Option<f64>, step_s: f64) -> Self {
        let PacedConfig { rate, budget_ns, policy, clock } = config;
        let pacer = match clock {
            Some(clock) => RealTimePacer::with_clock(rate, clock),
            None => RealTimePacer::new(rate),
        };
        let period_ns = target_ns(step_s, rate);
        // The period fallback clamps to 1 ns: at extreme rates the pacing
        // period rounds to zero, which is not a representable budget.
        let budget = StepBudget::new(
            budget_ns.or(compiled_budget_ns).unwrap_or((period_ns as f64).max(1.0)),
        );
        PacedRunner {
            pacer,
            budget,
            policy,
            hist: LatencyHistogram::new(),
            period_ns,
            steps: 0,
            samples: 0,
            consecutive: 0,
            max_consecutive: 0,
            skipped_slack_ns: 0,
            worst_lag_ns: 0,
            slip_ns: 0,
            batched: false,
            cycle_start_ns: 0,
        }
    }

    /// Marks the start of a cycle (one macro step, or one batch).
    pub(crate) fn begin(&mut self) {
        self.cycle_start_ns = self.pacer.now_rel_ns();
    }

    /// Closes a cycle covering `k` macro steps that advanced simulation
    /// time to `sim_time`: records the per-step cycle time, applies the
    /// overrun policy, and paces to `sim_time`'s wall-clock release
    /// point.
    ///
    /// # Errors
    ///
    /// [`CoreError::DeadlineOverrun`] under
    /// [`OverrunPolicy::SafetyStop`] once the consecutive-miss tolerance
    /// is exhausted.
    pub(crate) fn end(&mut self, k: u64, sim_time: f64) -> Result<(), CoreError> {
        let k = k.max(1);
        let now = self.pacer.now_rel_ns();
        let elapsed = now.saturating_sub(self.cycle_start_ns);
        // Batch budget attributed as K x the step budget: comparing the
        // per-step share against one step's budget is the same test.
        let cycle = elapsed / k;
        self.hist.record(cycle);
        self.steps += k;
        self.samples += 1;
        if k > 1 {
            self.batched = true;
        }
        if self.budget.record(cycle as f64) {
            self.consecutive += 1;
            self.max_consecutive = self.max_consecutive.max(self.consecutive);
            if let OverrunPolicy::SafetyStop { max_consecutive } = self.policy {
                if self.consecutive >= u64::from(max_consecutive.max(1)) {
                    return Err(CoreError::DeadlineOverrun {
                        step: self.steps,
                        consecutive: self.consecutive,
                        budget_ns: self.budget.budget_ns(),
                        worst_ns: self.budget.worst_ns(),
                        misses: self.budget.misses(),
                    });
                }
            }
        } else {
            self.consecutive = 0;
        }
        // Pace to the release point. `Record`/`SafetyStop` schedules may
        // have slipped; `CatchUp` keeps the absolute timeline.
        let target = self.slip_ns.saturating_add(target_ns(sim_time, self.pacer.rate()));
        if now < target {
            let over = self.pacer.pace_to_ns(target);
            self.worst_lag_ns = self.worst_lag_ns.max(over);
        } else {
            let behind = now - target;
            match self.policy {
                OverrunPolicy::CatchUp => {
                    // Skip pacing until real time catches the schedule;
                    // the sleep this cycle earned but forwent is the
                    // slack spent catching up.
                    let earned = self.period_ns.saturating_mul(k);
                    self.skipped_slack_ns =
                        self.skipped_slack_ns.saturating_add(earned.saturating_sub(elapsed));
                }
                OverrunPolicy::Record | OverrunPolicy::SafetyStop { .. } => {
                    // Re-anchor: the schedule slips by the overrun so the
                    // next cycle gets its full period.
                    self.slip_ns = self.slip_ns.saturating_add(behind);
                }
            }
            self.worst_lag_ns = self.worst_lag_ns.max(behind);
        }
        Ok(())
    }

    /// The report (consumes the runner).
    pub(crate) fn finish(self) -> PacedReport {
        PacedReport {
            steps: self.steps,
            samples: self.samples,
            misses: self.budget.misses(),
            max_consecutive_misses: self.max_consecutive,
            budget_ns: self.budget.budget_ns(),
            p50_ns: self.hist.percentile(0.5) as f64,
            p99_ns: self.hist.percentile(0.99) as f64,
            worst_ns: self.hist.max_ns() as f64,
            worst_lag_s: self.worst_lag_ns as f64 * 1e-9,
            skipped_slack_ns: self.skipped_slack_ns,
            rate: self.pacer.rate(),
            batched: self.batched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scripted clock: each `now_ns` call pops the next advance off the
    /// script (0 when exhausted) and adds it; `sleep_ns` advances by the
    /// requested amount plus a fixed oversleep, recording the request.
    struct ScriptClock {
        now: u64,
        advances: std::collections::VecDeque<u64>,
        oversleep_ns: u64,
        sleeps: Vec<u64>,
    }

    impl ScriptClock {
        fn new(advances: &[u64], oversleep_ns: u64) -> Self {
            ScriptClock {
                now: 0,
                advances: advances.iter().copied().collect(),
                oversleep_ns,
                sleeps: Vec::new(),
            }
        }
    }

    impl TimeSource for ScriptClock {
        fn now_ns(&mut self) -> u64 {
            self.now += self.advances.pop_front().unwrap_or(0);
            self.now
        }
        fn sleep_ns(&mut self, ns: u64) {
            self.sleeps.push(ns);
            self.now += ns + self.oversleep_ns;
        }
    }

    // Wall-clock latency bounds are inherently load-sensitive (the thread
    // can be descheduled between `new` and `pace`), so they only run with
    // `--features timing-tests`; the logic-only pacer tests below always run.
    #[cfg(feature = "timing-tests")]
    #[test]
    fn pacer_waits_for_wall_clock() {
        // 100x real time: 0.005 sim seconds = 50 us wall.
        let mut p = RealTimePacer::new(100.0);
        let start = Instant::now();
        let lag = p.pace(0.005);
        assert!(start.elapsed() >= Duration::from_micros(45), "waited for the wall clock");
        // The returned lag is the measured oversleep — non-negative, and
        // never larger than the wall time the pace actually took.
        assert!(lag >= 0.0);
        assert!(p.lag_seconds() >= lag);
    }

    #[test]
    fn pacer_logic_invariants() {
        // Timing-free invariants: lag is never negative, never decreases
        // except across restart, and a generous pace target is never late
        // by more than the elapsed wall time allows.
        let mut p = RealTimePacer::new(100.0);
        let lag = p.pace(0.005);
        assert!(lag >= 0.0);
        assert!(p.lag_seconds() >= lag);
        let worst = p.lag_seconds();
        let lag2 = p.pace(0.006);
        assert!(lag2 >= 0.0);
        assert!(p.lag_seconds() >= worst, "worst lag never decreases");
        p.restart();
        assert_eq!(p.lag_seconds(), 0.0, "restart resets the lag diagnostic");
        assert_eq!(p.rate(), 100.0);
    }

    #[test]
    fn pacer_reports_lag_when_behind() {
        let mut p = RealTimePacer::new(1e6);
        std::thread::sleep(Duration::from_millis(2));
        // Asking for sim time 0: we are already late by ~2000 sim seconds.
        let lag = p.pace(0.0);
        assert!(lag > 0.0);
        assert!(p.lag_seconds() >= lag * 0.99);
        p.restart();
        assert_eq!(p.lag_seconds(), 0.0);
    }

    #[test]
    fn pacer_folds_oversleep_into_lag() {
        // Regression: `pace` used to return 0.0 straight after the sleep,
        // silently dropping OS timer slack from the lag diagnostic. The
        // scripted clock oversleeps every sleep by exactly 0.5 ms.
        let mut p = RealTimePacer::with_clock(1.0, Box::new(ScriptClock::new(&[], 500_000)));
        let lag = p.pace(0.005); // target 5 ms, clock at 0: sleeps 5 ms + slack
        assert!((lag - 5e-4).abs() < 1e-12, "oversleep surfaced as lag, got {lag}");
        assert!((p.lag_seconds() - 5e-4).abs() < 1e-12, "and folded into worst lag");
        assert_eq!(p.lag_ns(), 500_000);
    }

    #[test]
    fn pacer_saturates_extreme_targets() {
        // Regression: `sim_time / rate` beyond Duration's range used to
        // panic inside `Duration::from_secs_f64`; the target now
        // saturates at u64::MAX nanoseconds.
        let mut p = RealTimePacer::with_clock(1e-300, Box::new(ScriptClock::new(&[], 0)));
        let lag = p.pace(1e300); // 1e600 wall seconds: saturates
        assert!(lag >= 0.0);
        assert_eq!(target_ns(1e300, 1e-300), u64::MAX);
        assert_eq!(target_ns(f64::NAN, 1.0), 0, "NaN clamps to the origin");
        assert_eq!(target_ns(-1.0, 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn pacer_validates_rate() {
        let _ = RealTimePacer::new(0.0);
    }

    #[test]
    fn step_budget_counts_misses_and_worst_case() {
        let mut b = StepBudget::new(1000.0);
        assert!(!b.record(400.0));
        assert!(!b.record(1000.0), "exactly on budget is a met deadline");
        assert!(b.record(1500.0));
        assert!(b.record(2500.0));
        assert_eq!(b.steps(), 4);
        assert_eq!(b.misses(), 2);
        assert_eq!(b.worst_ns(), 2500.0);
        assert_eq!(b.budget_ns(), 1000.0);
        b.reset();
        assert_eq!((b.steps(), b.misses()), (0, 0));
        assert_eq!(b.worst_ns(), 0.0);
        assert_eq!(b.budget_ns(), 1000.0, "reset keeps the budget");
    }

    #[test]
    fn step_budget_counts_non_finite_samples_as_misses() {
        // Regression: `NaN > budget` is false, so a NaN sample used to
        // count as a *met* deadline and leave `worst_ns` untouched.
        let mut b = StepBudget::new(1000.0);
        assert!(!b.record(400.0));
        assert!(b.record(f64::NAN), "unmeasurable step is a miss");
        assert!(b.record(f64::INFINITY));
        assert!(b.record(f64::NEG_INFINITY));
        assert_eq!(b.steps(), 4);
        assert_eq!(b.misses(), 3);
        assert_eq!(b.non_finite(), 3);
        assert_eq!(b.worst_ns(), 400.0, "worst tracks finite samples only");
        b.reset();
        assert_eq!(b.non_finite(), 0);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn step_budget_validates_budget() {
        let _ = StepBudget::new(f64::NAN);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_exhaustive() {
        // Every index must be reachable, ordered, and bounded by its
        // upper edge.
        let mut last = 0usize;
        for &v in &[0u64, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = LatencyHistogram::bucket_index(v);
            assert!(i < HIST_BUCKETS, "index {i} in range for {v}");
            assert!(i >= last, "indices are monotone in the value");
            assert!(LatencyHistogram::bucket_upper(i) >= v, "upper edge bounds {v}");
            last = i;
        }
        assert_eq!(LatencyHistogram::bucket_upper(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), 0, "empty histogram");
        for ns in 1..=1000u64 {
            h.record(ns * 1000); // 1 us .. 1 ms
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max_ns(), 1_000_000);
        assert_eq!(h.min_ns(), 1000);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        // Log-linear buckets: <= 1/16 relative error above the true rank.
        assert!((500_000..=540_000).contains(&p50), "p50 = {p50}");
        assert!((990_000..=1_000_000).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99 && p99 <= h.percentile(1.0));
        assert_eq!(h.percentile(1.0), 1_000_000, "p100 is the exact max");
    }

    #[test]
    fn runner_resolves_budget_from_compiled_then_period() {
        let r = PacedRunner::new(PacedConfig::new(), Some(123_456.0), 1e-3);
        assert_eq!(r.budget.budget_ns(), 123_456.0, "compiled budget wins over the period");
        let r = PacedRunner::new(PacedConfig::new(), None, 1e-3);
        assert_eq!(r.budget.budget_ns(), 1e6, "period fallback: 1 ms step at rate 1");
        let r = PacedRunner::new(PacedConfig::new().with_budget_ns(5.0), Some(123.0), 1e-3);
        assert_eq!(r.budget.budget_ns(), 5.0, "explicit config wins over everything");
    }

    #[test]
    fn runner_record_policy_slips_schedule() {
        // Period 1 ms; every cycle takes 2 ms (scripted: begin +0,
        // end +2 ms). Record re-anchors, so each miss adds 1 ms of slip
        // and no sleep ever happens.
        let clock = ScriptClock::new(&[0, 0, 2_000_000, 0, 2_000_000, 0, 2_000_000], 0);
        let cfg = PacedConfig::new().with_clock(Box::new(clock));
        let mut r = PacedRunner::new(cfg, None, 1e-3);
        for step in 1..=3u64 {
            r.begin();
            r.end(1, step as f64 * 1e-3).unwrap();
        }
        let report = r.finish();
        assert_eq!(report.steps, 3);
        assert_eq!(report.samples, 3);
        assert_eq!(report.misses, 3, "every 2 ms cycle misses the 1 ms budget");
        assert_eq!(report.max_consecutive_misses, 3);
        assert_eq!(report.skipped_slack_ns, 0, "slack is a CatchUp diagnostic");
        assert!(!report.batched);
        assert_eq!(report.worst_ns, 2_000_000.0);
        // Slip re-anchoring: each cycle ends 1 ms past its (slipped)
        // release point, so the worst lag is one period, not cumulative.
        assert!((report.worst_lag_s - 1e-3).abs() < 1e-12, "lag {}", report.worst_lag_s);
    }

    #[test]
    fn runner_catch_up_skips_pacing_and_logs_slack() {
        // Step 1 takes 3 ms (2 ms over), steps 2..4 are instantaneous.
        // CatchUp keeps the absolute schedule: steps 2 and 3 forgo their
        // 1 ms sleep each (slack = 2 ms total), step 4 sleeps again.
        let clock = ScriptClock::new(&[0, 0, 3_000_000], 0);
        let cfg =
            PacedConfig::new().with_policy(OverrunPolicy::CatchUp).with_clock(Box::new(clock));
        let mut r = PacedRunner::new(cfg, None, 1e-3);
        for step in 1..=4u64 {
            r.begin();
            r.end(1, step as f64 * 1e-3).unwrap();
        }
        let report = r.finish();
        assert_eq!(report.misses, 1, "only the slow first step misses");
        assert_eq!(report.max_consecutive_misses, 1);
        assert_eq!(report.skipped_slack_ns, 2_000_000, "2 ms of sleep spent catching up");
        assert!((report.worst_lag_s - 2e-3).abs() < 1e-12, "worst lag is the 2 ms overrun");
    }

    #[test]
    fn runner_safety_stop_aborts_after_consecutive_misses() {
        // Every cycle takes 2 ms against a 1 ms budget (call pattern per
        // cycle: begin +0, end +2 ms; misses never sleep, so no extra
        // clock calls).
        let clock = ScriptClock::new(&[0, 0, 2_000_000, 0, 2_000_000, 0, 2_000_000], 0);
        let cfg = PacedConfig::new()
            .with_policy(OverrunPolicy::SafetyStop { max_consecutive: 3 })
            .with_clock(Box::new(clock));
        let mut r = PacedRunner::new(cfg, None, 1e-3);
        let mut aborted = None;
        for step in 1..=6u64 {
            r.begin();
            if let Err(e) = r.end(1, step as f64 * 1e-3) {
                aborted = Some((step, e));
                break;
            }
        }
        let (step, err) = aborted.expect("safety stop fired");
        assert_eq!(step, 3, "third consecutive miss trips the stop");
        match &err {
            CoreError::DeadlineOverrun { consecutive, misses, budget_ns, worst_ns, step } => {
                assert_eq!(*consecutive, 3);
                assert_eq!(*misses, 3);
                assert_eq!(*step, 3);
                assert_eq!(*budget_ns, 1e6);
                assert_eq!(*worst_ns, 2e6);
            }
            other => panic!("expected DeadlineOverrun, got {other:?}"),
        }
        assert!(err.to_string().starts_with("URT115: "), "stable code: {err}");
    }

    #[test]
    fn runner_batch_attribution_divides_by_k() {
        // One 8-step batch taking 8 ms: per-step share 1 ms, exactly on
        // a 1 ms budget — met. A second batch at 16 ms misses.
        let clock = ScriptClock::new(&[0, 0, 8_000_000, 0, 16_000_000], 0);
        let cfg = PacedConfig::new().with_clock(Box::new(clock));
        let mut r = PacedRunner::new(cfg, None, 1e-3);
        r.begin();
        r.end(8, 8e-3).unwrap();
        r.begin();
        r.end(8, 16e-3).unwrap();
        let report = r.finish();
        assert_eq!(report.steps, 16);
        assert_eq!(report.samples, 2);
        assert!(report.batched);
        assert_eq!(report.misses, 1, "K x budget attribution: 8 ms meets, 16 ms misses");
        assert_eq!(report.worst_ns, 2_000_000.0, "per-step share of the slow batch");
    }
}
