//! Poison-tolerant synchronisation for the engine layer.
//!
//! The canonical implementation lives in [`urt_umlrt::sync`] (the bottom
//! of the event-driven dependency stack, so the tracer can use it too);
//! this module re-exports it under the engine crate's namespace. See that
//! module for the hermetic-build rationale.

pub use urt_umlrt::sync::Mutex;

use std::sync::atomic::{AtomicUsize, Ordering};

/// A sense-reversing spin barrier synchronising solver threads between
/// the macro steps *inside* a batch.
///
/// `std::sync`'s Mutex+Condvar barrier costs microseconds per wait; at
/// sub-microsecond macro steps that would erase the batching win, so the
/// inner sub-step barrier spins (briefly) and then yields. Batch
/// boundaries still use a channel rendezvous, which parks properly —
/// spinning is confined to the hot inner loop. Shared by the threaded
/// paths of [`HybridEngine`](crate::engine::HybridEngine) and
/// [`EnsembleEngine`](crate::ensemble::EnsembleEngine).
pub(crate) struct SpinBarrier {
    participants: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    pub(crate) fn new(participants: usize) -> Self {
        SpinBarrier { participants, count: AtomicUsize::new(0), generation: AtomicUsize::new(0) }
    }

    /// Blocks until all participants have called `wait` this generation.
    pub(crate) fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
            // Reset the count *before* releasing the waiters: the Release
            // bump happens-before their Acquire load, so no participant of
            // the next generation can observe a stale count.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins = spins.saturating_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}
