//! Poison-tolerant synchronisation for the engine layer.
//!
//! The canonical implementation lives in [`urt_umlrt::sync`] (the bottom
//! of the event-driven dependency stack, so the tracer can use it too);
//! this module re-exports it under the engine crate's namespace. See that
//! module for the hermetic-build rationale.

pub use urt_umlrt::sync::Mutex;
