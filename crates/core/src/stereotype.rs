//! The eight new stereotypes of the paper's Table 1, as a queryable
//! registry.
//!
//! | UML-RT construct | Extension stereotype(s) |
//! |------------------|-------------------------|
//! | capsule          | streamer                |
//! | port             | DPort, SPort            |
//! | connect          | flow, relay             |
//! | protocol         | flow type               |
//! | state machine    | solver / strategy       |
//! | time service     | Time                    |

use std::fmt;

/// One of the paper's eight extension stereotypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stereotype {
    /// Continuous counterpart of a capsule.
    Streamer,
    /// Typed dataflow port (circle notation).
    DPort,
    /// Protocol-typed signal port (square notation).
    SPort,
    /// Typed dataflow connection between DPorts.
    Flow,
    /// Duplicates one flow into several similar flows.
    Relay,
    /// The data type carried by a flow.
    FlowType,
    /// The computation strategy replacing the state machine in streamers.
    Solver,
    /// Continuous simulation-clock variable.
    Time,
}

impl Stereotype {
    /// All eight stereotypes in Table 1 order.
    pub const ALL: [Stereotype; 8] = [
        Stereotype::Streamer,
        Stereotype::DPort,
        Stereotype::SPort,
        Stereotype::Flow,
        Stereotype::Relay,
        Stereotype::FlowType,
        Stereotype::Solver,
        Stereotype::Time,
    ];

    /// The UML-RT construct this stereotype extends (Table 1 left column).
    pub fn base_construct(self) -> &'static str {
        match self {
            Stereotype::Streamer => "capsule",
            Stereotype::DPort | Stereotype::SPort => "port",
            Stereotype::Flow | Stereotype::Relay => "connect",
            Stereotype::FlowType => "protocol",
            Stereotype::Solver => "state machine",
            Stereotype::Time => "time service",
        }
    }

    /// Extension name as printed in Table 1.
    pub fn extension_name(self) -> &'static str {
        match self {
            Stereotype::Streamer => "streamer",
            Stereotype::DPort => "DPort",
            Stereotype::SPort => "SPort",
            Stereotype::Flow => "flow",
            Stereotype::Relay => "relay",
            Stereotype::FlowType => "flow type",
            Stereotype::Solver => "state solver, strategy",
            Stereotype::Time => "Time",
        }
    }

    /// One-line semantics, paraphrasing §2 of the paper.
    pub fn semantics(self) -> &'static str {
        match self {
            Stereotype::Streamer => {
                "capsule-like object whose behaviour is a solver computing equations; may contain sub-streamers, never capsules"
            }
            Stereotype::DPort => {
                "data port carrying typed dataflow; on capsules only ever a relay port"
            }
            Stereotype::SPort => {
                "signal port with an associated protocol; the streamer/capsule bridge"
            }
            Stereotype::Flow => {
                "dataflow connection; the output flow type must be a subset of the input flow type"
            }
            Stereotype::Relay => "relay point generating two similar flows from a flow",
            Stereotype::FlowType => "the data type of a DPort's flow",
            Stereotype::Solver => {
                "receives signals and data, modifies parameters, computes equations, sends results"
            }
            Stereotype::Time => "continuous variable usable as the simulation clock",
        }
    }

    /// The module in this repository that implements the stereotype.
    pub fn implemented_in(self) -> &'static str {
        match self {
            Stereotype::Streamer => "urt_dataflow::streamer",
            Stereotype::DPort | Stereotype::SPort => "urt_dataflow::port",
            Stereotype::Flow => "urt_dataflow::graph::StreamerNetwork::flow",
            Stereotype::Relay => "urt_dataflow::graph::StreamerNetwork::add_relay",
            Stereotype::FlowType => "urt_dataflow::flowtype",
            Stereotype::Solver => "urt_ode::solver",
            Stereotype::Time => "urt_core::time",
        }
    }
}

impl fmt::Display for Stereotype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.extension_name())
    }
}

/// Renders Table 1 of the paper ("New stereotypes comparing with UML-RT")
/// from the registry, grouped by base construct.
///
/// # Examples
///
/// ```
/// let table = urt_core::stereotype::render_table1();
/// assert!(table.contains("streamer"));
/// assert!(table.contains("DPort, SPort"));
/// ```
pub fn render_table1() -> String {
    let rows: [(&str, Vec<Stereotype>); 6] = [
        ("capsule", vec![Stereotype::Streamer]),
        ("port", vec![Stereotype::DPort, Stereotype::SPort]),
        ("connect", vec![Stereotype::Flow, Stereotype::Relay]),
        ("protocol", vec![Stereotype::FlowType]),
        ("state machine", vec![Stereotype::Solver]),
        ("Time service", vec![Stereotype::Time]),
    ];
    let mut out = String::from("| UML-RT         | Extension               |\n");
    out.push_str("|----------------|-------------------------|\n");
    for (base, exts) in rows {
        let ext: Vec<&str> = exts.iter().map(|s| s.extension_name()).collect();
        out.push_str(&format!("| {:<14} | {:<23} |\n", base, ext.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_eight_stereotypes() {
        assert_eq!(Stereotype::ALL.len(), 8, "the paper introduces eight new stereotypes");
        let mut names: Vec<&str> = Stereotype::ALL.iter().map(|s| s.extension_name()).collect();
        names.dedup();
        assert_eq!(names.len(), 8, "all distinct");
    }

    #[test]
    fn base_constructs_match_table1() {
        assert_eq!(Stereotype::Streamer.base_construct(), "capsule");
        assert_eq!(Stereotype::DPort.base_construct(), "port");
        assert_eq!(Stereotype::SPort.base_construct(), "port");
        assert_eq!(Stereotype::Flow.base_construct(), "connect");
        assert_eq!(Stereotype::Relay.base_construct(), "connect");
        assert_eq!(Stereotype::FlowType.base_construct(), "protocol");
        assert_eq!(Stereotype::Solver.base_construct(), "state machine");
        assert_eq!(Stereotype::Time.base_construct(), "time service");
    }

    #[test]
    fn every_stereotype_is_implemented_somewhere() {
        for s in Stereotype::ALL {
            assert!(s.implemented_in().contains("urt_"), "{s} lacks an implementation pointer");
            assert!(!s.semantics().is_empty());
        }
    }

    #[test]
    fn table_rendering_covers_all_rows() {
        let t = render_table1();
        for base in ["capsule", "port", "connect", "protocol", "state machine", "Time service"] {
            assert!(t.contains(base), "missing row {base}");
        }
        for s in Stereotype::ALL {
            // The solver row prints the composite Table-1 cell text.
            let cell = s.extension_name();
            assert!(t.contains(cell), "missing stereotype {cell}");
        }
        assert_eq!(t.lines().count(), 8, "header + separator + six rows");
    }

    #[test]
    fn display_uses_extension_name() {
        assert_eq!(Stereotype::FlowType.to_string(), "flow type");
        assert_eq!(Stereotype::Time.to_string(), "Time");
    }
}
