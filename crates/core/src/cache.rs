//! Compile-once, instantiate-many: the content-addressed compile cache.
//!
//! The ROADMAP's simulation-server north star shards thousands of
//! concurrent sessions over a fleet of engines. Sessions of the *same*
//! model must not each pay a full `analyze + elaborate` pass — the
//! compiled [`CompiledSystem`] is an immutable artifact, so one compile
//! can serve them all. [`SystemCache`] memoizes compilation keyed by the
//! model's stable content hash ([`UnifiedModel::content_hash`], FNV-1a 64
//! over the model's canonical rendering) and hands out `Arc`-shared
//! artifacts; each session then calls
//! [`CompiledSystem::instantiate`](crate::elaborate::CompiledSystem::instantiate)
//! — or [`HybridEngine::from_compiled`](crate::engine::HybridEngine::from_compiled)
//! — to stamp out its own live state.
//!
//! The hash is deliberately simple and dependency-free: FNV-1a 64-bit
//! (offset basis `0xcbf29ce484222325`, prime `0x100000001b3`) over the
//! model's derived `Debug` rendering. Every collection in
//! [`UnifiedModel`] is a `Vec` in declaration order — no `HashMap`
//! iteration anywhere near the rendering — so the hash is deterministic
//! across processes and platforms, and `urt-lint --hash` prints the same
//! value the cache keys on.

use crate::elaborate::CompiledSystem;
use crate::error::CoreError;
use crate::model::UnifiedModel;
use crate::sync::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher — the workspace's canonical content
/// hash (hermetic: no external hashing crates).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET_BASIS)
    }

    /// Folds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// A thread-safe memo of compiled artifacts keyed by
/// [`UnifiedModel::content_hash`], with hit/miss counters.
///
/// The compile closure is only invoked on a miss, which sidesteps the
/// registry lifecycle problem ([`BehaviorRegistry`](crate::elaborate::BehaviorRegistry)
/// is consumed by compilation and is not `Clone`): callers build the
/// registry *inside* the closure, and on a hit no registry is built at
/// all.
///
/// ```
/// use urt_core::cache::SystemCache;
/// use urt_core::elaborate::{elaborate, validate_gate, BehaviorRegistry};
/// use urt_core::model::ModelBuilder;
/// use urt_dataflow::flowtype::FlowType;
/// use urt_dataflow::streamer::FnStreamer;
///
/// # fn main() -> Result<(), urt_core::CoreError> {
/// let mut b = ModelBuilder::new("hello");
/// let wave = b.streamer("wave", "rk4");
/// b.streamer_out(wave, "y", FlowType::scalar());
/// let model = b.build();
///
/// let cache = SystemCache::new();
/// let compile = |m: &urt_core::model::UnifiedModel| {
///     let registry = BehaviorRegistry::new().streamer("wave", || {
///         Box::new(FnStreamer::new("wave", 0, 1, |t: f64, _h, _u, y: &mut [f64]| {
///             y[0] = t.cos()
///         }))
///     });
///     elaborate(m, registry, &validate_gate)
/// };
/// let first = cache.get_or_compile(&model, compile)?;
/// let second = cache.get_or_compile(&model, compile)?;
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok(())
/// # }
/// ```
pub struct SystemCache {
    entries: Mutex<HashMap<u64, Arc<CompiledSystem>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SystemCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SystemCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached artifact for `model`'s content hash, or
    /// invokes `compile` (typically `urt_analysis::compile` with a fresh
    /// registry) and caches the result. Hits return the same `Arc` —
    /// pointer equality holds.
    ///
    /// Compilation runs outside the cache lock; if two threads miss the
    /// same key concurrently both compile, but only one artifact is
    /// retained and handed to every caller. Errors are returned to the
    /// caller and never cached.
    ///
    /// # Errors
    ///
    /// Whatever `compile` returns.
    pub fn get_or_compile(
        &self,
        model: &UnifiedModel,
        compile: impl FnOnce(&UnifiedModel) -> Result<CompiledSystem, CoreError>,
    ) -> Result<Arc<CompiledSystem>, CoreError> {
        let key = model.content_hash();
        if let Some(hit) = self.entries.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        let fresh = Arc::new(compile(model)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock();
        let entry = entries.entry(key).or_insert(fresh);
        Ok(Arc::clone(entry))
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that compiled fresh.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct artifacts currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached artifact (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

impl Default for SystemCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SystemCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::{elaborate, validate_gate, BehaviorRegistry};
    use crate::model::ModelBuilder;
    use urt_dataflow::flowtype::FlowType;
    use urt_dataflow::streamer::FnStreamer;

    fn wave_model(name: &str) -> UnifiedModel {
        let mut b = ModelBuilder::new(name);
        let wave = b.streamer("wave", "rk4");
        b.streamer_out(wave, "y", FlowType::scalar());
        b.probe(wave, "y", "out");
        b.build()
    }

    fn compile(model: &UnifiedModel) -> Result<CompiledSystem, CoreError> {
        let registry = BehaviorRegistry::new().streamer("wave", || {
            Box::new(FnStreamer::new("wave", 0, 1, |t: f64, _h, _u: &[f64], y: &mut [f64]| {
                y[0] = t.cos()
            }))
        });
        elaborate(model, registry, &validate_gate)
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hit_returns_the_same_arc_and_counts() {
        let cache = SystemCache::new();
        let model = wave_model("m");
        let a = cache.get_or_compile(&model, compile).unwrap();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 1, 1));
        let b = cache.get_or_compile(&model, compile).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the artifact");
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn distinct_models_get_distinct_entries() {
        let cache = SystemCache::new();
        let a = cache.get_or_compile(&wave_model("m1"), compile).unwrap();
        let b = cache.get_or_compile(&wave_model("m2"), compile).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn closure_is_skipped_on_hit_and_errors_are_not_cached() {
        let cache = SystemCache::new();
        let model = wave_model("m");
        // A failing compile is returned and not cached...
        let err = cache
            .get_or_compile(&model, |_| Err(CoreError::Elaborate { detail: "nope".into() }))
            .unwrap_err();
        assert!(err.to_string().contains("nope"));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
        // ...so the next call compiles for real.
        cache.get_or_compile(&model, compile).unwrap();
        // On a hit the closure must not run at all.
        cache
            .get_or_compile(&model, |_| -> Result<CompiledSystem, CoreError> {
                panic!("closure invoked on a cache hit")
            })
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn cache_and_artifact_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SystemCache>();
        assert_send_sync::<CompiledSystem>();

        // And actually share one artifact across threads.
        let cache = Arc::new(SystemCache::new());
        let model = wave_model("m");
        let compiled = cache.get_or_compile(&model, compile).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let compiled = Arc::clone(&compiled);
                scope.spawn(move || {
                    let instance = compiled.instantiate().expect("instantiates");
                    assert_eq!(instance.group_count(), 1);
                });
            }
        });
    }
}
