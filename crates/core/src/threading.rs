//! Thread assignment: "we can use any number of streamers, which are
//! assigned to one or several threads during implementation".

use std::fmt;

/// How the engine executes streamer groups relative to the capsule thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThreadPolicy {
    /// Everything interleaved on the calling thread (still semantically
    /// separated; useful for tests and deterministic runs).
    #[default]
    CurrentThread,
    /// Each streamer group runs on its own dedicated solver thread,
    /// synchronised with the capsule thread once per macro step — the
    /// paper's intended deployment.
    DedicatedThreads,
}

impl fmt::Display for ThreadPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThreadPolicy::CurrentThread => "current-thread",
            ThreadPolicy::DedicatedThreads => "dedicated-threads",
        })
    }
}

/// How streamers are partitioned into groups (each group = one candidate
/// thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupingPolicy {
    /// All streamers share one group.
    Single,
    /// One group per streamer.
    PerStreamer,
    /// Round-robin into `k` groups.
    Grouped(usize),
}

impl GroupingPolicy {
    /// Assigns `n` streamers to groups; returns one group index per
    /// streamer.
    ///
    /// # Panics
    ///
    /// Panics if `Grouped(0)` is used.
    pub fn assign(self, n: usize) -> Vec<usize> {
        match self {
            GroupingPolicy::Single => vec![0; n],
            GroupingPolicy::PerStreamer => (0..n).collect(),
            GroupingPolicy::Grouped(k) => {
                assert!(k > 0, "group count must be positive");
                (0..n).map(|i| i % k).collect()
            }
        }
    }

    /// Number of groups produced for `n` streamers.
    pub fn group_count(self, n: usize) -> usize {
        match self {
            GroupingPolicy::Single => usize::from(n > 0),
            GroupingPolicy::PerStreamer => n,
            GroupingPolicy::Grouped(k) => k.min(n).max(usize::from(n > 0)),
        }
    }
}

impl fmt::Display for GroupingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupingPolicy::Single => f.write_str("single"),
            GroupingPolicy::PerStreamer => f.write_str("per-streamer"),
            GroupingPolicy::Grouped(k) => write!(f, "grouped({k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_puts_all_in_group_zero() {
        assert_eq!(GroupingPolicy::Single.assign(3), vec![0, 0, 0]);
        assert_eq!(GroupingPolicy::Single.group_count(3), 1);
        assert_eq!(GroupingPolicy::Single.group_count(0), 0);
    }

    #[test]
    fn per_streamer_is_identity() {
        assert_eq!(GroupingPolicy::PerStreamer.assign(3), vec![0, 1, 2]);
        assert_eq!(GroupingPolicy::PerStreamer.group_count(3), 3);
    }

    #[test]
    fn grouped_round_robins() {
        assert_eq!(GroupingPolicy::Grouped(2).assign(5), vec![0, 1, 0, 1, 0]);
        assert_eq!(GroupingPolicy::Grouped(2).group_count(5), 2);
        assert_eq!(GroupingPolicy::Grouped(8).group_count(3), 3, "capped by streamer count");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn grouped_zero_rejected() {
        let _ = GroupingPolicy::Grouped(0).assign(1);
    }

    #[test]
    fn displays() {
        assert_eq!(ThreadPolicy::CurrentThread.to_string(), "current-thread");
        assert_eq!(ThreadPolicy::DedicatedThreads.to_string(), "dedicated-threads");
        assert_eq!(GroupingPolicy::Grouped(4).to_string(), "grouped(4)");
        assert_eq!(GroupingPolicy::PerStreamer.to_string(), "per-streamer");
    }
}
