//! Thread-safe signal recording shared by the engine, examples and
//! benchmarks.
//!
//! Series are *interned*: each name resolves once to a [`SeriesHandle`]
//! owning its own buffer and lock. The engine hot path pushes through
//! handles, so a per-sample push costs one per-series lock instead of a
//! global-mutex acquisition plus a string-keyed map lookup. The
//! string-addressed [`Recorder::push`] remains as a convenience wrapper
//! for setup-time and test code.

use crate::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One series' shared sample buffer.
type SeriesBuf = Arc<Mutex<Vec<(f64, f64)>>>;

/// A pre-resolved, cheaply clonable handle to one recorder series.
///
/// Obtained from [`Recorder::handle`]; pushing through it touches only
/// this series' lock. Handles stay valid across [`Recorder::clear`]
/// (which empties buffers in place).
///
/// # Examples
///
/// ```
/// use urt_core::recorder::Recorder;
///
/// let rec = Recorder::new();
/// let y = rec.handle("y");
/// y.push(0.0, 1.0);
/// y.push(0.1, 2.0);
/// assert_eq!(rec.series("y").len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SeriesHandle {
    buf: SeriesBuf,
}

impl SeriesHandle {
    /// Appends a `(t, value)` sample.
    pub fn push(&self, t: f64, value: f64) {
        self.buf.lock().push((t, value));
    }

    /// Number of samples in this series.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.buf.lock().last().copied()
    }
}

/// A cheaply clonable recorder of named time series.
///
/// # Examples
///
/// ```
/// use urt_core::recorder::Recorder;
///
/// let rec = Recorder::new();
/// rec.push("y", 0.0, 1.0);
/// rec.push("y", 0.1, 2.0);
/// assert_eq!(rec.series("y").len(), 2);
/// assert_eq!(rec.last("y"), Some((0.1, 2.0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    /// Name → buffer registry. Locked only to intern or enumerate series,
    /// never on the per-sample path.
    registry: Arc<Mutex<BTreeMap<String, SeriesBuf>>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` (creating an empty series if new) and returns its
    /// handle for lock-cheap repeated pushes.
    pub fn handle(&self, name: &str) -> SeriesHandle {
        let mut reg = self.registry.lock();
        if let Some(buf) = reg.get(name) {
            return SeriesHandle { buf: Arc::clone(buf) };
        }
        let buf: SeriesBuf = Arc::default();
        reg.insert(name.to_owned(), Arc::clone(&buf));
        SeriesHandle { buf }
    }

    /// Appends a `(t, value)` sample to the named series.
    pub fn push(&self, name: &str, t: f64, value: f64) {
        self.handle(name).push(t, value);
    }

    /// Copies out one series (empty if unknown).
    pub fn series(&self, name: &str) -> Vec<(f64, f64)> {
        let buf = self.registry.lock().get(name).cloned();
        buf.map(|b| b.lock().clone()).unwrap_or_default()
    }

    /// The last sample of a series.
    pub fn last(&self, name: &str) -> Option<(f64, f64)> {
        let buf = self.registry.lock().get(name).cloned();
        buf.and_then(|b| b.lock().last().copied())
    }

    /// Names of all interned series, sorted.
    pub fn names(&self) -> Vec<String> {
        self.registry.lock().keys().cloned().collect()
    }

    /// Total number of samples across all series.
    pub fn len(&self) -> usize {
        let bufs: Vec<SeriesBuf> = self.registry.lock().values().cloned().collect();
        bufs.iter().map(|b| b.lock().len()).sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all samples. Series stay interned so outstanding
    /// [`SeriesHandle`]s remain valid and keep recording into the same
    /// (now empty) buffers.
    pub fn clear(&self) {
        let bufs: Vec<SeriesBuf> = self.registry.lock().values().cloned().collect();
        for b in bufs {
            b.lock().clear();
        }
    }

    /// Root-mean-square error between a series and a reference function
    /// evaluated at the recorded times.
    pub fn rms_error(&self, name: &str, reference: impl Fn(f64) -> f64) -> f64 {
        let data = self.series(name);
        if data.is_empty() {
            return 0.0;
        }
        let sum: f64 = data.iter().map(|(t, v)| (v - reference(*t)).powi(2)).sum();
        (sum / data.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let r = Recorder::new();
        assert!(r.is_empty());
        r.push("a", 0.0, 1.0);
        r.push("b", 0.0, 2.0);
        r.push("a", 1.0, 3.0);
        assert_eq!(r.len(), 3);
        assert_eq!(r.names(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(r.series("a"), vec![(0.0, 1.0), (1.0, 3.0)]);
        assert_eq!(r.series("missing"), vec![]);
        assert_eq!(r.last("missing"), None);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let r = Recorder::new();
        let r2 = r.clone();
        r2.push("x", 0.0, 1.0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn handles_alias_the_named_series() {
        let r = Recorder::new();
        let h = r.handle("x");
        h.push(0.0, 1.0);
        r.push("x", 1.0, 2.0);
        let h2 = r.handle("x");
        h2.push(2.0, 3.0);
        assert_eq!(r.series("x"), vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.last(), Some((2.0, 3.0)));
        assert!(!h.is_empty());
    }

    #[test]
    fn handles_survive_clear() {
        let r = Recorder::new();
        let h = r.handle("x");
        h.push(0.0, 1.0);
        r.clear();
        assert!(h.is_empty());
        h.push(1.0, 2.0);
        assert_eq!(r.series("x"), vec![(1.0, 2.0)], "handle still feeds the recorder");
        assert_eq!(r.names(), vec!["x".to_owned()], "series stay interned across clear");
    }

    #[test]
    fn rms_error_against_reference() {
        let r = Recorder::new();
        for k in 0..100 {
            let t = k as f64 * 0.01;
            r.push("sin", t, t.sin());
        }
        assert!(r.rms_error("sin", |t| t.sin()) < 1e-12);
        let off = r.rms_error("sin", |t| t.sin() + 1.0);
        assert!((off - 1.0).abs() < 1e-12);
        assert_eq!(r.rms_error("missing", |_| 0.0), 0.0);
    }

    #[test]
    fn recorder_is_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<Recorder>();
        assert_ss::<SeriesHandle>();
    }
}
