//! Thread-safe signal recording shared by the engine, examples and
//! benchmarks.

use crate::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A cheaply clonable recorder of named time series.
///
/// # Examples
///
/// ```
/// use urt_core::recorder::Recorder;
///
/// let rec = Recorder::new();
/// rec.push("y", 0.0, 1.0);
/// rec.push("y", 0.1, 2.0);
/// assert_eq!(rec.series("y").len(), 2);
/// assert_eq!(rec.last("y"), Some((0.1, 2.0)));
/// ```
/// Named `(time, value)` series, keyed by signal name.
type SeriesMap = BTreeMap<String, Vec<(f64, f64)>>;

#[derive(Debug, Clone, Default)]
pub struct Recorder {
    series: Arc<Mutex<SeriesMap>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `(t, value)` sample to the named series.
    pub fn push(&self, name: &str, t: f64, value: f64) {
        self.series.lock().entry(name.to_owned()).or_default().push((t, value));
    }

    /// Copies out one series (empty if unknown).
    pub fn series(&self, name: &str) -> Vec<(f64, f64)> {
        self.series.lock().get(name).cloned().unwrap_or_default()
    }

    /// The last sample of a series.
    pub fn last(&self, name: &str) -> Option<(f64, f64)> {
        self.series.lock().get(name).and_then(|v| v.last().copied())
    }

    /// Names of all recorded series, sorted.
    pub fn names(&self) -> Vec<String> {
        self.series.lock().keys().cloned().collect()
    }

    /// Total number of samples across all series.
    pub fn len(&self) -> usize {
        self.series.lock().values().map(Vec::len).sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all series.
    pub fn clear(&self) {
        self.series.lock().clear();
    }

    /// Root-mean-square error between a series and a reference function
    /// evaluated at the recorded times.
    pub fn rms_error(&self, name: &str, reference: impl Fn(f64) -> f64) -> f64 {
        let data = self.series(name);
        if data.is_empty() {
            return 0.0;
        }
        let sum: f64 = data.iter().map(|(t, v)| (v - reference(*t)).powi(2)).sum();
        (sum / data.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let r = Recorder::new();
        assert!(r.is_empty());
        r.push("a", 0.0, 1.0);
        r.push("b", 0.0, 2.0);
        r.push("a", 1.0, 3.0);
        assert_eq!(r.len(), 3);
        assert_eq!(r.names(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(r.series("a"), vec![(0.0, 1.0), (1.0, 3.0)]);
        assert_eq!(r.series("missing"), vec![]);
        assert_eq!(r.last("missing"), None);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let r = Recorder::new();
        let r2 = r.clone();
        r2.push("x", 0.0, 1.0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn rms_error_against_reference() {
        let r = Recorder::new();
        for k in 0..100 {
            let t = k as f64 * 0.01;
            r.push("sin", t, t.sin());
        }
        assert!(r.rms_error("sin", |t| t.sin()) < 1e-12);
        let off = r.rms_error("sin", |t| t.sin() + 1.0);
        assert!((off - 1.0).abs() < 1e-12);
        assert_eq!(r.rms_error("missing", |_| 0.0), 0.0);
    }

    #[test]
    fn recorder_is_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<Recorder>();
    }
}
