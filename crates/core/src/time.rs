//! The `Time` stereotype: a continuous, predictable simulation clock.
//!
//! "Timing in UML-RT is unpredictable. In this paper, we introduce a Time
//! stereotype, which is a continuous variable, can be used as simulation
//! clock." Hybrid systems additionally need *superdense* time — at a
//! discrete event the clock stands still while several event iterations
//! run — so [`HybridTime`] pairs the real-valued instant with an epoch
//! counter.

use std::cmp::Ordering;
use std::fmt;

/// A superdense time point: `(seconds, epoch)`.
///
/// Two hybrid times at the same real instant are ordered by epoch, which
/// counts discrete event iterations at that instant.
///
/// # Examples
///
/// ```
/// use urt_core::time::HybridTime;
///
/// let a = HybridTime::new(1.0);
/// let b = a.next_epoch();
/// assert!(b > a);
/// assert_eq!(b.seconds(), 1.0);
/// assert_eq!(b.epoch(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HybridTime {
    seconds: f64,
    epoch: u64,
}

impl HybridTime {
    /// A time point at `seconds`, epoch 0.
    pub fn new(seconds: f64) -> Self {
        HybridTime { seconds, epoch: 0 }
    }

    /// The real-valued instant in seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// The event-iteration counter at this instant.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances by `dt` seconds, resetting the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or not finite.
    pub fn advance(&self, dt: f64) -> HybridTime {
        assert!(dt.is_finite() && dt >= 0.0, "dt must be finite and non-negative");
        HybridTime { seconds: self.seconds + dt, epoch: 0 }
    }

    /// The next event iteration at the same instant.
    pub fn next_epoch(&self) -> HybridTime {
        HybridTime { seconds: self.seconds, epoch: self.epoch + 1 }
    }

    /// A time point at `seconds` with an explicit epoch.
    pub fn with_epoch(seconds: f64, epoch: u64) -> Self {
        HybridTime { seconds, epoch }
    }
}

impl PartialOrd for HybridTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.seconds.partial_cmp(&other.seconds)? {
            Ordering::Equal => Some(self.epoch.cmp(&other.epoch)),
            ord => Some(ord),
        }
    }
}

impl fmt::Display for HybridTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.epoch == 0 {
            write!(f, "{}s", self.seconds)
        } else {
            write!(f, "{}s+{}", self.seconds, self.epoch)
        }
    }
}

/// The continuous simulation clock driving the hybrid engine.
///
/// Unlike the UML-RT timer service (which quantises to ticks), this clock
/// accumulates exactly the solver macro steps — the paper's fix for
/// "unpredictable" timing. [`SimClock::drift_against_ticks`] quantifies the
/// difference for experiment E5.
///
/// The clock is *drift-free*: instead of accumulating `t += h` once per
/// tick (whose rounding error grows with the step count), the current
/// instant is derived as `t0 + base + run_steps * run_h`, where
/// `run_steps` counts the ticks of the current uniform run of step size
/// `run_h` and `base` folds in any earlier runs with a different step.
/// For the common case of a fixed macro step from t = 0 this makes
/// `seconds()` bit-equal to `step_count as f64 * h`, however many steps
/// are taken.
#[derive(Debug, Clone, PartialEq)]
pub struct SimClock {
    t0: f64,
    /// Seconds accumulated by completed uniform runs before the current one.
    base: f64,
    /// Step size of the current uniform run of ticks.
    run_h: f64,
    /// Ticks in the current uniform run.
    run_steps: u64,
    step_count: u64,
    epoch: u64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::starting_at(0.0)
    }

    /// A clock starting at `t0` seconds.
    pub fn starting_at(t0: f64) -> Self {
        SimClock { t0, base: 0.0, run_h: 0.0, run_steps: 0, step_count: 0, epoch: 0 }
    }

    /// The current hybrid time.
    pub fn now(&self) -> HybridTime {
        HybridTime::with_epoch(self.seconds(), self.epoch)
    }

    /// Current time in seconds.
    pub fn seconds(&self) -> f64 {
        self.t0 + self.base + self.run_steps as f64 * self.run_h
    }

    /// Number of macro steps taken.
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// Advances by one macro step of `h` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not positive and finite.
    pub fn tick(&mut self, h: f64) {
        assert!(h.is_finite() && h > 0.0, "macro step must be positive");
        if self.run_steps > 0 && h != self.run_h {
            // The step size changed: close the uniform run so the new one
            // stays a drift-free product.
            self.base += self.run_steps as f64 * self.run_h;
            self.run_steps = 0;
        }
        self.run_h = h;
        self.run_steps += 1;
        self.step_count += 1;
        self.epoch = 0;
    }

    /// Begins a discrete event iteration at the current instant.
    pub fn event_iteration(&mut self) {
        self.epoch += 1;
    }

    /// How far a tick-quantised timer scheduled every `period` seconds on
    /// a `tick` resolution drifts from this continuous clock after
    /// `n` firings (E5's measurement): returns the absolute drift in
    /// seconds.
    pub fn drift_against_ticks(period: f64, tick: f64, n: u64) -> f64 {
        // Continuous clock: n * period. Quantised timer: each period is
        // rounded up to the next tick boundary, then periods accumulate.
        let quantise = |t: f64| {
            if tick <= 0.0 {
                t
            } else {
                // Guard against representation error pushing an exact
                // multiple over the next boundary.
                ((t / tick) - 1e-9).ceil() * tick
            }
        };
        let mut quantised = 0.0;
        for _ in 0..n {
            quantised = quantise(quantised + period);
        }
        (quantised - n as f64 * period).abs()
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of whole macro steps of size `step` needed to reach `t_end`
/// from instant `t`. Uses a *relative* tolerance so a step landing within
/// rounding distance of `t_end` counts as having reached it — an absolute
/// epsilon is absorbed for large `t_end` (or dwarfs tiny `step`), running
/// one step too many or too few. Shared by every engine's `run_until`.
pub(crate) fn steps_until(t: f64, t_end: f64, step: f64) -> u64 {
    if t_end <= t {
        return 0;
    }
    let raw = (t_end - t) / step;
    (raw * (1.0 - 1e-12)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_time_ordering() {
        let a = HybridTime::new(1.0);
        let b = HybridTime::new(2.0);
        assert!(a < b);
        let a1 = a.next_epoch();
        assert!(a < a1);
        assert!(a1 < b, "epoch never outranks real time");
        assert_eq!(a1.next_epoch().epoch(), 2);
    }

    #[test]
    fn advance_resets_epoch() {
        let t = HybridTime::new(0.0).next_epoch().next_epoch();
        assert_eq!(t.epoch(), 2);
        let t2 = t.advance(0.5);
        assert_eq!(t2.epoch(), 0);
        assert_eq!(t2.seconds(), 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn advance_rejects_negative() {
        let _ = HybridTime::new(0.0).advance(-1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(HybridTime::new(1.5).to_string(), "1.5s");
        assert_eq!(HybridTime::new(1.5).next_epoch().to_string(), "1.5s+1");
    }

    #[test]
    fn clock_accumulates_exactly() {
        let mut c = SimClock::new();
        for _ in 0..1000 {
            c.tick(0.001);
        }
        assert!((c.seconds() - 1.0).abs() < 1e-12);
        assert_eq!(c.step_count(), 1000);
    }

    #[test]
    fn clock_is_drift_free_over_ten_million_steps() {
        // Regression: the clock used to accumulate `t += h` per tick, so
        // rounding error grew with the step count. Derived time must stay
        // bit-equal to `step_count as f64 * h` forever.
        let h = 1e-3;
        let mut c = SimClock::new();
        for _ in 0..10_000_000u64 {
            c.tick(h);
        }
        assert_eq!(c.step_count(), 10_000_000);
        let derived = c.step_count() as f64 * h;
        assert_eq!(c.seconds().to_bits(), derived.to_bits(), "bit-equal to step_count * h");
        // 10^7 * 1e-3 is 10^4 seconds up to one rounding of the product.
        assert!((c.seconds() - 1e4).abs() <= f64::EPSILON * 1e4, "got {}", c.seconds());
    }

    #[test]
    fn clock_handles_step_size_changes() {
        let mut c = SimClock::starting_at(1.0);
        c.tick(0.5);
        c.tick(0.5);
        c.tick(0.25);
        assert_eq!(c.seconds(), 2.25);
        assert_eq!(c.step_count(), 3);
        // Back to a uniform run: the new run is again a drift-free product.
        for _ in 0..4 {
            c.tick(0.25);
        }
        assert_eq!(c.seconds(), 3.25);
        assert_eq!(c.step_count(), 7);
    }

    #[test]
    fn clock_event_iterations() {
        let mut c = SimClock::starting_at(2.0);
        c.event_iteration();
        c.event_iteration();
        assert_eq!(c.now().epoch(), 2);
        assert_eq!(c.seconds(), 2.0);
        c.tick(0.1);
        assert_eq!(c.now().epoch(), 0);
    }

    #[test]
    fn quantised_timer_drift_grows_with_n() {
        // 15 ms period on a 10 ms tick: each firing rounds up to a 20 ms
        // boundary, drifting 5 ms per firing.
        let d10 = SimClock::drift_against_ticks(0.015, 0.010, 10);
        let d100 = SimClock::drift_against_ticks(0.015, 0.010, 100);
        assert!(d10 > 0.0);
        assert!(d100 > d10 * 5.0, "drift accumulates: {d10} vs {d100}");
        // Exact-divisor periods never drift (up to representation noise).
        assert!(SimClock::drift_against_ticks(0.020, 0.010, 100) < 1e-9);
        // The continuous Time clock (tick = 0) never drifts.
        assert!(SimClock::drift_against_ticks(0.015, 0.0, 100) < 1e-9);
    }
}
