//! Deterministic in-tree pseudo-random numbers.
//!
//! The canonical implementation lives in [`urt_ode::rng`] (the bottom of
//! the continuous dependency stack, so the block library's noise sources
//! can use it too); this module re-exports it under the engine crate's
//! namespace. See that module for the generator design (`SplitMix64`
//! seeding a PCG-XSH-RR 64/32) and the hermetic-build rationale.

pub use urt_ode::rng::{Pcg32, SplitMix64};
