//! Elaboration: lowering a declarative [`UnifiedModel`] into an
//! executable [`CompiledSystem`] artifact, and instantiating that
//! artifact into live [`SystemInstance`]s.
//!
//! The paper's point is *one* model covering both the event-driven and
//! the time-continuous half. This module closes the gap between the
//! declarative model (what `urt-lint` and codegen consume) and the
//! hand-wired runtime (`HybridEngine` + `StreamerNetwork` +
//! `Controller`): [`elaborate`] resolves every name, port, flow, SPort
//! link and probe **once**, at compile time, into dense integer ids, so
//! the engine's hot path never compares strings or hashes keys.
//!
//! Since the artifact/instance split, elaboration output is a **pure
//! plan**: lowered per-group topology tables, cross-flow specs, resolved
//! probe/link tables, budgets, and the behaviour *factories* from the
//! [`BehaviorRegistry`] — no live solver or capsule state. A stable
//! content hash (canonical model rendering + registry shape, see
//! [`crate::cache`]) identifies the artifact, so one `compile()` can be
//! memoized and shared ([`SystemCache`](crate::cache::SystemCache)) while
//! [`CompiledSystem::instantiate`] stamps out as many independent live
//! systems as needed — each one bit-identical to a fresh elaboration.
//!
//! The pipeline is `model → analyze → compile → instantiate → run`:
//!
//! 1. an injected [analysis gate](AnalysisGate) vets the model —
//!    `urt_analysis::compile` passes the full whole-model analyzer here
//!    and refuses any error-severity finding (the crate DAG points
//!    `urt_analysis → urt_core`, so the analyzer is injected instead of
//!    called directly);
//! 2. the model's own well-formedness rules run
//!    ([`UnifiedModel::validate`]);
//! 3. the streamer hierarchy is **flattened**: container streamers
//!    (those owning sub-streamers, Figure 2) contribute no nodes, their
//!    leaves become node plans of a flat [`StreamerNetwork`] per declared
//!    solver thread, and capsule relay DPort chains (Figure 3) are
//!    resolved to direct leaf-to-leaf flows; flows whose endpoints sit on
//!    *different* declared threads are lowered into cross-group channel
//!    entries (double-buffered, one-macro-step delay) instead of forcing
//!    the threads to merge;
//! 4. behaviours come from a [`BehaviorRegistry`] (streamer name →
//!    [`StreamerBehavior`] factory, capsule name → [`Capsule`] factory);
//!    elaboration performs one validation instantiation, cross-checking
//!    every behaviour against the declared DPort widths and feedthrough
//!    flag, so a successfully elaborated artifact instantiates cleanly;
//! 5. SPort links and probes are resolved to `(group, node)` pairs, with
//!    the same duplicate-link rule the engine enforces
//!    ([`CoreError::DuplicateSportLink`]).
//!
//! The result plugs into the engine via
//! [`HybridEngine::from_compiled`](crate::engine::HybridEngine::from_compiled),
//! which borrows the artifact and instantiates it.

use crate::error::CoreError;
use crate::model::{FlowEnd, Owner, StreamerRef, UnifiedModel};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::graph::{NodeId, StreamerNetwork};
use urt_dataflow::port::SPortSpec;
use urt_dataflow::streamer::StreamerBehavior;
use urt_umlrt::capsule::{Capsule, CapsuleContext, SmCapsule};
use urt_umlrt::controller::Controller;
use urt_umlrt::message::Message;
use urt_umlrt::protocol::Protocol;
use urt_umlrt::statemachine::{SmSpec, StateMachineBuilder};

/// Factory producing the executable behaviour of one model streamer.
///
/// `Fn` (not `FnOnce`): the artifact keeps the factory and re-invokes it
/// for every [`CompiledSystem::instantiate`] call and every ensemble
/// replica. `Send + Sync` so a compiled artifact can be shared across
/// threads behind an `Arc` (the compile cache's whole point).
pub type StreamerFactory = Box<dyn Fn() -> Box<dyn StreamerBehavior> + Send + Sync>;

/// Factory producing the executable instance of one model capsule.
pub type CapsuleFactory = Box<dyn Fn() -> Box<dyn Capsule> + Send + Sync>;

/// Maps model element names to the executable behaviours instantiation
/// produces for them.
///
/// Every **leaf** streamer in the model needs a registered factory.
/// Capsules fall back to an inert instance compiled from the model's
/// attached [`SmSpec`] (no-op actions) — or a stateless placeholder if
/// no machine was declared — so analysis-only models still elaborate.
#[derive(Default)]
pub struct BehaviorRegistry {
    streamers: HashMap<String, StreamerFactory>,
    capsules: HashMap<String, CapsuleFactory>,
}

impl std::fmt::Debug for BehaviorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BehaviorRegistry")
            .field("streamers", &self.streamers.len())
            .field("capsules", &self.capsules.len())
            .finish()
    }
}

impl BehaviorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the behaviour factory for streamer `name`
    /// (builder style). The factory is retained by the compiled artifact
    /// and re-invoked on every instantiation, so it must be `Fn` and
    /// clone (not move out) any captured prototype.
    pub fn streamer(
        mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn StreamerBehavior> + Send + Sync + 'static,
    ) -> Self {
        self.streamers.insert(name.into(), Box::new(factory));
        self
    }

    /// Registers the capsule factory for capsule `name` (builder style).
    pub fn capsule(
        mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Capsule> + Send + Sync + 'static,
    ) -> Self {
        self.capsules.insert(name.into(), Box::new(factory));
        self
    }
}

/// The analysis stage injected into [`elaborate`] — returns `Err` to
/// refuse compilation. `urt_analysis::compile` passes the whole-model
/// analyzer; tests and registries without the analysis crate can pass
/// [`validate_gate`] (model rules only) or `&|_| Ok(())`.
pub type AnalysisGate<'a> = &'a dyn Fn(&UnifiedModel) -> Result<(), CoreError>;

/// The minimal gate: just the model's own well-formedness rules.
///
/// # Errors
///
/// Returns the first [`CoreError::Validation`] violation.
pub fn validate_gate(model: &UnifiedModel) -> Result<(), CoreError> {
    model.validate()
}

/// One resolved SPort link: streamer `(group, node, sport)` bridged to a
/// capsule port.
#[derive(Debug, Clone)]
pub(crate) struct CompiledLink {
    pub(crate) group: usize,
    pub(crate) node: NodeId,
    pub(crate) sport: String,
    pub(crate) capsule: usize,
    pub(crate) capsule_port: String,
}

/// One resolved probe: streamer output `(group, node, port)` recorded
/// into a named series.
#[derive(Debug, Clone)]
pub(crate) struct CompiledProbe {
    pub(crate) group: usize,
    pub(crate) node: NodeId,
    pub(crate) port: String,
    pub(crate) series: String,
}

/// One resolved cross-group flow: producer output `(group, node, port)`
/// feeding consumer input `(group, node, port)` in a *different* solver
/// group, carried by a double-buffered channel with a deterministic
/// one-macro-step delay (the consumer reads the producer's previous
/// step's sample; see `HybridEngine::link_flow`).
#[derive(Debug, Clone)]
pub(crate) struct CrossGroupFlow {
    pub(crate) from_group: usize,
    pub(crate) from_node: NodeId,
    pub(crate) from_port: String,
    pub(crate) to_group: usize,
    pub(crate) to_node: NodeId,
    pub(crate) to_port: String,
}

/// One node of a group plan: the model streamer it realises, the declared
/// feedthrough/DPorts to cross-check the behaviour against, and its
/// resolved SPorts. Replayed in insertion order by
/// [`CompiledSystem::instantiate`], which reproduces the artifact's dense
/// [`NodeId`] assignment exactly.
#[derive(Debug, Clone)]
struct NodeSpec {
    streamer: String,
    feedthrough: bool,
    in_ports: Vec<(String, FlowType)>,
    out_ports: Vec<(String, FlowType)>,
    sports: Vec<SPortSpec>,
}

/// One wiring operation of a group plan. Replayed in declaration order so
/// instantiation reproduces the exact export-lane layout the cross-flow
/// table was resolved against.
#[derive(Debug, Clone)]
enum WireOp {
    Flow { from: NodeId, from_port: String, to: NodeId, to_port: String },
    Export { node: NodeId, port: String },
}

/// The plan of one solver-thread group: nodes in [`NodeId`] order plus
/// wiring in declaration order.
#[derive(Debug, Clone)]
struct GroupSpec {
    name: String,
    nodes: Vec<NodeSpec>,
    wiring: Vec<WireOp>,
}

/// How one model capsule is realised at instantiation time, in controller
/// insertion order.
#[derive(Debug, Clone)]
enum CapsuleSpec {
    /// A registered factory provides the executable capsule.
    Registered(String),
    /// No factory: an inert machine compiled from the model's [`SmSpec`].
    Machine(SmSpec),
    /// Neither factory nor machine: a stateless placeholder.
    Inert(String),
}

/// The compiled form of a [`UnifiedModel`]: an **immutable artifact** —
/// per-group topology plans, cross-flow/link/probe tables, budgets and
/// the behaviour factories — identified by a stable content hash.
///
/// The artifact holds no live state. [`CompiledSystem::instantiate`]
/// stamps out a fresh [`SystemInstance`] (solver networks + capsule
/// controller) on every call, each bit-identical to an independent
/// elaboration of the same model;
/// [`HybridEngine::from_compiled`](crate::engine::HybridEngine::from_compiled)
/// and
/// [`EnsembleEngine::from_compiled`](crate::ensemble::EnsembleEngine::from_compiled)
/// borrow the artifact, so one compile (possibly shared through
/// [`SystemCache`](crate::cache::SystemCache)) serves any number of
/// engines.
pub struct CompiledSystem {
    model_name: String,
    group_specs: Vec<GroupSpec>,
    capsule_specs: Vec<CapsuleSpec>,
    streamer_factories: HashMap<String, StreamerFactory>,
    capsule_factories: HashMap<String, CapsuleFactory>,
    pub(crate) links: Vec<CompiledLink>,
    pub(crate) probes: Vec<CompiledProbe>,
    pub(crate) cross_flows: Vec<CrossGroupFlow>,
    pub(crate) streamer_loc: BTreeMap<String, (usize, NodeId)>,
    pub(crate) capsule_idx: BTreeMap<String, usize>,
    pub(crate) step_budget_ns: Option<f64>,
    content_hash: u64,
}

impl fmt::Debug for CompiledSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledSystem")
            .field("model", &self.model_name)
            .field("groups", &self.group_specs.len())
            .field("capsules", &self.capsule_specs.len())
            .field("links", &self.links.len())
            .field("probes", &self.probes.len())
            .field("cross_flows", &self.cross_flows.len())
            .field("content_hash", &format_args!("{:#018x}", self.content_hash))
            .finish()
    }
}

impl CompiledSystem {
    /// Number of streamer groups (one per declared solver thread).
    pub fn group_count(&self) -> usize {
        self.group_specs.len()
    }

    /// Number of flows lowered into cross-group channels (each carries a
    /// deterministic one-macro-step delay).
    pub fn cross_flow_count(&self) -> usize {
        self.cross_flows.len()
    }

    /// Number of resolved SPort links (capsule–streamer signal bridges).
    /// Ensemble execution refuses systems with links
    /// ([`EnsembleEngine::from_compiled`](crate::ensemble::EnsembleEngine::from_compiled)),
    /// so callers batching a model catalogue use this to skip them.
    pub fn sport_link_count(&self) -> usize {
        self.links.len()
    }

    /// Where a leaf streamer landed, as `(group, node)`.
    pub fn streamer_node(&self, name: &str) -> Option<(usize, NodeId)> {
        self.streamer_loc.get(name).copied()
    }

    /// Controller index of a capsule, for state queries after the run
    /// (via [`HybridEngine::controller`](crate::engine::HybridEngine::controller)
    /// on the instantiated engine).
    pub fn capsule_index(&self, name: &str) -> Option<usize> {
        self.capsule_idx.get(name).copied()
    }

    /// Series names of all resolved probes, in declaration order —
    /// borrowed straight from the probe table, no per-call allocation.
    pub fn probe_series(&self) -> impl Iterator<Item = &str> + '_ {
        self.probes.iter().map(|p| p.series.as_str())
    }

    /// The model-wide per-macro-step deadline budget
    /// ([`BudgetScope::Model`](crate::model::BudgetScope)), in
    /// nanoseconds, carried through elaboration.
    /// [`HybridEngine::from_compiled`](crate::engine::HybridEngine::from_compiled)
    /// picks it up as the default deadline of
    /// [`run_paced`](crate::engine::HybridEngine::run_paced), and manual
    /// deployments can hand it straight to a
    /// [`StepBudget`](crate::pacer::StepBudget) for miss accounting
    /// against the wall clock.
    pub fn step_budget_ns(&self) -> Option<f64> {
        self.step_budget_ns
    }

    /// The artifact's stable content hash: FNV-1a 64 over the model's
    /// canonical rendering folded with the registry shape (sorted
    /// streamer and capsule factory names). Equal hashes mean the same
    /// model compiled against the same set of behaviour bindings — the
    /// compile cache's identity. The model-only component is
    /// [`UnifiedModel::content_hash`].
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Invokes the registered factory for the streamer realised at
    /// `(group, node)`, yielding one pristine behaviour — the ensemble
    /// engine's replication path (K replicas = K invocations).
    pub(crate) fn behavior_for(
        &self,
        group: usize,
        node: NodeId,
    ) -> Option<Box<dyn StreamerBehavior>> {
        let spec = self.group_specs.get(group)?.nodes.get(node.index())?;
        Some(self.streamer_factories.get(&spec.streamer)?())
    }

    /// Stamps out one live [`SystemInstance`]: invokes every behaviour
    /// factory fresh, replays the group plans into [`StreamerNetwork`]s
    /// (reproducing the artifact's dense node ids and export-lane
    /// layout), and builds the capsule [`Controller`].
    ///
    /// Two instances of one artifact are fully independent — no shared
    /// mutable state — and run bit-identically.
    ///
    /// # Errors
    ///
    /// [`CoreError::Elaborate`] if a factory-produced behaviour disagrees
    /// with the declared DPort widths or feedthrough flag, plus wiring
    /// errors from the dataflow layer. [`elaborate`] performs one
    /// validation instantiation, so a successfully compiled artifact
    /// does not fail here.
    pub fn instantiate(&self) -> Result<SystemInstance, CoreError> {
        let mut groups = Vec::with_capacity(self.group_specs.len());
        for spec in &self.group_specs {
            let mut net = StreamerNetwork::new(spec.name.clone());
            for node in &spec.nodes {
                let Some(factory) = self.streamer_factories.get(&node.streamer) else {
                    return Err(elaborate_err(format!(
                        "no behaviour registered for streamer `{}`",
                        node.streamer
                    )));
                };
                let behavior = factory();
                let in_width: usize = node.in_ports.iter().map(|(_, t)| t.width()).sum();
                let out_width: usize = node.out_ports.iter().map(|(_, t)| t.width()).sum();
                if behavior.input_width() != in_width || behavior.output_width() != out_width {
                    return Err(elaborate_err(format!(
                        "streamer `{}`: declared DPort widths {in_width}->{out_width} but \
                         behaviour `{}` computes {}->{}",
                        node.streamer,
                        behavior.name(),
                        behavior.input_width(),
                        behavior.output_width()
                    )));
                }
                if behavior.direct_feedthrough() != node.feedthrough {
                    return Err(elaborate_err(format!(
                        "streamer `{}`: model declares feedthrough={} but behaviour `{}` \
                         reports {}",
                        node.streamer,
                        node.feedthrough,
                        behavior.name(),
                        behavior.direct_feedthrough()
                    )));
                }
                let in_ports: Vec<(&str, FlowType)> =
                    node.in_ports.iter().map(|(n, t)| (n.as_str(), t.clone())).collect();
                let out_ports: Vec<(&str, FlowType)> =
                    node.out_ports.iter().map(|(n, t)| (n.as_str(), t.clone())).collect();
                let id = net.add_streamer_boxed(behavior, &in_ports, &out_ports)?;
                for sport in &node.sports {
                    net.add_sport(id, sport.clone())?;
                }
            }
            for op in &spec.wiring {
                match op {
                    WireOp::Flow { from, from_port, to, to_port } => {
                        net.flow((*from, from_port.as_str()), (*to, to_port.as_str()))?;
                    }
                    WireOp::Export { node, port } => {
                        net.export_input(*node, port)?;
                    }
                }
            }
            groups.push(net);
        }
        let mut controller = Controller::new(self.model_name.as_str());
        for cap in &self.capsule_specs {
            let instance: Box<dyn Capsule> = match cap {
                CapsuleSpec::Registered(name) => match self.capsule_factories.get(name) {
                    Some(factory) => factory(),
                    None => {
                        return Err(elaborate_err(format!(
                            "no factory registered for capsule `{name}`"
                        )))
                    }
                },
                CapsuleSpec::Machine(spec) => inert_machine(spec)?,
                CapsuleSpec::Inert(name) => Box::new(InertCapsule { name: name.clone() }),
            };
            controller.add_capsule(instance);
        }
        Ok(SystemInstance { groups, controller })
    }
}

/// One live realisation of a [`CompiledSystem`]: freshly instantiated
/// behaviours wired into per-group [`StreamerNetwork`]s plus an
/// instantiated capsule [`Controller`]. Produced by
/// [`CompiledSystem::instantiate`]; consumed by
/// [`HybridEngine::from_compiled`](crate::engine::HybridEngine::from_compiled)
/// — or taken apart with [`SystemInstance::into_parts`] for hand
/// deployment.
pub struct SystemInstance {
    pub(crate) groups: Vec<StreamerNetwork>,
    pub(crate) controller: Controller,
}

impl SystemInstance {
    /// Number of instantiated streamer groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Read access to the instantiated controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Decomposes the instance into its solver networks (in group order)
    /// and controller, for manual engine assembly.
    pub fn into_parts(self) -> (Vec<StreamerNetwork>, Controller) {
        (self.groups, self.controller)
    }
}

impl fmt::Debug for SystemInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemInstance").field("groups", &self.groups.len()).finish()
    }
}

/// A capsule with no behaviour: accepts every message, does nothing.
/// Instantiation produces it for model capsules that have neither a
/// registered factory nor an attached state machine (pure structural
/// capsules, e.g. Figure 3's containment shells).
struct InertCapsule {
    name: String,
}

impl Capsule for InertCapsule {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, _ctx: &mut CapsuleContext) {}

    fn on_message(&mut self, _msg: &Message, _ctx: &mut CapsuleContext) {}
}

/// Compiles an [`SmSpec`] into a runnable machine with no-op actions —
/// states and transitions fire exactly as declared, so supervisors built
/// this way still change state on SPort signals, they just cause no side
/// effects.
fn inert_machine(spec: &SmSpec) -> Result<Box<dyn Capsule>, CoreError> {
    // Parents must exist before their children: order states in waves.
    let mut ordered: Vec<&urt_umlrt::statemachine::SmStateSpec> = Vec::new();
    let mut remaining: Vec<&_> = spec.states.iter().collect();
    let mut declared: HashSet<&str> = HashSet::new();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|s| {
            let ready = s.parent.as_ref().is_none_or(|p| declared.contains(p.as_str()));
            if ready {
                declared.insert(s.name.as_str());
                ordered.push(s);
            }
            !ready
        });
        if remaining.len() == before {
            return Err(CoreError::Elaborate {
                detail: format!(
                    "machine `{}`: state `{}` has an undeclared parent",
                    spec.name, remaining[0].name
                ),
            });
        }
    }
    let mut b = StateMachineBuilder::new(spec.name.clone());
    for s in ordered {
        b = match &s.parent {
            None => b.state(&s.name),
            Some(p) => b.substate(&s.name, p),
        };
    }
    for s in &spec.states {
        if let Some(child) = &s.initial_child {
            b = b.initial_child(&s.name, child);
        }
    }
    let Some(initial) = &spec.initial else {
        return Err(CoreError::Elaborate {
            detail: format!("machine `{}` declares no initial state", spec.name),
        });
    };
    b = b.initial(initial, |_d: &mut (), _ctx: &mut CapsuleContext| {});
    for t in &spec.transitions {
        let trigger = (t.port.as_str(), t.signal.as_str());
        b = match &t.target {
            Some(target) => b.on(&t.source, trigger, target, |_d, _m, _ctx| {}),
            None => b.internal(&t.source, trigger, |_d, _m, _ctx| {}),
        };
    }
    let machine = b.build()?;
    Ok(Box::new(SmCapsule::new(machine, ())))
}

/// An effective leaf-to-leaf flow after capsule relay resolution.
struct EffectiveFlow {
    from: StreamerRef,
    from_port: String,
    to: StreamerRef,
    to_port: String,
}

fn elaborate_err(detail: String) -> CoreError {
    CoreError::Elaborate { detail }
}

/// Lowers `model` into a [`CompiledSystem`] artifact using `registry`
/// for behaviours, after `gate` (the injected analysis stage) accepts
/// it. Ends with one validation instantiation, so every behaviour is
/// cross-checked against its declaration at compile time and
/// [`CompiledSystem::instantiate`] cannot fail afterwards.
///
/// See the [module docs](self) for the flattening and id-assignment
/// rules.
///
/// # Errors
///
/// * whatever `gate` returns — `urt_analysis::compile` refuses any
///   error-severity finding;
/// * [`CoreError::Validation`] for model rule violations;
/// * [`CoreError::Elaborate`] for a missing behaviour factory, a
///   width/feedthrough mismatch between declaration and behaviour, or
///   structure the executable form cannot realise (flows touching
///   container streamers, unresolvable relay chains);
/// * [`CoreError::DuplicateSportLink`] if two SPort links claim the same
///   `(group, node, sport)`.
pub fn elaborate(
    model: &UnifiedModel,
    registry: BehaviorRegistry,
    gate: AnalysisGate<'_>,
) -> Result<CompiledSystem, CoreError> {
    gate(model)?;
    model.validate()?;

    // --- content hash: canonical model + registry shape ----------------
    // The model component hashes the canonical (derived Debug) rendering
    // — every model collection is a Vec in declaration order, so the
    // rendering is deterministic. The registry component folds in the
    // sorted factory names: same model, different bindings => different
    // artifact identity.
    let mut hasher = crate::cache::Fnv1a::new();
    hasher.update(format!("{model:?}").as_bytes());
    let mut streamer_names: Vec<&str> = registry.streamers.keys().map(String::as_str).collect();
    streamer_names.sort_unstable();
    for name in streamer_names {
        hasher.update(b"\0streamer\0");
        hasher.update(name.as_bytes());
    }
    let mut capsule_names: Vec<&str> = registry.capsules.keys().map(String::as_str).collect();
    capsule_names.sort_unstable();
    for name in capsule_names {
        hasher.update(b"\0capsule\0");
        hasher.update(name.as_bytes());
    }
    let content_hash = hasher.finish();

    // --- hierarchy: container streamers contribute no nodes ------------
    let refs: Vec<(StreamerRef, String)> =
        model.iter_streamers().map(|(r, name, _)| (r, name.to_owned())).collect();
    let containers: HashSet<StreamerRef> = refs
        .iter()
        .filter_map(|(r, _)| match model.streamer_owner(*r) {
            Some(Owner::Streamer(parent)) => Some(parent),
            _ => None,
        })
        .collect();
    let name_of = |r: StreamerRef| -> &str { model.streamer_name(r).unwrap_or("?") };
    for r in &containers {
        if !model.streamer_in_dports(*r).is_empty() || !model.streamer_out_dports(*r).is_empty() {
            return Err(elaborate_err(format!(
                "container streamer `{}` declares DPorts; flatten flows to its leaves instead",
                name_of(*r)
            )));
        }
    }

    // --- flows: resolve capsule relay chains to leaf-to-leaf edges -----
    let trace_source = |mut end: FlowEnd| -> Result<(StreamerRef, String), CoreError> {
        let mut hops = 0usize;
        loop {
            match end {
                FlowEnd::Streamer(s, port) => return Ok((s, port)),
                FlowEnd::Capsule(c, port) => {
                    hops += 1;
                    if hops > model.stats().flows + 1 {
                        return Err(elaborate_err(format!(
                            "relay chain through capsule DPort `{port}` does not terminate"
                        )));
                    }
                    let mut sources = model.iter_flows().filter(|&(_, to)| match to {
                        FlowEnd::Capsule(tc, tp) => *tc == c && *tp == port,
                        FlowEnd::Streamer(..) => false,
                    });
                    let Some((from, _)) = sources.next() else {
                        return Err(elaborate_err(format!(
                            "capsule DPort `{}`.`{port}` relays nothing",
                            model.capsule_name(c).unwrap_or("?")
                        )));
                    };
                    if sources.next().is_some() {
                        return Err(elaborate_err(format!(
                            "capsule DPort `{}`.`{port}` has multiple sources",
                            model.capsule_name(c).unwrap_or("?")
                        )));
                    }
                    end = from.clone();
                }
            }
        }
    };
    let mut effective: Vec<EffectiveFlow> = Vec::new();
    for (from, to) in model.iter_flows() {
        let FlowEnd::Streamer(to_s, to_port) = to else {
            // Flows *into* capsule DPorts are consumed by relay tracing.
            continue;
        };
        if containers.contains(to_s) {
            return Err(elaborate_err(format!(
                "flow targets container streamer `{}`",
                name_of(*to_s)
            )));
        }
        let (from_s, from_port) = trace_source(from.clone())?;
        if containers.contains(&from_s) {
            return Err(elaborate_err(format!(
                "flow originates at container streamer `{}`",
                name_of(from_s)
            )));
        }
        effective.push(EffectiveFlow {
            from: from_s,
            from_port,
            to: *to_s,
            to_port: to_port.clone(),
        });
    }

    // --- thread groups: one group per declared solver thread ------------
    // Flows no longer coalesce their endpoints: a flow between streamers
    // on distinct declared threads is lowered into a cross-group channel
    // below, so `assign_thread` is an actual partition, not a hint.
    let leaves: Vec<StreamerRef> =
        refs.iter().map(|(r, _)| *r).filter(|r| !containers.contains(r)).collect();
    let mut group_of_thread: BTreeMap<usize, usize> = BTreeMap::new();
    for tid in leaves.iter().map(|r| model.streamer_thread(*r)).collect::<BTreeSet<_>>() {
        let next = group_of_thread.len();
        group_of_thread.insert(tid, next);
    }
    let roots: Vec<usize> =
        leaves.iter().map(|r| group_of_thread[&model.streamer_thread(*r)]).collect();
    // A pure event-driven model (no leaf streamers) gets zero groups.
    let mut group_specs: Vec<GroupSpec> = group_of_thread
        .keys()
        .map(|tid| GroupSpec {
            name: format!("{}-t{tid}", model.name()),
            nodes: Vec::new(),
            wiring: Vec::new(),
        })
        .collect();

    // --- plan leaf streamers -------------------------------------------
    // Node ids are positional: instantiation replays the node list in
    // order, so `NodeId::from_index(position)` is exactly the id
    // `StreamerNetwork::add_streamer_boxed` will assign.
    let mut streamer_loc: BTreeMap<String, (usize, NodeId)> = BTreeMap::new();
    let mut loc_of: HashMap<StreamerRef, (usize, NodeId)> = HashMap::new();
    for (r, gid) in leaves.iter().zip(roots.iter()) {
        let name = name_of(*r);
        if !registry.streamers.contains_key(name) {
            return Err(elaborate_err(format!("no behaviour registered for streamer `{name}`")));
        }
        let mut sports = Vec::new();
        for (sport, proto) in model.streamer_sports(*r) {
            let protocol =
                model.protocol(proto).cloned().unwrap_or_else(|| Protocol::new(proto.clone()));
            sports.push(SPortSpec::new(sport.clone(), protocol));
        }
        let spec = &mut group_specs[*gid];
        let node = NodeId::from_index(spec.nodes.len());
        spec.nodes.push(NodeSpec {
            streamer: name.to_owned(),
            feedthrough: model.streamer_feedthrough(*r),
            in_ports: model
                .streamer_in_dports(*r)
                .iter()
                .map(|(n, t)| (n.clone(), t.clone()))
                .collect(),
            out_ports: model
                .streamer_out_dports(*r)
                .iter()
                .map(|(n, t)| (n.clone(), t.clone()))
                .collect(),
            sports,
        });
        streamer_loc.insert(name.to_owned(), (*gid, node));
        loc_of.insert(*r, (*gid, node));
    }

    // --- plan effective flows ------------------------------------------
    // Same-group flows become in-network edges (zero-delay, ordered by
    // the network's topological schedule). Cross-group flows become
    // channel table entries: the consumer input is exported (so the
    // engine can latch channel samples into it) and the engine backs the
    // edge with a double-buffered channel — a deterministic one-step
    // delay, which the analyzer's flow pass vets ahead of time.
    let mut cross_flows: Vec<CrossGroupFlow> = Vec::new();
    for f in &effective {
        let (gf, nf) = loc_of[&f.from];
        let (gt, nt) = loc_of[&f.to];
        if gf == gt {
            group_specs[gf].wiring.push(WireOp::Flow {
                from: nf,
                from_port: f.from_port.clone(),
                to: nt,
                to_port: f.to_port.clone(),
            });
        } else {
            group_specs[gt].wiring.push(WireOp::Export { node: nt, port: f.to_port.clone() });
            cross_flows.push(CrossGroupFlow {
                from_group: gf,
                from_node: nf,
                from_port: f.from_port.clone(),
                to_group: gt,
                to_node: nt,
                to_port: f.to_port.clone(),
            });
        }
    }

    // --- plan capsules --------------------------------------------------
    let mut capsule_specs: Vec<CapsuleSpec> = Vec::new();
    let mut capsule_idx: BTreeMap<String, usize> = BTreeMap::new();
    let mut cap_of: HashMap<crate::model::CapsuleRef, usize> = HashMap::new();
    for (c, name) in model.iter_capsules() {
        let spec = if registry.capsules.contains_key(name) {
            CapsuleSpec::Registered(name.to_owned())
        } else {
            match model.capsule_machine(c) {
                Some(sm) => CapsuleSpec::Machine(sm.clone()),
                None => CapsuleSpec::Inert(name.to_owned()),
            }
        };
        let idx = capsule_specs.len();
        capsule_specs.push(spec);
        capsule_idx.insert(name.to_owned(), idx);
        cap_of.insert(c, idx);
    }

    // --- resolve SPort links, refusing duplicates ----------------------
    let mut links: Vec<CompiledLink> = Vec::new();
    let mut seen: HashSet<(usize, usize, &str)> = HashSet::new();
    for (c, cport, s, sport) in model.iter_sport_links() {
        let Some(&(gid, node)) = loc_of.get(&s) else {
            return Err(elaborate_err(format!(
                "sport link targets container streamer `{}`",
                name_of(s)
            )));
        };
        if !seen.insert((gid, node.index(), sport)) {
            return Err(CoreError::DuplicateSportLink {
                group: gid,
                node: name_of(s).to_owned(),
                sport: sport.to_owned(),
            });
        }
        links.push(CompiledLink {
            group: gid,
            node,
            sport: sport.to_owned(),
            capsule: cap_of[&c],
            capsule_port: cport.to_owned(),
        });
    }

    // --- resolve probes -------------------------------------------------
    let mut probes: Vec<CompiledProbe> = Vec::new();
    for (s, port, series) in model.iter_probes() {
        let Some(&(gid, node)) = loc_of.get(&s) else {
            return Err(elaborate_err(format!(
                "probe `{series}` taps container streamer `{}`",
                name_of(s)
            )));
        };
        probes.push(CompiledProbe {
            group: gid,
            node,
            port: port.to_owned(),
            series: series.to_owned(),
        });
    }

    let BehaviorRegistry { streamers, capsules } = registry;
    let compiled = CompiledSystem {
        model_name: model.name().to_owned(),
        group_specs,
        capsule_specs,
        streamer_factories: streamers,
        capsule_factories: capsules,
        links,
        probes,
        cross_flows,
        streamer_loc,
        capsule_idx,
        step_budget_ns: model.model_budget(),
        content_hash,
    };
    // Validation instantiation: surfaces behaviour/declaration
    // mismatches, wiring conflicts and machine-spec errors *now*, so
    // every later `instantiate()` on this artifact succeeds.
    compiled.instantiate()?;
    Ok(compiled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, HybridEngine};
    use crate::model::ModelBuilder;
    use crate::recorder::Recorder;
    use crate::threading::ThreadPolicy;
    use urt_dataflow::streamer::FnStreamer;

    fn two_stage_model() -> UnifiedModel {
        let mut b = ModelBuilder::new("m");
        let src = b.streamer("src", "none");
        let dbl = b.streamer("dbl", "none");
        b.streamer_out(src, "y", FlowType::scalar());
        b.streamer_in(dbl, "u", FlowType::scalar());
        b.streamer_out(dbl, "y", FlowType::scalar());
        b.streamer_feedthrough(src, false);
        b.flow_between_streamers(src, "y", dbl, "u");
        b.probe(dbl, "y", "out");
        b.build()
    }

    fn two_stage_registry() -> BehaviorRegistry {
        // A non-feedthrough source (t at step start) feeding a doubler.
        struct Src;
        impl StreamerBehavior for Src {
            fn name(&self) -> &str {
                "src"
            }
            fn input_width(&self) -> usize {
                0
            }
            fn output_width(&self) -> usize {
                1
            }
            fn direct_feedthrough(&self) -> bool {
                false
            }
            fn advance(
                &mut self,
                t: f64,
                _h: f64,
                _u: &[f64],
                y: &mut [f64],
            ) -> Result<(), urt_ode::SolveError> {
                y[0] = t;
                Ok(())
            }
        }
        BehaviorRegistry::new().streamer("src", || Box::new(Src)).streamer("dbl", || {
            Box::new(FnStreamer::new("dbl", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| {
                y[0] = 2.0 * u[0]
            }))
        })
    }

    #[test]
    fn elaborates_and_runs_model_first() {
        let model = two_stage_model();
        let compiled = elaborate(&model, two_stage_registry(), &validate_gate).expect("elaborates");
        assert_eq!(compiled.group_count(), 1);
        assert!(compiled.streamer_node("src").is_some());
        assert_eq!(compiled.probe_series().collect::<Vec<_>>(), vec!["out"]);
        let mut engine = HybridEngine::from_compiled(
            &compiled,
            EngineConfig { step: 0.1, policy: ThreadPolicy::CurrentThread },
        )
        .expect("engine");
        let rec = Recorder::new();
        engine.set_recorder(rec.clone());
        engine.run_until(1.0).expect("run");
        let series = rec.series("out");
        assert_eq!(series.len(), 10);
        // Last step starts at t=0.9: src emits 0.9, dbl doubles it.
        assert!((series.last().unwrap().1 - 1.8).abs() < 1e-12);
    }

    #[test]
    fn artifact_instantiates_many_independent_instances() {
        let model = two_stage_model();
        let compiled = elaborate(&model, two_stage_registry(), &validate_gate).expect("elaborates");
        // The artifact is not consumed: instantiate as often as needed.
        let run = |compiled: &CompiledSystem| {
            let mut engine = HybridEngine::from_compiled(
                compiled,
                EngineConfig { step: 0.1, policy: ThreadPolicy::CurrentThread },
            )
            .expect("engine");
            let rec = Recorder::new();
            engine.set_recorder(rec.clone());
            engine.run_until(1.0).expect("run");
            rec.series("out")
        };
        let first = run(&compiled);
        let second = run(&compiled);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(second.iter()) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        let instance = compiled.instantiate().expect("instantiates");
        assert_eq!(instance.group_count(), 1);
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let model = two_stage_model();
        let a = elaborate(&model, two_stage_registry(), &validate_gate).unwrap();
        let b = elaborate(&model, two_stage_registry(), &validate_gate).unwrap();
        assert_eq!(a.content_hash(), b.content_hash(), "same model+registry, same hash");
        // A model edit changes the hash.
        let mut edited = two_stage_model();
        assert!(edited.reassign_thread("dbl", 7));
        let c = elaborate(&edited, two_stage_registry(), &validate_gate).unwrap();
        assert_ne!(a.content_hash(), c.content_hash(), "model edit changes the hash");
        // A registry-shape change (extra binding) changes the hash too.
        let padded = two_stage_registry().streamer("ghost", || {
            Box::new(FnStreamer::new("ghost", 0, 1, |_t, _h, _u: &[f64], y: &mut [f64]| y[0] = 0.0))
        });
        let d = elaborate(&model, padded, &validate_gate).unwrap();
        assert_ne!(a.content_hash(), d.content_hash(), "registry shape changes the hash");
    }

    #[test]
    fn missing_behaviour_is_an_elaboration_error() {
        let model = two_stage_model();
        let err = elaborate(&model, BehaviorRegistry::new(), &validate_gate).unwrap_err();
        assert!(matches!(err, CoreError::Elaborate { .. }));
        assert!(err.to_string().starts_with("URT114: "), "{err}");
    }

    #[test]
    fn feedthrough_mismatch_is_refused() {
        let mut b = ModelBuilder::new("m");
        let s = b.streamer("s", "none");
        b.streamer_out(s, "y", FlowType::scalar());
        // Model claims non-feedthrough; FnStreamer reports feedthrough.
        b.streamer_feedthrough(s, false);
        let registry = BehaviorRegistry::new().streamer("s", || {
            Box::new(FnStreamer::new("s", 0, 1, |_t, _h, _u: &[f64], y: &mut [f64]| y[0] = 1.0))
        });
        let err = elaborate(&b.build(), registry, &validate_gate).unwrap_err();
        assert!(err.to_string().contains("feedthrough"), "{err}");
    }

    #[test]
    fn width_mismatch_is_refused() {
        let mut b = ModelBuilder::new("m");
        let s = b.streamer("s", "none");
        b.streamer_out(s, "y", FlowType::vector(3));
        let registry = BehaviorRegistry::new().streamer("s", || {
            Box::new(FnStreamer::new("s", 0, 1, |_t, _h, _u: &[f64], y: &mut [f64]| y[0] = 1.0))
        });
        let err = elaborate(&b.build(), registry, &validate_gate).unwrap_err();
        assert!(err.to_string().contains("width"), "{err}");
    }

    #[test]
    fn duplicate_model_sport_link_is_refused() {
        let mut b = ModelBuilder::new("m");
        let cap = b.capsule("sup");
        let s = b.streamer("plant", "none");
        b.streamer_out(s, "y", FlowType::scalar());
        b.streamer_feedthrough(s, false);
        b.capsule_sport(cap, "p", "Ctl");
        b.capsule_sport(cap, "q", "Ctl");
        b.streamer_sport(s, "ctl", "Ctl");
        b.sport_link(cap, "p", s, "ctl");
        b.sport_link(cap, "q", s, "ctl");
        let registry = BehaviorRegistry::new().streamer("plant", || {
            struct P;
            impl StreamerBehavior for P {
                fn name(&self) -> &str {
                    "plant"
                }
                fn input_width(&self) -> usize {
                    0
                }
                fn output_width(&self) -> usize {
                    1
                }
                fn direct_feedthrough(&self) -> bool {
                    false
                }
                fn advance(
                    &mut self,
                    t: f64,
                    _h: f64,
                    _u: &[f64],
                    y: &mut [f64],
                ) -> Result<(), urt_ode::SolveError> {
                    y[0] = t;
                    Ok(())
                }
            }
            Box::new(P)
        });
        let err = elaborate(&b.build(), registry, &validate_gate).unwrap_err();
        assert!(matches!(err, CoreError::DuplicateSportLink { .. }), "{err}");
        assert!(err.to_string().starts_with("URT113: "), "{err}");
    }

    #[test]
    fn gate_refusal_propagates() {
        let model = two_stage_model();
        let gate = |_m: &UnifiedModel| -> Result<(), CoreError> {
            Err(CoreError::Elaborate { detail: "analysis says no".into() })
        };
        let err = elaborate(&model, two_stage_registry(), &gate).unwrap_err();
        assert!(err.to_string().contains("analysis says no"));
    }

    #[test]
    fn capsule_relay_dports_flatten_to_direct_flows() {
        // Figure 3: s1.y -> cap.d -> s2.u becomes a direct s1 -> s2 flow.
        let mut b = ModelBuilder::new("fig3ish");
        let cap = b.capsule("sub");
        let s1 = b.streamer("s1", "none");
        let s2 = b.streamer("s2", "none");
        b.streamer_out(s1, "y", FlowType::scalar());
        b.streamer_in(s2, "u", FlowType::scalar());
        b.streamer_out(s2, "y", FlowType::scalar());
        b.streamer_feedthrough(s1, false);
        b.capsule_dport(cap, "d", FlowType::scalar());
        b.flow(FlowEnd::Streamer(s1, "y".into()), FlowEnd::Capsule(cap, "d".into()));
        b.flow(FlowEnd::Capsule(cap, "d".into()), FlowEnd::Streamer(s2, "u".into()));
        b.probe(s2, "y", "out");
        let registry = BehaviorRegistry::new()
            .streamer("s1", || {
                struct T;
                impl StreamerBehavior for T {
                    fn name(&self) -> &str {
                        "t"
                    }
                    fn input_width(&self) -> usize {
                        0
                    }
                    fn output_width(&self) -> usize {
                        1
                    }
                    fn direct_feedthrough(&self) -> bool {
                        false
                    }
                    fn advance(
                        &mut self,
                        t: f64,
                        _h: f64,
                        _u: &[f64],
                        y: &mut [f64],
                    ) -> Result<(), urt_ode::SolveError> {
                        y[0] = t + 1.0;
                        Ok(())
                    }
                }
                Box::new(T)
            })
            .streamer("s2", || {
                Box::new(FnStreamer::new("s2", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| {
                    y[0] = u[0] * 10.0
                }))
            });
        let compiled = elaborate(&b.build(), registry, &validate_gate).expect("elaborates");
        let mut engine = HybridEngine::from_compiled(&compiled, EngineConfig::default()).unwrap();
        let rec = Recorder::new();
        engine.set_recorder(rec.clone());
        engine.run_until(2e-3).expect("run");
        // s1 emits t+1 at the step start; s2 multiplies by 10.
        assert!((rec.series("out").last().unwrap().1 - 10.0 * (1e-3 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn inert_capsules_compile_from_machine_specs() {
        use urt_umlrt::statemachine::SmSpec;
        let mut b = ModelBuilder::new("m");
        let cap = b.capsule("sup");
        let s = b.streamer("plant", "none");
        b.streamer_out(s, "y", FlowType::scalar());
        b.streamer_feedthrough(s, false);
        b.capsule_sport(cap, "p", "Ctl");
        b.streamer_sport(s, "ctl", "Ctl");
        b.sport_link(cap, "p", s, "ctl");
        b.capsule_machine(
            cap,
            SmSpec::new("sup_sm").state("idle").state("busy").initial("idle").on(
                "idle",
                ("p", "go"),
                "busy",
            ),
        );
        let registry = BehaviorRegistry::new().streamer("plant", || {
            struct P;
            impl StreamerBehavior for P {
                fn name(&self) -> &str {
                    "plant"
                }
                fn input_width(&self) -> usize {
                    0
                }
                fn output_width(&self) -> usize {
                    1
                }
                fn direct_feedthrough(&self) -> bool {
                    false
                }
                fn advance(
                    &mut self,
                    t: f64,
                    _h: f64,
                    _u: &[f64],
                    y: &mut [f64],
                ) -> Result<(), urt_ode::SolveError> {
                    y[0] = t;
                    Ok(())
                }
            }
            Box::new(P)
        });
        let compiled = elaborate(&b.build(), registry, &validate_gate).expect("elaborates");
        let cap_idx = compiled.capsule_index("sup").expect("capsule");
        let mut engine = HybridEngine::from_compiled(&compiled, EngineConfig::default()).unwrap();
        engine.run_until(1e-2).expect("run");
        assert_eq!(engine.controller().capsule_state(cap_idx).unwrap(), "idle");
    }
}
