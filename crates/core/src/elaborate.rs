//! Elaboration: lowering a declarative [`UnifiedModel`] into an
//! executable [`CompiledSystem`].
//!
//! The paper's point is *one* model covering both the event-driven and
//! the time-continuous half. This module closes the gap between the
//! declarative model (what `urt-lint` and codegen consume) and the
//! hand-wired runtime (`HybridEngine` + `StreamerNetwork` +
//! `Controller`): [`elaborate`] resolves every name, port, flow, SPort
//! link and probe **once**, at compile time, into dense integer ids, so
//! the engine's hot path never compares strings or hashes keys.
//!
//! The pipeline is `model → analyze → compile → run`:
//!
//! 1. an injected [analysis gate](AnalysisGate) vets the model —
//!    `urt_analysis::compile` passes the full whole-model analyzer here
//!    and refuses any error-severity finding (the crate DAG points
//!    `urt_analysis → urt_core`, so the analyzer is injected instead of
//!    called directly);
//! 2. the model's own well-formedness rules run
//!    ([`UnifiedModel::validate`]);
//! 3. the streamer hierarchy is **flattened**: container streamers
//!    (those owning sub-streamers, Figure 2) contribute no nodes, their
//!    leaves become nodes of a flat [`StreamerNetwork`] per declared
//!    solver thread, and capsule relay DPort chains (Figure 3) are
//!    resolved to direct leaf-to-leaf flows; flows whose endpoints sit on
//!    *different* declared threads are lowered into cross-group channel
//!    entries (double-buffered, one-macro-step delay) instead of forcing
//!    the threads to merge;
//! 4. behaviours come from a [`BehaviorRegistry`] (streamer name →
//!    [`StreamerBehavior`] factory, capsule name → [`Capsule`] factory),
//!    cross-checked against the declared DPort widths and feedthrough
//!    flag;
//! 5. SPort links and probes are resolved to `(group, node)` pairs, with
//!    the same duplicate-link rule the engine enforces
//!    ([`CoreError::DuplicateSportLink`]).
//!
//! The result plugs into the engine via
//! [`HybridEngine::from_compiled`](crate::engine::HybridEngine::from_compiled).

use crate::error::CoreError;
use crate::model::{FlowEnd, Owner, StreamerRef, UnifiedModel};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use urt_dataflow::flowtype::FlowType;
use urt_dataflow::graph::{NodeId, StreamerNetwork};
use urt_dataflow::port::SPortSpec;
use urt_dataflow::streamer::StreamerBehavior;
use urt_umlrt::capsule::{Capsule, CapsuleContext, SmCapsule};
use urt_umlrt::controller::Controller;
use urt_umlrt::message::Message;
use urt_umlrt::protocol::Protocol;
use urt_umlrt::statemachine::{SmSpec, StateMachineBuilder};

/// Factory producing the executable behaviour of one model streamer.
pub type StreamerFactory = Box<dyn FnOnce() -> Box<dyn StreamerBehavior>>;

/// Factory producing the executable instance of one model capsule.
pub type CapsuleFactory = Box<dyn FnOnce() -> Box<dyn Capsule>>;

/// Maps model element names to the executable behaviours elaboration
/// instantiates for them.
///
/// Every **leaf** streamer in the model needs a registered factory.
/// Capsules fall back to an inert instance compiled from the model's
/// attached [`SmSpec`] (no-op actions) — or a stateless placeholder if
/// no machine was declared — so analysis-only models still elaborate.
#[derive(Default)]
pub struct BehaviorRegistry {
    streamers: HashMap<String, StreamerFactory>,
    capsules: HashMap<String, CapsuleFactory>,
}

impl std::fmt::Debug for BehaviorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BehaviorRegistry")
            .field("streamers", &self.streamers.len())
            .field("capsules", &self.capsules.len())
            .finish()
    }
}

impl BehaviorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the behaviour factory for streamer `name`
    /// (builder style).
    pub fn streamer(
        mut self,
        name: impl Into<String>,
        factory: impl FnOnce() -> Box<dyn StreamerBehavior> + 'static,
    ) -> Self {
        self.streamers.insert(name.into(), Box::new(factory));
        self
    }

    /// Registers the capsule factory for capsule `name` (builder style).
    pub fn capsule(
        mut self,
        name: impl Into<String>,
        factory: impl FnOnce() -> Box<dyn Capsule> + 'static,
    ) -> Self {
        self.capsules.insert(name.into(), Box::new(factory));
        self
    }
}

/// The analysis stage injected into [`elaborate`] — returns `Err` to
/// refuse compilation. `urt_analysis::compile` passes the whole-model
/// analyzer; tests and registries without the analysis crate can pass
/// [`validate_gate`] (model rules only) or `&|_| Ok(())`.
pub type AnalysisGate<'a> = &'a dyn Fn(&UnifiedModel) -> Result<(), CoreError>;

/// The minimal gate: just the model's own well-formedness rules.
///
/// # Errors
///
/// Returns the first [`CoreError::Validation`] violation.
pub fn validate_gate(model: &UnifiedModel) -> Result<(), CoreError> {
    model.validate()
}

/// One resolved SPort link: streamer `(group, node, sport)` bridged to a
/// capsule port.
#[derive(Debug, Clone)]
pub(crate) struct CompiledLink {
    pub(crate) group: usize,
    pub(crate) node: NodeId,
    pub(crate) sport: String,
    pub(crate) capsule: usize,
    pub(crate) capsule_port: String,
}

/// One resolved probe: streamer output `(group, node, port)` recorded
/// into a named series.
#[derive(Debug, Clone)]
pub(crate) struct CompiledProbe {
    pub(crate) group: usize,
    pub(crate) node: NodeId,
    pub(crate) port: String,
    pub(crate) series: String,
}

/// One resolved cross-group flow: producer output `(group, node, port)`
/// feeding consumer input `(group, node, port)` in a *different* solver
/// group, carried by a double-buffered channel with a deterministic
/// one-macro-step delay (the consumer reads the producer's previous
/// step's sample; see `HybridEngine::link_flow`).
#[derive(Debug, Clone)]
pub(crate) struct CrossGroupFlow {
    pub(crate) from_group: usize,
    pub(crate) from_node: NodeId,
    pub(crate) from_port: String,
    pub(crate) to_group: usize,
    pub(crate) to_node: NodeId,
    pub(crate) to_port: String,
}

/// The executable form of a [`UnifiedModel`]: flat per-group streamer
/// networks, an instantiated capsule controller, and fully resolved link
/// and probe tables.
///
/// Consume with
/// [`HybridEngine::from_compiled`](crate::engine::HybridEngine::from_compiled);
/// query element locations first if the caller needs them afterwards
/// (e.g. [`CompiledSystem::capsule_index`] to read a capsule's state
/// after the run).
#[derive(Debug)]
pub struct CompiledSystem {
    pub(crate) groups: Vec<StreamerNetwork>,
    pub(crate) controller: Controller,
    pub(crate) links: Vec<CompiledLink>,
    pub(crate) probes: Vec<CompiledProbe>,
    pub(crate) cross_flows: Vec<CrossGroupFlow>,
    pub(crate) streamer_loc: BTreeMap<String, (usize, NodeId)>,
    pub(crate) capsule_idx: BTreeMap<String, usize>,
    pub(crate) step_budget_ns: Option<f64>,
}

impl CompiledSystem {
    /// Number of streamer groups (one per declared solver thread).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of flows lowered into cross-group channels (each carries a
    /// deterministic one-macro-step delay).
    pub fn cross_flow_count(&self) -> usize {
        self.cross_flows.len()
    }

    /// Number of resolved SPort links (capsule–streamer signal bridges).
    /// Ensemble execution refuses systems with links
    /// ([`EnsembleEngine::from_compiled`](crate::ensemble::EnsembleEngine::from_compiled)),
    /// so callers batching a model catalogue use this to skip them.
    pub fn sport_link_count(&self) -> usize {
        self.links.len()
    }

    /// Where a leaf streamer landed, as `(group, node)`.
    pub fn streamer_node(&self, name: &str) -> Option<(usize, NodeId)> {
        self.streamer_loc.get(name).copied()
    }

    /// Controller index of a capsule, for state queries after the run.
    pub fn capsule_index(&self, name: &str) -> Option<usize> {
        self.capsule_idx.get(name).copied()
    }

    /// Read access to the instantiated controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Series names of all resolved probes, in declaration order.
    pub fn probe_series(&self) -> Vec<&str> {
        self.probes.iter().map(|p| p.series.as_str()).collect()
    }

    /// The model-wide per-macro-step deadline budget
    /// ([`BudgetScope::Model`](crate::model::BudgetScope)), in
    /// nanoseconds, carried through elaboration.
    /// [`HybridEngine::from_compiled`](crate::engine::HybridEngine::from_compiled)
    /// picks it up as the default deadline of
    /// [`run_paced`](crate::engine::HybridEngine::run_paced), and manual
    /// deployments can hand it straight to a
    /// [`StepBudget`](crate::pacer::StepBudget) for miss accounting
    /// against the wall clock.
    pub fn step_budget_ns(&self) -> Option<f64> {
        self.step_budget_ns
    }
}

/// A capsule with no behaviour: accepts every message, does nothing.
/// Elaboration instantiates it for model capsules that have neither a
/// registered factory nor an attached state machine (pure structural
/// capsules, e.g. Figure 3's containment shells).
struct InertCapsule {
    name: String,
}

impl Capsule for InertCapsule {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, _ctx: &mut CapsuleContext) {}

    fn on_message(&mut self, _msg: &Message, _ctx: &mut CapsuleContext) {}
}

/// Compiles an [`SmSpec`] into a runnable machine with no-op actions —
/// states and transitions fire exactly as declared, so supervisors built
/// this way still change state on SPort signals, they just cause no side
/// effects.
fn inert_machine(spec: &SmSpec) -> Result<Box<dyn Capsule>, CoreError> {
    // Parents must exist before their children: order states in waves.
    let mut ordered: Vec<&urt_umlrt::statemachine::SmStateSpec> = Vec::new();
    let mut remaining: Vec<&_> = spec.states.iter().collect();
    let mut declared: HashSet<&str> = HashSet::new();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|s| {
            let ready = s.parent.as_ref().is_none_or(|p| declared.contains(p.as_str()));
            if ready {
                declared.insert(s.name.as_str());
                ordered.push(s);
            }
            !ready
        });
        if remaining.len() == before {
            return Err(CoreError::Elaborate {
                detail: format!(
                    "machine `{}`: state `{}` has an undeclared parent",
                    spec.name, remaining[0].name
                ),
            });
        }
    }
    let mut b = StateMachineBuilder::new(spec.name.clone());
    for s in ordered {
        b = match &s.parent {
            None => b.state(&s.name),
            Some(p) => b.substate(&s.name, p),
        };
    }
    for s in &spec.states {
        if let Some(child) = &s.initial_child {
            b = b.initial_child(&s.name, child);
        }
    }
    let Some(initial) = &spec.initial else {
        return Err(CoreError::Elaborate {
            detail: format!("machine `{}` declares no initial state", spec.name),
        });
    };
    b = b.initial(initial, |_d: &mut (), _ctx: &mut CapsuleContext| {});
    for t in &spec.transitions {
        let trigger = (t.port.as_str(), t.signal.as_str());
        b = match &t.target {
            Some(target) => b.on(&t.source, trigger, target, |_d, _m, _ctx| {}),
            None => b.internal(&t.source, trigger, |_d, _m, _ctx| {}),
        };
    }
    let machine = b.build()?;
    Ok(Box::new(SmCapsule::new(machine, ())))
}

/// An effective leaf-to-leaf flow after capsule relay resolution.
struct EffectiveFlow {
    from: StreamerRef,
    from_port: String,
    to: StreamerRef,
    to_port: String,
}

fn elaborate_err(detail: String) -> CoreError {
    CoreError::Elaborate { detail }
}

/// Lowers `model` into a [`CompiledSystem`] using `registry` for
/// behaviours, after `gate` (the injected analysis stage) accepts it.
///
/// See the [module docs](self) for the flattening and id-assignment
/// rules.
///
/// # Errors
///
/// * whatever `gate` returns — `urt_analysis::compile` refuses any
///   error-severity finding;
/// * [`CoreError::Validation`] for model rule violations;
/// * [`CoreError::Elaborate`] for a missing behaviour factory, a
///   width/feedthrough mismatch between declaration and behaviour, or
///   structure the executable form cannot realise (flows touching
///   container streamers, unresolvable relay chains);
/// * [`CoreError::DuplicateSportLink`] if two SPort links claim the same
///   `(group, node, sport)`.
pub fn elaborate(
    model: &UnifiedModel,
    registry: BehaviorRegistry,
    gate: AnalysisGate<'_>,
) -> Result<CompiledSystem, CoreError> {
    gate(model)?;
    model.validate()?;
    let BehaviorRegistry { mut streamers, mut capsules } = registry;

    // --- hierarchy: container streamers contribute no nodes ------------
    let refs: Vec<(StreamerRef, String)> =
        model.iter_streamers().map(|(r, name, _)| (r, name.to_owned())).collect();
    let containers: HashSet<StreamerRef> = refs
        .iter()
        .filter_map(|(r, _)| match model.streamer_owner(*r) {
            Some(Owner::Streamer(parent)) => Some(parent),
            _ => None,
        })
        .collect();
    let name_of = |r: StreamerRef| -> &str { model.streamer_name(r).unwrap_or("?") };
    for r in &containers {
        if !model.streamer_in_dports(*r).is_empty() || !model.streamer_out_dports(*r).is_empty() {
            return Err(elaborate_err(format!(
                "container streamer `{}` declares DPorts; flatten flows to its leaves instead",
                name_of(*r)
            )));
        }
    }

    // --- flows: resolve capsule relay chains to leaf-to-leaf edges -----
    let trace_source = |mut end: FlowEnd| -> Result<(StreamerRef, String), CoreError> {
        let mut hops = 0usize;
        loop {
            match end {
                FlowEnd::Streamer(s, port) => return Ok((s, port)),
                FlowEnd::Capsule(c, port) => {
                    hops += 1;
                    if hops > model.stats().flows + 1 {
                        return Err(elaborate_err(format!(
                            "relay chain through capsule DPort `{port}` does not terminate"
                        )));
                    }
                    let mut sources = model.iter_flows().filter(|&(_, to)| match to {
                        FlowEnd::Capsule(tc, tp) => *tc == c && *tp == port,
                        FlowEnd::Streamer(..) => false,
                    });
                    let Some((from, _)) = sources.next() else {
                        return Err(elaborate_err(format!(
                            "capsule DPort `{}`.`{port}` relays nothing",
                            model.capsule_name(c).unwrap_or("?")
                        )));
                    };
                    if sources.next().is_some() {
                        return Err(elaborate_err(format!(
                            "capsule DPort `{}`.`{port}` has multiple sources",
                            model.capsule_name(c).unwrap_or("?")
                        )));
                    }
                    end = from.clone();
                }
            }
        }
    };
    let mut effective: Vec<EffectiveFlow> = Vec::new();
    for (from, to) in model.iter_flows() {
        let FlowEnd::Streamer(to_s, to_port) = to else {
            // Flows *into* capsule DPorts are consumed by relay tracing.
            continue;
        };
        if containers.contains(to_s) {
            return Err(elaborate_err(format!(
                "flow targets container streamer `{}`",
                name_of(*to_s)
            )));
        }
        let (from_s, from_port) = trace_source(from.clone())?;
        if containers.contains(&from_s) {
            return Err(elaborate_err(format!(
                "flow originates at container streamer `{}`",
                name_of(from_s)
            )));
        }
        effective.push(EffectiveFlow {
            from: from_s,
            from_port,
            to: *to_s,
            to_port: to_port.clone(),
        });
    }

    // --- thread groups: one group per declared solver thread ------------
    // Flows no longer coalesce their endpoints: a flow between streamers
    // on distinct declared threads is lowered into a cross-group channel
    // below, so `assign_thread` is an actual partition, not a hint.
    let leaves: Vec<StreamerRef> =
        refs.iter().map(|(r, _)| *r).filter(|r| !containers.contains(r)).collect();
    let mut group_of_thread: BTreeMap<usize, usize> = BTreeMap::new();
    for tid in leaves.iter().map(|r| model.streamer_thread(*r)).collect::<BTreeSet<_>>() {
        let next = group_of_thread.len();
        group_of_thread.insert(tid, next);
    }
    let roots: Vec<usize> =
        leaves.iter().map(|r| group_of_thread[&model.streamer_thread(*r)]).collect();
    // A pure event-driven model (no leaf streamers) gets zero groups.
    let mut groups: Vec<StreamerNetwork> = group_of_thread
        .keys()
        .map(|tid| StreamerNetwork::new(format!("{}-t{tid}", model.name())))
        .collect();

    // --- instantiate leaf streamers ------------------------------------
    let mut streamer_loc: BTreeMap<String, (usize, NodeId)> = BTreeMap::new();
    let mut loc_of: HashMap<StreamerRef, (usize, NodeId)> = HashMap::new();
    for (r, gid) in leaves.iter().zip(roots.iter()) {
        let name = name_of(*r);
        let Some(factory) = streamers.remove(name) else {
            return Err(elaborate_err(format!("no behaviour registered for streamer `{name}`")));
        };
        let behavior = factory();
        let in_ports: Vec<(&str, FlowType)> =
            model.streamer_in_dports(*r).iter().map(|(n, t)| (n.as_str(), t.clone())).collect();
        let out_ports: Vec<(&str, FlowType)> =
            model.streamer_out_dports(*r).iter().map(|(n, t)| (n.as_str(), t.clone())).collect();
        let in_width: usize = in_ports.iter().map(|(_, t)| t.width()).sum();
        let out_width: usize = out_ports.iter().map(|(_, t)| t.width()).sum();
        if behavior.input_width() != in_width || behavior.output_width() != out_width {
            return Err(elaborate_err(format!(
                "streamer `{name}`: declared DPort widths {in_width}->{out_width} but behaviour \
                 `{}` computes {}->{}",
                behavior.name(),
                behavior.input_width(),
                behavior.output_width()
            )));
        }
        if behavior.direct_feedthrough() != model.streamer_feedthrough(*r) {
            return Err(elaborate_err(format!(
                "streamer `{name}`: model declares feedthrough={} but behaviour `{}` reports {}",
                model.streamer_feedthrough(*r),
                behavior.name(),
                behavior.direct_feedthrough()
            )));
        }
        let net = &mut groups[*gid];
        let node = net.add_streamer_boxed(behavior, &in_ports, &out_ports)?;
        for (sport, proto) in model.streamer_sports(*r) {
            let protocol =
                model.protocol(proto).cloned().unwrap_or_else(|| Protocol::new(proto.clone()));
            net.add_sport(node, SPortSpec::new(sport.clone(), protocol))?;
        }
        streamer_loc.insert(name.to_owned(), (*gid, node));
        loc_of.insert(*r, (*gid, node));
    }

    // --- wire effective flows ------------------------------------------
    // Same-group flows become in-network edges (zero-delay, ordered by
    // the network's topological schedule). Cross-group flows become
    // channel table entries: the consumer input is exported (so the
    // engine can latch channel samples into it) and the engine backs the
    // edge with a double-buffered channel — a deterministic one-step
    // delay, which the analyzer's flow pass vets ahead of time.
    let mut cross_flows: Vec<CrossGroupFlow> = Vec::new();
    for f in &effective {
        let (gf, nf) = loc_of[&f.from];
        let (gt, nt) = loc_of[&f.to];
        if gf == gt {
            groups[gf].flow((nf, f.from_port.as_str()), (nt, f.to_port.as_str()))?;
        } else {
            groups[gt].export_input(nt, &f.to_port)?;
            cross_flows.push(CrossGroupFlow {
                from_group: gf,
                from_node: nf,
                from_port: f.from_port.clone(),
                to_group: gt,
                to_node: nt,
                to_port: f.to_port.clone(),
            });
        }
    }

    // --- instantiate capsules ------------------------------------------
    let mut controller = Controller::new(model.name());
    let mut capsule_idx: BTreeMap<String, usize> = BTreeMap::new();
    let mut cap_of: HashMap<crate::model::CapsuleRef, usize> = HashMap::new();
    for (c, name) in model.iter_capsules() {
        let instance: Box<dyn Capsule> = match capsules.remove(name) {
            Some(factory) => factory(),
            None => match model.capsule_machine(c) {
                Some(spec) => inert_machine(spec)?,
                None => Box::new(InertCapsule { name: name.to_owned() }),
            },
        };
        let idx = controller.add_capsule(instance);
        capsule_idx.insert(name.to_owned(), idx);
        cap_of.insert(c, idx);
    }

    // --- resolve SPort links, refusing duplicates ----------------------
    let mut links: Vec<CompiledLink> = Vec::new();
    let mut seen: HashSet<(usize, usize, &str)> = HashSet::new();
    for (c, cport, s, sport) in model.iter_sport_links() {
        let Some(&(gid, node)) = loc_of.get(&s) else {
            return Err(elaborate_err(format!(
                "sport link targets container streamer `{}`",
                name_of(s)
            )));
        };
        if !seen.insert((gid, node.index(), sport)) {
            return Err(CoreError::DuplicateSportLink {
                group: gid,
                node: name_of(s).to_owned(),
                sport: sport.to_owned(),
            });
        }
        links.push(CompiledLink {
            group: gid,
            node,
            sport: sport.to_owned(),
            capsule: cap_of[&c],
            capsule_port: cport.to_owned(),
        });
    }

    // --- resolve probes -------------------------------------------------
    let mut probes: Vec<CompiledProbe> = Vec::new();
    for (s, port, series) in model.iter_probes() {
        let Some(&(gid, node)) = loc_of.get(&s) else {
            return Err(elaborate_err(format!(
                "probe `{series}` taps container streamer `{}`",
                name_of(s)
            )));
        };
        probes.push(CompiledProbe {
            group: gid,
            node,
            port: port.to_owned(),
            series: series.to_owned(),
        });
    }

    Ok(CompiledSystem {
        groups,
        controller,
        links,
        probes,
        cross_flows,
        streamer_loc,
        capsule_idx,
        step_budget_ns: model.model_budget(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, HybridEngine};
    use crate::model::ModelBuilder;
    use crate::recorder::Recorder;
    use crate::threading::ThreadPolicy;
    use urt_dataflow::streamer::FnStreamer;

    fn two_stage_model() -> UnifiedModel {
        let mut b = ModelBuilder::new("m");
        let src = b.streamer("src", "none");
        let dbl = b.streamer("dbl", "none");
        b.streamer_out(src, "y", FlowType::scalar());
        b.streamer_in(dbl, "u", FlowType::scalar());
        b.streamer_out(dbl, "y", FlowType::scalar());
        b.streamer_feedthrough(src, false);
        b.flow_between_streamers(src, "y", dbl, "u");
        b.probe(dbl, "y", "out");
        b.build()
    }

    fn two_stage_registry() -> BehaviorRegistry {
        // A non-feedthrough source (t at step start) feeding a doubler.
        struct Src;
        impl StreamerBehavior for Src {
            fn name(&self) -> &str {
                "src"
            }
            fn input_width(&self) -> usize {
                0
            }
            fn output_width(&self) -> usize {
                1
            }
            fn direct_feedthrough(&self) -> bool {
                false
            }
            fn advance(
                &mut self,
                t: f64,
                _h: f64,
                _u: &[f64],
                y: &mut [f64],
            ) -> Result<(), urt_ode::SolveError> {
                y[0] = t;
                Ok(())
            }
        }
        BehaviorRegistry::new().streamer("src", || Box::new(Src)).streamer("dbl", || {
            Box::new(FnStreamer::new("dbl", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| {
                y[0] = 2.0 * u[0]
            }))
        })
    }

    #[test]
    fn elaborates_and_runs_model_first() {
        let model = two_stage_model();
        let compiled = elaborate(&model, two_stage_registry(), &validate_gate).expect("elaborates");
        assert_eq!(compiled.group_count(), 1);
        assert!(compiled.streamer_node("src").is_some());
        assert_eq!(compiled.probe_series(), vec!["out"]);
        let mut engine = HybridEngine::from_compiled(
            compiled,
            EngineConfig { step: 0.1, policy: ThreadPolicy::CurrentThread },
        )
        .expect("engine");
        let rec = Recorder::new();
        engine.set_recorder(rec.clone());
        engine.run_until(1.0).expect("run");
        let series = rec.series("out");
        assert_eq!(series.len(), 10);
        // Last step starts at t=0.9: src emits 0.9, dbl doubles it.
        assert!((series.last().unwrap().1 - 1.8).abs() < 1e-12);
    }

    #[test]
    fn missing_behaviour_is_an_elaboration_error() {
        let model = two_stage_model();
        let err = elaborate(&model, BehaviorRegistry::new(), &validate_gate).unwrap_err();
        assert!(matches!(err, CoreError::Elaborate { .. }));
        assert!(err.to_string().starts_with("URT114: "), "{err}");
    }

    #[test]
    fn feedthrough_mismatch_is_refused() {
        let mut b = ModelBuilder::new("m");
        let s = b.streamer("s", "none");
        b.streamer_out(s, "y", FlowType::scalar());
        // Model claims non-feedthrough; FnStreamer reports feedthrough.
        b.streamer_feedthrough(s, false);
        let registry = BehaviorRegistry::new().streamer("s", || {
            Box::new(FnStreamer::new("s", 0, 1, |_t, _h, _u: &[f64], y: &mut [f64]| y[0] = 1.0))
        });
        let err = elaborate(&b.build(), registry, &validate_gate).unwrap_err();
        assert!(err.to_string().contains("feedthrough"), "{err}");
    }

    #[test]
    fn width_mismatch_is_refused() {
        let mut b = ModelBuilder::new("m");
        let s = b.streamer("s", "none");
        b.streamer_out(s, "y", FlowType::vector(3));
        let registry = BehaviorRegistry::new().streamer("s", || {
            Box::new(FnStreamer::new("s", 0, 1, |_t, _h, _u: &[f64], y: &mut [f64]| y[0] = 1.0))
        });
        let err = elaborate(&b.build(), registry, &validate_gate).unwrap_err();
        assert!(err.to_string().contains("width"), "{err}");
    }

    #[test]
    fn duplicate_model_sport_link_is_refused() {
        let mut b = ModelBuilder::new("m");
        let cap = b.capsule("sup");
        let s = b.streamer("plant", "none");
        b.streamer_out(s, "y", FlowType::scalar());
        b.streamer_feedthrough(s, false);
        b.capsule_sport(cap, "p", "Ctl");
        b.capsule_sport(cap, "q", "Ctl");
        b.streamer_sport(s, "ctl", "Ctl");
        b.sport_link(cap, "p", s, "ctl");
        b.sport_link(cap, "q", s, "ctl");
        let registry = BehaviorRegistry::new().streamer("plant", || {
            struct P;
            impl StreamerBehavior for P {
                fn name(&self) -> &str {
                    "plant"
                }
                fn input_width(&self) -> usize {
                    0
                }
                fn output_width(&self) -> usize {
                    1
                }
                fn direct_feedthrough(&self) -> bool {
                    false
                }
                fn advance(
                    &mut self,
                    t: f64,
                    _h: f64,
                    _u: &[f64],
                    y: &mut [f64],
                ) -> Result<(), urt_ode::SolveError> {
                    y[0] = t;
                    Ok(())
                }
            }
            Box::new(P)
        });
        let err = elaborate(&b.build(), registry, &validate_gate).unwrap_err();
        assert!(matches!(err, CoreError::DuplicateSportLink { .. }), "{err}");
        assert!(err.to_string().starts_with("URT113: "), "{err}");
    }

    #[test]
    fn gate_refusal_propagates() {
        let model = two_stage_model();
        let gate = |_m: &UnifiedModel| -> Result<(), CoreError> {
            Err(CoreError::Elaborate { detail: "analysis says no".into() })
        };
        let err = elaborate(&model, two_stage_registry(), &gate).unwrap_err();
        assert!(err.to_string().contains("analysis says no"));
    }

    #[test]
    fn capsule_relay_dports_flatten_to_direct_flows() {
        // Figure 3: s1.y -> cap.d -> s2.u becomes a direct s1 -> s2 flow.
        let mut b = ModelBuilder::new("fig3ish");
        let cap = b.capsule("sub");
        let s1 = b.streamer("s1", "none");
        let s2 = b.streamer("s2", "none");
        b.streamer_out(s1, "y", FlowType::scalar());
        b.streamer_in(s2, "u", FlowType::scalar());
        b.streamer_out(s2, "y", FlowType::scalar());
        b.streamer_feedthrough(s1, false);
        b.capsule_dport(cap, "d", FlowType::scalar());
        b.flow(FlowEnd::Streamer(s1, "y".into()), FlowEnd::Capsule(cap, "d".into()));
        b.flow(FlowEnd::Capsule(cap, "d".into()), FlowEnd::Streamer(s2, "u".into()));
        b.probe(s2, "y", "out");
        let registry = BehaviorRegistry::new()
            .streamer("s1", || {
                struct T;
                impl StreamerBehavior for T {
                    fn name(&self) -> &str {
                        "t"
                    }
                    fn input_width(&self) -> usize {
                        0
                    }
                    fn output_width(&self) -> usize {
                        1
                    }
                    fn direct_feedthrough(&self) -> bool {
                        false
                    }
                    fn advance(
                        &mut self,
                        t: f64,
                        _h: f64,
                        _u: &[f64],
                        y: &mut [f64],
                    ) -> Result<(), urt_ode::SolveError> {
                        y[0] = t + 1.0;
                        Ok(())
                    }
                }
                Box::new(T)
            })
            .streamer("s2", || {
                Box::new(FnStreamer::new("s2", 1, 1, |_t, _h, u: &[f64], y: &mut [f64]| {
                    y[0] = u[0] * 10.0
                }))
            });
        let compiled = elaborate(&b.build(), registry, &validate_gate).expect("elaborates");
        let mut engine = HybridEngine::from_compiled(compiled, EngineConfig::default()).unwrap();
        let rec = Recorder::new();
        engine.set_recorder(rec.clone());
        engine.run_until(2e-3).expect("run");
        // s1 emits t+1 at the step start; s2 multiplies by 10.
        assert!((rec.series("out").last().unwrap().1 - 10.0 * (1e-3 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn inert_capsules_compile_from_machine_specs() {
        use urt_umlrt::statemachine::SmSpec;
        let mut b = ModelBuilder::new("m");
        let cap = b.capsule("sup");
        let s = b.streamer("plant", "none");
        b.streamer_out(s, "y", FlowType::scalar());
        b.streamer_feedthrough(s, false);
        b.capsule_sport(cap, "p", "Ctl");
        b.streamer_sport(s, "ctl", "Ctl");
        b.sport_link(cap, "p", s, "ctl");
        b.capsule_machine(
            cap,
            SmSpec::new("sup_sm").state("idle").state("busy").initial("idle").on(
                "idle",
                ("p", "go"),
                "busy",
            ),
        );
        let registry = BehaviorRegistry::new().streamer("plant", || {
            struct P;
            impl StreamerBehavior for P {
                fn name(&self) -> &str {
                    "plant"
                }
                fn input_width(&self) -> usize {
                    0
                }
                fn output_width(&self) -> usize {
                    1
                }
                fn direct_feedthrough(&self) -> bool {
                    false
                }
                fn advance(
                    &mut self,
                    t: f64,
                    _h: f64,
                    _u: &[f64],
                    y: &mut [f64],
                ) -> Result<(), urt_ode::SolveError> {
                    y[0] = t;
                    Ok(())
                }
            }
            Box::new(P)
        });
        let compiled = elaborate(&b.build(), registry, &validate_gate).expect("elaborates");
        let cap_idx = compiled.capsule_index("sup").expect("capsule");
        let mut engine = HybridEngine::from_compiled(compiled, EngineConfig::default()).unwrap();
        engine.run_until(1e-2).expect("run");
        assert_eq!(engine.controller().capsule_state(cap_idx).unwrap(), "idle");
    }
}
