//! Capsule skeleton generation: a module with a state enum, a message
//! enum and a run-to-completion `dispatch` match.

use crate::{camel_case, sanitize_ident};

/// Generates a self-contained capsule module skeleton.
///
/// # Examples
///
/// ```
/// let code = urt_codegen::capsule_gen::generate_capsule("supervisor");
/// assert!(code.contains("pub enum State"));
/// assert!(code.contains("pub fn dispatch"));
/// ```
pub fn generate_capsule(name: &str) -> String {
    let module = format!("capsule_{}", sanitize_ident(name));
    let ty = camel_case(name);
    format!(
        r#"/// Event-driven capsule `{name}` (state machine skeleton).
pub mod {module} {{
    /// States of the hierarchical state machine.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum State {{
        /// Initial state.
        Initial,
        // TODO: add model states here.
    }}

    /// Incoming signal messages.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Signal {{
        /// Timer tick from the timing service.
        Timeout,
        /// Signal from a linked streamer SPort.
        FromStreamer(f64),
        // TODO: add protocol signals here.
    }}

    /// The capsule: extended state plus the current machine state.
    #[derive(Debug)]
    pub struct {ty}Capsule {{
        state: State,
        /// Outbox towards streamer SPorts (drained by the controller).
        pub outbox: Vec<f64>,
    }}

    impl {ty}Capsule {{
        /// Creates the capsule in its initial state.
        pub fn new() -> Self {{
            {ty}Capsule {{ state: State::Initial, outbox: Vec::new() }}
        }}

        /// Current state.
        pub fn state(&self) -> State {{
            self.state
        }}

        /// One run-to-completion step.
        pub fn dispatch(&mut self, signal: Signal) {{
            match (self.state, signal) {{
                (State::Initial, Signal::Timeout) => {{
                    // TODO: transition action.
                }}
                (State::Initial, Signal::FromStreamer(_value)) => {{
                    // TODO: handle streamer signal.
                }}
            }}
        }}
    }}

    impl Default for {ty}Capsule {{
        fn default() -> Self {{
            Self::new()
        }}
    }}
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skeleton_contains_rtc_dispatch() {
        let code = generate_capsule("my supervisor");
        assert!(code.contains("pub mod capsule_my_supervisor"));
        assert!(code.contains("MySupervisorCapsule"));
        assert!(code.contains("pub fn dispatch"));
        assert!(code.contains("State::Initial"));
        assert_eq!(code.matches('{').count(), code.matches('}').count());
    }
}
