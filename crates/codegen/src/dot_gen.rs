//! GraphViz DOT generation: renders a unified model's structure (the
//! shapes of Figures 2 and 3) for documentation.

use crate::sanitize_ident;
use urt_core::model::UnifiedModel;

/// Renders the model as a GraphViz `digraph`: capsules as boxes, streamers
/// as ellipses (the paper draws DPorts as circles and SPorts as squares;
/// here containment becomes clusters and flows become edges).
///
/// # Examples
///
/// ```
/// use urt_core::model::ModelBuilder;
///
/// let mut b = ModelBuilder::new("demo");
/// b.capsule("ctl");
/// b.streamer("plant", "rk4");
/// let dot = urt_codegen::dot_gen::to_dot(&b.build());
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("plant"));
/// ```
pub fn to_dot(model: &UnifiedModel) -> String {
    let mut out = format!("digraph \"{}\" {{\n", model.name());
    out.push_str("  rankdir=LR;\n  node [fontname=\"monospace\"];\n");
    for (_, name) in model.iter_capsules() {
        out.push_str(&format!(
            "  capsule_{} [shape=box, label=\"«capsule»\\n{}\"];\n",
            sanitize_ident(name),
            name
        ));
    }
    for (_, name, solver) in model.iter_streamers() {
        out.push_str(&format!(
            "  streamer_{} [shape=ellipse, label=\"«streamer»\\n{}\\nsolver: {}\"];\n",
            sanitize_ident(name),
            name,
            solver
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use urt_core::model::ModelBuilder;

    #[test]
    fn dot_contains_all_elements_and_is_balanced() {
        let mut b = ModelBuilder::new("m");
        b.capsule("super visor");
        b.streamer("plant-1", "rk4");
        b.streamer("filter", "euler");
        let dot = to_dot(&b.build());
        assert!(dot.contains("capsule_super_visor"));
        assert!(dot.contains("streamer_plant_1"));
        assert!(dot.contains("solver: euler"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn empty_model_renders() {
        let dot = to_dot(&ModelBuilder::new("empty").build());
        assert!(dot.starts_with("digraph \"empty\""));
        assert!(dot.ends_with("}\n"));
    }
}
