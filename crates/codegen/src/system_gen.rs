//! System wiring generation: the `main` that realises the paper's
//! deployment — capsules on the event thread, streamers on solver threads,
//! channels in between.

use crate::{camel_case, sanitize_ident};
use urt_core::model::UnifiedModel;

/// Generates the `main` function spawning one solver thread per streamer
/// and running the capsule event loop on the main thread.
pub fn generate_main(model: &UnifiedModel) -> String {
    let mut out = String::new();
    out.push_str("use std::sync::mpsc;\nuse std::thread;\n\n");
    out.push_str(
        "/// Entry point generated from the unified model: capsules stay on\n/// the event thread; each streamer gets a solver thread; signal\n/// messages cross over mpsc channels.\nfn main() {\n",
    );
    out.push_str("    const MACRO_STEP: f64 = 1e-3;\n");
    out.push_str("    const T_END: f64 = 1.0;\n");
    // Channels + threads per streamer.
    for (_, name, _) in model.iter_streamers() {
        let ident = sanitize_ident(name);
        let ty = camel_case(name);
        out.push_str(&format!(
            r#"    let (to_{ident}, {ident}_rx) = mpsc::channel::<f64>();
    let (from_{ident}_tx, from_{ident}) = mpsc::channel::<f64>();
    let {ident}_thread = thread::spawn(move || {{
        let mut streamer = {ty}Streamer::new();
        let mut t = 0.0;
        while t < T_END {{
            let u: Vec<f64> = {ident}_rx.try_iter().collect();
            streamer.advance(t, MACRO_STEP, &u);
            t += MACRO_STEP;
            if from_{ident}_tx.send(streamer.x.first().copied().unwrap_or(0.0)).is_err() {{
                break;
            }}
        }}
    }});
"#
        ));
    }
    // Capsules on the event thread.
    for (_, name) in model.iter_capsules() {
        let ident = sanitize_ident(name);
        let module = format!("capsule_{ident}");
        let ty = camel_case(name);
        out.push_str(&format!("    let mut {ident} = {module}::{ty}Capsule::new();\n"));
    }
    out.push_str("    let mut t = 0.0;\n    while t < T_END {\n");
    for (_, name) in model.iter_capsules() {
        let ident = sanitize_ident(name);
        let module = format!("capsule_{ident}");
        out.push_str(&format!("        {ident}.dispatch({module}::Signal::Timeout);\n"));
        for (_, sname, _) in model.iter_streamers() {
            let sident = sanitize_ident(sname);
            out.push_str(&format!(
                "        for v in from_{sident}.try_iter() {{\n            {ident}.dispatch({module}::Signal::FromStreamer(v));\n        }}\n"
            ));
            out.push_str(&format!(
                "        for v in {ident}.outbox.drain(..) {{\n            let _ = to_{sident}.send(v);\n        }}\n"
            ));
        }
    }
    out.push_str("        t += MACRO_STEP;\n    }\n");
    for (_, name, _) in model.iter_streamers() {
        let ident = sanitize_ident(name);
        out.push_str(&format!("    drop(to_{ident});\n"));
        out.push_str(&format!("    let _ = {ident}_thread.join();\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use urt_core::model::ModelBuilder;

    #[test]
    fn main_spawns_threads_and_channels() {
        let mut b = ModelBuilder::new("m");
        b.capsule("ctl");
        b.streamer("plant", "rk4");
        let code = generate_main(&b.build());
        assert!(code.contains("thread::spawn"));
        assert!(code.contains("mpsc::channel"));
        assert!(code.contains("plant_thread"));
        assert!(code.contains("ctl.dispatch"));
        assert_eq!(code.matches('{').count(), code.matches('}').count());
    }

    #[test]
    fn model_without_streamers_still_generates() {
        let mut b = ModelBuilder::new("m");
        b.capsule("only");
        let code = generate_main(&b.build());
        assert!(code.contains("fn main()"));
        assert!(!code.contains("thread::spawn"));
    }
}
