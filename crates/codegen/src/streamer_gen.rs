//! Streamer skeleton generation: a struct with continuous state, a solver
//! tag and the equation hook the solver computes.

use crate::camel_case;

/// Generates a self-contained streamer struct skeleton bound to a named
/// solver strategy.
///
/// # Examples
///
/// ```
/// let code = urt_codegen::streamer_gen::generate_streamer("plant", "rk4");
/// assert!(code.contains("struct PlantStreamer"));
/// assert!(code.contains("\"rk4\""));
/// ```
pub fn generate_streamer(name: &str, solver: &str) -> String {
    let ty = camel_case(name);
    format!(
        r#"/// Time-continuous streamer `{name}`; behaviour computed by the
/// `{solver}` solver strategy on a dedicated thread.
#[derive(Debug)]
pub struct {ty}Streamer {{
    /// Continuous state vector.
    pub x: Vec<f64>,
    /// Solver strategy name (swappable, paper Figure 1).
    pub solver: &'static str,
}}

impl {ty}Streamer {{
    /// Creates the streamer with an empty state.
    pub fn new() -> Self {{
        {ty}Streamer {{ x: Vec::new(), solver: "{solver}" }}
    }}

    /// The equations: writes dx/dt for the current state and inputs.
    pub fn derivatives(&self, _t: f64, _u: &[f64], dx: &mut [f64]) {{
        // TODO: model equations.
        dx.fill(0.0);
    }}

    /// One solver macro step of size `h` with frozen inputs `u`
    /// (forward Euler placeholder; the runtime uses `{solver}`).
    pub fn advance(&mut self, t: f64, h: f64, u: &[f64]) {{
        let mut dx = vec![0.0; self.x.len()];
        self.derivatives(t, u, &mut dx);
        for (xi, di) in self.x.iter_mut().zip(dx) {{
            *xi += h * di;
        }}
    }}
}}

impl Default for {ty}Streamer {{
    fn default() -> Self {{
        Self::new()
    }}
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skeleton_has_equation_hook_and_solver_tag() {
        let code = generate_streamer("low pass", "dopri45");
        assert!(code.contains("LowPassStreamer"));
        assert!(code.contains("fn derivatives"));
        assert!(code.contains("fn advance"));
        assert!(code.contains("\"dopri45\""));
        assert_eq!(code.matches('{').count(), code.matches('}').count());
    }
}
