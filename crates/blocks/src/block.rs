//! The block trait all library blocks implement.

/// A causal signal block with fixed input/output arity.
///
/// Blocks are stepped with a fixed macro step `h`; continuous blocks
/// integrate internally (exactly or with an embedded method). This is the
/// "Simulink block" abstraction the paper's introduction refers to.
///
/// # Examples
///
/// ```
/// use urt_blocks::block::Block;
/// use urt_blocks::math::Gain;
///
/// let mut g = Gain::new(3.0);
/// let mut y = [0.0];
/// g.step(0.0, 0.01, &[2.0], &mut y);
/// assert_eq!(y[0], 6.0);
/// ```
pub trait Block: Send {
    /// Block-type name (diagnostics; instances are named by the diagram).
    fn name(&self) -> &str;

    /// Number of input lanes.
    fn inputs(&self) -> usize;

    /// Number of output lanes.
    fn outputs(&self) -> usize;

    /// Whether the block holds continuous state (an integrator-like
    /// block). Used by the Kühl-baseline accounting.
    fn is_continuous(&self) -> bool {
        false
    }

    /// Whether outputs depend directly on this step's inputs.
    fn direct_feedthrough(&self) -> bool {
        true
    }

    /// Resets internal state to initial conditions.
    fn reset(&mut self) {}

    /// Advances the block from `t` to `t + h`.
    fn step(&mut self, t: f64, h: f64, u: &[f64], y: &mut [f64]);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;

    impl Block for Null {
        fn name(&self) -> &str {
            "null"
        }
        fn inputs(&self) -> usize {
            0
        }
        fn outputs(&self) -> usize {
            0
        }
        fn step(&mut self, _t: f64, _h: f64, _u: &[f64], _y: &mut [f64]) {}
    }

    #[test]
    fn defaults() {
        let mut b = Null;
        assert!(!b.is_continuous());
        assert!(b.direct_feedthrough());
        b.reset();
        assert_eq!(b.name(), "null");
    }

    #[test]
    fn object_safe() {
        let b: Box<dyn Block> = Box::new(Null);
        assert_eq!(b.inputs(), 0);
    }
}
