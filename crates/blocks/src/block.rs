//! The block trait all library blocks implement.

/// A causal signal block with fixed input/output arity.
///
/// Blocks are stepped with a fixed macro step `h`; continuous blocks
/// integrate internally (exactly or with an embedded method). This is the
/// "Simulink block" abstraction the paper's introduction refers to.
///
/// # Examples
///
/// ```
/// use urt_blocks::block::Block;
/// use urt_blocks::math::Gain;
///
/// let mut g = Gain::new(3.0);
/// let mut y = [0.0];
/// g.step(0.0, 0.01, &[2.0], &mut y);
/// assert_eq!(y[0], 6.0);
/// ```
pub trait Block: Send {
    /// Block-type name (diagnostics; instances are named by the diagram).
    fn name(&self) -> &str;

    /// Number of input lanes.
    fn inputs(&self) -> usize;

    /// Number of output lanes.
    fn outputs(&self) -> usize;

    /// Whether the block holds continuous state (an integrator-like
    /// block). Used by the Kühl-baseline accounting.
    fn is_continuous(&self) -> bool {
        false
    }

    /// Whether outputs depend directly on this step's inputs.
    fn direct_feedthrough(&self) -> bool {
        true
    }

    /// Resets internal state to initial conditions.
    fn reset(&mut self) {}

    /// Advances the block from `t` to `t + h`.
    fn step(&mut self, t: f64, h: f64, u: &[f64], y: &mut [f64]);

    /// Advances `k` independent instances of this block in one call, where
    /// instance `i` reads `us[i * inputs..(i + 1) * inputs]` and writes
    /// `ys[i * outputs..(i + 1) * outputs]` (instance-major layout).
    ///
    /// The default loops over [`Block::step`], which is only valid for
    /// *stateless* blocks — a stateful block stepped k times would thread
    /// one state through every instance. Stateful blocks used in ensemble
    /// contexts must override this with a per-instance state layout.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are not `k` times the block's arity.
    fn step_batch(&mut self, t: f64, h: f64, k: usize, us: &[f64], ys: &mut [f64]) {
        assert_eq!(us.len(), k * self.inputs(), "batched input layout mismatch");
        assert_eq!(ys.len(), k * self.outputs(), "batched output layout mismatch");
        let (iw, ow) = (self.inputs(), self.outputs());
        for i in 0..k {
            self.step(t, h, &us[i * iw..(i + 1) * iw], &mut ys[i * ow..(i + 1) * ow]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;

    impl Block for Null {
        fn name(&self) -> &str {
            "null"
        }
        fn inputs(&self) -> usize {
            0
        }
        fn outputs(&self) -> usize {
            0
        }
        fn step(&mut self, _t: f64, _h: f64, _u: &[f64], _y: &mut [f64]) {}
    }

    #[test]
    fn defaults() {
        let mut b = Null;
        assert!(!b.is_continuous());
        assert!(b.direct_feedthrough());
        b.reset();
        assert_eq!(b.name(), "null");
    }

    #[test]
    fn object_safe() {
        let b: Box<dyn Block> = Box::new(Null);
        assert_eq!(b.inputs(), 0);
    }

    #[test]
    fn step_batch_matches_per_instance_steps() {
        use crate::math::Gain;
        let mut g = Gain::new(3.0);
        let us = [1.0, 2.0, -4.0];
        let mut ys = [0.0; 3];
        g.step_batch(0.0, 0.01, 3, &us, &mut ys);
        for (u, y) in us.iter().zip(ys.iter()) {
            let mut y_ref = [0.0];
            Gain::new(3.0).step(0.0, 0.01, &[*u], &mut y_ref);
            assert_eq!(y.to_bits(), y_ref[0].to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "batched input layout mismatch")]
    fn step_batch_checks_layout() {
        use crate::math::Gain;
        let mut g = Gain::new(1.0);
        let mut ys = [0.0; 2];
        g.step_batch(0.0, 0.01, 2, &[1.0], &mut ys);
    }
}
