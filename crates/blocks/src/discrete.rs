//! Discrete blocks: sampled behaviours that *can* live inside capsule
//! actions (difference equations fit run-to-completion semantics).

use crate::block::Block;
use urt_ode::difference::{DifferenceSystem, DiscreteIntegrator, UnitDelay as CoreDelay};

/// One-step delay `y[k] = u[k-1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitDelayBlock {
    inner: CoreDelay,
}

impl UnitDelayBlock {
    /// Creates a delay emitting `initial` on the first step.
    pub fn new(initial: f64) -> Self {
        UnitDelayBlock { inner: CoreDelay::new(initial) }
    }
}

impl Block for UnitDelayBlock {
    fn name(&self) -> &str {
        "unit-delay"
    }

    fn inputs(&self) -> usize {
        1
    }

    fn outputs(&self) -> usize {
        1
    }

    fn direct_feedthrough(&self) -> bool {
        false
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn step(&mut self, _t: f64, _h: f64, u: &[f64], y: &mut [f64]) {
        y[0] = self.inner.step(u)[0];
    }
}

/// Zero-order hold: samples the input every `period`, holds in between.
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroOrderHold {
    period: f64,
    next_sample: f64,
    held: f64,
}

impl ZeroOrderHold {
    /// Creates a ZOH with the given sample period.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0`.
    pub fn new(period: f64) -> Self {
        assert!(period > 0.0, "sample period must be positive");
        ZeroOrderHold { period, next_sample: 0.0, held: 0.0 }
    }
}

impl Block for ZeroOrderHold {
    fn name(&self) -> &str {
        "zoh"
    }

    fn inputs(&self) -> usize {
        1
    }

    fn outputs(&self) -> usize {
        1
    }

    fn reset(&mut self) {
        self.next_sample = 0.0;
        self.held = 0.0;
    }

    fn step(&mut self, t: f64, _h: f64, u: &[f64], y: &mut [f64]) {
        if t + 1e-12 >= self.next_sample {
            self.held = u[0];
            self.next_sample = t + self.period;
        }
        y[0] = self.held;
    }
}

/// Discrete (velocity-form-free) PID executing at the block rate.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscretePid {
    kp: f64,
    ki: f64,
    kd: f64,
    integ: DiscreteIntegrator,
    prev_error: Option<f64>,
    period: f64,
    limits: Option<(f64, f64)>,
}

impl DiscretePid {
    /// Creates a discrete PID with the given sample `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0`.
    pub fn new(kp: f64, ki: f64, kd: f64, period: f64) -> Self {
        DiscretePid {
            kp,
            ki,
            kd,
            integ: DiscreteIntegrator::new(period, 0.0),
            prev_error: None,
            period,
            limits: None,
        }
    }

    /// Adds output clamping (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn with_limits(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "pid limits must be ordered");
        self.limits = Some((lo, hi));
        self
    }
}

impl Block for DiscretePid {
    fn name(&self) -> &str {
        "discrete-pid"
    }

    fn inputs(&self) -> usize {
        1
    }

    fn outputs(&self) -> usize {
        1
    }

    fn reset(&mut self) {
        self.integ.reset();
        self.prev_error = None;
    }

    fn step(&mut self, _t: f64, _h: f64, u: &[f64], y: &mut [f64]) {
        let e = u[0];
        self.integ.step(&[e]);
        let i_term = self.integ.value();
        let d_term = match self.prev_error {
            Some(p) => (e - p) / self.period,
            None => 0.0,
        };
        self.prev_error = Some(e);
        let mut out = self.kp * e + self.ki * i_term + self.kd * d_term;
        if let Some((lo, hi)) = self.limits {
            out = out.clamp(lo, hi);
        }
        y[0] = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_delay_shifts() {
        let mut d = UnitDelayBlock::new(-1.0);
        let mut y = [0.0];
        d.step(0.0, 0.1, &[7.0], &mut y);
        assert_eq!(y[0], -1.0);
        d.step(0.1, 0.1, &[8.0], &mut y);
        assert_eq!(y[0], 7.0);
        d.reset();
        d.step(0.2, 0.1, &[9.0], &mut y);
        assert_eq!(y[0], -1.0);
        assert!(!d.direct_feedthrough());
    }

    #[test]
    fn zoh_holds_between_samples() {
        let mut z = ZeroOrderHold::new(0.1);
        let mut y = [0.0];
        z.step(0.0, 0.01, &[5.0], &mut y);
        assert_eq!(y[0], 5.0, "samples at t=0");
        z.step(0.05, 0.01, &[9.0], &mut y);
        assert_eq!(y[0], 5.0, "held");
        z.step(0.1, 0.01, &[9.0], &mut y);
        assert_eq!(y[0], 9.0, "resampled");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zoh_validates_period() {
        let _ = ZeroOrderHold::new(0.0);
    }

    #[test]
    fn discrete_pid_proportional() {
        let mut pid = DiscretePid::new(2.0, 0.0, 0.0, 0.1);
        let mut y = [0.0];
        pid.step(0.0, 0.1, &[1.5], &mut y);
        assert_eq!(y[0], 3.0);
    }

    #[test]
    fn discrete_pid_integral_accumulates() {
        let mut pid = DiscretePid::new(0.0, 1.0, 0.0, 0.5);
        let mut y = [0.0];
        pid.step(0.0, 0.5, &[1.0], &mut y);
        pid.step(0.5, 0.5, &[1.0], &mut y);
        // After two samples of e=1 at T=0.5 the integral is 1.0.
        assert!((y[0] - 1.0).abs() < 1e-12, "got {}", y[0]);
        pid.reset();
        pid.step(0.0, 0.5, &[1.0], &mut y);
        assert!((y[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn discrete_pid_derivative_and_limits() {
        let mut pid = DiscretePid::new(0.0, 0.0, 1.0, 0.5).with_limits(-1.0, 1.0);
        let mut y = [0.0];
        pid.step(0.0, 0.5, &[0.0], &mut y);
        assert_eq!(y[0], 0.0);
        pid.step(0.5, 0.5, &[2.0], &mut y);
        // Raw derivative is 4.0, clamped to 1.0.
        assert_eq!(y[0], 1.0);
    }
}
